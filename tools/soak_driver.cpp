// soak_driver — fault-injected endurance harness for lion_served.
//
//   soak_driver --served PATH --client PATH --file scan.csv
//               [--duration S] [--sessions N] [--journal-dir DIR]
//               [--rss-limit-mb M] [--fd-slack N] [--seed S]
//               [--replays-per-server N] [--telemetry]
//               [--fleet N] [--shards N]
//
// Runs replayed fleet traffic against a real lion_served process while
// injecting the faults a production supervisor would see:
//
//   - SIGKILL of the server mid-replay (the client must fail loudly, the
//     restarted server must pass the next clean replay — with journaling
//     on, restoring the killed sessions);
//   - SIGKILL of a client mid-replay (the server must shrug it off);
//   - clean replays interleaved throughout (must all pass).
//
// Between replays the driver samples the server's /proc gauges and gates
// on them: open fds must stay within --fd-slack of the incarnation's
// baseline (a leak shows up as monotonic growth) and RSS must stay under
// --rss-limit-mb. Each incarnation ends with SIGTERM and must drain
// cleanly (exit 0). Any gate failure makes the driver exit 1; the
// summary on stdout is the CI nightly job's log line.
//
// With --fleet N, non-probe traffic switches to the client's fleet mode:
// N active + N idle connections per replay over one event loop, so the
// faults land on a server holding a fleet-shaped connection table (a
// client SIGKILL becomes a mass disconnect). The kill-restart probe
// stays in single-connection --close mode — its journal-resume contract
// is the thing being probed. --shards N runs every incarnation with a
// sharded ingest plane.
//
// With --telemetry each incarnation also runs the daemon's scrape
// endpoint (--telemetry-port 0), and after every replay the driver
// scrapes /metrics and gates on it: the scrape must answer, and the
// serve counters (lines/samples/requests) must be monotone
// non-decreasing within the incarnation. Restarts reset the counters —
// each incarnation gets a fresh baseline — so the gate proves the
// telemetry plane itself survives the kill-restart cycle.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/process.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: soak_driver --served PATH --client PATH "
               "--file scan.csv\n"
               "                   [--duration S] [--sessions N]\n"
               "                   [--journal-dir DIR] [--rss-limit-mb M]\n"
               "                   [--fd-slack N] [--seed S]\n"
               "                   [--replays-per-server N] [--telemetry]\n"
               "                   [--fleet N] [--shards N]\n");
  std::exit(2);
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic per-seed fault schedule (no global rand()).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "error: exec %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// waitpid with a deadline. Returns true and fills `status` when the
/// process exited in time; false leaves it running.
bool wait_exit(pid_t pid, double timeout_s, int& status) {
  const double deadline = now_s() + timeout_s;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return true;
    if (r < 0 && errno != EINTR) return false;
    if (now_s() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool wait_port_file(const std::string& path, double timeout_s, int& port) {
  const double deadline = now_s() + timeout_s;
  while (now_s() < deadline) {
    std::ifstream f(path);
    if (f && (f >> port) && port > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool alive(pid_t pid) { return ::kill(pid, 0) == 0; }

/// Raw-socket GET /metrics against 127.0.0.1:port; empty body on any
/// connect/read/status failure (the caller gates on that).
std::string scrape_metrics(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  static const char kRequest[] = "GET /metrics HTTP/1.0\r\n\r\n";
  std::string response;
  if (::send(fd, kRequest, sizeof(kRequest) - 1, MSG_NOSIGNAL) ==
      static_cast<ssize_t>(sizeof(kRequest) - 1)) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  if (response.compare(0, 12, "HTTP/1.0 200") != 0) return "";
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

/// Value of an unlabelled sample line (`name value`), or 0 if absent.
/// The body always opens with a `# TYPE` comment, so anchoring on the
/// preceding newline is safe.
double metric_value(const std::string& body, const char* name) {
  const std::string needle = std::string("\n") + name + " ";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::atof(body.c_str() + pos + needle.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string served_bin;
  std::string client_bin;
  std::string csv_file;
  std::string journal_dir;
  double duration_s = 30.0;
  std::size_t sessions = 2;
  std::uint64_t rss_limit_mb = 512;
  std::uint64_t fd_slack = 16;
  std::uint64_t seed = 1;
  std::size_t replays_per_server = 8;
  bool telemetry = false;
  std::size_t fleet_conns = 0;  ///< 0: single-connection replays only
  std::size_t shards = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--served") {
      served_bin = next();
    } else if (flag == "--client") {
      client_bin = next();
    } else if (flag == "--file") {
      csv_file = next();
    } else if (flag == "--journal-dir") {
      journal_dir = next();
    } else if (flag == "--duration") {
      duration_s = std::atof(next().c_str());
    } else if (flag == "--sessions") {
      sessions = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (flag == "--rss-limit-mb") {
      rss_limit_mb = static_cast<std::uint64_t>(std::atol(next().c_str()));
    } else if (flag == "--fd-slack") {
      fd_slack = static_cast<std::uint64_t>(std::atol(next().c_str()));
    } else if (flag == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (flag == "--replays-per-server") {
      replays_per_server =
          static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (flag == "--telemetry") {
      telemetry = true;
    } else if (flag == "--fleet") {
      fleet_conns = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (flag == "--shards") {
      shards = static_cast<std::size_t>(std::atol(next().c_str()));
      if (shards == 0) usage("--shards must be >= 1");
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (served_bin.empty() || client_bin.empty() || csv_file.empty()) {
    usage("--served, --client and --file are required");
  }
  if (duration_s <= 0.0 || sessions == 0 || replays_per_server == 0) {
    usage("--duration/--sessions/--replays-per-server must be > 0");
  }

  Lcg rng{seed * 2654435761ULL + 1};
  const std::string port_file =
      "soak_port." + std::to_string(::getpid()) + ".txt";
  const std::string tport_file =
      "soak_tport." + std::to_string(::getpid()) + ".txt";
  const double deadline = now_s() + duration_s;

  std::uint64_t incarnations = 0;
  std::uint64_t clean_replays = 0;
  std::uint64_t server_kills = 0;
  std::uint64_t client_kills = 0;
  std::uint64_t failures = 0;
  std::uint64_t max_rss = 0;
  std::uint64_t max_fds = 0;

  auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "soak: FAIL: %s\n", what);
    ++failures;
  };

  // Set when an incarnation died by injected SIGKILL: the next
  // incarnation's first replay is forced clean — the kill-restart probe.
  // It reuses the killed replay's session prefix, so with --journal-dir
  // it resumes the journaled sessions through the restore path.
  bool force_clean = false;
  std::string killed_prefix;
  std::uint64_t replay_counter = 0;

  while (now_s() < deadline) {
    ::remove(port_file.c_str());
    ::remove(tport_file.c_str());
    std::vector<std::string> served_args = {served_bin, "--tcp", "0",
                                            "--port-file", port_file,
                                            "--drain-timeout", "30"};
    if (shards > 1) {
      served_args.push_back("--shards");
      served_args.push_back(std::to_string(shards));
    }
    if (fleet_conns > 0) {
      // Consecutive fleet replays overlap: the previous fleet's sockets
      // tear down asynchronously while the next one connects, so the cap
      // must hold several fleet generations, not one.
      served_args.push_back("--max-conns");
      served_args.push_back(std::to_string(8 * fleet_conns + 64));
    }
    if (telemetry) {
      served_args.push_back("--telemetry-port");
      served_args.push_back("0");
      served_args.push_back("--telemetry-port-file");
      served_args.push_back(tport_file);
    }
    if (!journal_dir.empty()) {
      served_args.push_back("--journal-dir");
      served_args.push_back(journal_dir);
      // fsync per flush only: the soak is about leaks, not fsync load.
      served_args.push_back("--journal-fsync");
      served_args.push_back("4096");
    }
    const pid_t server = spawn(served_args);
    ++incarnations;
    int port = 0;
    if (!wait_port_file(port_file, 15.0, port)) {
      fail("server did not publish its port in 15 s");
      ::kill(server, SIGKILL);
      int status = 0;
      wait_exit(server, 5.0, status);
      break;
    }
    const std::string tcp = "127.0.0.1:" + std::to_string(port);
    std::uint64_t baseline_fds = 0;
    int tport = 0;
    if (telemetry && !wait_port_file(tport_file, 15.0, tport)) {
      fail("telemetry port file did not appear in 15 s");
    }
    // Per-incarnation monotonicity floor: restarts legitimately reset
    // the registry, so the floor resets with the process.
    double prev_lines = -1.0;
    double prev_samples = -1.0;
    double prev_requests = -1.0;

    for (std::size_t r = 0; r < replays_per_server && now_s() < deadline;
         ++r) {
      // Fault schedule: 0 = SIGKILL server mid-replay (then restart),
      // 1 = SIGKILL client, else clean. The replay right after a restart
      // is always clean: it is the kill-restart acceptance probe.
      std::uint64_t fault = rng.next() % 4;
      // Unique session ids per replay keep replays independent; only the
      // kill-restart probe deliberately reuses the interrupted prefix.
      // Built by append, not operator+: the rvalue `"s" + to_string(..)`
      // chain trips gcc-12's -Wrestrict false positive (PR 105329).
      std::string prefix = "s";
      prefix += std::to_string(replay_counter++);
      prefix += 'x';
      bool probe = false;
      if (force_clean) {
        fault = 3;
        force_clean = false;
        probe = true;
        if (!killed_prefix.empty()) prefix = killed_prefix;
      }
      // Non-probe replays run fleet-shaped when requested; the probe
      // keeps the single-connection journal-resume contract it gates on.
      std::vector<std::string> client_args = {
          client_bin, "--tcp", tcp, "--file", csv_file,
          "--sessions", std::to_string(sessions),
          "--id-prefix", prefix};
      if (fleet_conns > 0 && !probe) {
        client_args.push_back("--fleet");
        client_args.push_back(std::to_string(fleet_conns));
        client_args.push_back("--idle");
        client_args.push_back(std::to_string(fleet_conns));
        client_args.push_back("--connect-timeout");
        client_args.push_back("10");
      } else {
        client_args.push_back("--close");
      }
      const pid_t client = spawn(client_args);
      int status = 0;
      if (fault == 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + rng.next() % 40));
        ::kill(server, SIGKILL);
        ++server_kills;
        int sstatus = 0;
        wait_exit(server, 5.0, sstatus);
        // The client must not hang on the dead server; its exit code is
        // not gated (a fast replay can legitimately finish before the
        // kill lands).
        if (!wait_exit(client, 30.0, status)) {
          fail("client hung after server SIGKILL");
          ::kill(client, SIGKILL);
          wait_exit(client, 5.0, status);
        }
        force_clean = true;
        killed_prefix = prefix;
        break;  // restart a fresh incarnation
      }
      if (fault == 1) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + rng.next() % 40));
        ::kill(client, SIGKILL);
        ++client_kills;
        wait_exit(client, 5.0, status);
        if (!alive(server)) {
          fail("server died when a client was SIGKILLed");
          break;
        }
      } else {
        if (!wait_exit(client, 120.0, status)) {
          fail("clean replay hung");
          ::kill(client, SIGKILL);
          wait_exit(client, 5.0, status);
        } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          fail("clean replay exited nonzero");
        } else {
          ++clean_replays;
        }
      }
      if (!alive(server)) {
        fail("server exited unexpectedly");
        break;
      }
      const std::uint64_t rss = lion::obs::process_rss_bytes(server);
      std::uint64_t fds = lion::obs::process_open_fds(server);
      if (rss > max_rss) max_rss = rss;
      if (fds > max_fds) max_fds = fds;
      if (baseline_fds == 0) {
        baseline_fds = fds;  // first sample of this incarnation
      } else if (fds > baseline_fds + fd_slack) {
        // A fleet replay's sockets close asynchronously after the client
        // exits; give teardown a moment before calling it a leak.
        const double fd_deadline = now_s() + 2.0;
        while (fds > baseline_fds + fd_slack && now_s() < fd_deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          fds = lion::obs::process_open_fds(server);
        }
        if (fds > baseline_fds + fd_slack) {
          fail("fd leak: open fds grew past baseline + slack");
        }
      }
      if (rss > rss_limit_mb * 1024 * 1024) fail("RSS over limit");
      if (telemetry && tport > 0) {
        const std::string body = scrape_metrics(tport);
        if (body.empty()) {
          fail("telemetry scrape failed on a live server");
        } else {
          const double lines = metric_value(body, "lion_serve_lines_total");
          const double samples =
              metric_value(body, "lion_serve_samples_total");
          const double requests =
              metric_value(body, "lion_serve_requests_total");
          if (lines < prev_lines || samples < prev_samples ||
              requests < prev_requests) {
            fail("serve counters regressed within an incarnation");
          }
          prev_lines = lines;
          prev_samples = samples;
          prev_requests = requests;
        }
      }
    }

    if (alive(server)) {
      ::kill(server, SIGTERM);
      int status = 0;
      if (!wait_exit(server, 60.0, status)) {
        fail("server ignored SIGTERM for 60 s");
        ::kill(server, SIGKILL);
        wait_exit(server, 5.0, status);
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        fail("server drain was unclean");
      }
    }
  }

  ::remove(port_file.c_str());
  ::remove(tport_file.c_str());
  std::printf(
      "soak: %llu incarnation(s), %llu clean replay(s), %llu server "
      "kill(s), %llu client kill(s), max rss %.1f MB, max fds %llu, "
      "%llu failure(s)\n",
      static_cast<unsigned long long>(incarnations),
      static_cast<unsigned long long>(clean_replays),
      static_cast<unsigned long long>(server_kills),
      static_cast<unsigned long long>(client_kills),
      static_cast<double>(max_rss) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(max_fds),
      static_cast<unsigned long long>(failures));
  if (clean_replays == 0) {
    std::fprintf(stderr, "soak: FAIL: no clean replay completed\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
