#!/usr/bin/env python3
"""Performance regression gate over lion.bench.v1 record files.

Compares freshly produced bench records against the committed baseline
(BENCH_4.json, `build: post` rows) and fails when a watched rate metric
drops below baseline / factor. The default factor of 2 is deliberately
loose: CI runners are slower and noisier than the box that recorded the
baseline, so the gate only catches order-of-magnitude mistakes — an
accidentally reinstated allocation storm, a debug build slipping into the
bench target — not single-digit-percent drift.

Usage:
  perf_gate.py --baseline BENCH_4.json --factor 2 current1.json [current2.json ...]

Records match when (bench, row, tags.method) coincide; only the rate
metrics in WATCHED_VALUES are gated. Baseline rows with no current
counterpart are reported but do not fail the gate (a bench list may
shrink deliberately); current rows without a baseline are ignored (new
benches have no history yet).

Lower-is-better metrics (latencies) are opt-in via --latency-metrics, a
comma-separated list of value names gated in reverse: the run fails when
the current value exceeds baseline * factor. Used by the incremental
`!tick` gate (BENCH_7.json): an O(new rows) flush that regressed to a
full-window recompute shows up as a ~300x latency blow-up, which even a
loose cross-machine factor catches.
"""

import argparse
import json
import sys

# Rate metrics (higher is better). Latency/percentile metrics are *not*
# gated: they scale with machine load in ways a single factor cannot cover.
WATCHED_VALUES = ("throughput_jps", "ops_per_s", "items_per_s")


def load_records(path):
    records = []
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("schema") != "lion.bench.v1":
                raise SystemExit(f"{path}:{i}: not a lion.bench.v1 record")
            records.append(rec)
    return records


def key_of(rec):
    # Enough identity to compare like with like: the workload (bench/row),
    # the code path (tags.method), and the load shape (jobs/threads). The
    # recording machine's hardware_concurrency is deliberately excluded —
    # the whole point is comparing across machines.
    return (rec.get("bench"), rec.get("row"), rec.get("tags", {}).get("method"),
            rec.get("params", {}).get("jobs"),
            rec.get("values", {}).get("threads"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_4.json",
                    help="committed baseline record file (default BENCH_4.json)")
    ap.add_argument("--factor", type=float, default=2.0,
                    help="maximum tolerated slowdown vs baseline (default 2)")
    ap.add_argument("--latency-metrics", default="",
                    help="comma-separated lower-is-better value names gated "
                         "in reverse (fail when current > baseline * factor)")
    ap.add_argument("current", nargs="+",
                    help="record files produced by this run")
    args = ap.parse_args()
    if args.factor <= 1.0:
        raise SystemExit("--factor must be > 1")
    latency_metrics = tuple(
        m.strip() for m in args.latency_metrics.split(",") if m.strip())

    baseline = {}
    for rec in load_records(args.baseline):
        if rec.get("tags", {}).get("build") != "post":
            continue
        baseline[key_of(rec)] = rec

    current = {}
    for path in args.current:
        for rec in load_records(path):
            current[key_of(rec)] = rec

    failures = []
    compared = 0
    for key, base in sorted(baseline.items(), key=str):
        cur = current.get(key)
        if cur is None:
            print(f"  [skip] {key}: no current record")
            continue
        for metric in WATCHED_VALUES:
            want = base.get("values", {}).get(metric)
            got = cur.get("values", {}).get(metric)
            if want is None or got is None or want <= 0:
                continue
            compared += 1
            ratio = got / want
            status = "ok" if got * args.factor >= want else "FAIL"
            print(f"  [{status:>4}] {key} {metric}: {got:.1f} vs baseline "
                  f"{want:.1f} ({ratio:.2f}x)")
            if status == "FAIL":
                failures.append((key, metric, ratio))
        for metric in latency_metrics:
            want = base.get("values", {}).get(metric)
            got = cur.get("values", {}).get(metric)
            if want is None or got is None or want <= 0:
                continue
            compared += 1
            ratio = got / want
            status = "ok" if got <= want * args.factor else "FAIL"
            print(f"  [{status:>4}] {key} {metric}: {got:.4f} ms vs baseline "
                  f"{want:.4f} ms ({ratio:.2f}x, lower is better)")
            if status == "FAIL":
                failures.append((key, metric, ratio))

    if compared == 0:
        raise SystemExit("perf gate compared zero metrics — wrong files?")
    if failures:
        print(f"\nperf gate FAILED: {len(failures)} metric(s) more than "
              f"{args.factor:g}x below baseline")
        return 1
    print(f"\nperf gate passed: {compared} metric(s) within {args.factor:g}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
