// lion — command-line front end for the LION library.
//
//   lion locate    <scan.csv> [--dim 2|3] [--interval M] [--method LS|WLS|IRLS|HUBER|TUKEY|RANSAC]
//                  [--hint x,y,z] [--adaptive] [--wavelength M]
//   lion calibrate <scan.csv> --physical-center x,y,z [--wavelength M]
//   lion offset    <scan.csv> --center x,y,z [--wavelength M]
//   lion simulate  <out.csv>  [--seed N] [--depth M] [--rig|--line|--circle]
//   lion track     <stream.csv> --center x,y,z [--speed M/S] [--dir x,y,z]
//                  [--window N] [--hop N] [--hint x,y,z]
//   lion decompose <offsets.csv>
//   lion batch     [--jobs N] [--threads M] [--seed N] [--depth M]
//
// `locate` estimates the static target position from a scan of
// (position, phase) samples; `calibrate` runs the full phase-center
// calibration (adaptive 3D localization) against the believed physical
// center; `offset` computes the Eq.-17 hardware offset given a calibrated
// center; `simulate` writes a demo scan CSV from the built-in testbed so
// the tool can be tried without hardware; `track` streams a conveyor scan
// through the sliding-window tracker; `decompose` splits a CSV matrix of
// per-pair offsets (antennas x tags, radians, blank/NaN for missing) into
// per-antenna and per-tag offsets; `batch` calibrates a simulated fleet of
// antennas on the work-stealing batch engine and prints throughput/latency
// stats plus the per-status histogram.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/lion.hpp"
#include "engine/batch.hpp"
#include "io/csv.hpp"
#include "io/report_json.hpp"
#include "obs/obs.hpp"
#include "rf/phase_model.hpp"
#include "serve/server.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, "%s",
               "usage:\n"
               "  lion locate    <scan.csv> [--dim 2|3] [--interval M]\n"
               "                 [--method LS|WLS|IRLS|HUBER|TUKEY|RANSAC] [--hint x,y,z]\n"
               "                 [--adaptive] [--wavelength M]\n"
               "  lion calibrate <scan.csv> --physical-center x,y,z\n"
               "                 [--wavelength M] [--json]\n"
               "                 [--metrics <out.json>] [--trace <out.json>]\n"
               "  lion offset    <scan.csv> --center x,y,z [--wavelength M]\n"
               "  lion simulate  <out.csv> [--seed N] [--depth M]\n"
               "                 [--rig|--line|--circle]\n"
               "  lion track     <stream.csv> --center x,y,z [--speed V]\n"
               "                 [--dir x,y,z] [--window N] [--hop N]\n"
               "                 [--hint x,y,z]\n"
               "  lion decompose <offsets.csv>\n"
               "  lion batch     [--jobs N] [--threads M] [--seed N]\n"
               "                 [--depth M] [--metrics <out.json>]\n"
               "                 [--trace <out.json>]\n"
               "  lion serve     [--tcp PORT | --unix PATH] [--threads M]\n"
               "                 [--shards N] [--center x,y,z]\n"
               "                 [--max-inflight N] [--ttl TICKS]\n"
               "                 [--timeout S] [--reject-busy]\n"
               "\n"
               "`serve` runs the streaming calibration service: with no\n"
               "listener flag it speaks the wire protocol on stdin/stdout\n"
               "(--center enables bare-CSV pipes); with --tcp/--unix it\n"
               "serves sockets until SIGINT/SIGTERM.\n"
               "\n"
               "--metrics writes a lion.metrics.v1 snapshot (per-stage\n"
               "duration histograms + pipeline counters); --trace writes a\n"
               "Chrome trace_event file (load in chrome://tracing or\n"
               "ui.perfetto.dev).\n");
  std::exit(2);
}

Vec3 parse_vec3(const std::string& s) {
  Vec3 v;
  if (std::sscanf(s.c_str(), "%lf,%lf,%lf", &v[0], &v[1], &v[2]) != 3) {
    usage("expected x,y,z triple");
  }
  return v;
}

struct Args {
  std::string command;
  std::string file;
  std::size_t dim = 0;  ///< 0 = command default (locate: 3, track: 2)
  double interval = 0.2;
  double wavelength = rf::kDefaultWavelength;
  core::SolveMethod method = core::SolveMethod::kWeightedLeastSquares;
  std::optional<Vec3> hint;
  std::optional<Vec3> physical_center;
  std::optional<Vec3> center;
  bool adaptive = false;
  std::uint64_t seed = 1;
  double depth = 0.8;
  std::string shape = "rig";
  double speed = 0.1;
  Vec3 direction{1.0, 0.0, 0.0};
  std::size_t window = 600;
  std::size_t hop = 200;
  bool json = false;
  std::size_t jobs = 16;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::string metrics_path;  ///< write a metrics snapshot here when set
  std::string trace_path;    ///< write a Chrome trace here when set
  int tcp_port = -1;         ///< serve: TCP listener port (-1 = stdio)
  std::string unix_path;     ///< serve: Unix socket listener path
  std::size_t max_inflight = 4;
  std::size_t shards = 1;    ///< serve: socket ingest shards
  std::uint64_t ttl_ticks = 0;
  double timeout_s = 0.0;
  bool reject_busy = false;
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  int i = 2;
  // Every command except `batch` and `serve` takes a CSV path operand.
  if (a.command != "batch" && a.command != "serve") {
    if (argc < 3 || argv[2][0] == '-') usage();
    a.file = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--dim") {
      a.dim = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--interval") {
      a.interval = std::stod(next());
    } else if (flag == "--wavelength") {
      a.wavelength = std::stod(next());
    } else if (flag == "--method") {
      const std::string m = next();
      if (m == "LS") {
        a.method = core::SolveMethod::kLeastSquares;
      } else if (m == "WLS") {
        a.method = core::SolveMethod::kWeightedLeastSquares;
      } else if (m == "IRLS") {
        a.method = core::SolveMethod::kIterativeReweighted;
      } else if (m == "HUBER") {
        a.method = core::SolveMethod::kHuberIrls;
      } else if (m == "TUKEY") {
        a.method = core::SolveMethod::kTukeyIrls;
      } else if (m == "RANSAC") {
        a.method = core::SolveMethod::kRansac;
      } else {
        usage("unknown method");
      }
    } else if (flag == "--hint") {
      a.hint = parse_vec3(next());
    } else if (flag == "--physical-center") {
      a.physical_center = parse_vec3(next());
    } else if (flag == "--center") {
      a.center = parse_vec3(next());
    } else if (flag == "--adaptive") {
      a.adaptive = true;
    } else if (flag == "--seed") {
      a.seed = std::stoull(next());
    } else if (flag == "--depth") {
      a.depth = std::stod(next());
    } else if (flag == "--rig" || flag == "--line" || flag == "--circle") {
      a.shape = flag.substr(2);
    } else if (flag == "--speed") {
      a.speed = std::stod(next());
    } else if (flag == "--dir") {
      a.direction = parse_vec3(next());
    } else if (flag == "--window") {
      a.window = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--hop") {
      a.hop = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--json") {
      a.json = true;
    } else if (flag == "--jobs") {
      a.jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--threads") {
      a.threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--metrics") {
      a.metrics_path = next();
    } else if (flag == "--trace") {
      a.trace_path = next();
    } else if (flag == "--tcp") {
      a.tcp_port = static_cast<int>(std::stoul(next()));
    } else if (flag == "--unix") {
      a.unix_path = next();
    } else if (flag == "--max-inflight") {
      a.max_inflight = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--shards") {
      a.shards = static_cast<std::size_t>(std::stoul(next()));
      if (a.shards == 0) usage("--shards must be >= 1");
    } else if (flag == "--ttl") {
      a.ttl_ticks = std::stoull(next());
    } else if (flag == "--timeout") {
      a.timeout_s = std::stod(next());
    } else if (flag == "--reject-busy") {
      a.reject_busy = true;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  return a;
}

int cmd_locate(const Args& a) {
  const auto samples = io::read_samples_csv_file(a.file);
  if (samples.empty()) {
    std::fprintf(stderr, "error: no samples in %s\n", a.file.c_str());
    return 1;
  }
  const auto profile = signal::preprocess(samples);

  const std::size_t dim = a.dim ? a.dim : 3;
  if (a.adaptive) {
    core::AdaptiveConfig cfg;
    cfg.base.target_dim = dim;
    cfg.base.wavelength = a.wavelength;
    cfg.base.method = a.method;
    cfg.base.side_hint = a.hint;
    const auto fix = core::locate_adaptive(profile, cfg);
    std::printf("position: %.4f %.4f %.4f\n", fix.position[0],
                fix.position[1], fix.position[2]);
    std::printf("d_ref: %.4f m\n", fix.reference_distance);
    std::printf("adaptive: range %.2f m, interval %.2f m, %zu/%zu "
                "candidates used\n",
                fix.best_range, fix.best_interval, fix.selected.size(),
                fix.candidates.size());
    return 0;
  }

  core::LocalizerConfig cfg;
  cfg.target_dim = dim;
  cfg.wavelength = a.wavelength;
  cfg.pair_interval = a.interval;
  cfg.method = a.method;
  cfg.side_hint = a.hint;
  const auto fix = core::LinearLocalizer(cfg).locate(profile);
  std::printf("position: %.4f %.4f %.4f\n", fix.position[0], fix.position[1],
              fix.position[2]);
  std::printf("d_ref: %.4f m\n", fix.reference_distance);
  std::printf("equations: %zu, rank: %zu, mean residual: %.3e, "
              "condition: %.1f%s\n",
              fix.equations, fix.trajectory_rank, fix.mean_residual,
              fix.condition,
              fix.perpendicular_recovered ? ", perpendicular recovered" : "");
  return 0;
}

int cmd_calibrate(const Args& a) {
  if (!a.physical_center) usage("calibrate requires --physical-center");
  const auto samples = io::read_samples_csv_file(a.file);
  core::RobustCalibrationConfig cfg;
  cfg.adaptive.base.wavelength = a.wavelength;
  cfg.adaptive.base.method = a.method;
  const auto report =
      core::calibrate_antenna_robust(samples, *a.physical_center, cfg);

  if (a.json) {
    std::printf("%s\n", io::report_json(report).c_str());
    return report.ok() ? 0 : 1;
  }

  const auto& diag = report.diagnostics;
  std::printf("status: %s\n", core::calibration_status_name(report.status));
  if (!diag.sanitize.clean()) {
    std::printf("sanitize: %zu/%zu kept (%zu non-finite, %zu duplicate, "
                "%zu reordered, %zu rewrapped)\n",
                diag.sanitize.kept, diag.sanitize.input,
                diag.sanitize.dropped_nonfinite,
                diag.sanitize.dropped_duplicate, diag.sanitize.reordered,
                diag.sanitize.rewrapped);
  }
  if (!report.ok()) {
    std::printf("calibration failed: %s\n",
                diag.message.empty() ? "(no detail)" : diag.message.c_str());
    return 1;
  }
  const auto& cal = report.center;
  std::printf("estimated center: %.4f %.4f %.4f\n", cal.estimated_center[0],
              cal.estimated_center[1], cal.estimated_center[2]);
  std::printf("displacement: %.4f %.4f %.4f  (%.2f cm)\n",
              cal.displacement[0], cal.displacement[1], cal.displacement[2],
              cal.displacement.norm() * 100.0);
  std::printf("phase offset: %.4f rad\n", report.phase_offset);
  std::printf("diagnostics: condition %.1f, inliers %.0f%%, rms residual "
              "%.3e, sigma %.4f m\n",
              diag.condition, diag.inlier_fraction * 100.0,
              diag.rms_residual, diag.position_sigma);
  if (!diag.message.empty()) {
    std::printf("notes: %s\n", diag.message.c_str());
  }
  return 0;
}

int cmd_offset(const Args& a) {
  if (!a.center) usage("offset requires --center");
  const auto samples = io::read_samples_csv_file(a.file);
  const double offset =
      core::calibrate_phase_offset(samples, *a.center, a.wavelength);
  std::printf("phase offset: %.4f rad\n", offset);
  return 0;
}

int cmd_simulate(const Args& a) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({0.0, a.depth, 0.0})
                      .add_tag()
                      .seed(a.seed)
                      .build();
  std::vector<sim::PhaseSample> samples;
  if (a.shape == "rig") {
    sim::ThreeLineRig rig;
    rig.x_min = -0.55;
    rig.x_max = 0.55;
    samples = scenario.sweep(0, 0, rig.build());
  } else if (a.shape == "line") {
    samples = scenario.sweep(
        0, 0, sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1));
  } else {
    samples = scenario.sweep(
        0, 0,
        sim::CircularTrajectory({0.0, 0.0, 0.0}, 0.2, {0.0, 0.0, 1.0}, 0.8));
  }
  io::write_samples_csv_file(a.file, samples);
  const auto& antenna = scenario.antennas()[0];
  std::printf("wrote %zu samples to %s\n", samples.size(), a.file.c_str());
  std::printf("hidden truth: physical center (0, %.2f, 0), phase center "
              "(%.4f, %.4f, %.4f)\n",
              a.depth, antenna.phase_center()[0], antenna.phase_center()[1],
              antenna.phase_center()[2]);
  return 0;
}

int cmd_track(const Args& a) {
  if (!a.center) usage("track requires --center");
  const auto samples = io::read_samples_csv_file(a.file);
  core::TrackerConfig cfg;
  cfg.antenna_phase_center = *a.center;
  cfg.belt_direction = a.direction;
  cfg.belt_speed = a.speed;
  cfg.window = a.window;
  cfg.hop = a.hop;
  cfg.localizer.target_dim = a.dim ? a.dim : 2;
  cfg.localizer.wavelength = a.wavelength;
  cfg.localizer.side_hint = a.hint;
  core::ConveyorTracker tracker(cfg);
  std::printf("t,x,y,z,sigma,valid\n");
  for (const auto& s : samples) {
    const auto fix = tracker.push(s);
    if (!fix) continue;
    std::printf("%.3f,%.4f,%.4f,%.4f,%.4f,%d\n", fix->t, fix->position[0],
                fix->position[1], fix->position[2], fix->sigma,
                fix->valid ? 1 : 0);
  }
  std::fprintf(stderr, "%zu fixes emitted, %zu samples left in window\n",
               tracker.fixes().size(), tracker.pending());
  return tracker.fixes().empty() ? 1 : 0;
}

int cmd_decompose(const Args& a) {
  // The offsets CSV is a plain matrix: one row per antenna, one comma-
  // separated offset per tag; blank cells mark uncalibrated pairs.
  std::ifstream f(a.file);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s\n", a.file.c_str());
    return 1;
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      row.push_back(field.empty() || field == "nan"
                        ? core::kMissingOffset
                        : std::stod(field));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: no rows in %s\n", a.file.c_str());
    return 1;
  }
  linalg::Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) {
      std::fprintf(stderr, "error: ragged matrix (row %zu)\n", r + 1);
      return 1;
    }
    for (std::size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  const auto d = core::decompose_offsets(m);
  for (std::size_t i = 0; i < d.antenna_offsets.size(); ++i) {
    std::printf("antenna %zu offset: %.4f rad\n", i, d.antenna_offsets[i]);
  }
  for (std::size_t i = 0; i < d.tag_offsets.size(); ++i) {
    std::printf("tag %zu offset: %.4f rad\n", i, d.tag_offsets[i]);
  }
  std::printf("rms residual: %.4f rad (gauge: tag 0 = 0)\n", d.rms_residual);
  return 0;
}

int cmd_batch(const Args& a) {
  engine::SimulatedBatchSpec spec;
  spec.jobs = a.jobs;
  spec.base_seed = a.seed;
  spec.antenna_depth = a.depth;
  const auto jobs = engine::make_simulated_batch(spec);

  engine::BatchEngine eng(engine::BatchEngineOptions{a.threads});
  const auto result = eng.run(jobs);
  const auto& s = result.stats;

  std::printf("jobs: %zu on %zu threads\n", s.jobs, s.threads);
  std::printf("wall: %.3f s, throughput: %.1f jobs/s\n", s.wall_s,
              s.throughput_jps);
  std::printf("latency [ms]: mean %.1f, p50 %.1f, p95 %.1f, p99 %.1f\n",
              s.latency_mean_s * 1e3, s.latency_p50_s * 1e3,
              s.latency_p95_s * 1e3, s.latency_p99_s * 1e3);
  std::printf("steals: %zu, exceptions contained: %zu\n", s.steals,
              s.exceptions);
  std::printf("status histogram:\n");
  for (std::size_t i = 0; i < engine::kStatusCount; ++i) {
    if (s.status_histogram[i] == 0) continue;
    std::printf("  %-20s %zu\n",
                core::calibration_status_name(
                    static_cast<core::CalibrationStatus>(i)),
                s.status_histogram[i]);
  }
  if (a.json) {
    for (const auto& jr : result.results) {
      std::printf("%s\n", io::report_json(jr.report).c_str());
    }
  }
  return result.succeeded() == s.jobs ? 0 : 1;
}

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

serve::ServiceConfig make_service_config(const Args& a) {
  serve::ServiceConfig cfg;
  cfg.threads = a.threads;
  cfg.max_inflight_per_session = a.max_inflight;
  cfg.idle_ttl_ticks = a.ttl_ticks;
  cfg.request_timeout_s = a.timeout_s;
  cfg.reject_when_busy = a.reject_busy;
  if (a.center) cfg.implicit_center = *a.center;
  return cfg;
}

int cmd_serve(const Args& a) {
  const serve::ServiceConfig cfg = make_service_config(a);
  if (a.tcp_port < 0 && a.unix_path.empty()) {
    const auto responses = serve::run_stdio(cfg, std::cin, std::cout);
    std::fprintf(stderr, "serve: %llu response(s)\n",
                 static_cast<unsigned long long>(responses));
    return 0;
  }
  serve::ServerConfig server_cfg;
  server_cfg.service = cfg;
  server_cfg.unix_path = a.unix_path;
  server_cfg.tcp_port = a.tcp_port;
  server_cfg.shards = a.shards;
  serve::SocketServer server(server_cfg);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!a.unix_path.empty()) {
    std::printf("listening on unix:%s\n", a.unix_path.c_str());
  } else {
    std::printf("listening on %s:%d\n", server_cfg.tcp_host.c_str(),
                server.port());
  }
  std::fflush(stdout);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::fprintf(stderr, "serve: %llu connection(s) served\n",
               static_cast<unsigned long long>(server.connections_served()));
  return 0;
}

// Turn instrumentation on before the command runs (only the layers that
// were requested), and flush the collected data to the requested files
// afterwards. Returns false if an output file could not be written.
bool write_observability(const Args& a) {
  bool ok = true;
  auto write_file = [&](const std::string& path, const std::string& body) {
    std::ofstream f(path);
    f << body << '\n';
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      ok = false;
    }
  };
  if (!a.metrics_path.empty()) {
    write_file(a.metrics_path, obs::MetricsRegistry::instance().snapshot_json());
  }
  if (!a.trace_path.empty()) {
    write_file(a.trace_path, obs::trace_json());
    if (const auto dropped = obs::trace_dropped()) {
      std::fprintf(stderr,
                   "warning: trace ring wrapped, %llu oldest spans dropped\n",
                   static_cast<unsigned long long>(dropped));
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (!a.metrics_path.empty()) obs::set_metrics_enabled(true);
    if (!a.trace_path.empty()) obs::set_tracing_enabled(true);
    int rc = -1;
    if (a.command == "locate") rc = cmd_locate(a);
    else if (a.command == "calibrate") rc = cmd_calibrate(a);
    else if (a.command == "offset") rc = cmd_offset(a);
    else if (a.command == "simulate") rc = cmd_simulate(a);
    else if (a.command == "track") rc = cmd_track(a);
    else if (a.command == "decompose") rc = cmd_decompose(a);
    else if (a.command == "batch") rc = cmd_batch(a);
    else if (a.command == "serve") rc = cmd_serve(a);
    else usage("unknown command");
    if (!write_observability(a) && rc == 0) rc = 1;
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
