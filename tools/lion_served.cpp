// lion_served — thin standalone daemon around serve::SocketServer.
//
//   lion_served [--tcp PORT] [--unix PATH] [--threads N] [--center x,y,z]
//               [--shards N] [--queue-limit LINES] [--poller epoll|poll]
//               [--backlog N] [--reuseport]
//               [--max-inflight N] [--ttl TICKS] [--timeout S]
//               [--reject-busy] [--max-conns N] [--port-file PATH]
//               [--journal-dir DIR] [--journal-fsync N]
//               [--drain-timeout S]
//               [--telemetry-port PORT] [--telemetry-port-file PATH]
//               [--event-log PATH] [--trace-out PATH] [--slow-request S]
//
// Defaults to an ephemeral TCP port on 127.0.0.1 and announces the bound
// address on stdout as its first line:
//
//   lion_served listening on 127.0.0.1:43215
//
// so a supervisor (or the CI smoke job) can scrape the port; --port-file
// additionally writes the bare port number to a file (atomically, via
// temp file + rename, so a watcher never reads a partial write) for
// race-free pickup.
//
// With --journal-dir, sessions are durable: mutations are journaled under
// DIR and a restarted daemon restores any session a client re-declares
// (see serve/journal.hpp for the recovery model). On SIGINT/SIGTERM the
// daemon drains every connection's in-flight solves, bounded by
// --drain-timeout seconds (default 10; 0 waits forever); an unclean drain
// exits 1 via _Exit so wedged handler threads cannot hang teardown.
//
// Observability plane (all observation-only; the response byte stream is
// unchanged whether these are on or off):
//   --telemetry-port PORT       HTTP GET /metrics + /healthz on its own
//                               thread (0 = ephemeral; the bound port is
//                               announced on stdout and written to
//                               --telemetry-port-file when given).
//                               Enables the metrics registry.
//   --event-log PATH            append structured lion.evlog.v1 JSON lines
//                               (slow requests, journal degradation,
//                               restores, evictions, drain) to PATH.
//   --slow-request S            threshold for slow_request events
//                               (default 1.0 when --event-log is set).
//   --trace-out PATH            enable span tracing and dump the Chrome
//                               trace ring to PATH at clean shutdown.

#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <chrono>

#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: lion_served [--tcp PORT] [--unix PATH] [--threads N]\n"
               "                   [--shards N] [--queue-limit LINES]\n"
               "                   [--poller epoll|poll] [--backlog N]\n"
               "                   [--reuseport]\n"
               "                   [--center x,y,z] [--max-inflight N]\n"
               "                   [--ttl TICKS] [--timeout S]\n"
               "                   [--reject-busy] [--max-conns N]\n"
               "                   [--port-file PATH]\n"
               "                   [--journal-dir DIR] [--journal-fsync N]\n"
               "                   [--drain-timeout S]\n"
               "                   [--telemetry-port PORT]\n"
               "                   [--telemetry-port-file PATH]\n"
               "                   [--event-log PATH] [--slow-request S]\n"
               "                   [--trace-out PATH]\n");
  std::exit(2);
}

// Numeric flag values come straight from argv: a malformed value must hit
// the usage() path, never escape as an uncaught std::sto* exception.
std::uint64_t parse_uint(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size() || value[0] == '-') {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    usage((flag + " expects a non-negative integer, got '" + value + "'")
              .c_str());
  }
}

double parse_real(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    usage((flag + " expects a number, got '" + value + "'").c_str());
  }
}

// Temp file + fsync + rename: a watcher polling the path either sees no
// file or a complete port number, never a partial write.
bool write_port_file_atomic(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", port);
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lion::serve::ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral by default
  std::string port_file;
  std::string journal_dir;
  std::size_t journal_fsync = 1024;
  double drain_timeout_s = 10.0;
  int telemetry_port = -1;  // < 0: telemetry endpoint off
  std::string telemetry_port_file;
  std::string event_log_path;
  std::string trace_out_path;
  double slow_request_s = -1.0;  // < 0: default (1.0 when event log on)

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--tcp") {
      const std::uint64_t port = parse_uint(flag, next());
      if (port > 65535) usage("--tcp expects a port in [0, 65535]");
      cfg.tcp_port = static_cast<int>(port);
    } else if (flag == "--unix") {
      cfg.unix_path = next();
      cfg.tcp_port = -1;
    } else if (flag == "--threads") {
      cfg.service.threads =
          static_cast<std::size_t>(parse_uint(flag, next()));
    } else if (flag == "--shards") {
      cfg.shards = static_cast<std::size_t>(parse_uint(flag, next()));
      if (cfg.shards == 0) usage("--shards must be >= 1");
    } else if (flag == "--queue-limit") {
      cfg.shard_queue_limit =
          static_cast<std::size_t>(parse_uint(flag, next()));
      if (cfg.shard_queue_limit == 0) usage("--queue-limit must be >= 1");
    } else if (flag == "--poller") {
      const std::string backend = next();
      if (backend == "poll") {
        cfg.force_poll = true;
      } else if (backend != "epoll") {
        usage("--poller expects 'epoll' or 'poll'");
      }
    } else if (flag == "--backlog") {
      const std::uint64_t backlog = parse_uint(flag, next());
      if (backlog == 0 || backlog > 65535) {
        usage("--backlog expects an integer in [1, 65535]");
      }
      cfg.backlog = static_cast<int>(backlog);
    } else if (flag == "--reuseport") {
      cfg.reuseport = true;
    } else if (flag == "--center") {
      lion::linalg::Vec3 v;
      if (std::sscanf(next().c_str(), "%lf,%lf,%lf", &v[0], &v[1], &v[2]) !=
          3) {
        usage("--center expects x,y,z");
      }
      cfg.service.implicit_center = v;
    } else if (flag == "--max-inflight") {
      cfg.service.max_inflight_per_session =
          static_cast<std::size_t>(parse_uint(flag, next()));
    } else if (flag == "--ttl") {
      cfg.service.idle_ttl_ticks = parse_uint(flag, next());
    } else if (flag == "--timeout") {
      cfg.service.request_timeout_s = parse_real(flag, next());
    } else if (flag == "--reject-busy") {
      cfg.service.reject_when_busy = true;
    } else if (flag == "--max-conns") {
      cfg.max_connections =
          static_cast<std::size_t>(parse_uint(flag, next()));
    } else if (flag == "--port-file") {
      port_file = next();
    } else if (flag == "--journal-dir") {
      journal_dir = next();
    } else if (flag == "--journal-fsync") {
      journal_fsync = static_cast<std::size_t>(parse_uint(flag, next()));
      if (journal_fsync == 0) usage("--journal-fsync must be >= 1");
    } else if (flag == "--drain-timeout") {
      drain_timeout_s = parse_real(flag, next());
      if (drain_timeout_s < 0.0) usage("--drain-timeout must be >= 0");
    } else if (flag == "--telemetry-port") {
      const std::uint64_t port = parse_uint(flag, next());
      if (port > 65535) usage("--telemetry-port expects a port in [0, 65535]");
      telemetry_port = static_cast<int>(port);
    } else if (flag == "--telemetry-port-file") {
      telemetry_port_file = next();
    } else if (flag == "--event-log") {
      event_log_path = next();
    } else if (flag == "--slow-request") {
      slow_request_s = parse_real(flag, next());
      if (slow_request_s < 0.0) usage("--slow-request must be >= 0");
    } else if (flag == "--trace-out") {
      trace_out_path = next();
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }

  // Observability toggles come first so even startup (journal restore
  // scans, first connections) is instrumented.
  if (telemetry_port >= 0) lion::obs::set_metrics_enabled(true);
  if (!trace_out_path.empty()) lion::obs::set_tracing_enabled(true);

  std::unique_ptr<lion::obs::EventLog> events;
  std::FILE* event_sink = nullptr;
  if (!event_log_path.empty()) {
    events = std::make_unique<lion::obs::EventLog>();
    event_sink = std::fopen(event_log_path.c_str(), "a");
    if (event_sink == nullptr) {
      std::fprintf(stderr, "error: cannot open event log %s\n",
                   event_log_path.c_str());
      return 1;
    }
    events->set_sink(event_sink);
    cfg.service.events = events.get();
    cfg.service.slow_request_s = slow_request_s < 0.0 ? 1.0 : slow_request_s;
  } else if (slow_request_s >= 0.0) {
    // Threshold without a log still feeds the in-memory ring of an
    // attached EventLog; without any log it is inert, so create one to
    // make the flag meaningful for `!healthz`-style debugging.
    events = std::make_unique<lion::obs::EventLog>();
    cfg.service.events = events.get();
    cfg.service.slow_request_s = slow_request_s;
  }

  std::unique_ptr<lion::serve::JournalStore> journal;
  if (!journal_dir.empty()) {
    lion::serve::JournalStoreConfig jcfg;
    jcfg.dir = journal_dir;
    jcfg.fsync_every = journal_fsync;
    journal = std::make_unique<lion::serve::JournalStore>(jcfg);
    if (!journal->ok()) {
      std::fprintf(stderr, "error: journal: %s\n", journal->error().c_str());
      return 1;
    }
    cfg.service.journal = journal.get();
    if (journal->recovered_at_start() > 0) {
      std::fprintf(stderr,
                   "lion_served: %llu journaled session(s) await re-declare\n",
                   static_cast<unsigned long long>(
                       journal->recovered_at_start()));
    }
  }

  lion::serve::SocketServer server(cfg);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!cfg.unix_path.empty()) {
    std::printf("lion_served listening on unix:%s\n", cfg.unix_path.c_str());
  } else {
    std::printf("lion_served listening on %s:%d\n", cfg.tcp_host.c_str(),
                server.port());
  }
  std::fflush(stdout);
  if (cfg.shards > 1) {
    std::fprintf(stderr, "lion_served: %llu ingest shard(s), %s poller\n",
                 static_cast<unsigned long long>(cfg.shards),
                 server.poller_name().c_str());
  }
  if (!port_file.empty() &&
      !write_port_file_atomic(port_file, server.port())) {
    std::fprintf(stderr, "error: cannot write port file %s\n",
                 port_file.c_str());
    server.stop();
    return 1;
  }

  // Scrape endpoint: bind failure degrades (the daemon keeps serving and
  // says so on stderr) rather than killing a data-plane-healthy process.
  std::unique_ptr<lion::serve::TelemetryServer> telemetry;
  if (telemetry_port >= 0) {
    lion::serve::TelemetryConfig tcfg;
    tcfg.port = telemetry_port;
    tcfg.collect = [&server] { return server.telemetry(); };
    tcfg.shard_gauges = [&server] { return server.shard_gauges(); };
    tcfg.connections = [&server] { return server.live_connections(); };
    tcfg.events = events.get();
    telemetry = std::make_unique<lion::serve::TelemetryServer>(tcfg);
    std::string terror;
    if (telemetry->start(terror)) {
      std::printf("lion_served telemetry on 127.0.0.1:%d\n",
                  telemetry->port());
      if (!telemetry_port_file.empty() &&
          !write_port_file_atomic(telemetry_port_file, telemetry->port())) {
        std::fprintf(stderr, "warning: cannot write telemetry port file %s\n",
                     telemetry_port_file.c_str());
      }
    } else {
      std::fprintf(stderr, "warning: telemetry disabled: %s\n",
                   terror.c_str());
      telemetry.reset();
    }
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Telemetry first: its collect() walks the server's live connections,
  // so it must be quiesced before the drain tears them down.
  if (telemetry) telemetry->stop();
  const bool clean =
      drain_timeout_s > 0.0 ? server.stop_with_timeout(drain_timeout_s)
                            : (server.stop(), true);
  std::fprintf(stderr, "lion_served: %llu connection(s) served\n",
               static_cast<unsigned long long>(server.connections_served()));
  if (!trace_out_path.empty()) {
    std::FILE* f = std::fopen(trace_out_path.c_str(), "w");
    if (f != nullptr) {
      const std::string json = lion::obs::trace_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: cannot write trace %s\n",
                   trace_out_path.c_str());
    }
  }
  if (event_sink != nullptr) {
    events->set_sink(nullptr);
    std::fclose(event_sink);
  }
  if (!clean) {
    // Straggler handler threads are detached and still running; normal
    // exit would hang (or race) in static destructors. Flush and leave.
    std::fprintf(stderr, "lion_served: drain timed out after %.1f s\n",
                 drain_timeout_s);
    std::fflush(nullptr);
    std::_Exit(1);
  }
  return 0;
}
