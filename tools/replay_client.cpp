// replay_client — load generator / smoke driver for the streaming service.
//
//   replay_client (--tcp host:port | --unix PATH) --file scan.csv
//                 [--sessions N] [--chunk BYTES] [--center x,y,z]
//                 [--id-prefix P] [--close]
//
// Replays a recorded scan CSV into a running lion_served as N independent
// calibrate sessions, in two phases that make it a *resuming* client
// against a journaled server:
//
//   1. all `!session` declares, then a `!stats` barrier — by the time the
//      stats response arrives, every declare was processed and any
//      lion.restore.v1 acks (journaled sessions adopted after a server
//      restart) are in hand;
//   2. per session, the rows the ack's cursor says the server has not
//      journaled yet (all of them for a fresh session), routed via
//      `@<id>` lines, then a final `!flush` (or `!close` with --close,
//      which also deletes the server-side journal).
//
// The payload is written in --chunk-byte pieces (default 1024) to
// exercise the server's chunk reassembly exactly the way a real reader
// gateway's socket writes would. A reader thread concurrently consumes
// responses.
//
// Exit status is the contract the CI smoke and soak jobs rely on: 0 iff
// the server answered with exactly one lion.report.v1 per session and
// zero lion.error.v1 lines; on failure stderr names the first session
// that did not complete. Throughput (read records ingested per second,
// wall-clock from first byte written to last response read) is printed
// to stdout, along with client-side end-to-end flush latency
// percentiles: reports come back in flush order, so the k-th report is
// paired with the instant the k-th session's `!flush` finished hitting
// the wire, and p50/p95/p99 of those gaps (nearest-rank) are reported.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: replay_client (--tcp host:port | --unix PATH)\n"
               "                     --file scan.csv [--sessions N]\n"
               "                     [--chunk BYTES] [--center x,y,z]\n"
               "                     [--id-prefix P] [--close]\n");
  std::exit(2);
}

// Pull the integer after `"key":` out of a flat one-line JSON response.
std::size_t json_uint_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::atoll(line.c_str() + pos + needle.size()));
}

std::string json_string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

int connect_tcp(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) usage("--tcp expects host:port");
  const std::string host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
    std::fprintf(stderr, "error: cannot resolve %s\n", spec.c_str());
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) usage("unix path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Nearest-rank percentile over a sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

int main(int argc, char** argv) {
  std::string tcp_spec;
  std::string unix_path;
  std::string file;
  std::string center = "0,0.8,0";
  std::string id_prefix = "replay";
  std::size_t sessions = 1;
  std::size_t chunk = 1024;
  bool close_sessions = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--tcp") {
      tcp_spec = next();
    } else if (flag == "--unix") {
      unix_path = next();
    } else if (flag == "--file") {
      file = next();
    } else if (flag == "--sessions") {
      sessions = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--chunk") {
      chunk = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--center") {
      center = next();
    } else if (flag == "--id-prefix") {
      id_prefix = next();
    } else if (flag == "--close") {
      close_sessions = true;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (file.empty()) usage("--file is required");
  if (tcp_spec.empty() && unix_path.empty()) usage("need --tcp or --unix");
  if (sessions == 0 || chunk == 0) usage("--sessions/--chunk must be > 0");

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
    return 1;
  }
  std::vector<std::string> rows;
  std::size_t data_rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.find_first_of("0123456789+-.") == 0) ++data_rows;
    rows.push_back(std::move(line));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: no rows in %s\n", file.c_str());
    return 1;
  }

  const int fd = !unix_path.empty() ? connect_unix(unix_path)
                                    : connect_tcp(tcp_spec);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect\n");
    return 1;
  }

  // Restore cursors (journal records / flushes per session), filled by
  // the reader from lion.restore.v1 acks during the declare phase.
  struct RestoreAck {
    std::size_t records = 0;
    std::size_t flushes = 0;
  };
  std::mutex ack_mu;
  std::condition_variable ack_cv;
  std::map<std::string, RestoreAck> acks;
  bool barrier_seen = false;

  std::size_t reports = 0;
  std::size_t errors = 0;
  std::size_t response_lines = 0;
  // Arrival stamp of the k-th report (reports return in flush order), for
  // the end-to-end flush-latency percentiles printed on exit.
  std::vector<std::chrono::steady_clock::time_point> report_times;
  std::thread reader([fd, &reports, &errors, &response_lines, &report_times,
                      &ack_mu, &ack_cv, &acks, &barrier_seen] {
    std::string partial;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      partial.append(buf, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      for (std::size_t nl = partial.find('\n', pos);
           nl != std::string::npos; nl = partial.find('\n', pos)) {
        const std::string line = partial.substr(pos, nl - pos);
        pos = nl + 1;
        ++response_lines;
        if (line.find("\"schema\":\"lion.report.v1\"") != std::string::npos) {
          ++reports;
          report_times.push_back(std::chrono::steady_clock::now());
        } else if (line.find("\"schema\":\"lion.error.v1\"") !=
                   std::string::npos) {
          ++errors;
          std::fprintf(stderr, "server error: %s\n", line.c_str());
        } else if (line.find("\"schema\":\"lion.restore.v1\"") !=
                   std::string::npos) {
          RestoreAck ack;
          ack.records = json_uint_field(line, "records");
          ack.flushes = json_uint_field(line, "flushes");
          std::lock_guard<std::mutex> lock(ack_mu);
          acks[json_string_field(line, "session")] = ack;
        } else if (line.find("\"schema\":\"lion.stats.v1\"") !=
                   std::string::npos) {
          {
            std::lock_guard<std::mutex> lock(ack_mu);
            barrier_seen = true;
          }
          ack_cv.notify_all();
        }
      }
      partial.erase(0, pos);
    }
    // EOF also releases a declare phase still waiting on the barrier.
    {
      std::lock_guard<std::mutex> lock(ack_mu);
      barrier_seen = true;
    }
    ack_cv.notify_all();
  });

  const auto start = std::chrono::steady_clock::now();

  // Phase 1: declares + a !stats barrier. The stats response is sequenced
  // after every declare, so once it arrives all restore acks are in.
  std::string declares;
  for (std::size_t s = 0; s < sessions; ++s) {
    declares +=
        "!session " + id_prefix + std::to_string(s) + " center=" + center +
        "\n";
  }
  declares += "!stats\n";
  bool sent = send_all(fd, declares.data(), declares.size());
  if (sent) {
    std::unique_lock<std::mutex> lock(ack_mu);
    ack_cv.wait_for(lock, std::chrono::seconds(30),
                    [&barrier_seen] { return barrier_seen; });
  }

  // Phase 2: per session, only the rows past the journal's cursor
  // (records = declare + rows journaled + flush records), then the
  // terminal control line. session_starts[s] = offset of session s's
  // first payload byte, so a mid-send failure can be pinned.
  std::string payload;
  std::vector<std::size_t> session_starts;
  std::vector<std::size_t> session_ends;  ///< offset past each !flush line
  std::size_t resumed = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::string id = id_prefix + std::to_string(s);
    std::size_t first_row = 0;
    {
      std::lock_guard<std::mutex> lock(ack_mu);
      const auto it = acks.find(id);
      if (it != acks.end()) {
        const std::size_t consumed = 1 + it->second.flushes;
        const std::size_t rows_journaled =
            it->second.records > consumed ? it->second.records - consumed : 0;
        first_row = std::min(rows_journaled, rows.size());
        ++resumed;
      }
    }
    session_starts.push_back(payload.size());
    for (std::size_t r = first_row; r < rows.size(); ++r) {
      payload += "@" + id + " " + rows[r] + "\n";
    }
    payload += (close_sessions ? "!close " : "!flush ") + id + "\n";
    session_ends.push_back(payload.size());
  }

  // flush_sent[s] is stamped the moment the chunk containing session s's
  // terminal control line goes onto the wire.
  std::vector<std::chrono::steady_clock::time_point> flush_sent(sessions);
  std::size_t next_unsent_flush = 0;
  std::size_t failed_offset = 0;
  for (std::size_t off = 0; off < payload.size() && sent; off += chunk) {
    const std::size_t n = std::min(chunk, payload.size() - off);
    sent = send_all(fd, payload.data() + off, n);
    if (!sent) {
      failed_offset = off;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    while (next_unsent_flush < sessions &&
           session_ends[next_unsent_flush] <= off + n) {
      flush_sent[next_unsent_flush++] = now;
    }
  }
  ::shutdown(fd, SHUT_WR);  // EOF -> server finish()es and closes
  reader.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ::close(fd);

  const std::size_t total_reads = data_rows * sessions;
  std::printf("replay: %zu sessions x %zu reads in %.3f s "
              "(%.0f reads/s), %zu responses (%zu reports, %zu errors, "
              "%zu resumed)\n",
              sessions, data_rows, wall,
              wall > 0 ? static_cast<double>(total_reads) / wall : 0.0,
              response_lines, reports, errors, resumed);
  // Client-observed flush latency: k-th report (flush order) minus the
  // wire time of the k-th flush line. A report that arrives before its
  // stamp (can't happen with one writer, but be safe) clamps to 0.
  std::vector<double> latencies;
  const std::size_t paired = std::min(report_times.size(), next_unsent_flush);
  for (std::size_t s = 0; s < paired; ++s) {
    const double d =
        std::chrono::duration<double>(report_times[s] - flush_sent[s]).count();
    latencies.push_back(d > 0.0 ? d : 0.0);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    std::printf("flush latency: p50=%.3f ms p95=%.3f ms p99=%.3f ms "
                "(%zu flushes)\n",
                percentile(latencies, 0.50) * 1e3,
                percentile(latencies, 0.95) * 1e3,
                percentile(latencies, 0.99) * 1e3, latencies.size());
  }
  if (!sent) {
    // Pin the drop to the session whose bytes were on the wire: the last
    // session whose payload starts at or before the failing offset.
    std::size_t failed_session = 0;
    for (std::size_t s = 0; s < session_starts.size(); ++s) {
      if (session_starts[s] <= failed_offset) failed_session = s;
    }
    std::fprintf(stderr,
                 "error: connection dropped mid-send in session '%s%zu' "
                 "(offset %zu of %zu bytes)\n",
                 id_prefix.c_str(), failed_session, failed_offset,
                 payload.size());
    return 1;
  }
  if (reports != sessions || errors != 0) {
    // Reports come back in flush (= session) order, so the first session
    // without one is exactly session #reports.
    if (reports < sessions) {
      std::fprintf(stderr,
                   "error: expected %zu reports / 0 errors, got %zu/%zu; "
                   "first incomplete session '%s%zu'\n",
                   sessions, reports, errors, id_prefix.c_str(), reports);
    } else {
      std::fprintf(stderr, "error: expected %zu reports / 0 errors, "
                   "got %zu/%zu\n", sessions, reports, errors);
    }
    return 1;
  }
  return 0;
}
