// replay_client — load generator / smoke driver for the streaming service.
//
//   replay_client (--tcp host:port | --unix PATH) --file scan.csv
//                 [--sessions N] [--chunk BYTES] [--center x,y,z]
//                 [--id-prefix P] [--close] [--connect-timeout S]
//                 [--fleet N] [--idle N] [--fleet-hold S]
//
// Two modes over the same wire protocol:
//
// Single-connection replay (default). Replays a recorded scan CSV into a
// running lion_served as N independent calibrate sessions, in two phases
// that make it a *resuming* client against a journaled server:
//
//   1. all `!session` declares, then a `!stats` barrier — by the time the
//      stats response arrives, every declare was processed and any
//      lion.restore.v1 acks (journaled sessions adopted after a server
//      restart) are in hand;
//   2. per session, the rows the ack's cursor says the server has not
//      journaled yet (all of them for a fresh session), routed via
//      `@<id>` lines, then a final `!flush` (or `!close` with --close,
//      which also deletes the server-side journal).
//
// The payload is written in --chunk-byte pieces (default 1024) to
// exercise the server's chunk reassembly exactly the way a real reader
// gateway's socket writes would. A reader thread concurrently consumes
// responses.
//
// Exit status is the contract the CI smoke and soak jobs rely on: 0 iff
// the server answered with exactly one lion.report.v1 per session and
// zero lion.error.v1 lines; on failure stderr names the first session
// that did not complete. Throughput (read records ingested per second,
// wall-clock from first byte written to last response read) is printed
// to stdout, along with client-side end-to-end flush latency
// percentiles: reports come back in flush order, so the k-th report is
// paired with the instant the k-th session's `!flush` finished hitting
// the wire, and p50/p95/p99 of those gaps (nearest-rank) are reported.
//
// Fleet mode (--fleet N and/or --idle N). One event loop (epoll on
// Linux, poll elsewhere) drives N *active* connections plus --idle
// passive ones that connect and hold without sending a byte (they model
// the quiet majority of a reader-gateway fleet and pin the server's fd
// table). Each active connection declares --sessions sessions
// (`<prefix>-c<conn>-s<k>`), streams every CSV row into each via `@id`
// lines, then sends a `!stats` barrier and half-closes. The stats
// response fans out per ingest shard, so a connection is *complete* when
// it has read as many lion.stats.v1 lines as the server's `"shards"`
// field announces — at that instant every row it sent has been ingested
// by its owning shard. No `!flush` is sent: fleet mode measures the
// ingest plane, not the solver.
//
// Fleet mode prints a human summary plus one machine-readable line:
//
//   lion.fleet.v1 {"fleet":N,"idle":M,...,"reads_per_s":R,...}
//
// and exits 0 iff every connection connected (within --connect-timeout,
// failing fast with a named connect_timeout error), every active
// connection completed its barrier, and zero lion.error.v1 lines came
// back. --fleet-hold keeps the idle fleet connected for S extra seconds
// after the active traffic drains, so a harness can sample the server's
// steady-state fd/RSS footprint under the full connection count.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: replay_client (--tcp host:port | --unix PATH)\n"
               "                     --file scan.csv [--sessions N]\n"
               "                     [--chunk BYTES] [--center x,y,z]\n"
               "                     [--id-prefix P] [--close]\n"
               "                     [--connect-timeout S]\n"
               "                     [--fleet N] [--idle N] [--fleet-hold S]\n");
  std::exit(2);
}

// Pull the integer after `"key":` out of a flat one-line JSON response.
std::size_t json_uint_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::atoll(line.c_str() + pos + needle.size()));
}

std::string json_string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

// Resolved listener address, shared by every connection of a fleet.
struct Target {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  int family = AF_UNSPEC;
  std::string display;  ///< for error messages
};

bool resolve_target(const std::string& tcp_spec, const std::string& unix_path,
                    Target& out) {
  if (!unix_path.empty()) {
    auto* un = reinterpret_cast<sockaddr_un*>(&out.addr);
    un->sun_family = AF_UNIX;
    if (unix_path.size() >= sizeof(un->sun_path)) usage("unix path too long");
    std::strncpy(un->sun_path, unix_path.c_str(), sizeof(un->sun_path) - 1);
    out.addr_len = sizeof(sockaddr_un);
    out.family = AF_UNIX;
    out.display = "unix:" + unix_path;
    return true;
  }
  const std::size_t colon = tcp_spec.rfind(':');
  if (colon == std::string::npos) usage("--tcp expects host:port");
  const std::string host = tcp_spec.substr(0, colon);
  const std::string port = tcp_spec.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
    std::fprintf(stderr, "error: cannot resolve %s\n", tcp_spec.c_str());
    return false;
  }
  std::memcpy(&out.addr, res->ai_addr, res->ai_addrlen);
  out.addr_len = static_cast<socklen_t>(res->ai_addrlen);
  out.family = res->ai_family;
  out.display = tcp_spec;
  ::freeaddrinfo(res);
  return true;
}

// Blocking-style connect with an optional deadline: non-blocking
// connect(2) + poll(POLLOUT) + SO_ERROR. timeout_s < 0 blocks forever
// (legacy behavior); on a deadline the named failure is "connect_timeout"
// so callers and harnesses can tell a slow accept queue from a refusal.
int connect_with_timeout(const Target& target, double timeout_s,
                         std::string& error) {
  const int fd = ::socket(target.family, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::strerror(errno);
    return -1;
  }
  if (timeout_s < 0.0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&target.addr),
                  target.addr_len) != 0) {
      error = std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  set_nonblocking(fd, true);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&target.addr),
                target.addr_len) != 0) {
    if (errno != EINPROGRESS) {
      error = std::strerror(errno);
      ::close(fd);
      return -1;
    }
    pollfd p{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout_s * 1e3);
    int rc;
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      error = "connect_timeout";
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (rc < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      error = so_error != 0 ? std::strerror(so_error) : std::strerror(errno);
      ::close(fd);
      return -1;
    }
  }
  set_nonblocking(fd, false);
  return fd;
}

// Nearest-rank percentile over a sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

// ---------------------------------------------------------------------
// Fleet mode: one readiness loop over every connection. Self-contained
// (replay_client deliberately does not link the serve library) — epoll
// where available, poll(2) elsewhere.
// ---------------------------------------------------------------------

struct LoopEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class ClientLoop {
 public:
  ClientLoop() {
#ifdef __linux__
    ep_ = ::epoll_create1(0);
#endif
  }
  ~ClientLoop() {
#ifdef __linux__
    if (ep_ >= 0) ::close(ep_);
#endif
  }

  bool ok() const {
#ifdef __linux__
    return ep_ >= 0;
#else
    return true;
#endif
  }

  void add(int fd, bool rd, bool wr) {
#ifdef __linux__
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.fd = fd;
    ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev);
#else
    slots_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, pmask(rd, wr), 0});
#endif
  }

  void mod(int fd, bool rd, bool wr) {
#ifdef __linux__
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.fd = fd;
    ::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev);
#else
    const auto it = slots_.find(fd);
    if (it != slots_.end()) fds_[it->second].events = pmask(rd, wr);
#endif
  }

  void del(int fd) {
#ifdef __linux__
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
#else
    const auto it = slots_.find(fd);
    if (it == slots_.end()) return;
    const std::size_t slot = it->second;
    slots_.erase(it);
    if (slot + 1 != fds_.size()) {
      fds_[slot] = fds_.back();
      slots_[fds_[slot].fd] = slot;
    }
    fds_.pop_back();
#endif
  }

  void wait(std::vector<LoopEvent>& out, int timeout_ms) {
    out.clear();
#ifdef __linux__
    epoll_event evs[256];
    int n;
    do {
      n = ::epoll_wait(ep_, evs, 256, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      LoopEvent e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
#else
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      LoopEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
      if (static_cast<int>(out.size()) == n) break;
    }
#endif
  }

 private:
#ifdef __linux__
  static std::uint32_t mask(bool rd, bool wr) {
    std::uint32_t m = EPOLLRDHUP;
    if (rd) m |= EPOLLIN;
    if (wr) m |= EPOLLOUT;
    return m;
  }
  int ep_ = -1;
#else
  static short pmask(bool rd, bool wr) {
    short m = 0;
    if (rd) m |= POLLIN;
    if (wr) m |= POLLOUT;
    return m;
  }
  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> slots_;
#endif
};

struct FleetConn {
  enum State { kUnstarted, kConnecting, kLive, kDone, kFailed };
  int fd = -1;
  State state = kUnstarted;
  bool idle = false;
  std::string payload;  ///< empty for idle connections
  std::size_t sent = 0;
  bool wr_done = false;  ///< payload fully sent + write side half-closed
  std::string inbuf;
  std::size_t stats_seen = 0;
  bool barrier = false;  ///< all sent rows confirmed ingested
  std::chrono::steady_clock::time_point first_attempt{};
  std::chrono::steady_clock::time_point connected_at{};
  std::chrono::steady_clock::time_point first_write{};
  std::chrono::steady_clock::time_point barrier_at{};
};

struct FleetOptions {
  std::size_t fleet = 0;     ///< active connections
  std::size_t idle = 0;      ///< passive connections (hold, send nothing)
  std::size_t sessions = 1;  ///< sessions per active connection
  double connect_timeout_s = 30.0;
  double hold_s = 0.0;  ///< keep idle fleet up after active drain
  std::string center;
  std::string id_prefix;
};

int run_fleet(const Target& target, const FleetOptions& opt,
              const std::vector<std::string>& rows, std::size_t data_rows) {
  using clock = std::chrono::steady_clock;
  ClientLoop loop;
  if (!loop.ok()) {
    std::fprintf(stderr, "error: cannot create event loop\n");
    return 1;
  }

  // Idle connections first (indices [0, idle)), active after — the idle
  // fleet is in place before the measured traffic starts, matching the
  // "quiet majority + active minority" shape of a reader-gateway tier.
  const std::size_t total = opt.idle + opt.fleet;
  std::vector<FleetConn> conns(total);
  std::unordered_map<int, std::size_t> fd_index;
  for (std::size_t i = 0; i < total; ++i) conns[i].idle = i < opt.idle;

  std::size_t next_to_start = 0;
  std::size_t connecting = 0;
  std::deque<std::size_t> retry;  ///< transient connect EAGAIN (unix backlog)
  std::size_t done_active = 0;
  std::size_t failed_active = 0;
  std::size_t connect_failures = 0;
  std::size_t idle_live = 0;
  std::size_t idle_dropped = 0;
  std::size_t errors = 0;
  std::size_t error_lines_shown = 0;
  std::size_t shards_expected = 0;  ///< 0 until the first stats line lands
  bool any_write = false;
  clock::time_point t_first_write{};
  clock::time_point t_last_barrier{};

  auto build_payload = [&](std::size_t conn_index) {
    std::string p;
    std::vector<std::string> ids(opt.sessions);
    for (std::size_t s = 0; s < opt.sessions; ++s) {
      ids[s] = opt.id_prefix + "-c" + std::to_string(conn_index) + "-s" +
               std::to_string(s);
      p += "!session " + ids[s] + " center=" + opt.center + "\n";
    }
    for (std::size_t s = 0; s < opt.sessions; ++s) {
      for (const std::string& row : rows) {
        if (row[0] == '#') continue;
        p += "@" + ids[s] + " " + row + "\n";
      }
    }
    p += "!stats\n";
    return p;
  };

  auto fail_conn = [&](FleetConn& c, const char* why) {
    if (c.fd >= 0) {
      if (c.state == FleetConn::kConnecting || c.state == FleetConn::kLive) {
        loop.del(c.fd);
      }
      fd_index.erase(c.fd);
      ::close(c.fd);
      c.fd = -1;
    }
    if (c.state == FleetConn::kConnecting) {
      --connecting;
      ++connect_failures;
    } else if (c.state == FleetConn::kLive && c.idle) {
      ++idle_dropped;
    }
    // Every failed active connection settles here, whatever the stage —
    // the drain loop waits on done_active + failed_active reaching the
    // fleet size, so a connect-stage failure must count too.
    if (!c.idle) ++failed_active;
    if (error_lines_shown < 5) {
      std::fprintf(stderr, "error: connection #%zu %s: %s\n",
                   static_cast<std::size_t>(&c - conns.data()),
                   c.idle ? "(idle)" : "(active)", why);
      ++error_lines_shown;
    }
    c.state = FleetConn::kFailed;
  };

  auto on_connected = [&](FleetConn& c, bool newly_added) {
    c.connected_at = clock::now();
    c.state = FleetConn::kLive;
    if (c.idle) {
      ++idle_live;
      if (newly_added) {
        loop.add(c.fd, true, false);
      } else {
        loop.mod(c.fd, true, false);
      }
    } else if (newly_added) {
      loop.add(c.fd, true, true);
    } else {
      loop.mod(c.fd, true, true);
    }
  };

  auto start_one = [&](std::size_t idx) {
    FleetConn& c = conns[idx];
    if (c.first_attempt == clock::time_point{}) {
      c.first_attempt = clock::now();
    }
    if (!c.idle && c.payload.empty()) {
      c.payload = build_payload(idx - opt.idle);
    }
    c.fd = ::socket(target.family, SOCK_STREAM, 0);
    if (c.fd < 0) {
      // Route through fail_conn's kConnecting accounting (it decrements
      // the in-flight count and records a connect failure).
      c.state = FleetConn::kConnecting;
      ++connecting;
      fail_conn(c, std::strerror(errno));
      return;
    }
    set_nonblocking(c.fd, true);
    const int rc = ::connect(
        c.fd, reinterpret_cast<const sockaddr*>(&target.addr),
        target.addr_len);
    if (rc == 0) {
      fd_index[c.fd] = idx;
      on_connected(c, /*newly_added=*/true);
      return;
    }
    if (errno == EINPROGRESS) {
      c.state = FleetConn::kConnecting;
      ++connecting;
      fd_index[c.fd] = idx;
      loop.add(c.fd, false, true);
      return;
    }
    if (errno == EAGAIN || errno == ECONNREFUSED) {
      // Unix-domain listen queues reject with EAGAIN (and a racing
      // restart can refuse briefly); retry until the connect deadline.
      ::close(c.fd);
      c.fd = -1;
      if (std::chrono::duration<double>(clock::now() - c.first_attempt)
              .count() < opt.connect_timeout_s) {
        retry.push_back(idx);
      } else {
        c.state = FleetConn::kConnecting;  // fail_conn settles the counters
        ++connecting;
        fail_conn(c, "connect_timeout");
      }
      return;
    }
    const int connect_errno = errno;
    ::close(c.fd);
    c.fd = -1;
    c.state = FleetConn::kConnecting;
    ++connecting;
    fail_conn(c, std::strerror(connect_errno));
  };

  auto pump_write = [&](FleetConn& c) {
    while (c.sent < c.payload.size()) {
      const std::size_t want =
          std::min<std::size_t>(256 * 1024, c.payload.size() - c.sent);
      const ssize_t n =
          ::send(c.fd, c.payload.data() + c.sent, want, MSG_NOSIGNAL);
      if (n > 0) {
        if (c.sent == 0) {
          c.first_write = clock::now();
          if (!any_write) {
            any_write = true;
            t_first_write = c.first_write;
          }
        }
        c.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      fail_conn(c, "send failed");
      return false;
    }
    if (!c.wr_done) {
      c.wr_done = true;
      ::shutdown(c.fd, SHUT_WR);  // EOF: server drains then closes
      loop.mod(c.fd, true, false);
    }
    return true;
  };

  auto check_barrier = [&](FleetConn& c) {
    if (c.barrier || !c.wr_done) return;
    if (shards_expected == 0 || c.stats_seen < shards_expected) return;
    c.barrier = true;
    c.barrier_at = clock::now();
    if (t_last_barrier < c.barrier_at) t_last_barrier = c.barrier_at;
  };

  auto pump_read = [&](FleetConn& c) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0) {
        fail_conn(c, "recv failed");
        return;
      }
      if (n == 0) {
        // Server-side close. Expected for an active connection that
        // half-closed and completed its barrier; anything else failed.
        if (!c.idle && c.barrier) {
          loop.del(c.fd);
          fd_index.erase(c.fd);
          ::close(c.fd);
          c.fd = -1;
          c.state = FleetConn::kDone;
          ++done_active;
        } else {
          fail_conn(c, "closed by server");
        }
        return;
      }
      c.inbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      for (std::size_t nl = c.inbuf.find('\n', pos);
           nl != std::string::npos; nl = c.inbuf.find('\n', pos)) {
        const std::string line = c.inbuf.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.find("\"schema\":\"lion.stats.v1\"") != std::string::npos) {
          ++c.stats_seen;
          if (shards_expected == 0) {
            const std::size_t s = json_uint_field(line, "shards");
            shards_expected = s == 0 ? 1 : s;
          }
        } else if (line.find("\"schema\":\"lion.error.v1\"") !=
                   std::string::npos) {
          ++errors;
          if (error_lines_shown < 5) {
            std::fprintf(stderr, "server error: %s\n", line.c_str());
            ++error_lines_shown;
          }
        }
      }
      c.inbuf.erase(0, pos);
      check_barrier(c);
    }
  };

  // Ramp-up cap: enough in-flight connects to fill a burst-sized accept
  // backlog without stampeding a small one into timeouts.
  const std::size_t kConnectBatch = 256;
  std::vector<LoopEvent> events;
  auto last_deadline_scan = clock::now();

  auto all_settled = [&] {
    return next_to_start >= total && retry.empty() && connecting == 0 &&
           done_active + failed_active >= opt.fleet;
  };

  while (!all_settled()) {
    while (connecting < kConnectBatch &&
           (!retry.empty() || next_to_start < total)) {
      std::size_t idx;
      if (!retry.empty()) {
        idx = retry.front();
        retry.pop_front();
      } else {
        idx = next_to_start++;
      }
      start_one(idx);
    }

    loop.wait(events, 100);
    for (const LoopEvent& ev : events) {
      const auto it = fd_index.find(ev.fd);
      if (it == fd_index.end()) continue;
      FleetConn& c = conns[it->second];
      if (c.state == FleetConn::kConnecting) {
        int so_error = 0;
        socklen_t len = sizeof so_error;
        if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
            so_error != 0) {
          fail_conn(c, so_error != 0 ? std::strerror(so_error)
                                     : "connect failed");
          continue;
        }
        --connecting;
        on_connected(c, /*newly_added=*/false);
        if (!c.idle && !pump_write(c)) continue;
        continue;
      }
      if (c.state != FleetConn::kLive) continue;
      if (ev.error) {
        fail_conn(c, "socket error");
        continue;
      }
      if (ev.writable && !c.idle && !c.wr_done) {
        if (!pump_write(c)) continue;
      }
      if (ev.readable) pump_read(c);
    }

    // Connect deadlines fire from silence, not events — sweep at 4 Hz.
    const auto now = clock::now();
    if (std::chrono::duration<double>(now - last_deadline_scan).count() >
        0.25) {
      last_deadline_scan = now;
      for (FleetConn& c : conns) {
        if (c.state != FleetConn::kConnecting) continue;
        if (std::chrono::duration<double>(now - c.first_attempt).count() >=
            opt.connect_timeout_s) {
          fail_conn(c, "connect_timeout");
        }
      }
    }
  }

  // Active traffic has drained; optionally hold the idle fleet so a
  // harness can sample the server's steady-state footprint.
  if (opt.hold_s > 0.0 && idle_live > idle_dropped) {
    const auto hold_until =
        clock::now() + std::chrono::duration<double>(opt.hold_s);
    while (clock::now() < hold_until) {
      loop.wait(events, 100);
      for (const LoopEvent& ev : events) {
        const auto it = fd_index.find(ev.fd);
        if (it == fd_index.end()) continue;
        FleetConn& c = conns[it->second];
        if (c.state == FleetConn::kLive && ev.readable) pump_read(c);
      }
    }
  }
  for (FleetConn& c : conns) {
    if (c.fd >= 0) {
      loop.del(c.fd);
      ::close(c.fd);
      c.fd = -1;
    }
  }

  // --- summary ---------------------------------------------------------
  const double wall =
      any_write && t_last_barrier > t_first_write
          ? std::chrono::duration<double>(t_last_barrier - t_first_write)
                .count()
          : 0.0;
  std::size_t barrier_conns = 0;
  std::vector<double> connect_ms;
  std::vector<double> conn_wall_ms;
  for (const FleetConn& c : conns) {
    if (c.connected_at != clock::time_point{}) {
      connect_ms.push_back(std::chrono::duration<double>(
                               c.connected_at - c.first_attempt)
                               .count() *
                           1e3);
    }
    if (c.idle || !c.barrier) continue;
    ++barrier_conns;
    conn_wall_ms.push_back(
        std::chrono::duration<double>(c.barrier_at - c.first_write).count() *
        1e3);
  }
  std::sort(connect_ms.begin(), connect_ms.end());
  std::sort(conn_wall_ms.begin(), conn_wall_ms.end());
  const std::size_t reads_confirmed = barrier_conns * data_rows * opt.sessions;
  const double reads_per_s =
      wall > 0.0 ? static_cast<double>(reads_confirmed) / wall : 0.0;

  std::printf("fleet: %zu active + %zu idle conns, %zu sessions/conn, "
              "%zu reads confirmed in %.3f s (%.0f reads/s), "
              "%zu errors, %zu connect failures\n",
              opt.fleet, opt.idle, opt.sessions, reads_confirmed, wall,
              reads_per_s, errors, connect_failures);
  std::printf("fleet conn wall: p50=%.1f ms p95=%.1f ms p99=%.1f ms; "
              "connect: p50=%.1f ms p95=%.1f ms p99=%.1f ms\n",
              percentile(conn_wall_ms, 0.50), percentile(conn_wall_ms, 0.95),
              percentile(conn_wall_ms, 0.99), percentile(connect_ms, 0.50),
              percentile(connect_ms, 0.95), percentile(connect_ms, 0.99));
  std::printf(
      "lion.fleet.v1 {\"schema\":\"lion.fleet.v1\",\"fleet\":%zu,"
      "\"idle\":%zu,\"sessions_per_conn\":%zu,\"shards\":%zu,"
      "\"reads\":%zu,\"wall_s\":%.6f,\"reads_per_s\":%.1f,"
      "\"barrier_conns\":%zu,\"errors\":%zu,\"connect_failures\":%zu,"
      "\"failed_active\":%zu,\"idle_dropped\":%zu,"
      "\"conn_wall_ms_p50\":%.3f,\"conn_wall_ms_p95\":%.3f,"
      "\"conn_wall_ms_p99\":%.3f,\"connect_ms_p50\":%.3f,"
      "\"connect_ms_p95\":%.3f,\"connect_ms_p99\":%.3f}\n",
      opt.fleet, opt.idle, opt.sessions, shards_expected, reads_confirmed,
      wall, reads_per_s, barrier_conns, errors, connect_failures,
      failed_active, idle_dropped, percentile(conn_wall_ms, 0.50),
      percentile(conn_wall_ms, 0.95), percentile(conn_wall_ms, 0.99),
      percentile(connect_ms, 0.50), percentile(connect_ms, 0.95),
      percentile(connect_ms, 0.99));
  std::fflush(stdout);

  const bool ok = connect_failures == 0 && failed_active == 0 &&
                  errors == 0 && barrier_conns == opt.fleet &&
                  idle_dropped == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "error: fleet incomplete: %zu/%zu barriers, %zu errors, "
                 "%zu connect failures, %zu active failed, %zu idle dropped\n",
                 barrier_conns, opt.fleet, errors, connect_failures,
                 failed_active, idle_dropped);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tcp_spec;
  std::string unix_path;
  std::string file;
  std::string center = "0,0.8,0";
  std::string id_prefix = "replay";
  std::size_t sessions = 1;
  std::size_t chunk = 1024;
  bool close_sessions = false;
  double connect_timeout_s = -1.0;  // < 0: legacy blocking connect
  std::size_t fleet = 0;
  std::size_t idle = 0;
  double fleet_hold_s = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--tcp") {
      tcp_spec = next();
    } else if (flag == "--unix") {
      unix_path = next();
    } else if (flag == "--file") {
      file = next();
    } else if (flag == "--sessions") {
      sessions = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--chunk") {
      chunk = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--center") {
      center = next();
    } else if (flag == "--id-prefix") {
      id_prefix = next();
    } else if (flag == "--close") {
      close_sessions = true;
    } else if (flag == "--connect-timeout") {
      connect_timeout_s = std::stod(next());
      if (connect_timeout_s <= 0.0) usage("--connect-timeout must be > 0");
    } else if (flag == "--fleet") {
      fleet = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--idle") {
      idle = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--fleet-hold") {
      fleet_hold_s = std::stod(next());
      if (fleet_hold_s < 0.0) usage("--fleet-hold must be >= 0");
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (file.empty()) usage("--file is required");
  if (tcp_spec.empty() && unix_path.empty()) usage("need --tcp or --unix");
  if (sessions == 0 || chunk == 0) usage("--sessions/--chunk must be > 0");

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
    return 1;
  }
  std::vector<std::string> rows;
  std::size_t data_rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.find_first_of("0123456789+-.") == 0) ++data_rows;
    rows.push_back(std::move(line));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: no rows in %s\n", file.c_str());
    return 1;
  }

  Target target;
  if (!resolve_target(tcp_spec, unix_path, target)) return 1;

  if (fleet > 0 || idle > 0) {
    FleetOptions opt;
    opt.fleet = fleet;
    opt.idle = idle;
    opt.sessions = sessions;
    opt.connect_timeout_s = connect_timeout_s > 0.0 ? connect_timeout_s : 30.0;
    opt.hold_s = fleet_hold_s;
    opt.center = center;
    opt.id_prefix = id_prefix;
    return run_fleet(target, opt, rows, data_rows);
  }

  std::string connect_error;
  const int fd = connect_with_timeout(target, connect_timeout_s,
                                      connect_error);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 target.display.c_str(), connect_error.c_str());
    return 1;
  }

  // Restore cursors (journal records / flushes per session), filled by
  // the reader from lion.restore.v1 acks during the declare phase.
  struct RestoreAck {
    std::size_t records = 0;
    std::size_t flushes = 0;
  };
  std::mutex ack_mu;
  std::condition_variable ack_cv;
  std::map<std::string, RestoreAck> acks;
  bool barrier_seen = false;

  std::size_t reports = 0;
  std::size_t errors = 0;
  std::size_t response_lines = 0;
  // Arrival stamp of the k-th report (reports return in flush order), for
  // the end-to-end flush-latency percentiles printed on exit.
  std::vector<std::chrono::steady_clock::time_point> report_times;
  std::thread reader([fd, &reports, &errors, &response_lines, &report_times,
                      &ack_mu, &ack_cv, &acks, &barrier_seen] {
    std::string partial;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      partial.append(buf, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      for (std::size_t nl = partial.find('\n', pos);
           nl != std::string::npos; nl = partial.find('\n', pos)) {
        const std::string line = partial.substr(pos, nl - pos);
        pos = nl + 1;
        ++response_lines;
        if (line.find("\"schema\":\"lion.report.v1\"") != std::string::npos) {
          ++reports;
          report_times.push_back(std::chrono::steady_clock::now());
        } else if (line.find("\"schema\":\"lion.error.v1\"") !=
                   std::string::npos) {
          ++errors;
          std::fprintf(stderr, "server error: %s\n", line.c_str());
        } else if (line.find("\"schema\":\"lion.restore.v1\"") !=
                   std::string::npos) {
          RestoreAck ack;
          ack.records = json_uint_field(line, "records");
          ack.flushes = json_uint_field(line, "flushes");
          std::lock_guard<std::mutex> lock(ack_mu);
          acks[json_string_field(line, "session")] = ack;
        } else if (line.find("\"schema\":\"lion.stats.v1\"") !=
                   std::string::npos) {
          {
            std::lock_guard<std::mutex> lock(ack_mu);
            barrier_seen = true;
          }
          ack_cv.notify_all();
        }
      }
      partial.erase(0, pos);
    }
    // EOF also releases a declare phase still waiting on the barrier.
    {
      std::lock_guard<std::mutex> lock(ack_mu);
      barrier_seen = true;
    }
    ack_cv.notify_all();
  });

  const auto start = std::chrono::steady_clock::now();

  // Phase 1: declares + a !stats barrier. The stats response is sequenced
  // after every declare, so once it arrives all restore acks are in.
  std::string declares;
  for (std::size_t s = 0; s < sessions; ++s) {
    declares +=
        "!session " + id_prefix + std::to_string(s) + " center=" + center +
        "\n";
  }
  declares += "!stats\n";
  bool sent = send_all(fd, declares.data(), declares.size());
  if (sent) {
    std::unique_lock<std::mutex> lock(ack_mu);
    ack_cv.wait_for(lock, std::chrono::seconds(30),
                    [&barrier_seen] { return barrier_seen; });
  }

  // Phase 2: per session, only the rows past the journal's cursor
  // (records = declare + rows journaled + flush records), then the
  // terminal control line. session_starts[s] = offset of session s's
  // first payload byte, so a mid-send failure can be pinned.
  std::string payload;
  std::vector<std::size_t> session_starts;
  std::vector<std::size_t> session_ends;  ///< offset past each !flush line
  std::size_t resumed = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::string id = id_prefix + std::to_string(s);
    std::size_t first_row = 0;
    {
      std::lock_guard<std::mutex> lock(ack_mu);
      const auto it = acks.find(id);
      if (it != acks.end()) {
        const std::size_t consumed = 1 + it->second.flushes;
        const std::size_t rows_journaled =
            it->second.records > consumed ? it->second.records - consumed : 0;
        first_row = std::min(rows_journaled, rows.size());
        ++resumed;
      }
    }
    session_starts.push_back(payload.size());
    for (std::size_t r = first_row; r < rows.size(); ++r) {
      payload += "@" + id + " " + rows[r] + "\n";
    }
    payload += (close_sessions ? "!close " : "!flush ") + id + "\n";
    session_ends.push_back(payload.size());
  }

  // flush_sent[s] is stamped the moment the chunk containing session s's
  // terminal control line goes onto the wire.
  std::vector<std::chrono::steady_clock::time_point> flush_sent(sessions);
  std::size_t next_unsent_flush = 0;
  std::size_t failed_offset = 0;
  for (std::size_t off = 0; off < payload.size() && sent; off += chunk) {
    const std::size_t n = std::min(chunk, payload.size() - off);
    sent = send_all(fd, payload.data() + off, n);
    if (!sent) {
      failed_offset = off;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    while (next_unsent_flush < sessions &&
           session_ends[next_unsent_flush] <= off + n) {
      flush_sent[next_unsent_flush++] = now;
    }
  }
  ::shutdown(fd, SHUT_WR);  // EOF -> server finish()es and closes
  reader.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ::close(fd);

  const std::size_t total_reads = data_rows * sessions;
  std::printf("replay: %zu sessions x %zu reads in %.3f s "
              "(%.0f reads/s), %zu responses (%zu reports, %zu errors, "
              "%zu resumed)\n",
              sessions, data_rows, wall,
              wall > 0 ? static_cast<double>(total_reads) / wall : 0.0,
              response_lines, reports, errors, resumed);
  // Client-observed flush latency: k-th report (flush order) minus the
  // wire time of the k-th flush line. A report that arrives before its
  // stamp (can't happen with one writer, but be safe) clamps to 0.
  std::vector<double> latencies;
  const std::size_t paired = std::min(report_times.size(), next_unsent_flush);
  for (std::size_t s = 0; s < paired; ++s) {
    const double d =
        std::chrono::duration<double>(report_times[s] - flush_sent[s]).count();
    latencies.push_back(d > 0.0 ? d : 0.0);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    std::printf("flush latency: p50=%.3f ms p95=%.3f ms p99=%.3f ms "
                "(%zu flushes)\n",
                percentile(latencies, 0.50) * 1e3,
                percentile(latencies, 0.95) * 1e3,
                percentile(latencies, 0.99) * 1e3, latencies.size());
  }
  if (!sent) {
    // Pin the drop to the session whose bytes were on the wire: the last
    // session whose payload starts at or before the failing offset.
    std::size_t failed_session = 0;
    for (std::size_t s = 0; s < session_starts.size(); ++s) {
      if (session_starts[s] <= failed_offset) failed_session = s;
    }
    std::fprintf(stderr,
                 "error: connection dropped mid-send in session '%s%zu' "
                 "(offset %zu of %zu bytes)\n",
                 id_prefix.c_str(), failed_session, failed_offset,
                 payload.size());
    return 1;
  }
  if (reports != sessions || errors != 0) {
    // Reports come back in flush (= session) order, so the first session
    // without one is exactly session #reports.
    if (reports < sessions) {
      std::fprintf(stderr,
                   "error: expected %zu reports / 0 errors, got %zu/%zu; "
                   "first incomplete session '%s%zu'\n",
                   sessions, reports, errors, id_prefix.c_str(), reports);
    } else {
      std::fprintf(stderr, "error: expected %zu reports / 0 errors, "
                   "got %zu/%zu\n", sessions, reports, errors);
    }
    return 1;
  }
  return 0;
}
