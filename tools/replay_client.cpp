// replay_client — load generator / smoke driver for the streaming service.
//
//   replay_client (--tcp host:port | --unix PATH) --file scan.csv
//                 [--sessions N] [--chunk BYTES] [--center x,y,z]
//
// Replays a recorded scan CSV into a running lion_served as N independent
// calibrate sessions: every session gets a `!session` declare, the file's
// rows routed via `@<id>` lines, and a final `!flush`. The payload is
// written in --chunk-byte pieces (default 1024) to exercise the server's
// chunk reassembly exactly the way a real reader gateway's socket writes
// would. A reader thread concurrently consumes responses.
//
// Exit status is the contract the CI smoke job relies on: 0 iff the
// server answered with exactly one lion.report.v1 per session and zero
// lion.error.v1 lines. Throughput (read records ingested per second,
// wall-clock from first byte written to last response read) is printed
// to stdout.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: replay_client (--tcp host:port | --unix PATH)\n"
               "                     --file scan.csv [--sessions N]\n"
               "                     [--chunk BYTES] [--center x,y,z]\n");
  std::exit(2);
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

int connect_tcp(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) usage("--tcp expects host:port");
  const std::string host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
    std::fprintf(stderr, "error: cannot resolve %s\n", spec.c_str());
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) usage("unix path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tcp_spec;
  std::string unix_path;
  std::string file;
  std::string center = "0,0.8,0";
  std::size_t sessions = 1;
  std::size_t chunk = 1024;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--tcp") {
      tcp_spec = next();
    } else if (flag == "--unix") {
      unix_path = next();
    } else if (flag == "--file") {
      file = next();
    } else if (flag == "--sessions") {
      sessions = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--chunk") {
      chunk = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--center") {
      center = next();
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (file.empty()) usage("--file is required");
  if (tcp_spec.empty() && unix_path.empty()) usage("need --tcp or --unix");
  if (sessions == 0 || chunk == 0) usage("--sessions/--chunk must be > 0");

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
    return 1;
  }
  std::vector<std::string> rows;
  std::size_t data_rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.find_first_of("0123456789+-.") == 0) ++data_rows;
    rows.push_back(std::move(line));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: no rows in %s\n", file.c_str());
    return 1;
  }

  // One big payload: declare + route + flush per session. Routing every
  // row with '@' (instead of relying on the current-session default)
  // keeps the payload valid under any interleaving we might add later.
  std::string payload;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::string id = "replay" + std::to_string(s);
    payload += "!session " + id + " center=" + center + "\n";
    for (const std::string& row : rows) {
      payload += "@" + id + " " + row + "\n";
    }
    payload += "!flush " + id + "\n";
  }

  const int fd = !unix_path.empty() ? connect_unix(unix_path)
                                    : connect_tcp(tcp_spec);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect\n");
    return 1;
  }

  std::size_t reports = 0;
  std::size_t errors = 0;
  std::size_t response_lines = 0;
  std::thread reader([fd, &reports, &errors, &response_lines] {
    std::string partial;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      partial.append(buf, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      for (std::size_t nl = partial.find('\n', pos);
           nl != std::string::npos; nl = partial.find('\n', pos)) {
        const std::string line = partial.substr(pos, nl - pos);
        pos = nl + 1;
        ++response_lines;
        if (line.find("\"schema\":\"lion.report.v1\"") != std::string::npos) {
          ++reports;
        } else if (line.find("\"schema\":\"lion.error.v1\"") !=
                   std::string::npos) {
          ++errors;
          std::fprintf(stderr, "server error: %s\n", line.c_str());
        }
      }
      partial.erase(0, pos);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  bool sent = true;
  for (std::size_t off = 0; off < payload.size() && sent; off += chunk) {
    const std::size_t n = std::min(chunk, payload.size() - off);
    sent = send_all(fd, payload.data() + off, n);
  }
  ::shutdown(fd, SHUT_WR);  // EOF -> server finish()es and closes
  reader.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ::close(fd);

  const std::size_t total_reads = data_rows * sessions;
  std::printf("replay: %zu sessions x %zu reads in %.3f s "
              "(%.0f reads/s), %zu responses (%zu reports, %zu errors)\n",
              sessions, data_rows, wall,
              wall > 0 ? static_cast<double>(total_reads) / wall : 0.0,
              response_lines, reports, errors);
  if (!sent) {
    std::fprintf(stderr, "error: connection broke mid-send\n");
    return 1;
  }
  if (reports != sessions || errors != 0) {
    std::fprintf(stderr, "error: expected %zu reports / 0 errors\n",
                 sessions);
    return 1;
  }
  return 0;
}
