// lion_top — live per-session view of a running lion_served, top(1)-style.
//
//   lion_top --tcp host:port [--interval S] [--iterations N] [--no-clear]
//
// Polls the daemon's telemetry endpoint (GET /metrics, the Prometheus
// text exposition served with --telemetry-port), parses the
// lion_session_* and aggregate lion_serve_* / lion_process_* series, and
// renders one table per poll:
//
//   lion_top  127.0.0.1:9464  up 312s  conns 2  sessions 3  rss 14.2 MiB
//   SESSION           REQS  ERRS  INFL  SAMPLES    TICKS  SOLVE_AVG_MS
//   replay0             12     0     1     8160       12          1.84
//
// The tool is a pure scrape client: it opens one connection per poll,
// speaks blocking HTTP/1.0, and never touches the data-plane port, so it
// is safe to leave running against a production daemon. --iterations N
// stops after N polls (useful for scripts/CI); the default 0 polls until
// interrupted. Exit status is 0 iff every attempted scrape succeeded.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr, "%s",
               "usage: lion_top --tcp host:port [--interval S]\n"
               "                [--iterations N] [--no-clear]\n");
  std::exit(2);
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// One blocking HTTP/1.0 GET; returns the body (headers stripped) or
/// empty on any connect/read/status failure.
std::string http_get(const std::string& host, const std::string& port,
                     const char* path) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
    return "";
  }
  int fd = -1;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return "";
  const std::string request =
      std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  std::string response;
  if (send_all(fd, request.data(), request.size())) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  if (response.rfind("HTTP/", 0) != 0) return "";
  const std::size_t status = response.find(' ');
  if (status == std::string::npos ||
      response.compare(status + 1, 3, "200") != 0) {
    return "";
  }
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

struct SessionRow {
  double requests = 0.0;
  double errors = 0.0;
  double in_flight = 0.0;
  double samples = 0.0;
  double ticks = 0.0;
  double solve_sum = 0.0;
  double solve_count = 0.0;
};

struct Scrape {
  double connections = 0.0;
  double live_sessions = 0.0;
  double rss_bytes = 0.0;
  double tick_fallback_ratio = 0.0;
  double journal_lag = 0.0;
  std::map<std::string, SessionRow> sessions;
};

/// Parse one exposition line of the form `name{session="id",...} value`
/// (the label block is optional). Returns false for comments/blank lines.
bool parse_sample(const std::string& line, std::string& name,
                  std::string& session, double& value) {
  if (line.empty() || line[0] == '#') return false;
  const std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos) return false;
  name = line.substr(0, name_end);
  session.clear();
  std::size_t value_pos;
  if (line[name_end] == '{') {
    const std::size_t close = line.find('}', name_end);
    if (close == std::string::npos) return false;
    const std::string labels = line.substr(name_end, close - name_end + 1);
    const std::size_t key = labels.find("session=\"");
    if (key != std::string::npos) {
      const std::size_t start = key + 9;
      const std::size_t end = labels.find('"', start);
      if (end != std::string::npos) session = labels.substr(start, end - start);
    }
    value_pos = close + 1;
  } else {
    value_pos = name_end;
  }
  value_pos = line.find_first_not_of(' ', value_pos);
  if (value_pos == std::string::npos) return false;
  value = std::atof(line.c_str() + value_pos);
  return true;
}

Scrape parse_metrics(const std::string& body) {
  Scrape out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    const std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    std::string name;
    std::string session;
    double value = 0.0;
    if (!parse_sample(line, name, session, value)) continue;
    if (name == "lion_serve_connections") {
      out.connections = value;
    } else if (name == "lion_serve_live_sessions") {
      out.live_sessions = value;
    } else if (name == "lion_process_rss_bytes") {
      out.rss_bytes = value;
    } else if (name == "lion_serve_tick_fallback_ratio") {
      out.tick_fallback_ratio = value;
    } else if (name == "lion_serve_journal_lag_records") {
      out.journal_lag = value;
    } else if (!session.empty()) {
      SessionRow& row = out.sessions[session];
      if (name == "lion_session_requests_total") {
        row.requests = value;
      } else if (name == "lion_session_errors_total") {
        row.errors = value;
      } else if (name == "lion_session_in_flight") {
        row.in_flight = value;
      } else if (name == "lion_session_samples_total") {
        row.samples = value;
      } else if (name == "lion_session_pose_ticks_total") {
        row.ticks = value;
      } else if (name == "lion_session_solve_seconds_sum") {
        row.solve_sum = value;
      } else if (name == "lion_session_solve_seconds_count") {
        row.solve_count = value;
      }
    }
  }
  return out;
}

void render(const Scrape& s, const std::string& target, double uptime_s,
            bool clear) {
  if (clear) std::printf("\033[H\033[2J");
  std::printf("lion_top  %s  up %.0fs  conns %.0f  sessions %.0f  "
              "rss %.1f MiB  lag %.0f  fallback %.2f\n",
              target.c_str(), uptime_s, s.connections, s.live_sessions,
              s.rss_bytes / (1024.0 * 1024.0), s.journal_lag,
              s.tick_fallback_ratio);
  std::printf("%-18s %6s %5s %5s %9s %8s %13s\n", "SESSION", "REQS", "ERRS",
              "INFL", "SAMPLES", "TICKS", "SOLVE_AVG_MS");
  for (const auto& [id, row] : s.sessions) {
    const double avg_ms =
        row.solve_count > 0 ? row.solve_sum / row.solve_count * 1e3 : 0.0;
    std::printf("%-18s %6.0f %5.0f %5.0f %9.0f %8.0f %13.2f\n", id.c_str(),
                row.requests, row.errors, row.in_flight, row.samples,
                row.ticks, avg_ms);
  }
  if (s.sessions.empty()) std::printf("(no live sessions)\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string tcp_spec;
  double interval_s = 2.0;
  std::uint64_t iterations = 0;  // 0 = until interrupted
  bool clear = true;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--tcp") {
      tcp_spec = next();
    } else if (flag == "--interval") {
      interval_s = std::atof(next().c_str());
      if (interval_s <= 0.0) usage("--interval must be > 0");
    } else if (flag == "--iterations") {
      iterations = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--no-clear") {
      clear = false;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (tcp_spec.empty()) usage("--tcp host:port is required");
  const std::size_t colon = tcp_spec.rfind(':');
  if (colon == std::string::npos) usage("--tcp expects host:port");
  const std::string host = tcp_spec.substr(0, colon);
  const std::string port = tcp_spec.substr(colon + 1);

  const auto start = std::chrono::steady_clock::now();
  bool all_ok = true;
  for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    const std::string body = http_get(host, port, "/metrics");
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (body.empty()) {
      all_ok = false;
      std::fprintf(stderr, "lion_top: scrape of %s failed\n",
                   tcp_spec.c_str());
      if (iterations == 0) continue;  // keep trying in watch mode
      break;
    }
    render(parse_metrics(body), tcp_spec, uptime_s, clear);
  }
  return all_ok ? 0 : 1;
}
