// Turntable scanning — trajectory-shape flexibility (paper Sec. V-F2).
//
// Where a linear slide is impractical, a tag spinning on a turntable works
// just as well: LION accepts *any* known trajectory. This example localizes
// an antenna from a circular scan and cross-checks against the
// Tagspin-style circular-array baseline, which is restricted to exactly
// this trajectory shape.

#include <cstdio>

#include "baseline/tagspin.hpp"
#include "core/lion.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main() {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.7, 0.0})
                      .add_tag()
                      .seed(55)
                      .build();
  const Vec3 truth = scenario.antennas()[0].phase_center();

  std::printf("%-12s %-18s %-18s\n", "radius[cm]", "LION err[cm]",
              "Tagspin err[cm]");

  bool ok = true;
  for (double radius : {0.10, 0.15, 0.20}) {
    // One full revolution on the turntable, 0.8 rad/s.
    sim::CircularTrajectory traj({0.0, 0.0, 0.0}, radius, {0.0, 0.0, 1.0},
                                 0.8);
    const auto profile = signal::preprocess(scenario.sweep(0, 0, traj));

    // LION: the same localizer as for linear scans — no special casing.
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 1.2 * radius;
    cfg.side_hint = Vec3{0.0, 0.7, 0.0};
    const auto lion_fix = core::LinearLocalizer(cfg).locate(profile);
    const double lion_err =
        std::hypot(lion_fix.position[0] - truth[0],
                   lion_fix.position[1] - truth[1]);

    // Tagspin baseline: sinusoid fit + range search, circular scans only.
    const auto spin_fix = baseline::locate_tagspin(profile, {});
    const double spin_err =
        std::hypot(spin_fix.position[0] - truth[0],
                   spin_fix.position[1] - truth[1]);

    std::printf("%-12.0f %-18.2f %-18.2f\n", radius * 100.0,
                lion_err * 100.0, spin_err * 100.0);
    ok = ok && lion_err < 0.05;
  }

  std::printf(
      "\nLION matches the purpose-built circular method on its own turf —\n"
      "and the identical code handles linear and multi-line scans too.\n");
  return ok ? 0 : 1;
}
