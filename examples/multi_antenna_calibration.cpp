// Multi-antenna deployment — where phase calibration matters most.
//
// Three shelf antennas localize stationary tagged items by differential
// phase (hyperbola/hologram methods). Those methods need (1) the true
// *electrical* phase centers, not ruler positions, and (2) the per-antenna
// hardware phase offsets, or every phase difference carries a constant
// bias. This example calibrates all three antennas with one tag scan each
// and shows the tag fix improving at every calibration level — the
// paper's Sec. V-F1 case study as a reusable workflow.

#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "core/lion.hpp"
#include "linalg/matrix.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main() {
  // --- Deployment: three antennas 30 cm apart ---------------------------
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({-0.3, 0.7, 0.0})
                      .add_antenna({0.0, 0.7, 0.0})
                      .add_antenna({0.3, 0.7, 0.0})
                      .add_tag()
                      .add_tag()  // second tag enables offset decomposition
                      .seed(77)
                      .build();

  // --- Calibrate every antenna with the three-line rig ------------------
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  struct Cal {
    Vec3 center;
    double offset;
  };
  std::vector<Cal> cals;
  std::printf("calibration pass:\n");
  for (std::size_t a = 0; a < 3; ++a) {
    const auto samples = scenario.sweep(a, 0, rig.build());
    const auto profile = signal::preprocess(samples);
    const auto center = core::calibrate_phase_center(
        profile, scenario.antennas()[a].physical_center, {});
    const double offset =
        core::calibrate_phase_offset(samples, center.estimated_center);
    cals.push_back({center.estimated_center, offset});
    std::printf("  antenna %zu: displacement %.2f cm, offset %.2f rad\n", a,
                center.displacement.norm() * 100.0, offset);
  }

  // --- Split per-antenna vs per-tag offsets (Sec. IV-C2) -----------------
  // One calibration only gives theta_T + theta_R per pair. Calibrating the
  // 3x2 antenna-tag grid and decomposing the bipartite offset graph splits
  // the two (up to the inherent shared gauge).
  linalg::Matrix pair_offsets(3, 2);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t t = 0; t < 2; ++t) {
      const auto samples = scenario.sweep(a, t, rig.build());
      pair_offsets(a, t) =
          core::calibrate_phase_offset(samples, cals[a].center);
    }
  }
  const auto decomposition = core::decompose_offsets(pair_offsets);
  std::printf("\noffset decomposition (gauge: tag 0 = 0):\n");
  for (std::size_t a = 0; a < 3; ++a) {
    std::printf("  antenna %zu: %.2f rad (true reader offset %.2f + gauge)\n",
                a, decomposition.antenna_offsets[a],
                scenario.antennas()[a].reader_offset_rad);
  }
  std::printf("  tag 1 relative to tag 0: %.2f rad (true %.2f)\n",
              decomposition.tag_offsets[1],
              rf::wrap_phase(scenario.tags()[1].tag_offset_rad -
                             scenario.tags()[0].tag_offset_rad));
  std::printf("  rms residual: %.3f rad\n", decomposition.rms_residual);

  // --- Locate a stationary item at three calibration levels -------------
  const Vec3 item{-0.1, 0.8, 0.0};
  auto mean_phase = [&](std::size_t a) {
    const auto reads = scenario.read_static(a, 0, item, 300);
    std::vector<double> phases;
    for (const auto& r : reads) phases.push_back(r.phase);
    return rf::circular_mean(phases);
  };
  const double measured[3] = {mean_phase(0), mean_phase(1), mean_phase(2)};

  baseline::HologramConfig cfg;
  cfg.min_corner = item - Vec3{0.08, 0.08, 0.0};
  cfg.max_corner = item + Vec3{0.08, 0.08, 0.0};
  cfg.min_corner[2] = cfg.max_corner[2] = 0.0;
  cfg.grid_size = 0.002;

  std::printf("\nitem localization (differential hologram, +/-8 cm slot "
              "prior):\n");
  double final_err = 1.0;
  for (int level = 0; level < 3; ++level) {
    std::vector<baseline::AntennaReading> readings;
    for (std::size_t a = 0; a < 3; ++a) {
      baseline::AntennaReading r;
      r.antenna_position = level >= 1
                               ? cals[a].center
                               : scenario.antennas()[a].physical_center;
      r.phase = measured[a];
      r.offset = level >= 2 ? cals[a].offset : 0.0;
      readings.push_back(r);
    }
    const auto fix = baseline::locate_tag_multi_antenna(readings, cfg);
    const double err = linalg::distance(fix.position, item);
    final_err = err;
    static const char* kNames[] = {"no calibration     ",
                                   "center calibrated  ",
                                   "center + offset    "};
    std::printf("  %s error %.2f cm\n", kNames[level], err * 100.0);
  }
  return final_err < 0.05 ? 0 : 1;
}
