// Quickstart: calibrate one antenna's phase center and offset with LION.
//
// A tag is driven along the Fig. 11 three-line rig in front of a simulated
// COTS antenna whose electrical phase center is (unknown to us) a few
// centimetres away from its physical center. We preprocess the phase
// stream, localize the antenna in 3D with the adaptive sweep, and compare
// the recovered displacement and hardware offset against the hidden ground
// truth.

#include <cstdio>

#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;

int main() {
  // --- 1. Build a simulated testbed -------------------------------------
  // Antenna 80 cm behind the tag plane (the paper's default depth),
  // auto-generated per-unit quirks: a hidden 2-3 cm phase-center
  // displacement and a random reader offset.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(7)
                      .build();
  const rf::Antenna& antenna = scenario.antennas()[0];

  // --- 2. Scan: tag traverses the three-line rig ------------------------
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  rig.y0 = 0.2;   // L3 is 20 cm behind L1
  rig.z0 = 0.2;   // L2 is 20 cm above L1
  rig.speed = 0.1;  // 10 cm/s, like the paper's slide
  const auto samples = scenario.sweep(0, 0, rig.build());
  std::printf("collected %zu phase samples along the rig\n", samples.size());

  // --- 3. Preprocess: unwrap + smooth ------------------------------------
  const auto profile = signal::preprocess(samples);

  // --- 4. Calibrate the phase center (3D adaptive localization) ----------
  core::AdaptiveConfig cfg;
  cfg.base.method = core::SolveMethod::kWeightedLeastSquares;
  const auto center =
      core::calibrate_phase_center(profile, antenna.physical_center, cfg);

  const linalg::Vec3 truth = antenna.phase_center();
  const double err = linalg::distance(center.estimated_center, truth);
  std::printf("\nphysical center    : (%.4f, %.4f, %.4f) m\n",
              antenna.physical_center[0], antenna.physical_center[1],
              antenna.physical_center[2]);
  std::printf("true phase center  : (%.4f, %.4f, %.4f) m\n", truth[0],
              truth[1], truth[2]);
  std::printf("estimated center   : (%.4f, %.4f, %.4f) m\n",
              center.estimated_center[0], center.estimated_center[1],
              center.estimated_center[2]);
  std::printf("estimation error   : %.2f cm\n", err * 100.0);
  std::printf("center displacement: %.2f cm (true %.2f cm)\n",
              center.displacement.norm() * 100.0,
              antenna.phase_center_displacement.norm() * 100.0);
  std::printf("adaptive choice    : range %.2f m, interval %.2f m\n",
              center.details.best_range, center.details.best_interval);

  // --- 5. Calibrate the phase offset (Eq. 17) ----------------------------
  const double offset =
      core::calibrate_phase_offset(samples, center.estimated_center);
  const double true_offset = rf::wrap_phase(
      antenna.reader_offset_rad + scenario.tags()[0].tag_offset_rad);
  std::printf("\nphase offset       : %.3f rad (true %.3f rad, error %.3f)\n",
              offset, true_offset, rf::circular_distance(offset, true_offset));

  return err < 0.05 ? 0 : 1;  // sanity: within 5 cm
}
