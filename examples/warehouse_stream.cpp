// Warehouse streaming — continuous tracking on an edge node.
//
// Samples arrive one at a time from the reader; the ConveyorTracker keeps
// a sliding window and emits a position fix (with uncertainty) every hop.
// This is the deployment loop the paper's "high time efficiency"
// requirement targets: each fix is a linear solve, cheap enough to run on
// the gateway that also speaks LLRP.

#include <cstdio>

#include "core/lion.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main() {
  // Calibrated antenna (true center known from a prior calibration run —
  // see examples/quickstart).
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(31)
                      .build();
  const Vec3 center = scenario.antennas()[0].phase_center();

  // A parcel enters the belt at an unknown slot.
  const Vec3 slot{-0.42, 0.0, 0.0};
  const auto stream = scenario.sweep(
      0, 0, sim::LinearTrajectory(slot, slot + Vec3{0.9, 0.0, 0.0}, 0.1));

  core::TrackerConfig cfg;
  cfg.antenna_phase_center = center;
  cfg.belt_direction = {1.0, 0.0, 0.0};
  cfg.belt_speed = 0.1;
  cfg.window = 600;
  cfg.hop = 150;
  cfg.localizer.target_dim = 2;
  cfg.localizer.side_hint = slot;
  core::ConveyorTracker tracker(cfg);

  std::printf("%-10s %-22s %-22s %-10s\n", "t[s]", "tracked (x, y)[m]",
              "true (x, y)[m]", "1-sigma[cm]");
  const double t0 = stream.front().t;
  double worst = 0.0;
  for (const auto& sample : stream) {
    const auto fix = tracker.push(sample);
    if (!fix || !fix->valid) continue;
    const Vec3 truth = slot + 0.1 * (fix->t - t0) * Vec3{1.0, 0.0, 0.0};
    const double err = std::hypot(fix->position[0] - truth[0],
                                  fix->position[1] - truth[1]);
    worst = std::max(worst, err);
    std::printf("%-10.2f (%7.3f, %6.3f)%6s (%7.3f, %6.3f)%6s %-10.2f\n",
                fix->t, fix->position[0], fix->position[1], "", truth[0],
                truth[1], "", fix->sigma * 100.0);
  }
  std::printf("\nworst tracking error: %.2f cm over %zu fixes\n",
              worst * 100.0, tracker.fixes().size());
  return worst < 0.05 && !tracker.fixes().empty() ? 0 : 1;
}
