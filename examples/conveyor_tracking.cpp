// Conveyor tracking — the paper's industrial motivation.
//
// A warehouse conveyor carries tagged parcels past a reader antenna at a
// known speed. The parcel's displacement over time is known (belt encoder)
// but its absolute slot on the belt is not. After a one-time phase-center
// calibration of the antenna, LION pinpoints each parcel's slot from a
// single pass — in ~milliseconds per parcel, fitting an edge node.

#include <cstdio>
#include <vector>

#include "core/lion.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main() {
  // --- Testbed: antenna 0.8 m behind the belt, typical warehouse RF ------
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(2024)
                      .build();
  const rf::Antenna& antenna = scenario.antennas()[0];

  // --- One-time calibration with the three-line rig ----------------------
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto cal_profile =
      signal::preprocess(scenario.sweep(0, 0, rig.build()));
  const auto cal =
      core::calibrate_phase_center(cal_profile, antenna.physical_center, {});
  std::printf("calibrated antenna: center displacement %.2f cm "
              "(estimation error %.2f cm)\n\n",
              cal.displacement.norm() * 100.0,
              linalg::distance(cal.estimated_center, antenna.phase_center()) *
                  100.0);

  // --- Track ten parcels at unknown belt slots ---------------------------
  std::printf("%-8s %-16s %-16s %-10s\n", "parcel", "true slot x[cm]",
              "estimated x[cm]", "error[cm]");
  rf::Rng slot_rng(99);
  double total_err = 0.0;
  const int parcels = 10;
  for (int parcel = 0; parcel < parcels; ++parcel) {
    const Vec3 start{slot_rng.uniform(-0.5, -0.2), 0.0, 0.0};
    const auto samples = scenario.sweep(
        0, 0,
        sim::LinearTrajectory(start, start + Vec3{0.9, 0.0, 0.0}, 0.1));
    const auto profile = signal::preprocess(samples);

    // Known relative motion: displacement since the first read.
    std::vector<core::TagScanPoint> scan;
    for (const auto& pt : profile) {
      scan.push_back({pt.position - start, pt.phase});
    }
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.method = core::SolveMethod::kIterativeReweighted;
    cfg.side_hint = Vec3{0.0, 0.0, 0.0};  // parcels are on the belt plane
    const auto fix =
        core::locate_tag_start(cal.estimated_center, scan, cfg);

    const double err_x = std::abs(fix.position[0] - start[0]);
    const double err_y = std::abs(fix.position[1] - start[1]);
    const double err = std::hypot(err_x, err_y);
    total_err += err;
    std::printf("%-8d %-16.1f %-16.1f %-10.2f\n", parcel, start[0] * 100.0,
                fix.position[0] * 100.0, err * 100.0);
  }
  std::printf("\nmean slot error: %.2f cm over %d parcels\n",
              total_err / parcels * 100.0, parcels);
  return total_err / parcels < 0.05 ? 0 : 1;
}
