// Golden regression fixtures: three checked-in reader streams with their
// expected CalibrationReport serializations. A solver refactor that moves
// any reported number by more than 1e-9 fails here — deliberate accuracy
// changes must regenerate the fixtures (and show up in review as a data
// diff):
//
//     LION_REGEN_GOLDEN=1 ./lion_test_golden
//
// rewrites tests/data/golden_*.json from the current solver output.
//
// Fixture provenance (tests/data/README.md): streams simulated with the
// built-in testbed at a 3x subsample, physical center (0, 0.8, 0), solver
// = library-default RobustCalibrationConfig.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "io/csv.hpp"
#include "io/report_json.hpp"

namespace lion {
namespace {

constexpr double kTolerance = 1e-9;

std::string data_path(const std::string& name) {
  return std::string(LION_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Split a JSON string into a numeric-free skeleton plus the numbers in
// order of appearance, so two serializations can be compared with exact
// structure and 1e-9 numeric tolerance.
struct ParsedJson {
  std::string skeleton;
  std::vector<double> numbers;
};

ParsedJson parse_numbers(const std::string& s) {
  ParsedJson out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])));
    if (starts_number) {
      char* end = nullptr;
      out.numbers.push_back(std::strtod(s.c_str() + i, &end));
      out.skeleton += '#';
      i = static_cast<std::size_t>(end - s.c_str());
    } else {
      out.skeleton += c;
      ++i;
    }
  }
  return out;
}

void expect_json_near(const std::string& expected, const std::string& actual,
                      const std::string& fixture) {
  const auto e = parse_numbers(expected);
  const auto a = parse_numbers(actual);
  ASSERT_EQ(e.skeleton, a.skeleton)
      << fixture << ": report structure/status drifted";
  ASSERT_EQ(e.numbers.size(), a.numbers.size()) << fixture;
  for (std::size_t i = 0; i < e.numbers.size(); ++i) {
    const double tol =
        kTolerance +
        kTolerance * std::max(std::abs(e.numbers[i]), std::abs(a.numbers[i]));
    EXPECT_NEAR(e.numbers[i], a.numbers[i], tol)
        << fixture << ": number " << i << " drifted beyond 1e-9";
  }
}

void check_fixture(const std::string& stem) {
  const auto samples = io::read_samples_csv_file(data_path(stem + ".csv"));
  ASSERT_FALSE(samples.empty()) << stem;
  const auto report =
      core::calibrate_antenna_robust(samples, {0.0, 0.8, 0.0});
  const std::string actual = io::report_json(report);

  if (std::getenv("LION_REGEN_GOLDEN")) {
    std::ofstream f(data_path(stem + ".json"));
    ASSERT_TRUE(f.good()) << "cannot write " << stem << ".json";
    f << actual << "\n";
    GTEST_SKIP() << "regenerated " << stem << ".json";
  }

  std::string expected = read_file(data_path(stem + ".json"));
  // Tolerate a trailing newline in the checked-in file.
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r')) {
    expected.pop_back();
  }
  expect_json_near(expected, actual, stem);
}

TEST(Golden, ThreeLineRigScan) { check_fixture("golden_rig"); }

TEST(Golden, SingleLineScanDegradesTo2D) { check_fixture("golden_line"); }

TEST(Golden, TurntableCircleScan) { check_fixture("golden_circle"); }

// The serializer itself is pinned: a format change invalidates every
// fixture at once, so make it loud and local.
TEST(Golden, SerializerFormatIsStable) {
  core::CalibrationReport r;
  r.status = core::CalibrationStatus::kDegraded2D;
  r.center.estimated_center = {0.125, -0.5, 2.0};
  r.center.displacement = {0.0625, 0.0, -1.0};
  r.phase_offset = 1.5;
  r.diagnostics.sanitize.input = 10;
  r.diagnostics.sanitize.kept = 9;
  r.diagnostics.sanitize.dropped_nonfinite = 1;
  r.diagnostics.profile_points = 9;
  r.diagnostics.condition = 42.0;
  r.diagnostics.inlier_fraction = 0.75;
  r.diagnostics.mean_residual = 0.0;
  r.diagnostics.rms_residual = 0.25;
  r.diagnostics.position_sigma = 0.0009765625;
  r.diagnostics.message = "planar fallback \"quoted\"";
  EXPECT_EQ(
      io::report_json(r),
      "{\"status\":\"degraded_2d\","
      "\"estimated_center\":[0.125,-0.5,2],"
      "\"displacement\":[0.0625,0,-1],"
      "\"phase_offset\":1.5,"
      "\"sanitize\":{\"input\":10,\"kept\":9,\"dropped_nonfinite\":1,"
      "\"dropped_duplicate\":0,\"reordered\":0,\"rewrapped\":0},"
      "\"profile_points\":9,"
      "\"condition\":42,"
      "\"inlier_fraction\":0.75,"
      "\"mean_residual\":0,"
      "\"rms_residual\":0.25,"
      "\"position_sigma\":0.0009765625,"
      "\"message\":\"planar fallback \\\"quoted\\\"\"}");
}

}  // namespace
}  // namespace lion
