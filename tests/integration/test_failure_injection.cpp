// Failure-injection tests: read misses, impulsive phase corruption, heavy
// multipath, position (ruler) error, and degenerate scans. The pipeline
// must either degrade gracefully or fail loudly — never return a silently
// wild answer for a recoverable fault.

#include <gtest/gtest.h>

#include <cmath>

#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using linalg::Vec3;

sim::Scenario make_scenario(std::uint64_t seed, sim::ReaderConfig rc = {},
                            sim::EnvironmentKind env =
                                sim::EnvironmentKind::kLabClean) {
  return sim::Scenario::Builder{}
      .environment(env)
      .add_antenna({0.0, 0.8, 0.0})
      .add_tag()
      .reader_config(rc)
      .seed(seed)
      .build();
}

sim::ThreeLineRig default_rig() {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  return rig;
}

TEST(FailureInjection, ReadMissesToleratedUpTo40Percent) {
  sim::ReaderConfig rc;
  rc.miss_probability = 0.4;
  auto scenario = make_scenario(1, rc);
  const auto profile =
      signal::preprocess(scenario.sweep(0, 0, default_rig().build()));
  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.025);
}

TEST(FailureInjection, ImpulsiveCorruptionFilteredByPreprocessing) {
  auto scenario = make_scenario(2);
  auto samples = scenario.sweep(0, 0, default_rig().build());
  // Corrupt 2% of reads with random phase impulses (tag collisions /
  // decode errors).
  rf::Rng rng(99);
  for (auto& s : samples) {
    if (rng.bernoulli(0.02)) s.phase = rng.uniform(0.0, rf::kTwoPi);
  }
  signal::PreprocessConfig pc;
  pc.outlier_threshold = 1.0;
  const auto profile = signal::preprocess(samples, pc);
  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.03);
}

TEST(FailureInjection, HarshMultipathDegradesButStaysBounded) {
  auto scenario = make_scenario(3, {}, sim::EnvironmentKind::kLabHarsh);
  const auto profile =
      signal::preprocess(scenario.sweep(0, 0, default_rig().build()));
  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  // Bounded: still inside a 10 cm ball even in the harsh lab.
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.10);
}

TEST(FailureInjection, RulerErrorOnTagPositionsDegradesGracefully) {
  sim::ReaderConfig rc;
  rc.position_jitter_m = 0.002;  // 2 mm commanded-position error
  auto scenario = make_scenario(4, rc);
  const auto profile =
      signal::preprocess(scenario.sweep(0, 0, default_rig().build()));
  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.03);
}

TEST(FailureInjection, WlsBeatsLsUnderLocalizedCorruption) {
  // Corrupt a contiguous chunk of the scan (a multipath hot zone). WLS
  // should beat plain LS on average (the paper's Fig. 15 claim).
  double ls_total = 0.0;
  double wls_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rf::Rng rng(seed * 1000);
    const Vec3 target{0.0, 0.8, 0.0};
    signal::PhaseProfile profile;
    for (double y : {0.0, -0.2}) {
      for (double x = -0.55; x <= 0.55 + 1e-12; x += 0.005) {
        const Vec3 pos{x, y, 0.0};
        double phase = rf::distance_phase(linalg::distance(pos, target)) +
                       rng.gaussian(0.05);
        // Hot zone: a narrow slice gets a strong coherent bias — large
        // enough that the affected equations stand out as residual
        // outliers (the regime Gaussian reweighting is built for).
        if (x > 0.4 && x < 0.5) phase += 1.5;
        profile.push_back({pos, phase, 0.0});
      }
    }
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.method = core::SolveMethod::kLeastSquares;
    ls_total += linalg::distance(
        core::LinearLocalizer(cfg).locate(profile).position, target);
    cfg.method = core::SolveMethod::kIterativeReweighted;
    wls_total += linalg::distance(
        core::LinearLocalizer(cfg).locate(profile).position, target);
  }
  EXPECT_LT(wls_total, ls_total);
}

TEST(FailureInjection, DegenerateScansFailLoudly) {
  core::LocalizerConfig cfg2;
  cfg2.target_dim = 2;
  const core::LinearLocalizer loc2(cfg2);

  // All samples at one point: no frame.
  signal::PhaseProfile stuck;
  for (int i = 0; i < 50; ++i) stuck.push_back({{0.1, 0.2, 0.0}, 0.0, 0.0});
  EXPECT_THROW(loc2.locate(stuck), std::invalid_argument);

  // Empty profile.
  EXPECT_THROW(loc2.locate({}), std::invalid_argument);

  // 3D from a single line (deficit 2).
  core::LocalizerConfig cfg3;
  cfg3.target_dim = 3;
  signal::PhaseProfile line;
  for (double x = -0.5; x <= 0.5; x += 0.01) {
    line.push_back({{x, 0.0, 0.0}, 0.0, 0.0});
  }
  EXPECT_THROW(core::LinearLocalizer(cfg3).locate(line),
               std::invalid_argument);
}

TEST(FailureInjection, SaturatedNoiseDoesNotCrash) {
  // Pure-noise phases: the solve must complete (garbage in, bounded
  // garbage out — no exceptions, no NaNs).
  rf::Rng rng(17);
  signal::PhaseProfile profile;
  for (double y : {0.0, -0.2}) {
    for (double x = -0.5; x <= 0.5; x += 0.01) {
      profile.push_back({{x, y, 0.0}, rng.uniform(0.0, 1000.0), 0.0});
    }
  }
  core::LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto r = core::LinearLocalizer(cfg).locate(profile);
  EXPECT_TRUE(std::isfinite(r.position[0]));
  EXPECT_TRUE(std::isfinite(r.position[1]));
  EXPECT_TRUE(std::isfinite(r.reference_distance));
}

TEST(FailureInjection, AdaptiveSweepSurvivesPartiallyBrokenWindows) {
  auto scenario = make_scenario(8);
  const auto profile =
      signal::preprocess(scenario.sweep(0, 0, default_rig().build()));
  core::AdaptiveConfig cfg;
  cfg.base.target_dim = 3;
  cfg.base.side_hint = Vec3{0.0, 0.8, 0.0};
  // Include windows that cannot work (tiny range) alongside good ones.
  cfg.ranges = {0.02, 0.05, 0.8, 1.0};
  cfg.intervals = {0.2, 0.25};
  const auto r = core::locate_adaptive(profile, cfg);
  EXPECT_LT(linalg::distance(r.position,
                             scenario.antennas()[0].phase_center()),
            0.05);
}

TEST(FailureInjection, QuantizationOnlyAddsSubMillimetreError) {
  // 12-bit phase quantization alone (no other noise) must not matter.
  rf::NoiseModel nm;
  nm.phase_sigma = 0.0;
  nm.off_beam_gain = 0.0;
  nm.quantization_steps = 4096;
  auto scenario = sim::Scenario::Builder{}
                      .channel(rf::Channel(nm, {}))
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(9)
                      .build();
  const auto profile =
      signal::preprocess(scenario.sweep(0, 0, default_rig().build()));
  core::LocalizerConfig cfg;
  cfg.target_dim = 3;
  cfg.pair_interval = 0.2;
  const auto r = core::LinearLocalizer(cfg).locate(profile);
  EXPECT_LT(linalg::distance(r.position,
                             scenario.antennas()[0].phase_center()),
            0.002);
}

}  // namespace
}  // namespace lion
