// Parameterized property sweeps over the 3D localizer, the calibration
// pipeline across a fleet of antenna units, and the baselines' noise
// robustness.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/hyperbola.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using linalg::Vec3;

signal::PhaseProfile three_line_profile(const Vec3& target, double sigma,
                                        std::uint64_t seed) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  auto add_line = [&](double y, double z) {
    for (double x = -0.55; x <= 0.55 + 1e-12; x += 0.005) {
      const Vec3 pos{x, y, z};
      p.push_back({pos,
                   rf::distance_phase(linalg::distance(pos, target)) +
                       rng.gaussian(sigma),
                   0.0});
    }
  };
  add_line(0.0, 0.0);
  add_line(0.0, 0.2);
  add_line(-0.2, 0.0);
  return p;
}

// ---------------------------------------------------------------------
// Property: full-rank 3D localization across a grid of antenna positions.
// ---------------------------------------------------------------------

class AntennaPlacement3D
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(AntennaPlacement3D, LocatesWithinThreeCm) {
  const auto [x, y, z] = GetParam();
  const Vec3 target{x, y, z};
  const auto profile = three_line_profile(target, 0.1, 31);
  core::LocalizerConfig cfg;
  cfg.target_dim = 3;
  cfg.pair_interval = 0.2;
  const auto r = core::LinearLocalizer(cfg).locate(profile);
  EXPECT_EQ(r.trajectory_rank, 3u);
  EXPECT_LT(linalg::distance(r.position, target), 0.03)
      << "antenna (" << x << ", " << y << ", " << z << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Grid3D, AntennaPlacement3D,
    ::testing::Combine(::testing::Values(-0.2, 0.0, 0.3),
                       ::testing::Values(0.6, 0.9),
                       ::testing::Values(-0.1, 0.0, 0.15)));

// ---------------------------------------------------------------------
// Property: the full calibration pipeline recovers the hidden phase
// center across a fleet of distinct antenna units.
// ---------------------------------------------------------------------

class CalibrationFleet : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CalibrationFleet, RecoversUnitDisplacement) {
  const std::uint32_t unit = GetParam();
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna(rf::make_antenna({0.0, 0.8, 0.0}, unit))
                      .add_tag()
                      .seed(1000 + unit)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto profile = signal::preprocess(scenario.sweep(0, 0, rig.build()));
  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  const double err =
      linalg::distance(cal.estimated_center, antenna.phase_center());
  EXPECT_LT(err, 0.02) << "unit " << unit;
  // Calibration must beat assuming the physical center.
  EXPECT_LT(err, antenna.phase_center_displacement.norm()) << "unit " << unit;
}

INSTANTIATE_TEST_SUITE_P(Units, CalibrationFleet,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u));

// ---------------------------------------------------------------------
// Property: 3D lower-dimension recovery (planar scan) works across
// heights on both sides of the scan plane.
// ---------------------------------------------------------------------

class PlanarRecovery3D : public ::testing::TestWithParam<double> {};

TEST_P(PlanarRecovery3D, RecoversHeight) {
  const double z = GetParam();
  const Vec3 target{0.0, 0.8, z};
  rf::Rng rng(17);
  signal::PhaseProfile p;
  for (double y : {0.0, -0.2}) {
    for (double x = -0.55; x <= 0.55 + 1e-12; x += 0.005) {
      const Vec3 pos{x, y, 0.0};
      p.push_back({pos,
                   rf::distance_phase(linalg::distance(pos, target)) +
                       rng.gaussian(0.05),
                   0.0});
    }
  }
  core::LocalizerConfig cfg;
  cfg.target_dim = 3;
  cfg.pair_interval = 0.2;
  cfg.side_hint = Vec3{0.0, 0.8, z};
  const auto r = core::LinearLocalizer(cfg).locate(p);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_LT(std::abs(r.position[2] - z), 0.05) << "z " << z;
}

INSTANTIATE_TEST_SUITE_P(Heights, PlanarRecovery3D,
                         ::testing::Values(-0.3, -0.15, 0.15, 0.3));

// ---------------------------------------------------------------------
// Property: LION degrades no faster than the hyperbola baseline as noise
// grows (they consume the same pairs; LION's linearization must not cost
// robustness).
// ---------------------------------------------------------------------

class NoiseParityWithHyperbola : public ::testing::TestWithParam<double> {};

TEST_P(NoiseParityWithHyperbola, ComparableAccuracy) {
  const double sigma = GetParam();
  const Vec3 target{0.1, 0.8, 0.0};
  double lion_total = 0.0;
  double hyper_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rf::Rng rng(seed * 97);
    signal::PhaseProfile p;
    for (double y : {0.0, -0.2}) {
      for (double x = -0.5; x <= 0.5 + 1e-12; x += 0.005) {
        const Vec3 pos{x, y, 0.0};
        p.push_back({pos,
                     rf::distance_phase(linalg::distance(pos, target)) +
                         rng.gaussian(sigma),
                     0.0});
      }
    }
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    lion_total +=
        linalg::distance(core::LinearLocalizer(cfg).locate(p).position,
                         target);
    const auto pairs = core::spread_pairs(p, 0.2, 600, 2);
    baseline::HyperbolaConfig hcfg;
    hcfg.initial_guess = {0.0, 0.5, 0.0};
    hyper_total += linalg::distance(
        baseline::locate_hyperbola(p, pairs, hcfg).position, target);
  }
  EXPECT_LT(lion_total, 2.0 * hyper_total + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseParityWithHyperbola,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

// ---------------------------------------------------------------------
// Property: offset calibration is consistent across scan geometries — the
// same antenna/tag pair must yield the same offset whether calibrated from
// a rig scan or a plain line scan.
// ---------------------------------------------------------------------

class OffsetGeometryInvariance : public ::testing::TestWithParam<int> {};

TEST_P(OffsetGeometryInvariance, RigAndLineAgree) {
  const int unit = GetParam();
  auto scenario =
      sim::Scenario::Builder{}
          .environment(sim::EnvironmentKind::kLabClean)
          .add_antenna(rf::make_antenna({0.0, 0.8, 0.0},
                                        static_cast<std::uint32_t>(unit)))
          .add_tag()
          .seed(4000 + static_cast<std::uint64_t>(unit))
          .build();
  const Vec3 center = scenario.antennas()[0].phase_center();

  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto rig_samples = scenario.sweep(0, 0, rig.build());
  const auto line_samples = scenario.sweep(
      0, 0, sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1));

  const double rig_offset = core::calibrate_phase_offset(rig_samples, center);
  const double line_offset =
      core::calibrate_phase_offset(line_samples, center);
  EXPECT_LT(rf::circular_distance(rig_offset, line_offset), 0.15)
      << "unit " << unit;
}

INSTANTIATE_TEST_SUITE_P(Units, OffsetGeometryInvariance,
                         ::testing::Values(2, 4, 9));

}  // namespace
}  // namespace lion
