// Property-style parameterized sweeps over the localization invariants:
// whatever the geometry, noise seed, solve method, or trajectory shape,
// the estimator must stay within physically-justified error bounds and its
// invariants (mirror symmetry, translation equivariance) must hold.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

signal::PhaseProfile synthetic(const std::vector<Vec3>& positions,
                               const Vec3& target, double sigma,
                               std::uint64_t seed) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.3 + rng.gaussian(sigma), 0.0});
  }
  return p;
}

std::vector<Vec3> two_line_positions(double span = 0.6) {
  std::vector<Vec3> ps;
  for (double x = -span; x <= span + 1e-12; x += 0.005) {
    ps.push_back({x, 0.0, 0.0});
    ps.push_back({x, -0.2, 0.0});
  }
  return ps;
}

// ---------------------------------------------------------------------
// Property: 2D localization stays accurate across antenna placements.
// ---------------------------------------------------------------------

class AntennaPlacement2D
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AntennaPlacement2D, LocatesWithinTwoCm) {
  const auto [x, y] = GetParam();
  const Vec3 target{x, y, 0.0};
  const auto profile = synthetic(two_line_positions(), target, 0.1, 11);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kWeightedLeastSquares;
  const auto r = LinearLocalizer(cfg).locate(profile);
  // Error grows with depth (geometric dilution); 3.5 cm covers the whole
  // 0.6-1.2 m grid under the paper's default N(0, 0.1) noise.
  EXPECT_LT(linalg::distance(r.position, target), 0.035)
      << "antenna at (" << x << ", " << y << ")";
}

INSTANTIATE_TEST_SUITE_P(
    PlacementGrid, AntennaPlacement2D,
    ::testing::Combine(::testing::Values(-0.3, -0.1, 0.0, 0.2, 0.4),
                       ::testing::Values(0.6, 0.8, 1.0, 1.2)));

// ---------------------------------------------------------------------
// Property: every solve method handles the paper's default noise.
// ---------------------------------------------------------------------

class SolveMethodSweep
    : public ::testing::TestWithParam<std::tuple<SolveMethod, int>> {};

TEST_P(SolveMethodSweep, AccurateUnderDefaultNoise) {
  const auto [method, seed] = GetParam();
  const Vec3 target{0.1, 0.9, 0.0};
  const auto profile = synthetic(two_line_positions(), target, 0.1,
                                 static_cast<std::uint64_t>(seed));
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = method;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_LT(linalg::distance(r.position, target), 0.03)
      << solve_method_name(method) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, SolveMethodSweep,
    ::testing::Combine(::testing::Values(SolveMethod::kLeastSquares,
                                         SolveMethod::kWeightedLeastSquares,
                                         SolveMethod::kIterativeReweighted),
                       ::testing::Values(1, 2, 3, 4, 5)));

// ---------------------------------------------------------------------
// Property: error scales (roughly) with the phase-noise level.
// ---------------------------------------------------------------------

class NoiseScaling : public ::testing::TestWithParam<double> {};

TEST_P(NoiseScaling, ErrorBoundedByNoiseProportionalEnvelope) {
  const double sigma = GetParam();
  const Vec3 target{0.0, 0.8, 0.0};
  double total = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const auto profile = synthetic(two_line_positions(), target, sigma,
                                   100 + static_cast<std::uint64_t>(t));
    LocalizerConfig cfg;
    cfg.target_dim = 2;
    const auto r = LinearLocalizer(cfg).locate(profile);
    total += linalg::distance(r.position, target);
  }
  const double avg = total / trials;
  // Envelope: 1 mm floor + ~20 cm of error per radian of noise.
  EXPECT_LT(avg, 0.001 + 0.2 * sigma) << "sigma " << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseScaling,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.2));

// ---------------------------------------------------------------------
// Property: translation equivariance — shifting the whole scene shifts
// the estimate by the same amount.
// ---------------------------------------------------------------------

class TranslationEquivariance : public ::testing::TestWithParam<double> {};

TEST_P(TranslationEquivariance, EstimateShiftsWithScene) {
  const double shift = GetParam();
  const Vec3 offset{shift, shift / 2.0, 0.0};
  const Vec3 target{0.1, 0.8, 0.0};

  const auto base_positions = two_line_positions();
  std::vector<Vec3> shifted_positions;
  for (const auto& p : base_positions) shifted_positions.push_back(p + offset);

  // Same noise stream for both scenes.
  const auto base = synthetic(base_positions, target, 0.05, 42);
  const auto shifted =
      synthetic(shifted_positions, target + offset, 0.05, 42);

  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto r0 = LinearLocalizer(cfg).locate(base);
  const auto r1 = LinearLocalizer(cfg).locate(shifted);
  // Not bit-exact: last-ulp differences in the shifted arc lengths can
  // flip a borderline pair in or out of the ladder. Sub-millimetre
  // agreement is the meaningful invariant.
  EXPECT_LT(linalg::distance(r1.position, r0.position + offset), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shifts, TranslationEquivariance,
                         ::testing::Values(-2.0, -0.5, 0.7, 3.0));

// ---------------------------------------------------------------------
// Property: the reference-sample choice does not change the answer
// (only d_r is redefined).
// ---------------------------------------------------------------------

class ReferenceInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReferenceInvariance, PositionIndependentOfReference) {
  const Vec3 target{0.0, 0.9, 0.0};
  const auto profile = synthetic(two_line_positions(), target, 0.0, 1);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.reference_index = GetParam() % profile.size();
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_LT(linalg::distance(r.position, target), 1e-5);
  EXPECT_NEAR(
      r.reference_distance,
      linalg::distance(target, profile[*cfg.reference_index].position), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Refs, ReferenceInvariance,
                         ::testing::Values(0u, 17u, 111u, 399u, 480u));

// ---------------------------------------------------------------------
// Property: lower-dimension recovery works for any antenna side and
// perpendicular offset.
// ---------------------------------------------------------------------

class LowerDimRecovery
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LowerDimRecovery, RecoversPerpendicularCoordinate) {
  const auto [perp, x_off] = GetParam();
  const Vec3 target{x_off, perp, 0.0};
  std::vector<Vec3> line;
  for (double x = -0.4; x <= 0.4 + 1e-12; x += 0.004) {
    line.push_back({x, 0.0, 0.0});
  }
  const auto profile = synthetic(line, target, 0.0, 3);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, perp, 0.0};
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_LT(linalg::distance(r.position, target), 5e-4)
      << "perp " << perp << " x " << x_off;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LowerDimRecovery,
    ::testing::Combine(::testing::Values(-1.2, -0.6, 0.7, 1.5),
                       ::testing::Values(-0.2, 0.0, 0.3)));

// ---------------------------------------------------------------------
// Property: pairing interval sweep — all reasonable intervals give a fix,
// and longer intervals are at least as good under noise (Fig. 18 trend).
// ---------------------------------------------------------------------

class IntervalSweep : public ::testing::TestWithParam<double> {};

TEST_P(IntervalSweep, ProducesReasonableFix) {
  const double interval = GetParam();
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = synthetic(two_line_positions(), target, 0.1, 7);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.pair_interval = interval;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_LT(linalg::distance(r.position, target), 0.06)
      << "interval " << interval;
}

INSTANTIATE_TEST_SUITE_P(Intervals, IntervalSweep,
                         ::testing::Values(0.10, 0.15, 0.20, 0.25, 0.30,
                                           0.35));

}  // namespace
}  // namespace lion::core
