// Full-pipeline integration tests: simulated testbed -> reader stream ->
// preprocessing -> LION calibration / localization, with the hidden ground
// truth as the oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/hologram.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using linalg::Vec3;

TEST(EndToEnd, FullCalibrationPipelineLabClean) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(101)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto samples = scenario.sweep(0, 0, rig.build());
  ASSERT_GT(samples.size(), 1000u);
  const auto profile = signal::preprocess(samples);

  const auto& antenna = scenario.antennas()[0];
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, {});
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.015);

  const double offset =
      core::calibrate_phase_offset(samples, cal.estimated_center);
  const double truth = rf::wrap_phase(antenna.reader_offset_rad +
                                      scenario.tags()[0].tag_offset_rad);
  EXPECT_LT(rf::circular_distance(offset, truth), 0.6);
}

TEST(EndToEnd, CalibrationBeatsPhysicalCenterAssumption) {
  // The point of the paper: using the estimated center must be better than
  // using the physical center, across several antennas.
  double est_total = 0.0;
  double phys_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto scenario = sim::Scenario::Builder{}
                        .environment(sim::EnvironmentKind::kLabClean)
                        .add_antenna({0.0, 0.8, 0.0})
                        .add_tag()
                        .seed(seed * 31)
                        .build();
    sim::ThreeLineRig rig;
    rig.x_min = -0.55;
    rig.x_max = 0.55;
    const auto profile = signal::preprocess(scenario.sweep(0, 0, rig.build()));
    const auto& antenna = scenario.antennas()[0];
    const auto cal =
        core::calibrate_phase_center(profile, antenna.physical_center, {});
    est_total +=
        linalg::distance(cal.estimated_center, antenna.phase_center());
    phys_total +=
        linalg::distance(antenna.physical_center, antenna.phase_center());
  }
  EXPECT_LT(est_total, 0.6 * phys_total);
}

TEST(EndToEnd, LionMatchesHologramOnSameData) {
  // Fig. 6's claim: comparable accuracy, far less work.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kFreeSpace)
                      .add_antenna({0.0, 1.0, 0.0})
                      .add_tag()
                      .seed(303)
                      .build();
  // Make the hidden quirks irrelevant for this head-to-head: both methods
  // estimate the same (phase-center) target.
  const auto& antenna = scenario.antennas()[0];
  const Vec3 truth = antenna.phase_center();

  sim::CircularTrajectory traj({0.0, 0.0, 0.0}, 0.3, {0.0, 0.0, 1.0}, 0.6);
  const auto profile = signal::preprocess(scenario.sweep(0, 0, traj));

  core::LocalizerConfig lcfg;
  lcfg.target_dim = 2;
  lcfg.pair_interval = 0.25;
  const auto lion_fix = core::LinearLocalizer(lcfg).locate(profile);

  baseline::HologramConfig hcfg;
  hcfg.min_corner = {truth[0] - 0.1, truth[1] - 0.1, 0.0};
  hcfg.max_corner = {truth[0] + 0.1, truth[1] + 0.1, 0.0};
  hcfg.grid_size = 0.002;
  const auto holo_fix = baseline::locate_hologram(profile, hcfg);

  const Vec3 truth_plane{truth[0], truth[1], 0.0};
  const double lion_err = linalg::distance(
      {lion_fix.position[0], lion_fix.position[1], 0.0}, truth_plane);
  const double holo_err = linalg::distance(
      {holo_fix.position[0], holo_fix.position[1], 0.0}, truth_plane);
  EXPECT_LT(lion_err, 0.05);
  EXPECT_LT(std::abs(lion_err - holo_err), 0.05);
}

TEST(EndToEnd, ConveyorTagTrackingWithCalibratedAntenna) {
  // Sec. V-C2: calibrate first, then track a tag on a conveyor.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(404)
                      .build();
  const auto& antenna = scenario.antennas()[0];

  // Calibration scan.
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto cal_profile =
      signal::preprocess(scenario.sweep(0, 0, rig.build()));
  const auto cal = core::calibrate_phase_center(
      cal_profile, antenna.physical_center, {});

  // Conveyor pass: tag from (-0.4, 0, 0) moving +x.
  const Vec3 start{-0.4, 0.0, 0.0};
  sim::LinearTrajectory conveyor(start, {0.4, 0.0, 0.0}, 0.1);
  const auto track_profile =
      signal::preprocess(scenario.sweep(0, 0, conveyor));

  std::vector<core::TagScanPoint> scan;
  for (const auto& p : track_profile) {
    scan.push_back({p.position - start, p.phase});
  }
  core::LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};
  const auto fix =
      core::locate_tag_start(cal.estimated_center, scan, cfg);
  // Error budget: residual center-calibration error (~1 cm) plus tracking
  // error under lab-clean multipath.
  EXPECT_LT(linalg::distance(fix.position, start), 0.03);
}

TEST(EndToEnd, MultiAntennaOffsetCalibrationImprovesTagFix) {
  // Sec. V-F1 in miniature: three antennas, static tag, DAH fix with and
  // without offset correction.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({-0.3, 0.0, 0.0})
                      .add_antenna({0.0, 0.0, 0.0})
                      .add_antenna({0.3, 0.0, 0.0})
                      .add_tag()
                      .seed(505)
                      .build();
  const Vec3 tag_pos{-0.1, 0.8, 0.0};

  std::vector<baseline::AntennaReading> corrected;
  std::vector<baseline::AntennaReading> uncorrected;
  for (std::size_t a = 0; a < 3; ++a) {
    const auto reads = scenario.read_static(a, 0, tag_pos, 200);
    ASSERT_FALSE(reads.empty());
    std::vector<double> phases;
    for (const auto& r : reads) phases.push_back(r.phase);
    const double phase = rf::circular_mean(phases);

    const auto& ant = scenario.antennas()[a];
    baseline::AntennaReading reading;
    // Use true phase centers so the offset effect is isolated.
    reading.antenna_position = ant.phase_center();
    reading.phase = phase;
    uncorrected.push_back(reading);
    reading.offset = rf::wrap_phase(ant.reader_offset_rad +
                                    scenario.tags()[0].tag_offset_rad);
    corrected.push_back(reading);
  }

  baseline::HologramConfig cfg;
  cfg.min_corner = {-0.4, 0.5, 0.0};
  cfg.max_corner = {0.2, 1.1, 0.0};
  cfg.grid_size = 0.005;
  const auto good = baseline::locate_tag_multi_antenna(corrected, cfg);
  const auto bad = baseline::locate_tag_multi_antenna(uncorrected, cfg);
  EXPECT_LE(linalg::distance(good.position, tag_pos),
            linalg::distance(bad.position, tag_pos) + 0.01);
  EXPECT_LT(linalg::distance(good.position, tag_pos), 0.05);
}

TEST(EndToEnd, StitchedSeparateSweepsMatchContinuousScan) {
  // Drive the three rig lines as separate recordings, stitch, and check
  // the 3D fix is still good.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(606)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  // Separate sweeps including short transit hops recorded continuously:
  // emulate by sweeping the full rig and slicing at the line boundaries.
  const auto full = scenario.sweep(0, 0, rig.build());
  const auto profile = signal::preprocess(full);

  const auto& antenna = scenario.antennas()[0];
  core::AdaptiveConfig cfg;
  const auto cal =
      core::calibrate_phase_center(profile, antenna.physical_center, cfg);
  EXPECT_LT(linalg::distance(cal.estimated_center, antenna.phase_center()),
            0.02);
}

}  // namespace
}  // namespace lion
