// Frequency-hopping integration: US-band readers cycle channels every
// dwell window; the mixed-wavelength stream cannot be unwrapped as one
// sequence, but splitting per channel and localizing each with its own
// wavelength recovers the full accuracy.

#include <gtest/gtest.h>

#include <cmath>

#include "core/lion.hpp"
#include "rf/constants.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using linalg::Vec3;

sim::ReaderConfig hopping_config() {
  sim::ReaderConfig rc;
  rc.hopping = rf::ChannelPlan{rf::kFccPlan.start_hz, rf::kFccPlan.spacing_hz,
                               8};  // 8 FCC channels for test speed
  // Dwell short enough that one channel's bursts are < lambda/4 of tag
  // motion apart (10 cm/s * 7 dwells must stay under ~8 cm), so the
  // per-channel stream remains unwrappable across burst gaps.
  rc.hop_dwell_s = 0.05;
  return rc;
}

std::vector<sim::PhaseSample> hopped_sweep(sim::Scenario& scenario) {
  sim::PiecewiseLinearTrajectory traj(
      {{-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, {0.5, -0.2, 0.0}, {-0.5, -0.2, 0.0}},
      0.1);
  return scenario.sweep(0, 0, traj);
}

TEST(Hopping, StreamCarriesAllChannels) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .reader_config(hopping_config())
                      .seed(71)
                      .build();
  const auto samples = hopped_sweep(scenario);
  const auto channels = signal::channels_present(samples);
  EXPECT_EQ(channels.size(), 8u);
}

TEST(Hopping, NonHoppingStreamIsSingleChannel) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(72)
                      .build();
  const auto samples = hopped_sweep(scenario);
  const auto channels = signal::channels_present(samples);
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0], 0u);
}

TEST(Hopping, SelectChannelKeepsOnlyThatChannel) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .reader_config(hopping_config())
                      .seed(73)
                      .build();
  const auto samples = hopped_sweep(scenario);
  const auto only3 = signal::select_channel(samples, 3);
  ASSERT_FALSE(only3.empty());
  for (const auto& s : only3) EXPECT_EQ(s.channel, 3u);
  EXPECT_LT(only3.size(), samples.size());
}

TEST(Hopping, PerChannelLocalizationIsAccurate) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .reader_config(hopping_config())
                      .seed(74)
                      .build();
  const Vec3 truth = scenario.antennas()[0].phase_center();
  const auto samples = hopped_sweep(scenario);
  const auto plan = *hopping_config().hopping;

  int solved = 0;
  for (std::uint32_t chan : signal::channels_present(samples)) {
    const auto one = signal::select_channel(samples, chan);
    if (one.size() < 200) continue;  // dwell pattern may starve a channel
    const auto profile = signal::preprocess(one);
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    cfg.pair_tolerance = 0.06;  // per-channel streams have dwell gaps
    cfg.wavelength = rf::wavelength(plan.channel_hz(chan));
    try {
      const auto fix = core::LinearLocalizer(cfg).locate(profile);
      const double err = std::hypot(fix.position[0] - truth[0],
                                    fix.position[1] - truth[1]);
      EXPECT_LT(err, 0.05) << "channel " << chan;
      ++solved;
    } catch (const std::exception&) {
      // A channel whose dwell windows never covered enough of the scan.
    }
  }
  EXPECT_GE(solved, 3);
}

TEST(Hopping, ChannelFixesMutuallyConsistent) {
  // Every channel observes the same geometry at its own wavelength, so the
  // per-channel fixes must agree with one another to centimetres — the
  // consistency check a deployment can run without ground truth.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .reader_config(hopping_config())
                      .seed(75)
                      .build();
  const auto samples = hopped_sweep(scenario);
  const auto plan = *hopping_config().hopping;

  std::vector<Vec3> fixes;
  for (std::uint32_t chan : signal::channels_present(samples)) {
    const auto one = signal::select_channel(samples, chan);
    if (one.size() < 200) continue;
    const auto profile = signal::preprocess(one);
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    cfg.pair_tolerance = 0.06;
    cfg.wavelength = rf::wavelength(plan.channel_hz(chan));
    try {
      fixes.push_back(core::LinearLocalizer(cfg).locate(profile).position);
    } catch (const std::exception&) {
    }
  }
  ASSERT_GE(fixes.size(), 3u);
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    for (std::size_t j = i + 1; j < fixes.size(); ++j) {
      const double d = std::hypot(fixes[i][0] - fixes[j][0],
                                  fixes[i][1] - fixes[j][1]);
      EXPECT_LT(d, 0.04) << "channels " << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace lion
