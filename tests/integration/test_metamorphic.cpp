// Metamorphic properties of the calibration pipeline: known input
// transformations must map to known output transformations, whatever the
// random geometry or noise draw. Each property runs ~200 seeded random
// cases — a failure prints the case index and its parameters, and is
// exactly reproducible.
//
//  1. Global phase rotation: adding a constant to every phase leaves the
//     localization unchanged (the linear system uses phase differences
//     only) and rotates the Eq.-17 phase offset by exactly that constant.
//  2. Trajectory translation: translating scan and target together
//     translates the estimate by the same vector.
//  3. Read-order shuffling: sanitize restores chronological order, so a
//     shuffled raw stream yields a bit-identical calibration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "sim/scenario.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

constexpr int kCases = 200;

// Two-line scan profile of a source at `target`, with N(0, sigma) phase
// noise from `rng` and an arbitrary unwrap baseline.
signal::PhaseProfile synthetic_profile(const Vec3& target, double sigma,
                                       double baseline, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, sigma);
  signal::PhaseProfile p;
  for (double x = -0.5; x <= 0.5 + 1e-12; x += 0.005) {
    for (const double y : {0.0, -0.2}) {
      const Vec3 pos{x, y, 0.0};
      const double d = linalg::distance(pos, target);
      p.push_back({pos, rf::distance_phase(d) + baseline +
                            (sigma > 0.0 ? noise(rng) : 0.0),
                   0.0});
    }
  }
  return p;
}

TEST(Metamorphic, GlobalPhaseRotationLeavesPositionInvariant) {
  std::mt19937_64 rng(0xA11CE);
  std::uniform_real_distribution<double> ux(-0.3, 0.3);
  std::uniform_real_distribution<double> uy(0.5, 1.2);
  std::uniform_real_distribution<double> uc(0.0, rf::kTwoPi);
  for (int c = 0; c < kCases; ++c) {
    const Vec3 target{ux(rng), uy(rng), 0.0};
    const double rotation = uc(rng);
    auto noise_rng = rng;  // same noise stream for both variants
    const auto base = synthetic_profile(target, 0.08, 0.0, noise_rng);
    auto rotated = base;
    for (auto& pt : rotated) pt.phase += rotation;

    LocalizerConfig cfg;
    cfg.target_dim = 2;
    const LinearLocalizer loc(cfg);
    const auto r0 = loc.locate(base);
    const auto r1 = loc.locate(rotated);
    EXPECT_LT(linalg::distance(r0.position, r1.position), 1e-6)
        << "case " << c << ": target (" << target[0] << ", " << target[1]
        << "), rotation " << rotation;
  }
}

TEST(Metamorphic, GlobalPhaseRotationRotatesTheOffsetEstimate) {
  std::mt19937_64 rng(0xB0B);
  std::uniform_real_distribution<double> ux(-0.4, 0.4);
  std::uniform_real_distribution<double> uc(0.0, rf::kTwoPi);
  std::uniform_real_distribution<double> uph(0.0, rf::kTwoPi);
  for (int c = 0; c < kCases; ++c) {
    const Vec3 center{ux(rng), 0.8, 0.0};
    const double rotation = uc(rng);
    std::vector<sim::PhaseSample> samples;
    for (int i = 0; i < 40; ++i) {
      sim::PhaseSample s;
      s.t = 0.01 * i;
      s.position = {-0.4 + 0.02 * i, 0.0, 0.0};
      s.phase = uph(rng);
      samples.push_back(s);
    }
    auto rotated = samples;
    for (auto& s : rotated) s.phase = rf::wrap_phase(s.phase + rotation);

    const double o0 = calibrate_phase_offset(samples, center);
    const double o1 = calibrate_phase_offset(rotated, center);
    // Compare on the circle: o1 == o0 + rotation (mod 2*pi).
    const double delta = rf::wrap_phase(o1 - o0 - rotation);
    const double circular_gap = std::min(delta, rf::kTwoPi - delta);
    EXPECT_LT(circular_gap, 1e-9)
        << "case " << c << ": rotation " << rotation;
  }
}

TEST(Metamorphic, TranslationOfSceneTranslatesEstimate) {
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_real_distribution<double> ux(-0.25, 0.25);
  std::uniform_real_distribution<double> uy(0.6, 1.1);
  std::uniform_real_distribution<double> ushift(-3.0, 3.0);
  for (int c = 0; c < kCases; ++c) {
    const Vec3 target{ux(rng), uy(rng), 0.0};
    const Vec3 offset{ushift(rng), ushift(rng), 0.0};
    auto noise_rng = rng;
    const auto base = synthetic_profile(target, 0.05, 0.3, noise_rng);
    auto shifted = base;
    for (auto& pt : shifted) pt.position = pt.position + offset;

    LocalizerConfig cfg;
    cfg.target_dim = 2;
    const LinearLocalizer loc(cfg);
    const auto r0 = loc.locate(base);
    const auto r1 = loc.locate(shifted);
    // Not bit-exact: shifted arc lengths differ in the last ulp, which can
    // flip a borderline pair in or out of the ladder; millimetre agreement
    // is the meaningful invariant (cf. test_properties.cpp).
    EXPECT_LT(linalg::distance(r1.position, r0.position + offset), 2e-3)
        << "case " << c << ": target (" << target[0] << ", " << target[1]
        << "), offset (" << offset[0] << ", " << offset[1] << ")";
  }
}

TEST(Metamorphic, ReadOrderShuffleIsRepairedBitExactly) {
  // Simulated reader streams carry strictly increasing timestamps, so
  // sanitize's stable sort restores exactly the original stream and the
  // whole pipeline must reproduce the estimate bit for bit.
  std::mt19937_64 rng(0xD15C0);
  for (int c = 0; c < kCases; ++c) {
    auto scenario = sim::Scenario::Builder{}
                        .environment(sim::EnvironmentKind::kLabClean)
                        .add_antenna({0.0, 0.8, 0.0})
                        .add_tag()
                        .seed(9000 + static_cast<std::uint64_t>(c))
                        .build();
    const auto samples = scenario.sweep(
        0, 0,
        sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.25));
    auto shuffled = samples;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    const auto p0 = signal::preprocess(samples);
    const auto p1 = signal::preprocess(shuffled);
    ASSERT_EQ(p0.size(), p1.size()) << "case " << c;

    LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.side_hint = Vec3{0.0, 0.8, 0.0};
    const LinearLocalizer loc(cfg);
    const auto r0 = loc.locate(p0);
    const auto r1 = loc.locate(p1);
    EXPECT_EQ(r0.position[0], r1.position[0]) << "case " << c;
    EXPECT_EQ(r0.position[1], r1.position[1]) << "case " << c;
    EXPECT_EQ(r0.position[2], r1.position[2]) << "case " << c;
    EXPECT_EQ(r0.reference_distance, r1.reference_distance) << "case " << c;
  }
}

}  // namespace
}  // namespace lion::core
