#include "rf/phase_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lion::rf {
namespace {

TEST(WrapPhase, AlreadyInRangeIsUnchanged) {
  EXPECT_DOUBLE_EQ(wrap_phase(1.0), 1.0);
  EXPECT_DOUBLE_EQ(wrap_phase(0.0), 0.0);
}

TEST(WrapPhase, WrapsAboveTwoPi) {
  EXPECT_NEAR(wrap_phase(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_phase(5.0 * kTwoPi + 1.0), 1.0, 1e-12);
}

TEST(WrapPhase, WrapsNegative) {
  EXPECT_NEAR(wrap_phase(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_phase(-3.0 * kTwoPi - 1.0), kTwoPi - 1.0, 1e-12);
}

TEST(WrapPhase, ResultAlwaysInRange) {
  for (double x = -20.0; x < 20.0; x += 0.37) {
    const double w = wrap_phase(x);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
  }
}

TEST(WrapPhaseSymmetric, RangeIsMinusPiToPi) {
  for (double x = -20.0; x < 20.0; x += 0.31) {
    const double w = wrap_phase_symmetric(x);
    EXPECT_GT(w, -kPi);
    EXPECT_LE(w, kPi);
  }
}

TEST(WrapPhaseSymmetric, PiMapsToPi) {
  EXPECT_NEAR(wrap_phase_symmetric(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_phase_symmetric(-kPi), kPi, 1e-12);
}

TEST(DistancePhase, MatchesEquationOne) {
  // theta_d = 2*pi/lambda * 2d: one wavelength of one-way distance is two
  // full turns.
  const double lambda = kDefaultWavelength;
  EXPECT_NEAR(distance_phase(lambda, lambda), 2.0 * kTwoPi, 1e-12);
  EXPECT_NEAR(distance_phase(lambda / 4.0, lambda), kPi, 1e-12);
}

TEST(ReportedPhase, SumsDistanceAndOffsetsWrapped) {
  const double lambda = kDefaultWavelength;
  // Half-wavelength one-way: distance term is exactly 2*pi -> wraps to 0.
  const double phase = reported_phase(lambda / 2.0, 0.3, 0.4, lambda);
  EXPECT_NEAR(phase, 0.7, 1e-12);
}

TEST(ReportedPhase, InRange) {
  for (double d = 0.1; d < 3.0; d += 0.1) {
    const double p = reported_phase(d, 1.0, 2.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, kTwoPi);
  }
}

TEST(PhaseDistanceConversion, RoundTrips) {
  const double delta_d = 0.042;
  const double phase = distance_delta_to_phase(delta_d);
  EXPECT_NEAR(phase_to_distance_delta(phase), delta_d, 1e-15);
}

TEST(PhaseDistanceConversion, Eq6Constant) {
  // delta_d = lambda/(4 pi) * delta_theta.
  EXPECT_NEAR(phase_to_distance_delta(4.0 * kPi, 1.0), 1.0, 1e-15);
  EXPECT_NEAR(distance_delta_to_phase(1.0, 1.0), 4.0 * kPi, 1e-15);
}

TEST(CircularDistance, HandlesWrapAround) {
  EXPECT_NEAR(circular_distance(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(circular_distance(0.0, kPi), kPi, 1e-12);
  EXPECT_NEAR(circular_distance(1.0, 1.0), 0.0, 1e-12);
}

TEST(CircularDistance, Symmetric) {
  EXPECT_NEAR(circular_distance(0.3, 5.9), circular_distance(5.9, 0.3),
              1e-12);
}

TEST(CircularMean, SimpleAverage) {
  EXPECT_NEAR(circular_mean({0.9, 1.1}), 1.0, 1e-12);
}

TEST(CircularMean, HandlesWrapAround) {
  // Angles straddling 0: mean should be 0 (or 2*pi), not pi.
  const double m = circular_mean({0.1, kTwoPi - 0.1});
  EXPECT_LT(std::min(m, kTwoPi - m), 1e-9);
}

TEST(CircularMean, EmptyThrows) {
  EXPECT_THROW(circular_mean({}), std::invalid_argument);
}

TEST(Wavelength, DefaultCarrierIsAbout32cm) {
  EXPECT_NEAR(kDefaultWavelength, 0.3257, 0.001);
}

TEST(ChannelPlans, ChannelFrequencies) {
  EXPECT_DOUBLE_EQ(kFccPlan.channel_hz(0), 902.75e6);
  EXPECT_DOUBLE_EQ(kFccPlan.channel_hz(49), 902.75e6 + 49 * 500e3);
  EXPECT_DOUBLE_EQ(kChinaPlan.channel_hz(0), kDefaultFrequencyHz);
}

}  // namespace
}  // namespace lion::rf
