#include "rf/antenna.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"

namespace lion::rf {
namespace {

TEST(Antenna, PhaseCenterIsPhysicalPlusDisplacement) {
  Antenna a;
  a.physical_center = {1.0, 2.0, 3.0};
  a.phase_center_displacement = {0.01, -0.02, 0.005};
  const Vec3 pc = a.phase_center();
  EXPECT_DOUBLE_EQ(pc[0], 1.01);
  EXPECT_DOUBLE_EQ(pc[1], 1.98);
  EXPECT_DOUBLE_EQ(pc[2], 3.005);
}

TEST(Antenna, OffBoresightAngleOnAxisIsZero) {
  Antenna a;  // at origin, facing -y
  EXPECT_NEAR(a.off_boresight_angle({0.0, -1.0, 0.0}), 0.0, 1e-12);
}

TEST(Antenna, OffBoresightAnglePerpendicularIsHalfPi) {
  Antenna a;
  EXPECT_NEAR(a.off_boresight_angle({1.0, 0.0, 0.0}), kPi / 2.0, 1e-12);
}

TEST(Antenna, OffBoresightAngleBehindIsPi) {
  Antenna a;
  EXPECT_NEAR(a.off_boresight_angle({0.0, 1.0, 0.0}), kPi, 1e-12);
}

TEST(Antenna, AngleMeasuredFromPhaseCenterNotPhysical) {
  Antenna a;
  a.phase_center_displacement = {0.0, -1.0, 0.0};
  // Point at the physical center: direction from the phase center is +y,
  // opposite the -y boresight.
  EXPECT_NEAR(a.off_boresight_angle({0.0, 0.0, 0.0}), kPi, 1e-12);
}

TEST(Antenna, GainOnBoresightIsOne) {
  Antenna a;
  EXPECT_NEAR(a.field_gain({0.0, -2.0, 0.0}), 1.0, 1e-12);
}

TEST(Antenna, GainAtHalfBeamwidthIsHalfPower) {
  Antenna a;  // 70-degree beam
  const double half = 0.5 * a.beamwidth_rad;
  const Vec3 p{2.0 * std::sin(half), -2.0 * std::cos(half), 0.0};
  EXPECT_NEAR(a.field_gain(p), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(Antenna, GainDecreasesMonotonicallyOffAxis) {
  Antenna a;
  double prev = 2.0;
  for (double deg = 0.0; deg <= 90.0; deg += 10.0) {
    const double rad = deg * kPi / 180.0;
    const Vec3 p{std::sin(rad), -std::cos(rad), 0.0};
    const double g = a.field_gain(p);
    EXPECT_LE(g, prev + 1e-12);
    prev = g;
  }
}

TEST(Antenna, BacklobeFloorBehind) {
  Antenna a;
  EXPECT_NEAR(a.field_gain({0.0, 3.0, 0.0}), 0.1, 1e-12);
}

TEST(Antenna, PatternPhaseZeroInsideMainBeam) {
  Antenna a;
  a.pattern_coefficient = 1.0;
  // 20 degrees off a 70-degree beam: inside the half-beam, no deviation.
  const double rad = 20.0 * kPi / 180.0;
  EXPECT_DOUBLE_EQ(
      a.pattern_phase({std::sin(rad), -std::cos(rad), 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(a.pattern_phase({0.0, -1.0, 0.0}), 0.0);
}

TEST(Antenna, PatternPhaseGrowsQuadraticallyBeyondBeam) {
  Antenna a;
  a.pattern_coefficient = 2.0;
  const double half = 0.5 * a.beamwidth_rad;
  auto at_angle = [&](double angle) {
    return a.pattern_phase({std::sin(angle), -std::cos(angle), 0.0});
  };
  // One half-beam beyond the edge -> coefficient * 1^2.
  EXPECT_NEAR(at_angle(2.0 * half), 2.0, 1e-9);
  // Half of that excess -> quarter of the deviation.
  EXPECT_NEAR(at_angle(1.5 * half), 0.5, 1e-9);
}

TEST(Antenna, PatternPhaseDisabledByDefault) {
  Antenna a;
  EXPECT_DOUBLE_EQ(a.pattern_phase({5.0, 0.0, 0.0}), 0.0);
}

TEST(MakeAntenna, DisplacementMagnitudeInPaperRange) {
  for (std::uint32_t id = 0; id < 16; ++id) {
    const Antenna a = make_antenna({0.0, 1.0, 0.0}, id);
    const double mag = a.phase_center_displacement.norm();
    EXPECT_GE(mag, 0.02) << "antenna " << id;
    EXPECT_LE(mag, 0.03) << "antenna " << id;
  }
}

TEST(MakeAntenna, OffsetInCircle) {
  for (std::uint32_t id = 0; id < 16; ++id) {
    const Antenna a = make_antenna({}, id);
    EXPECT_GE(a.reader_offset_rad, 0.0);
    EXPECT_LT(a.reader_offset_rad, kTwoPi);
  }
}

TEST(MakeAntenna, DeterministicPerId) {
  const Antenna a1 = make_antenna({1.0, 0.0, 0.0}, 3);
  const Antenna a2 = make_antenna({1.0, 0.0, 0.0}, 3);
  EXPECT_EQ(a1.phase_center_displacement, a2.phase_center_displacement);
  EXPECT_EQ(a1.reader_offset_rad, a2.reader_offset_rad);
}

TEST(MakeAntenna, DifferentIdsDiffer) {
  const Antenna a1 = make_antenna({}, 0);
  const Antenna a2 = make_antenna({}, 1);
  EXPECT_NE(a1.reader_offset_rad, a2.reader_offset_rad);
}

TEST(MakeAntenna, SetsIdAndCenter) {
  const Antenna a = make_antenna({0.5, 0.8, 0.1}, 9);
  EXPECT_EQ(a.id, 9u);
  EXPECT_EQ(a.physical_center, (Vec3{0.5, 0.8, 0.1}));
}

}  // namespace
}  // namespace lion::rf
