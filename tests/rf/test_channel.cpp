#include "rf/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/phase_model.hpp"

namespace lion::rf {
namespace {

NoiseModel quiet() {
  NoiseModel n;
  n.phase_sigma = 0.0;
  n.off_beam_gain = 0.0;
  n.quantization_steps = 0;
  return n;
}

TEST(Reflector, MirrorAcrossFloor) {
  Reflector floor{.point = {0.0, 0.0, -1.0}, .normal = {0.0, 0.0, 1.0}};
  const Vec3 img = floor.mirror({1.0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(img[0], 1.0);
  EXPECT_DOUBLE_EQ(img[1], 2.0);
  EXPECT_DOUBLE_EQ(img[2], -2.5);
}

TEST(Reflector, MirrorIsInvolution) {
  Reflector wall{.point = {2.0, 0.0, 0.0}, .normal = {-1.0, 0.0, 0.0}};
  const Vec3 p{0.3, -0.7, 1.1};
  EXPECT_NEAR(linalg::distance(wall.mirror(wall.mirror(p)), p), 0.0, 1e-12);
}

TEST(Reflector, PointOnPlaneIsFixed) {
  Reflector wall{.point = {2.0, 5.0, 0.0}, .normal = {-1.0, 0.0, 0.0}};
  const Vec3 on_plane{2.0, -3.0, 7.0};
  EXPECT_NEAR(linalg::distance(wall.mirror(on_plane), on_plane), 0.0, 1e-12);
}

TEST(Channel, NoiselessFreeSpacePhaseMatchesEquationOne) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  ant.reader_offset_rad = 0.7;
  Tag tag;
  tag.tag_offset_rad = 0.3;
  const Vec3 tag_pos{0.0, 0.0, 0.0};
  const double d = 1.0;
  const double expected = wrap_phase(distance_phase(d) + 0.3 + 0.7);
  EXPECT_NEAR(ch.noiseless_phase(ant, tag, tag_pos), expected, 1e-9);
}

TEST(Channel, PhaseCenterDisplacementShiftsPhase) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Antenna displaced = ant;
  displaced.phase_center_displacement = {0.0, 0.02, 0.0};  // 2 cm deeper
  Tag tag;
  const Vec3 tag_pos{0.0, 0.0, 0.0};
  const double base = ch.noiseless_phase(ant, tag, tag_pos);
  const double shifted = ch.noiseless_phase(displaced, tag, tag_pos);
  // 2 cm extra one-way distance -> 4*pi*0.02/lambda extra phase.
  const double expected =
      wrap_phase(base + distance_delta_to_phase(0.02));
  EXPECT_NEAR(circular_distance(shifted, expected), 0.0, 1e-9);
}

TEST(Channel, PhaseIncreasesWithDistance) {
  // The sign convention must match Eq. (1): moving the tag away increases
  // the unwrapped phase. Check via small (< half wavelength) steps.
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 0.0, 0.0};
  Tag tag;
  double prev = ch.noiseless_phase(ant, tag, {0.0, -0.50, 0.0});
  for (double d = 0.51; d < 0.58; d += 0.01) {
    const double cur = ch.noiseless_phase(ant, tag, {0.0, -d, 0.0});
    double jump = cur - prev;
    while (jump < -kPi) jump += kTwoPi;
    while (jump > kPi) jump -= kTwoPi;
    EXPECT_GT(jump, 0.0) << "at distance " << d;
    prev = cur;
  }
}

TEST(Channel, ObservationCarriesTrueDistance) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 2.0, 0.0};
  Tag tag;
  Rng rng(1);
  const auto obs = ch.read(ant, tag, {0.0, 0.0, 0.0}, rng);
  ASSERT_TRUE(obs.has_value());
  EXPECT_NEAR(obs->true_distance, 2.0, 1e-12);
}

TEST(Channel, NoiselessReadMatchesNoiselessPhase) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.3, 1.2, -0.1};
  Tag tag;
  tag.tag_offset_rad = 1.0;
  Rng rng(2);
  const Vec3 pos{0.0, 0.0, 0.0};
  const auto obs = ch.read(ant, tag, pos, rng);
  ASSERT_TRUE(obs.has_value());
  EXPECT_NEAR(obs->phase, ch.noiseless_phase(ant, tag, pos), 1e-9);
}

TEST(Channel, GaussianNoisePerturbsPhase) {
  NoiseModel n = quiet();
  n.phase_sigma = 0.1;
  Channel ch(n, {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  Rng rng(3);
  const Vec3 pos{0.0, 0.0, 0.0};
  const double clean = ch.noiseless_phase(ant, tag, pos);
  double spread = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto obs = ch.read(ant, tag, pos, rng);
    ASSERT_TRUE(obs);
    spread += std::abs(wrap_phase_symmetric(obs->phase - clean));
  }
  spread /= 100.0;
  EXPECT_GT(spread, 0.02);  // noise present
  EXPECT_LT(spread, 0.5);   // but bounded
}

TEST(Channel, QuantizationSnapsToGrid) {
  NoiseModel n = quiet();
  n.quantization_steps = 4096;
  Channel ch(n, {});
  Antenna ant;
  ant.physical_center = {0.0, 0.83, 0.0};
  Tag tag;
  Rng rng(4);
  const auto obs = ch.read(ant, tag, {0.0, 0.0, 0.0}, rng);
  ASSERT_TRUE(obs);
  const double step = kTwoPi / 4096.0;
  const double ratio = obs->phase / step;
  EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
}

TEST(Channel, MultipathChangesPhase) {
  Channel clean(quiet(), {});
  Channel dirty(quiet(), {Reflector{.point = {0.0, 0.0, -0.5},
                                    .normal = {0.0, 0.0, 1.0},
                                    .coefficient = 0.4}});
  Antenna ant;
  ant.physical_center = {0.0, 1.3, 0.0};
  Tag tag;
  const Vec3 pos{0.2, 0.0, 0.0};
  const double p_clean = clean.noiseless_phase(ant, tag, pos);
  const double p_dirty = dirty.noiseless_phase(ant, tag, pos);
  EXPECT_GT(circular_distance(p_clean, p_dirty), 1e-4);
}

TEST(Channel, NoSpecularPointMeansNoContribution) {
  // Tag on the far side of the reflector plane: the image-tag segment
  // never crosses the plane, so there is no specular bounce (occlusion is
  // not modelled, the path simply does not exist).
  Channel with(quiet(), {Reflector{.point = {0.0, 2.0, 0.0},
                                   .normal = {0.0, -1.0, 0.0},
                                   .coefficient = 0.9}});
  Channel without(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  const Vec3 pos{0.5, 2.5, 0.0};  // beyond the y=2 plane
  EXPECT_NEAR(with.noiseless_phase(ant, tag, pos),
              without.noiseless_phase(ant, tag, pos), 1e-12);
}

TEST(Channel, WallBehindAntennaStillReflectsForward) {
  // A wall behind the antenna produces a legitimate bounce toward the tag
  // (attenuated by the backlobe gain) — it must change the phase.
  Channel with(quiet(), {Reflector{.point = {0.0, 5.0, 0.0},
                                   .normal = {0.0, -1.0, 0.0},
                                   .coefficient = 0.9}});
  Channel without(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  const Vec3 pos{0.0, 0.0, 0.0};
  EXPECT_GT(circular_distance(with.noiseless_phase(ant, tag, pos),
                              without.noiseless_phase(ant, tag, pos)),
            1e-6);
}

TEST(Channel, SensitivityFloorDropsWeakReads) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  tag.sensitivity_floor = 1e9;  // absurdly high: every read fails
  Rng rng(5);
  EXPECT_FALSE(ch.read(ant, tag, {0.0, 0.0, 0.0}, rng).has_value());
}

TEST(Channel, RssiDecreasesWithDistance) {
  Channel ch(quiet(), {});
  Antenna ant;
  ant.physical_center = {0.0, 0.0, 0.0};
  Tag tag;
  Rng rng(6);
  const auto near = ch.read(ant, tag, {0.0, -0.5, 0.0}, rng);
  const auto far = ch.read(ant, tag, {0.0, -2.0, 0.0}, rng);
  ASSERT_TRUE(near && far);
  EXPECT_GT(near->rssi_dbm, far->rssi_dbm);
}

TEST(Channel, DiffuseMultipathGrowsWithDistance) {
  // The diffuse term has constant field amplitude while LoS decays as 1/d,
  // so the induced phase spread must grow with distance.
  NoiseModel n = quiet();
  n.diffuse_amplitude = 0.15;
  Channel ch(n, {});
  Antenna ant;
  ant.physical_center = {0.0, 0.0, 0.0};
  Tag tag;
  Rng rng(31);
  auto spread_at = [&](double depth) {
    const Vec3 pos{0.0, -depth, 0.0};
    const double clean =
        Channel(quiet(), {}).noiseless_phase(ant, tag, pos);
    double s = 0.0;
    for (int i = 0; i < 300; ++i) {
      const auto obs = ch.read(ant, tag, pos, rng);
      s += std::abs(wrap_phase_symmetric(obs->phase - clean));
    }
    return s / 300.0;
  };
  const double near_spread = spread_at(0.5);
  const double far_spread = spread_at(2.0);
  EXPECT_GT(far_spread, 2.0 * near_spread);
}

TEST(Channel, DiffuseMultipathZeroIsNoiseless) {
  NoiseModel n = quiet();
  n.diffuse_amplitude = 0.0;
  Channel ch(n, {});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  Rng rng(32);
  const auto a = ch.read(ant, tag, {0.0, 0.0, 0.0}, rng);
  const auto b = ch.read(ant, tag, {0.0, 0.0, 0.0}, rng);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->phase, b->phase);
}

TEST(Channel, ScattererPerturbsPhaseLocally) {
  // A point scatterer matters when the tag passes close by and fades out
  // with distance from it.
  Channel clean(quiet(), {});
  Channel dirty(quiet(), {}, {Scatterer{{0.3, 0.1, 0.0}, 0.05}});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  // The deviation at a single point depends on the interference phase, so
  // compare the *maximum* deviation over a small neighbourhood near the
  // scatterer against the far region.
  auto max_dev_around = [&](double x0) {
    double m = 0.0;
    for (double x = x0 - 0.05; x <= x0 + 0.05; x += 0.005) {
      const Vec3 p{x, 0.0, 0.0};
      m = std::max(m, circular_distance(dirty.noiseless_phase(ant, tag, p),
                                        clean.noiseless_phase(ant, tag, p)));
    }
    return m;
  };
  const double near_dev = max_dev_around(0.3);
  const double far_dev = max_dev_around(-0.5);
  EXPECT_GT(near_dev, 3.0 * far_dev);
  EXPECT_GT(near_dev, 0.1);
}

TEST(Channel, ScattererZeroReflectivityIsNoop) {
  Channel clean(quiet(), {});
  Channel with(quiet(), {}, {Scatterer{{0.3, 0.1, 0.0}, 0.0}});
  Antenna ant;
  ant.physical_center = {0.0, 1.0, 0.0};
  Tag tag;
  const Vec3 pos{0.2, 0.0, 0.0};
  EXPECT_NEAR(with.noiseless_phase(ant, tag, pos),
              clean.noiseless_phase(ant, tag, pos), 1e-12);
}

TEST(Channel, ScattererAccessorExposed) {
  Channel ch(quiet(), {}, {Scatterer{{1.0, 2.0, 3.0}, 0.07}});
  ASSERT_EQ(ch.scatterers().size(), 1u);
  EXPECT_DOUBLE_EQ(ch.scatterers()[0].reflectivity, 0.07);
}

TEST(Channel, PatternPhaseAppearsInReportedPhase) {
  Channel ch(quiet(), {});
  Antenna flat;
  flat.physical_center = {0.0, 0.8, 0.0};
  Antenna patterned = flat;
  patterned.pattern_coefficient = 1.0;
  Tag tag;
  // Well off boresight: pattern phase nonzero.
  const Vec3 off_axis{1.5, 0.0, 0.0};
  const double dev = circular_distance(
      ch.noiseless_phase(patterned, tag, off_axis),
      ch.noiseless_phase(flat, tag, off_axis));
  EXPECT_NEAR(dev, patterned.pattern_phase(off_axis), 1e-9);
  // On boresight: identical.
  const Vec3 on_axis{0.0, 0.0, 0.0};
  EXPECT_NEAR(ch.noiseless_phase(patterned, tag, on_axis),
              ch.noiseless_phase(flat, tag, on_axis), 1e-12);
}

TEST(Channel, OffBeamNoiseInflation) {
  NoiseModel n = quiet();
  n.phase_sigma = 0.05;
  n.off_beam_gain = 5.0;
  Channel ch(n, {});
  Antenna ant;
  ant.physical_center = {0.0, 0.8, 0.0};
  Tag tag;
  Rng rng(7);
  auto spread_at = [&](const Vec3& pos) {
    const double clean = ch.noiseless_phase(ant, tag, pos);
    double s = 0.0;
    for (int i = 0; i < 200; ++i) {
      const auto obs = ch.read(ant, tag, pos, rng);
      s += std::abs(wrap_phase_symmetric(obs->phase - clean));
    }
    return s / 200.0;
  };
  // On boresight vs 60 degrees off (beyond the 35-degree half beam).
  const double on = spread_at({0.0, 0.0, 0.0});
  const double off = spread_at({1.4, 0.0, 0.0});
  EXPECT_GT(off, 1.5 * on);
}

}  // namespace
}  // namespace lion::rf
