#include "rf/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/stats.hpp"

namespace lion::rf {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, GaussianZeroSigmaIsDeterministic) {
  Rng rng(9);
  EXPECT_EQ(rng.gaussian(0.0), 0.0);
  EXPECT_EQ(rng.gaussian(5.0, 0.0), 5.0);
  EXPECT_EQ(rng.gaussian(5.0, -1.0), 5.0);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(42);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.gaussian(2.0, 0.5);
  EXPECT_NEAR(linalg::mean(samples), 2.0, 0.02);
  EXPECT_NEAR(linalg::stddev(samples), 0.5, 0.02);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateRoughlyCorrect) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  parent_copy.fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform(0.0, 1.0) != parent.uniform(0.0, 1.0)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ca.uniform(0.0, 1.0), cb.uniform(0.0, 1.0));
  }
}

}  // namespace
}  // namespace lion::rf
