#include "rf/tag.hpp"

#include <gtest/gtest.h>

#include "rf/constants.hpp"

namespace lion::rf {
namespace {

TEST(Tag, DefaultsAreSane) {
  Tag t;
  EXPECT_EQ(t.tag_offset_rad, 0.0);
  EXPECT_GT(t.backscatter_efficiency, 0.0);
  EXPECT_LE(t.backscatter_efficiency, 1.0);
  EXPECT_EQ(t.sensitivity_floor, 0.0);
}

TEST(MakeTag, OffsetInCircle) {
  for (std::uint32_t id = 0; id < 16; ++id) {
    const Tag t = make_tag(id);
    EXPECT_GE(t.tag_offset_rad, 0.0);
    EXPECT_LT(t.tag_offset_rad, kTwoPi);
  }
}

TEST(MakeTag, EfficiencyInExpectedBand) {
  for (std::uint32_t id = 0; id < 16; ++id) {
    const Tag t = make_tag(id);
    EXPECT_GE(t.backscatter_efficiency, 0.4);
    EXPECT_LE(t.backscatter_efficiency, 0.6);
  }
}

TEST(MakeTag, DeterministicPerId) {
  const Tag a = make_tag(5);
  const Tag b = make_tag(5);
  EXPECT_EQ(a.tag_offset_rad, b.tag_offset_rad);
  EXPECT_EQ(a.backscatter_efficiency, b.backscatter_efficiency);
}

TEST(MakeTag, DifferentIdsGetDifferentOffsets) {
  EXPECT_NE(make_tag(1).tag_offset_rad, make_tag(2).tag_offset_rad);
}

TEST(MakeTag, StoresId) { EXPECT_EQ(make_tag(42).id, 42u); }

}  // namespace
}  // namespace lion::rf
