// Crash-recovery differential suite: a journaled session that is killed
// mid-stream, restored by a fresh service, and continued from the restore
// ack's cursor must emit exactly the sequenced bytes an uninterrupted
// stream would have. The crash model is service-destroy-without-close:
// every journal record is write()n before the mutation's response can
// matter, so in-process teardown loses exactly what SIGKILL would (the
// fsync batching window is an OS-crash concern, not a process-crash one).

#include <gtest/gtest.h>

#include <unistd.h>
#include <dirent.h>
#include <sys/stat.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "io/csv.hpp"
#include "io/report_json.hpp"
#include "rf/phase_model.hpp"
#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "sim/trajectory.hpp"

namespace lion {
namespace {

constexpr double kTolerance = 1e-9;

std::string data_path(const std::string& name) {
  return std::string(LION_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::vector<std::string> split_rows(const std::string& bytes) {
  std::vector<std::string> rows;
  std::istringstream in(bytes);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) rows.push_back(std::move(line));
  }
  return rows;
}

// Same comparator as the golden suite: exact structure, 1e-9 numbers.
struct ParsedJson {
  std::string skeleton;
  std::vector<double> numbers;
};

ParsedJson parse_numbers(const std::string& s) {
  ParsedJson out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])));
    if (starts_number) {
      char* end = nullptr;
      out.numbers.push_back(std::strtod(s.c_str() + i, &end));
      out.skeleton += '#';
      i = static_cast<std::size_t>(end - s.c_str());
    } else {
      out.skeleton += c;
      ++i;
    }
  }
  return out;
}

void expect_json_near(const std::string& expected, const std::string& actual,
                      const std::string& label) {
  const auto e = parse_numbers(expected);
  const auto a = parse_numbers(actual);
  ASSERT_EQ(e.skeleton, a.skeleton) << label << ": structure drifted";
  ASSERT_EQ(e.numbers.size(), a.numbers.size()) << label;
  for (std::size_t i = 0; i < e.numbers.size(); ++i) {
    const double tol =
        kTolerance +
        kTolerance * std::max(std::abs(e.numbers[i]), std::abs(a.numbers[i]));
    EXPECT_NEAR(e.numbers[i], a.numbers[i], tol)
        << label << ": number " << i << " drifted beyond 1e-9";
  }
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/lion_recovery_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

void remove_dir_recursive(const std::string& dir) {
  if (::DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

struct TempDir {
  std::string path = make_temp_dir();
  ~TempDir() { remove_dir_recursive(path); }
};

// Out-of-band ops-plane lines carry no seq and are excluded from the
// byte-determinism contract; strip them before comparing streams.
bool is_oob(const std::string& line) {
  return line.rfind("{\"schema\":\"lion.restore.v1\"", 0) == 0 ||
         line.rfind("{\"schema\":\"lion.health.v1\"", 0) == 0;
}

std::vector<std::string> sequenced(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const auto& l : lines) {
    if (!is_oob(l)) out.push_back(l);
  }
  return out;
}

std::uint64_t uint_field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = line.find(pat);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return static_cast<std::uint64_t>(
      std::atoll(line.c_str() + pos + pat.size()));
}

/// One "process": a journal store on `dir` plus a journaled service.
/// Destroying it (crash()) is the in-process SIGKILL analogue — appended
/// records are durable, everything else is gone.
struct Process {
  std::vector<std::string> lines;
  std::unique_ptr<serve::JournalStore> store;
  std::unique_ptr<serve::StreamService> service;

  explicit Process(const std::string& dir) {
    serve::JournalStoreConfig jcfg;
    jcfg.dir = dir;
    jcfg.fsync_every = 8;
    store = std::make_unique<serve::JournalStore>(jcfg);
    EXPECT_TRUE(store->ok()) << store->error();
    serve::ServiceConfig cfg;
    cfg.threads = 2;
    cfg.journal = store.get();
    service = std::make_unique<serve::StreamService>(
        cfg, [this](std::string_view line) { lines.emplace_back(line); });
  }

  void feed(const std::vector<std::string>& input, std::size_t begin,
            std::size_t end) {
    for (std::size_t i = begin; i < end && i < input.size(); ++i) {
      service->ingest_line(input[i]);
    }
    service->drain();
  }

  void crash() { service.reset(); }

  /// The lion.restore.v1 ack for `id`, or "" when none arrived.
  std::string restore_ack(const std::string& id) const {
    const std::string want = "\"session\":\"" + id + "\"";
    for (const auto& l : lines) {
      if (l.rfind("{\"schema\":\"lion.restore.v1\"", 0) == 0 &&
          l.find(want) != std::string::npos) {
        return l;
      }
    }
    return "";
  }
};

/// Uninterrupted reference run (no journal — the PR-5 contract).
std::vector<std::string> run_plain(const std::vector<std::string>& input) {
  std::vector<std::string> lines;
  serve::ServiceConfig cfg;
  cfg.threads = 2;
  serve::StreamService service(
      cfg, [&lines](std::string_view line) { lines.emplace_back(line); });
  for (const auto& l : input) service.ingest_line(l);
  service.finish();
  return lines;
}

/// Synthetic linear scan: n CSV rows of x,y,z,phase along a rail under an
/// antenna at (0, 0.8, 0), phases wrapped to [0, 2pi) — small enough that
/// a crash-offset sweep stays fast, real enough that solves converge.
std::vector<std::string> synthetic_rows(std::size_t n) {
  std::vector<std::string> rows;
  const double wavelength = 0.328;
  const double two_pi = 6.283185307179586;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = -0.6 + 1.2 * static_cast<double>(i) /
                                static_cast<double>(n - 1);
    const double d = std::sqrt(x * x + 0.8 * 0.8);
    const double phase = std::fmod(4.0 * 3.141592653589793 * d / wavelength,
                                   two_pi);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%.9g,0,0,%.9g", x, phase);
    rows.emplace_back(buf);
  }
  return rows;
}

/// declare + rows with a !flush every `flush_every` rows + terminal flush.
/// Every line after index 0 journals exactly one record, so a client that
/// fed the first k lines resumes at input index == ack records.
std::vector<std::string> build_input(const std::string& id,
                                     const std::vector<std::string>& rows,
                                     std::size_t flush_every) {
  std::vector<std::string> input;
  input.push_back("!session " + id + " center=0,0.8,0");
  std::size_t since = 0;
  for (const auto& row : rows) {
    input.push_back(row);
    if (++since == flush_every) {
      input.push_back("!flush " + id);
      since = 0;
    }
  }
  input.push_back("!flush " + id);
  return input;
}

/// Crash after `cut` input lines, restore in a fresh process, continue
/// from the ack cursor, and return prefix + suffix sequenced output.
std::vector<std::string> crash_and_resume(
    const std::vector<std::string>& input, const std::string& id,
    std::size_t cut, std::uint64_t* ack_records = nullptr,
    bool* ack_torn = nullptr) {
  TempDir dir;
  Process p1(dir.path);
  p1.feed(input, 0, cut);
  p1.crash();

  Process p2(dir.path);
  p2.service->ingest_line(input[0]);  // re-declare triggers the restore
  const std::string ack = p2.restore_ack(id);
  EXPECT_FALSE(ack.empty()) << "no restore ack at cut=" << cut;
  if (ack.empty()) return {};
  const std::uint64_t records = uint_field(ack, "records");
  if (ack_records != nullptr) *ack_records = records;
  if (ack_torn != nullptr) {
    *ack_torn = ack.find("\"torn\":true") != std::string::npos;
  }
  EXPECT_GE(records, 1u);
  EXPECT_LE(records, cut);
  p2.feed(input, static_cast<std::size_t>(records), input.size());
  p2.crash();

  std::vector<std::string> combined = sequenced(p1.lines);
  const auto suffix = sequenced(p2.lines);
  combined.insert(combined.end(), suffix.begin(), suffix.end());
  return combined;
}

struct Lcg {
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

// The headline gate: >= 50 fuzzed crash offsets, each resumed stream
// byte-identical to the uninterrupted baseline.
TEST(Recovery, CrashAtFuzzedOffsetsResumesByteIdentical) {
  const auto input = build_input("g", synthetic_rows(120), 25);
  const auto baseline = sequenced(run_plain(input));
  ASSERT_GE(baseline.size(), 5u);  // one report per flush

  // Pinned edges: right after the declare, around every flush line, and
  // the last possible cut; LCG fuzz fills the set to >= 50 offsets.
  std::set<std::size_t> cuts = {1, 2, input.size() - 1};
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i].rfind("!flush", 0) == 0) {
      cuts.insert(i);          // crash with the flush un-journaled
      cuts.insert(i + 1);      // crash right after the flush record
    }
  }
  Lcg rng;
  while (cuts.size() < 50) {
    cuts.insert(1 + rng.next() % (input.size() - 1));
  }

  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::uint64_t records = 0;
    const auto combined = crash_and_resume(input, "g", cut, &records);
    EXPECT_EQ(records, cut);  // 1 line == 1 record, in order
    EXPECT_EQ(combined, baseline);
  }
}

// Journaling must be observationally free: the journaled uninterrupted
// stream emits the same bytes as the journal-less one.
TEST(Recovery, JournalingDoesNotPerturbOutput) {
  const auto input = build_input("g", synthetic_rows(80), 40);
  const auto baseline = sequenced(run_plain(input));
  TempDir dir;
  Process p(dir.path);
  p.feed(input, 0, input.size());
  p.crash();
  EXPECT_EQ(sequenced(p.lines), baseline);
}

// Golden gate: the rig fixture crashed mid-scan and resumed still matches
// the batch pipeline byte-for-byte and sits inside the 1e-9 drift band.
TEST(Recovery, GoldenRigSurvivesCrashInsideDriftGate) {
  const auto rows = split_rows(read_file(data_path("golden_rig.csv")));
  ASSERT_FALSE(rows.empty());
  std::vector<std::string> input;
  input.push_back("!session g center=0,0.8,0");
  input.insert(input.end(), rows.begin(), rows.end());
  input.push_back("!flush g");

  const auto samples = io::read_samples_csv_file(data_path("golden_rig.csv"));
  const std::string batch_line =
      "{\"schema\":\"lion.report.v1\",\"session\":\"g\",\"seq\":0,"
      "\"source\":\"fallback\",\"report\":" +
      io::report_json(
          core::calibrate_antenna_robust(samples, {0.0, 0.8, 0.0})) +
      "}";

  const std::size_t cut = 1 + rows.size() / 2;  // mid-scan
  const auto combined = crash_and_resume(input, "g", cut);
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined[0], batch_line);

  std::string expected = read_file(data_path("golden_rig.json"));
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r')) {
    expected.pop_back();
  }
  const std::string prefix =
      "{\"schema\":\"lion.report.v1\",\"session\":\"g\",\"seq\":0,"
      "\"source\":\"fallback\",\"report\":";
  ASSERT_EQ(combined[0].rfind(prefix, 0), 0u);
  expect_json_near(
      expected,
      combined[0].substr(prefix.size(), combined[0].size() - prefix.size() - 1),
      "golden_rig (restored)");
}

// Track mode: windows solve as rows arrive, so seqs are consumed by data
// lines themselves — the snapshot fast-forward must cover them too.
TEST(Recovery, TrackModeRestoreMatchesUninterrupted) {
  const auto rows = synthetic_rows(40);
  std::vector<std::string> input;
  input.push_back(
      "!session belt mode=track center=0,0.8,0 window=8 hop=8 speed=0.1");
  input.insert(input.end(), rows.begin(), rows.end());
  const auto baseline = sequenced(run_plain(input));
  ASSERT_FALSE(baseline.empty());  // completed windows emitted fixes

  for (const std::size_t cut : {std::size_t{3}, std::size_t{8},
                                std::size_t{9}, std::size_t{20},
                                std::size_t{33}, input.size() - 1}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const auto combined = crash_and_resume(input, "belt", cut);
    EXPECT_EQ(combined, baseline);
  }
}

// A re-declare whose config differs from the journaled one must be
// rejected (journal_conflict), and the correct declare must still work.
TEST(Recovery, MismatchedRedeclareIsAConflict) {
  const auto input = build_input("g", synthetic_rows(10), 100);
  TempDir dir;
  Process p1(dir.path);
  p1.feed(input, 0, 5);
  p1.crash();

  Process p2(dir.path);
  p2.service->ingest_line("!session g center=1,0,0");  // wrong center
  p2.service->drain();
  ASSERT_FALSE(p2.lines.empty());
  EXPECT_NE(p2.lines.back().find("journal_conflict"), std::string::npos)
      << p2.lines.back();
  EXPECT_TRUE(p2.restore_ack("g").empty());

  p2.service->ingest_line(input[0]);  // the real declare still restores
  EXPECT_FALSE(p2.restore_ack("g").empty());
}

// A torn tail (crash mid-write) loses only the newest record: the ack
// reports torn=true and one fewer record, and resuming from that cursor
// still converges to the uninterrupted stream.
TEST(Recovery, TornTailResumesFromTheIntactPrefix) {
  const auto input = build_input("g", synthetic_rows(60), 30);
  const auto baseline = sequenced(run_plain(input));

  const std::size_t cut = 20;  // last fed line is a data row (no seq)
  TempDir dir;
  {
    Process p1(dir.path);
    p1.feed(input, 0, cut);
    p1.crash();
  }
  const std::string path = dir.path + "/g.lionj";
  struct stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);

  // Re-run the prefix bytes the torn journal no longer covers through a
  // plain service to rebuild the expected prefix emissions (rows carry no
  // responses in calibrate mode, so the prefix emits nothing here), then
  // restore and continue.
  Process p2(dir.path);
  p2.service->ingest_line(input[0]);
  const std::string ack = p2.restore_ack("g");
  ASSERT_FALSE(ack.empty());
  EXPECT_NE(ack.find("\"torn\":true"), std::string::npos) << ack;
  const std::uint64_t records = uint_field(ack, "records");
  EXPECT_EQ(records, cut - 1);  // the newest record was torn away
  p2.feed(input, static_cast<std::size_t>(records), input.size());
  p2.crash();
  EXPECT_EQ(sequenced(p2.lines), baseline);
}

// !healthz answers out-of-band with journal gauges and process gauges.
TEST(Recovery, HealthzReportsJournalAndProcessGauges) {
  const auto input = build_input("g", synthetic_rows(10), 100);
  TempDir dir;
  Process p(dir.path);
  p.feed(input, 0, input.size());
  p.service->ingest_line("!healthz");
  p.service->drain();
  std::string health;
  for (const auto& l : p.lines) {
    if (l.rfind("{\"schema\":\"lion.health.v1\"", 0) == 0) health = l;
  }
  ASSERT_FALSE(health.empty());
  EXPECT_NE(health.find("\"journal_enabled\":true"), std::string::npos);
  EXPECT_NE(health.find("\"journal_lag\":"), std::string::npos);
  EXPECT_NE(health.find("\"journal_appends\":"), std::string::npos);
  EXPECT_GT(uint_field(health, "rss_bytes"), 0u);
  EXPECT_GT(uint_field(health, "open_fds"), 0u);
  EXPECT_EQ(uint_field(health, "restores"), 0u);
  p.crash();

  // And a journal-less service reports journal_enabled=false.
  std::vector<std::string> lines;
  serve::StreamService plain(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  plain.ingest_line("!healthz");
  plain.finish();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"journal_enabled\":false"), std::string::npos);
}

/// Track-mode JSON row for the tick-recovery stream: tag from (-1,0.6,0)
/// down the x belt at 1 m/s past an antenna at the origin, 100 Hz reads,
/// exact model phases.
std::string tick_row(int i) {
  const double t = 0.01 * i;
  const double x = -1.0 + t;
  const double d = std::sqrt(x * x + 0.6 * 0.6);
  const double phase = rf::wrap_phase(rf::distance_phase(d));
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"session\":\"belt\",\"x\":0,\"y\":0,\"z\":0,"
                "\"phase\":%.17g,\"t\":%.17g}",
                phase, t);
  return buf;
}

/// Track declare + rows with a `!tick` every `tick_every` rows. Every
/// line after index 0 journals exactly one record (rows -> kAppend,
/// ticks -> kPoseTick), so the restore-ack cursor math of
/// crash_and_resume carries over unchanged.
std::vector<std::string> build_tick_input(std::size_t rows,
                                          std::size_t tick_every) {
  std::vector<std::string> input;
  input.push_back(
      "!session belt mode=track center=0,0,0 dir=1,0,0 speed=1 "
      "window=64 hop=32 hint=-1,0.6,0");
  for (std::size_t i = 0; i < rows; ++i) {
    input.push_back(tick_row(static_cast<int>(i)));
    if ((i + 1) % tick_every == 0) input.push_back("!tick belt");
  }
  return input;
}

// The incremental `!tick` stream under kill-restart: the journal replay
// rebuilds the solver purely from the sample stream (push / carve-retire
// are replayed at the same indices; kPoseTick records fast-forward the
// tick counter without re-emitting), so crashing at any offset — before
// a tick, right after one, mid-window, across carve boundaries — must
// resume byte-identical to the uninterrupted run, incremental fast-path
// poses included.
TEST(Recovery, TickStreamSurvivesCrashByteIdentical) {
  const auto input = build_tick_input(160, 10);
  const auto baseline = sequenced(run_plain(input));
  ASSERT_FALSE(baseline.empty());
  bool incremental_seen = false;
  for (const auto& l : baseline) {
    if (l.find("\"source\":\"incremental\"") != std::string::npos) {
      incremental_seen = true;
    }
  }
  ASSERT_TRUE(incremental_seen)
      << "scenario never reached the incremental fast path";

  // Pinned cuts: around every !tick line and both sides of the first
  // carve (window=64 with 10:1 row:tick lines -> input index ~70); LCG
  // fuzz fills to >= 24 offsets.
  std::set<std::size_t> cuts = {1, 2, 70, 71, input.size() - 1};
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] == "!tick belt") {
      cuts.insert(i);
      cuts.insert(i + 1);
    }
  }
  Lcg rng;
  while (cuts.size() < 24) {
    cuts.insert(1 + rng.next() % (input.size() - 1));
  }
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const auto combined = crash_and_resume(input, "belt", cut);
    EXPECT_EQ(combined, baseline);
  }
}

// Focused restore-state gate: crash after enough rows that the restored
// solver must already hold a consensus baseline, then issue the first
// `!tick` only after the restore. A post-restore incremental pose (not a
// fallback) proves the replay rebuilt the incremental state and not just
// the window buffer.
TEST(Recovery, RestoreRebuildsIncrementalStateForPostCrashTicks) {
  const auto rows = 120;
  std::vector<std::string> input;
  input.push_back(
      "!session belt mode=track center=0,0,0 dir=1,0,0 speed=1 "
      "window=1000 hop=500 hint=-1,0.6,0");
  for (int i = 0; i < rows; ++i) input.push_back(tick_row(i));
  input.push_back("!tick belt");
  const auto baseline = sequenced(run_plain(input));
  ASSERT_FALSE(baseline.empty());
  ASSERT_NE(baseline.back().find("\"source\":\"incremental\""),
            std::string::npos)
      << baseline.back();

  const std::size_t cut = 1 + rows;  // every row fed, the tick never sent
  const auto combined = crash_and_resume(input, "belt", cut);
  ASSERT_EQ(combined, baseline);
}

// ---------------------------------------------------------------------------
// Incremental calibrate flushes across crashes
// ---------------------------------------------------------------------------

/// Clean three-line-rig scan on the dt = 0.1 grid with full columns — the
/// regime where the incremental calibrate solver's warm tier answers (see
/// tests/serve/test_incremental_cal_serve.cpp).
std::vector<std::string> cal_rig_rows() {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto traj = rig.build();
  const linalg::Vec3 center{0.009, 0.789, 0.006};
  std::vector<std::string> rows;
  for (double t = 0.0; t <= traj.duration(); t += 0.1) {
    const auto p = traj.position(t);
    const double phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(center, p)) + 2.1);
    char buf[200];
    std::snprintf(buf, sizeof buf, "%.17g,%.17g,%.17g,%.17g,-55,0,%.17g",
                  p[0], p[1], p[2], phase, t);
    rows.emplace_back(buf);
  }
  return rows;
}

/// Declare + rows + flushes arranged so the uninterrupted run exercises
/// all three calibrate tiers: cold fallback, memo, warm incremental.
std::vector<std::string> cal_tiered_input() {
  const auto rows = cal_rig_rows();
  const std::size_t base = rows.size() - rows.size() / 10;
  std::vector<std::string> input;
  input.push_back("!session cal center=0.009,0.789,0.006 smoothing=1");
  for (std::size_t i = 0; i < base; ++i) input.push_back(rows[i]);
  input.push_back("!flush cal");  // cold -> fallback, installs the anchor
  input.push_back("!flush cal");  // unchanged buffer -> memo
  for (std::size_t i = base; i < rows.size(); ++i) input.push_back(rows[i]);
  input.push_back("!flush cal");  // small clean append -> warm tier
  return input;
}

// Calibrate-flush crash matrix: killed at >= 24 fuzzed offsets — pinned
// around every flush decision plus LCG fill — the resumed stream must be
// byte-identical to the uninterrupted baseline, source tags included. A
// restored flush may only answer memo/incremental if the replay rebuilt
// the exact anchor state (kCalAnchor re-solve), so tag equality is state
// equality.
TEST(Recovery, CalibrateFlushCrashMatrixResumesByteIdentical) {
  const auto input = cal_tiered_input();
  const auto baseline = sequenced(run_plain(input));
  ASSERT_GE(baseline.size(), 3u);
  // The baseline itself must exercise every tier, or the matrix proves
  // less than it claims.
  std::size_t memo = 0, warm = 0, fallback = 0;
  for (const auto& l : baseline) {
    if (l.find("\"schema\":\"lion.report.v1\"") == std::string::npos) continue;
    memo += l.find("\"source\":\"memo\"") != std::string::npos;
    warm += l.find("\"source\":\"incremental\"") != std::string::npos;
    fallback += l.find("\"source\":\"fallback\"") != std::string::npos;
  }
  ASSERT_EQ(fallback, 1u);
  ASSERT_EQ(memo, 1u);
  ASSERT_EQ(warm, 1u);

  std::set<std::size_t> cuts = {1, 2, input.size() - 1};
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i].rfind("!flush", 0) == 0) {
      cuts.insert(i);      // crash with the flush un-journaled
      cuts.insert(i + 1);  // crash right after the kCalFlush record
    }
  }
  Lcg rng;
  while (cuts.size() < 24) {
    cuts.insert(1 + rng.next() % (input.size() - 1));
  }

  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::uint64_t records = 0;
    const auto combined = crash_and_resume(input, "cal", cut, &records);
    EXPECT_EQ(records, cut);  // kCalAnchor is internal, not a cursor record
    EXPECT_EQ(combined, baseline);
  }
}

// Focused restore-state gate, calibrate flavor: feed the whole stream,
// crash, and only then flush. The restored solver must answer from the
// incremental path with exactly the bytes the pre-crash warm flush
// produced — possible only if replay reconstructed the anchor (buffer
// prefix + report) bit for bit.
TEST(Recovery, PostRestoreCalibrateFlushAnswersIncremental) {
  const auto input = cal_tiered_input();
  const auto baseline = sequenced(run_plain(input));
  ASSERT_FALSE(baseline.empty());
  const std::string& warm_report = baseline.back();
  ASSERT_NE(warm_report.find("\"source\":\"incremental\""), std::string::npos)
      << warm_report;

  TempDir dir;
  Process p1(dir.path);
  p1.feed(input, 0, input.size());
  p1.crash();

  Process p2(dir.path);
  p2.service->ingest_line(input[0]);  // restore
  ASSERT_FALSE(p2.restore_ack("cal").empty());
  p2.service->ingest_line("!flush cal");
  p2.service->drain();
  p2.crash();

  const auto post = sequenced(p2.lines);
  ASSERT_FALSE(post.empty());
  const std::string& restored_report = post.back();
  EXPECT_NE(restored_report.find("\"source\":\"incremental\""),
            std::string::npos)
      << restored_report;
  // Same report payload as the pre-crash warm flush, byte for byte.
  const auto payload = [](const std::string& line) {
    const auto key = line.find("\"report\":");
    return key == std::string::npos ? std::string() : line.substr(key);
  };
  EXPECT_EQ(payload(restored_report), payload(warm_report));
}

// A closed session's journal is gone: re-declaring after a clean close is
// a fresh session, not a restore.
TEST(Recovery, CloseDeletesTheJournal) {
  const auto input = build_input("g", synthetic_rows(10), 100);
  TempDir dir;
  Process p1(dir.path);
  p1.feed(input, 0, input.size());
  p1.service->ingest_line("!close g");
  p1.service->drain();
  p1.crash();

  Process p2(dir.path);
  p2.service->ingest_line(input[0]);
  p2.service->drain();
  EXPECT_TRUE(p2.restore_ack("g").empty());  // fresh, no ack
}

}  // namespace
}  // namespace lion
