// Sharded-ingest conformance suite for the epoll front-end
// (serve/server.hpp): routing-hash pins, single-shard byte-identity
// against the stdio oracle, shard-count invariance of per-session
// streams, broadcast exactness, poll()-backend conformance, shard-local
// backpressure, and journaled recovery onto the hashed shard.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace lion {
namespace {

// ---------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------

int connect_loopback(int port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_until_eof(int fd) {
  std::string out;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Write `input` in `chunk`-byte pieces, half-close, read the full
/// response stream. chunk == 0 writes everything at once.
std::string roundtrip(int port, const std::string& input, std::size_t chunk) {
  const int fd = connect_loopback(port);
  if (chunk == 0) chunk = input.size();
  for (std::size_t off = 0; off < input.size(); off += chunk) {
    EXPECT_TRUE(send_all(fd, input.data() + off,
                         std::min(chunk, input.size() - off)));
  }
  ::shutdown(fd, SHUT_WR);
  const std::string reply = read_until_eof(fd);
  ::close(fd);
  return reply;
}

std::vector<std::string> split_rows(const std::string& bytes) {
  std::vector<std::string> rows;
  std::istringstream in(bytes);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) rows.push_back(std::move(line));
  }
  return rows;
}

/// Sequence stamps are a per-shard emission order, so they shift with the
/// shard count; the shard-count-invariance contract covers everything
/// else on the line.
std::string normalize_seq(const std::string& line) {
  const std::string key = "\"seq\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return line;
  std::size_t end = pos + key.size();
  while (end < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[end])) != 0)) {
    ++end;
  }
  return line.substr(0, pos + key.size()) + "#" + line.substr(end);
}

std::string json_string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

std::uint64_t json_uint_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return static_cast<std::uint64_t>(
      std::atoll(line.c_str() + pos + needle.size()));
}

// ---------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------

/// Synthetic linear scan (same shape as the recovery suite): n rows of
/// x,y,z,phase under an antenna at (0, 0.8, 0).
std::vector<std::string> synthetic_rows(std::size_t n) {
  std::vector<std::string> rows;
  const double wavelength = 0.328;
  const double two_pi = 6.283185307179586;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = -0.6 + 1.2 * static_cast<double>(i) /
                                static_cast<double>(n - 1);
    const double d = std::sqrt(x * x + 0.8 * 0.8);
    const double phase = std::fmod(4.0 * 3.141592653589793 * d / wavelength,
                                   two_pi);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%.9g,0,0,%.9g", x, phase);
    rows.emplace_back(buf);
  }
  return rows;
}

/// Smallest numeric suffix whose "<prefix><n>" id lands on `want` of
/// `shards` — so tests can pick ids per shard without replicating the
/// hash inline.
std::string id_on_shard(const std::string& prefix, std::size_t shards,
                        std::size_t want) {
  for (int n = 0; n < 4096; ++n) {
    const std::string id = prefix + std::to_string(n);
    if (serve::shard_hash(id) % shards == want) return id;
  }
  ADD_FAILURE() << "no id found on shard " << want;
  return prefix;
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/lion_sharding_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

void remove_dir_recursive(const std::string& dir) {
  if (::DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

struct TempDir {
  std::string path = make_temp_dir();
  ~TempDir() { remove_dir_recursive(path); }
};

struct ServerGuard {
  serve::SocketServer server;
  explicit ServerGuard(serve::ServerConfig cfg) : server(std::move(cfg)) {
    std::string error;
    EXPECT_TRUE(server.start(error)) << error;
  }
  ~ServerGuard() { server.stop(); }
};

serve::ServerConfig base_config(std::size_t shards) {
  serve::ServerConfig cfg;
  cfg.tcp_port = 0;
  cfg.shards = shards;
  cfg.service.threads = 2;
  return cfg;
}

// ---------------------------------------------------------------------
// Hash pins
// ---------------------------------------------------------------------

// The id -> shard mapping is load-bearing for durability: a journaled
// session must restore onto the shard its id hashes to after a restart,
// across releases. Pin the digest function (FNV-1a 64) to known values
// so any drift fails loudly here rather than silently re-homing
// sessions.
TEST(ShardHash, DigestsArePinned) {
  EXPECT_EQ(serve::shard_hash(""), 14695981039346656037ull);
  EXPECT_EQ(serve::shard_hash("default"), 16982411286042166782ull);
  EXPECT_EQ(serve::shard_hash("alpha"), 9999721509958787115ull);
  EXPECT_EQ(serve::shard_hash("sess-42"), 3844379271265239160ull);
  EXPECT_EQ(serve::shard_hash("replay0"), 12941026952591856550ull);
  EXPECT_EQ(serve::shard_hash("a.b:c_d-e"), 3226026877093428150ull);
}

TEST(ShardHash, IsAPureFunctionOfTheId) {
  // Two calls (as across two process lifetimes) agree, and nearby ids
  // do not collide onto one shard en masse.
  std::size_t spread[4] = {0, 0, 0, 0};
  for (int i = 0; i < 256; ++i) {
    const std::string id = "sess-" + std::to_string(i);
    EXPECT_EQ(serve::shard_hash(id), serve::shard_hash(id));
    ++spread[serve::shard_hash(id) % 4];
  }
  for (const std::size_t count : spread) {
    EXPECT_GT(count, 32u) << "suspiciously skewed shard spread";
  }
}

// ---------------------------------------------------------------------
// Single-shard conformance: the sharded front-end with --shards 1 is
// byte-for-byte the pre-shard server.
// ---------------------------------------------------------------------

std::string oracle_input() {
  const auto rows = synthetic_rows(48);
  std::string in;
  in += "# calibration replay\n";
  in += "!session alpha center=0,0.8,0\n";
  in += "!session beta center=0,0.8,0 mode=track\n";
  in += "!stats\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    in += "@alpha " + rows[i] + "\n";
    if (i % 3 == 0) in += "@beta " + rows[i] + "\n";
    if (i == 10) in += "this is not a csv row\n";
    if (i == 20) in += "!tick 5\n";
    if (i == 30) in += "!bogus control\n";
  }
  in += "!flush alpha\n";
  in += "!tick beta\n";
  in += "!flush beta\n";
  in += "!close alpha\n";
  return in;
}

TEST(Sharding, SingleShardSocketMatchesStdioOracle) {
  const std::string input = oracle_input();
  serve::ServiceConfig scfg;
  scfg.threads = 2;
  std::istringstream in(input);
  std::ostringstream out;
  serve::run_stdio(scfg, in, out);
  const std::string expected = out.str();

  // Fresh server per chunking: session and clock state is server-wide,
  // so each replay must start from zero to compare equal.
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{7},
                                  std::size_t{1024}}) {
    ServerGuard guard(base_config(1));
    const std::string actual =
        roundtrip(guard.server.port(), input, chunk);
    EXPECT_EQ(expected, actual) << "chunk=" << chunk;
  }
}

// The portable poll() backend must be a pure substitution: same bytes,
// different readiness syscall.
TEST(Sharding, PollBackendMatchesStdioOracle) {
  const std::string input = oracle_input();
  serve::ServiceConfig scfg;
  scfg.threads = 2;
  std::istringstream in(input);
  std::ostringstream out;
  serve::run_stdio(scfg, in, out);

  serve::ServerConfig cfg = base_config(1);
  cfg.force_poll = true;
  ServerGuard guard(cfg);
  EXPECT_EQ(guard.server.poller_name(), "poll");
  EXPECT_EQ(out.str(), roundtrip(guard.server.port(), input, 0));
}

// ---------------------------------------------------------------------
// Shard-count invariance: a session's response stream (modulo the
// per-shard seq stamp) does not depend on how many shards the server
// runs.
// ---------------------------------------------------------------------

TEST(Sharding, PerSessionStreamsAreShardCountInvariant) {
  const auto rows = synthetic_rows(40);
  const std::vector<std::string> ids = {"alpha", "beta", "gamma", "delta"};
  std::string input;
  for (const auto& id : ids) {
    input += "!session " + id + " center=0,0.8,0\n";
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const auto& id : ids) input += "@" + id + " " + rows[i] + "\n";
    if (i == 15) input += "!flush beta\n";
    if (i == 25) input += "!tick 3\n";
  }
  for (const auto& id : ids) input += "!flush " + id + "\n";
  input += "!close gamma\n";

  std::map<std::size_t, std::map<std::string, std::vector<std::string>>>
      by_count;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{5}}) {
    ServerGuard guard(base_config(shards));
    const auto lines = split_rows(roundtrip(guard.server.port(), input, 0));
    auto& buckets = by_count[shards];
    for (const auto& line : lines) {
      const std::string session = json_string_field(line, "session");
      if (session.empty()) continue;  // broadcast snapshots have no session
      buckets[session].push_back(normalize_seq(line));
    }
    ASSERT_EQ(buckets.size(), ids.size()) << "shards=" << shards;
  }

  const auto& reference = by_count.at(1);
  for (const auto& [shards, buckets] : by_count) {
    for (const auto& id : ids) {
      ASSERT_TRUE(buckets.count(id)) << "shards=" << shards << " id=" << id;
      EXPECT_EQ(reference.at(id), buckets.at(id))
          << "session '" << id << "' stream drifted at shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------
// Broadcast exactness: snapshot controls answer once per shard; their
// malformed variants answer exactly once (on the mirror shard), never
// once per shard.
// ---------------------------------------------------------------------

TEST(Sharding, BroadcastControlsAnswerOncePerShard) {
  constexpr std::size_t kShards = 3;
  ServerGuard guard(base_config(kShards));
  const std::string input =
      "!session alpha center=0,0.8,0\n"
      "!stats\n"
      "!tick 2\n"
      "!tick nonsense$id\n"  // invalid id AND non-numeric: one usage error
      "!tick 1e someday\n"   // three tokens: one usage error
      "!stats extra\n"       // usage error, must not fan out
      "!flush alpha\n";
  const auto lines = split_rows(roundtrip(guard.server.port(), input, 0));

  std::size_t stats = 0;
  std::size_t ticks = 0;
  std::size_t errors = 0;
  std::vector<bool> shard_seen(kShards, false);
  for (const auto& line : lines) {
    if (line.find("\"schema\":\"lion.stats.v1\"") != std::string::npos) {
      ++stats;
      const std::uint64_t shard = json_uint_field(line, "shard");
      EXPECT_EQ(json_uint_field(line, "shards"), kShards);
      ASSERT_LT(shard, kShards);
      shard_seen[shard] = true;
    } else if (line.find("\"schema\":\"lion.tick.v1\"") != std::string::npos) {
      ++ticks;
    } else if (line.find("\"schema\":\"lion.error.v1\"") !=
               std::string::npos) {
      ++errors;
    }
  }
  EXPECT_EQ(stats, kShards) << "!stats must answer once per shard";
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(shard_seen[s]) << "no stats line from shard " << s;
  }
  // A valid clock advance acks once per shard; every malformed control
  // answers exactly once — S error lines for one bad line would be a
  // routing bug.
  EXPECT_EQ(ticks % kShards, 0u);
  EXPECT_EQ(errors, 3u);
}

// ---------------------------------------------------------------------
// Backpressure isolation: a connection that stops reading wedges — at
// worst — the shard its traffic routes to. Sessions on other shards keep
// answering.
// ---------------------------------------------------------------------

TEST(Sharding, BackpressureStallsOnlyTheOwningShard) {
  constexpr std::size_t kShards = 2;
  serve::ServerConfig cfg = base_config(kShards);
  cfg.shard_queue_limit = 64;
  cfg.max_connections = 8;
  ServerGuard guard(cfg);

  const std::string hog_id = id_on_shard("hog", kShards, 0);
  const std::string live_id = id_on_shard("live", kShards, 1);

  // The hog floods undeclared-session rows (each one costs shard 0 an
  // error response) and never reads: shard 0's writes block, its queue
  // fills, and the front end parks the hog. A tiny receive buffer makes
  // the wedge almost immediate.
  const int hog = connect_loopback(guard.server.port(), 4096);
  std::atomic<bool> hog_done{false};
  std::thread hog_writer([&] {
    const std::string line = "@" + hog_id + " 0,0,0,1\n";
    std::string burst;
    for (int i = 0; i < 512; ++i) burst += line;
    for (int i = 0; i < 300; ++i) {
      if (!send_all(hog, burst.data(), burst.size())) break;
    }
    hog_done.store(true);
  });

  // Wait until the wedge is observable: shard 0 reports a queue stall.
  // Poll the lock-free gauges — the full telemetry() snapshot takes the
  // shard service's lock, which the wedged shard thread holds while
  // blocked in send (that non-wedgeable read path is the point of
  // shard_gauges(), and this test exercises it under a real wedge).
  bool stalled = false;
  for (int i = 0; i < 600 && !stalled; ++i) {
    for (const auto& g : guard.server.shard_gauges()) {
      if (g.shard == 0 && g.queue_stalls > 0) stalled = true;
    }
    if (!stalled) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(stalled) << "shard 0 never reported backpressure";

  // With shard 0 wedged, a session on shard 1 must still complete. Do
  // NOT wait for server-side EOF here: end-of-connection fans out to
  // every shard, so the close handshake (correctly) queues behind the
  // wedge — but the *responses* must not.
  const auto rows = synthetic_rows(32);
  std::string input = "!session " + live_id + " center=0,0.8,0\n";
  for (const auto& row : rows) input += "@" + live_id + " " + row + "\n";
  input += "!flush " + live_id + "\n";
  const int live = connect_loopback(guard.server.port());
  ASSERT_TRUE(send_all(live, input.data(), input.size()));
  ::shutdown(live, SHUT_WR);
  std::string reply;
  char buf[65536];
  while (reply.find("\"schema\":\"lion.report.v1\"") == std::string::npos) {
    const ssize_t n = ::recv(live, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << "shard 1 starved while shard 0 was wedged";
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(live);
  EXPECT_EQ(reply.find("\"schema\":\"lion.error.v1\""), std::string::npos);

  // Only the hog's shard stalled. (The live session's 34 lines fit the
  // 64-line queue bound, so shard 1 never parks.)
  for (const auto& g : guard.server.shard_gauges()) {
    if (g.shard == 1) {
      EXPECT_EQ(g.queue_stalls, 0u);
    }
  }

  // Unwedge: drain the hog's responses so its writer finishes, then
  // half-close and read to EOF. Backpressure parks, it never drops —
  // every flooded row must cost exactly one error line.
  std::size_t hog_lines = 0;
  bool hog_closed = false;
  std::string pending;
  for (;;) {
    // Half-close as soon as the writer is done. Checked on a poll
    // timeout, not only after a successful recv: the final responses can
    // land *before* the writer thread gets to publish hog_done, and a
    // bare blocking recv would then wait forever on a server that is
    // (correctly) waiting for our EOF.
    if (!hog_closed && hog_done.load()) {
      hog_writer.join();
      ::shutdown(hog, SHUT_WR);
      hog_closed = true;
    }
    pollfd pfd{hog, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno == EINTR) continue;
    ASSERT_GE(ready, 0);
    if (ready == 0) continue;
    const ssize_t n = ::recv(hog, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server EOF after the EOC handshake
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (std::size_t nl = pending.find('\n', pos);
         nl != std::string::npos; nl = pending.find('\n', pos)) {
      ++hog_lines;
      pos = nl + 1;
    }
    pending.erase(0, pos);
  }
  if (!hog_closed) hog_writer.join();
  ::close(hog);
  EXPECT_EQ(hog_lines, 512u * 300u)
      << "backpressure must park, never drop flooded lines";
  for (const auto& g : guard.server.shard_gauges()) {
    if (g.shard == 0) {
      EXPECT_GT(g.queue_stalls, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Sharded recovery: a journaled session killed mid-stream restores onto
// the shard its id hashes to, and the resumed socket stream is
// byte-identical to an uninterrupted single-service run.
// ---------------------------------------------------------------------

/// Uninterrupted single-service reference (the recovery-suite contract).
std::vector<std::string> run_plain(const std::vector<std::string>& input) {
  std::vector<std::string> lines;
  serve::ServiceConfig cfg;
  cfg.threads = 2;
  serve::StreamService service(
      cfg, [&lines](std::string_view line) { lines.emplace_back(line); });
  for (const auto& l : input) service.ingest_line(l);
  service.finish();
  return lines;
}

bool is_oob(const std::string& line) {
  return line.rfind("{\"schema\":\"lion.restore.v1\"", 0) == 0 ||
         line.rfind("{\"schema\":\"lion.health.v1\"", 0) == 0;
}

struct Lcg {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

TEST(Sharding, JournaledSessionRestoresOntoHashedShardByteIdentical) {
  constexpr std::size_t kShards = 3;
  const std::string id = "crashy-7";
  const std::size_t home = serve::shard_hash(id) % kShards;

  // declare + rows with periodic flushes: every line journals one record,
  // so a stream cut at k resumes at input index == ack records.
  const auto rows = synthetic_rows(36);
  std::vector<std::string> input;
  input.push_back("!session " + id + " center=0,0.8,0");
  std::size_t since = 0;
  for (const auto& row : rows) {
    input.push_back("@" + id + " " + row);
    if (++since == 9) {
      input.push_back("!flush " + id);
      since = 0;
    }
  }
  input.push_back("!flush " + id);
  const auto baseline = run_plain(input);

  Lcg rng;
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t cut = 1 + rng.next() % (input.size() - 1);
    TempDir dir;

    // Phase 1: journaled single service, killed (destroyed) after `cut`
    // lines — the in-process SIGKILL analogue the recovery suite uses.
    std::vector<std::string> prefix_lines;
    {
      serve::JournalStoreConfig jcfg;
      jcfg.dir = dir.path;
      jcfg.fsync_every = 8;
      serve::JournalStore store(jcfg);
      ASSERT_TRUE(store.ok()) << store.error();
      serve::ServiceConfig scfg;
      scfg.threads = 2;
      scfg.journal = &store;
      {
        serve::StreamService service(scfg, [&prefix_lines](
                                               std::string_view line) {
          prefix_lines.emplace_back(line);
        });
        for (std::size_t i = 0; i < cut; ++i) service.ingest_line(input[i]);
        service.drain();
      }  // crash: service destroyed without close
    }

    // Phase 2: restart as a *sharded* socket server over the same
    // journal directory; the re-declare must land on — and restore on —
    // the id's hashed shard.
    serve::JournalStoreConfig jcfg;
    jcfg.dir = dir.path;
    jcfg.fsync_every = 8;
    serve::JournalStore store(jcfg);
    ASSERT_TRUE(store.ok()) << store.error();
    ASSERT_GE(store.recovered_at_start(), 1u) << "cut=" << cut;
    serve::ServerConfig cfg = base_config(kShards);
    cfg.service.journal = &store;
    ServerGuard guard(cfg);

    // Re-declare alone first: the restore ack carries the resume cursor.
    const int fd = connect_loopback(guard.server.port());
    const std::string declare = input[0] + "\n";
    ASSERT_TRUE(send_all(fd, declare.data(), declare.size()));
    std::string ack;
    {
      std::string buf;
      char c;
      while (ack.empty()) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        ASSERT_GT(n, 0) << "connection died before the restore ack";
        if (c != '\n') {
          buf.push_back(c);
          continue;
        }
        if (buf.rfind("{\"schema\":\"lion.restore.v1\"", 0) == 0) {
          ack = buf;
        } else {
          ADD_FAILURE() << "unexpected pre-ack line at cut=" << cut << ": "
                        << buf;
        }
        buf.clear();
      }
    }
    const std::uint64_t records = json_uint_field(ack, "records");
    ASSERT_GE(records, 1u);
    ASSERT_LE(records, cut);

    // Continue from the cursor, then a placement probe.
    std::string rest;
    for (std::size_t i = records; i < input.size(); ++i) {
      rest += input[i] + "\n";
    }
    rest += "!stats\n";
    ASSERT_TRUE(send_all(fd, rest.data(), rest.size()));
    ::shutdown(fd, SHUT_WR);
    const auto reply = split_rows(read_until_eof(fd));
    ::close(fd);

    // Placement: exactly the hashed shard holds the restored session.
    std::vector<std::string> suffix;
    for (const auto& line : reply) {
      if (line.find("\"schema\":\"lion.stats.v1\"") != std::string::npos) {
        const std::uint64_t shard = json_uint_field(line, "shard");
        const std::uint64_t sessions = json_uint_field(line, "sessions");
        EXPECT_EQ(sessions, shard == home ? 1u : 0u)
            << "cut=" << cut << ": session restored off its hashed shard";
        continue;
      }
      if (!is_oob(line)) suffix.push_back(line);
    }

    // Byte identity: prefix (pre-crash) + suffix (socket resume) is the
    // uninterrupted stream. The resumed declare line re-runs, so the
    // suffix continues exactly where the prefix stopped.
    std::vector<std::string> combined;
    for (const auto& line : prefix_lines) {
      if (!is_oob(line)) combined.push_back(line);
    }
    combined.insert(combined.end(), suffix.begin(), suffix.end());
    ASSERT_EQ(baseline, combined) << "resumed stream drifted at cut=" << cut;
  }
}

}  // namespace
}  // namespace lion
