// Differential conformance: the streaming service is a transport around
// calibrate_antenna_robust, nothing more. For every golden fixture the
// serve path must produce a report byte-identical to the batch path, no
// matter how the wire bytes are chunked, and both must sit inside the
// 1e-9 golden drift gate.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "io/csv.hpp"
#include "io/report_json.hpp"
#include "serve/service.hpp"

namespace lion {
namespace {

constexpr double kTolerance = 1e-9;

std::string data_path(const std::string& name) {
  return std::string(LION_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Same comparator as the golden suite: exact structure, 1e-9 numbers.
struct ParsedJson {
  std::string skeleton;
  std::vector<double> numbers;
};

ParsedJson parse_numbers(const std::string& s) {
  ParsedJson out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])));
    if (starts_number) {
      char* end = nullptr;
      out.numbers.push_back(std::strtod(s.c_str() + i, &end));
      out.skeleton += '#';
      i = static_cast<std::size_t>(end - s.c_str());
    } else {
      out.skeleton += c;
      ++i;
    }
  }
  return out;
}

void expect_json_near(const std::string& expected, const std::string& actual,
                      const std::string& label) {
  const auto e = parse_numbers(expected);
  const auto a = parse_numbers(actual);
  ASSERT_EQ(e.skeleton, a.skeleton) << label << ": structure drifted";
  ASSERT_EQ(e.numbers.size(), a.numbers.size()) << label;
  for (std::size_t i = 0; i < e.numbers.size(); ++i) {
    const double tol =
        kTolerance +
        kTolerance * std::max(std::abs(e.numbers[i]), std::abs(a.numbers[i]));
    EXPECT_NEAR(e.numbers[i], a.numbers[i], tol)
        << label << ": number " << i << " drifted beyond 1e-9";
  }
}

// Run one fixture's CSV bytes through a fresh service in `chunk`-byte
// pieces and return every emitted line.
std::vector<std::string> serve_fixture(const std::string& csv_bytes,
                                       std::size_t chunk) {
  std::vector<std::string> lines;
  serve::StreamService service(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  const std::string wire =
      "!session g center=0,0.8,0\n" + csv_bytes + "\n!flush g\n";
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    service.ingest_bytes(wire.substr(off, std::min(chunk, wire.size() - off)));
  }
  service.finish();
  return lines;
}

void check_fixture(const std::string& stem) {
  SCOPED_TRACE(stem);
  const std::string csv_bytes = read_file(data_path(stem + ".csv"));
  ASSERT_FALSE(csv_bytes.empty());

  // Batch path: the library-default robust config, exactly what the
  // golden fixtures pin.
  const auto samples = io::read_samples_csv_file(data_path(stem + ".csv"));
  ASSERT_FALSE(samples.empty());
  const auto report =
      core::calibrate_antenna_robust(samples, {0.0, 0.8, 0.0});
  const std::string batch_line =
      "{\"schema\":\"lion.report.v1\",\"session\":\"g\",\"seq\":0,"
      "\"source\":\"fallback\",\"report\":" +
      io::report_json(report) + "}";

  // Serve path, four chunkings: single bytes, a prime stride, a typical
  // socket read, and the whole file at once.
  const std::vector<std::size_t> chunkings = {1, 7, 4096, csv_bytes.size() + 64};
  std::vector<std::string> first;
  for (const std::size_t chunk : chunkings) {
    const auto lines = serve_fixture(csv_bytes, chunk);
    ASSERT_EQ(lines.size(), 1u) << "chunk=" << chunk;
    EXPECT_EQ(lines[0], batch_line)
        << "chunk=" << chunk << ": serve diverged from batch";
    if (first.empty()) {
      first = lines;
    } else {
      EXPECT_EQ(lines, first) << "chunk=" << chunk
                              << ": output depends on chunking";
    }
  }

  // And the serve report obeys the same golden drift gate as the batch
  // suite — conformance is to the fixtures, not just to today's solver.
  std::string expected = read_file(data_path(stem + ".json"));
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r')) {
    expected.pop_back();
  }
  ASSERT_FALSE(first.empty());
  const std::string prefix =
      "{\"schema\":\"lion.report.v1\",\"session\":\"g\",\"seq\":0,"
      "\"source\":\"fallback\",\"report\":";
  ASSERT_EQ(first[0].rfind(prefix, 0), 0u);
  ASSERT_EQ(first[0].back(), '}');
  const std::string served_report =
      first[0].substr(prefix.size(), first[0].size() - prefix.size() - 1);
  expect_json_near(expected, served_report, stem + " (served)");
}

TEST(StreamVsBatch, ThreeLineRigScan) { check_fixture("golden_rig"); }

TEST(StreamVsBatch, SingleLineScan) { check_fixture("golden_line"); }

TEST(StreamVsBatch, TurntableCircleScan) { check_fixture("golden_circle"); }

// Interleaving two sessions must not perturb either result: demux state
// is per-session, so a rig session braided row-by-row with a circle
// session yields the same two reports as solo runs.
TEST(StreamVsBatch, InterleavedSessionsMatchSoloRuns) {
  const std::string rig_csv = read_file(data_path("golden_rig.csv"));
  const std::string circle_csv = read_file(data_path("golden_circle.csv"));
  auto split = [](const std::string& bytes) {
    std::vector<std::string> rows;
    std::istringstream in(bytes);
    for (std::string line; std::getline(in, line);) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) rows.push_back(std::move(line));
    }
    return rows;
  };
  const auto rig_rows = split(rig_csv);
  const auto circle_rows = split(circle_csv);

  std::vector<std::string> lines;
  serve::StreamService service(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  service.ingest_line("!session rig center=0,0.8,0");
  service.ingest_line("!session circle center=0,0.8,0");
  const std::size_t n = std::max(rig_rows.size(), circle_rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i < rig_rows.size()) service.ingest_line("@rig " + rig_rows[i]);
    if (i < circle_rows.size()) {
      service.ingest_line("@circle " + circle_rows[i]);
    }
  }
  service.ingest_line("!flush rig");
  service.ingest_line("!flush circle");
  service.finish();
  ASSERT_EQ(lines.size(), 2u);

  auto solo = [&](const std::string& stem) {
    const auto samples = io::read_samples_csv_file(data_path(stem + ".csv"));
    return io::report_json(
        core::calibrate_antenna_robust(samples, {0.0, 0.8, 0.0}));
  };
  EXPECT_EQ(lines[0],
            "{\"schema\":\"lion.report.v1\",\"session\":\"rig\",\"seq\":0,"
            "\"source\":\"fallback\",\"report\":" +
                solo("golden_rig") + "}");
  EXPECT_EQ(lines[1],
            "{\"schema\":\"lion.report.v1\",\"session\":\"circle\",\"seq\":1,"
            "\"source\":\"fallback\",\"report\":" +
                solo("golden_circle") + "}");
}

}  // namespace
}  // namespace lion
