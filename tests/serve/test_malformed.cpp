// Seeded malformed-input property tests for the two parsers on the serve
// ingest path: io::CsvStreamParser and the wire-line grammar/decoder.
// The property under test is totality — any byte sequence produces error
// statuses (never exceptions, never crashes) and the stream stays usable
// afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace lion {
namespace {

// Deterministic 64-bit LCG (MMIX constants) — seeded, reproducible,
// no std::random_device anywhere near a test.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
  double unit() { return static_cast<double>(next() % 1000000) / 1e6; }
};

std::string make_valid_row(Lcg& rng) {
  return std::to_string(rng.unit()) + "," + std::to_string(rng.unit() - 0.5) +
         "," + std::to_string(rng.unit()) + "," +
         std::to_string(rng.unit() * 6.28);
}

// Mutate a valid row into something plausibly broken the way real reader
// gateways break: truncation, field corruption, NaN/Inf text, junk bytes.
std::string mutate_row(const std::string& row, Lcg& rng) {
  switch (rng.below(8)) {
    case 0:  // truncate mid-field
      return row.substr(0, rng.below(row.size()));
    case 1:  // drop a column
      return row.substr(0, row.rfind(','));
    case 2: {  // non-numeric field
      std::string r = row;
      r.replace(r.find(','), 1, ",abc");
      return r;
    }
    case 3:  // literal NaN text
      return "nan,nan,nan,nan";
    case 4:  // infinities
      return "inf,-inf,1,2";
    case 5:  // extra columns beyond the canonical seven
      return row + ",1,2,3,4,5";
    case 6: {  // embedded NUL-ish / control garbage
      std::string r = row;
      r.insert(rng.below(r.size()), "\x01\x02;");
      return r;
    }
    default:  // pure junk
      return "!!@@##$$";
  }
}

TEST(MalformedCsv, MutatedRowsNeverThrowAndStreamRecovers) {
  Lcg rng(20260806);
  io::CsvStreamParser parser;
  std::size_t errors = 0;
  std::size_t samples = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string valid = make_valid_row(rng);
    const bool corrupt = rng.below(2) == 0;
    const std::string line = corrupt ? mutate_row(valid, rng) : valid;
    io::CsvStreamParser::Result r;
    ASSERT_NO_THROW(r = parser.push_line(line)) << "line " << i << ": " << line;
    if (r.status == io::CsvRowStatus::kError) {
      EXPECT_FALSE(r.error.empty()) << line;
      ++errors;
    } else if (r.status == io::CsvRowStatus::kSample) {
      ++samples;
    }
    // A clean row directly after any outcome must parse: the parser's
    // layout state survives errors.
    const auto clean = parser.push_line(make_valid_row(rng));
    ASSERT_EQ(clean.status, io::CsvRowStatus::kSample)
        << "parser wedged after: " << line;
  }
  EXPECT_GT(errors, 100u);   // the mutator does produce broken rows
  EXPECT_GT(samples, 500u);  // and the clean half parses
}

TEST(MalformedCsv, PermutedHeaderShortRowIsErrorNotOutOfBounds) {
  // Header places x and y *above* z and phase: a short data row used to
  // pass a z/phase-only bounds check and index fields[] out of range.
  io::CsvStreamParser parser;
  ASSERT_EQ(parser.push_line("z,phase,x,y").status, io::CsvRowStatus::kHeader);
  const auto short_row = parser.push_line("1,2");
  ASSERT_EQ(short_row.status, io::CsvRowStatus::kError);
  EXPECT_NE(short_row.error.find("too few columns"), std::string::npos);
  EXPECT_EQ(parser.push_line("1,2,3").status, io::CsvRowStatus::kError);
  // A full-width row maps through the permuted layout and keeps parsing.
  const auto ok = parser.push_line("0.5,1.25,0.1,0.2");
  ASSERT_EQ(ok.status, io::CsvRowStatus::kSample);
  EXPECT_DOUBLE_EQ(ok.sample.position[0], 0.1);
  EXPECT_DOUBLE_EQ(ok.sample.position[1], 0.2);
  EXPECT_DOUBLE_EQ(ok.sample.position[2], 0.5);
  EXPECT_DOUBLE_EQ(ok.sample.phase, 1.25);
}

TEST(MalformedCsv, AllHeaderPermutationsRejectShortRows) {
  std::vector<std::string> names{"phase", "x", "y", "z"};  // sorted
  do {
    io::CsvStreamParser parser;
    const std::string header =
        names[0] + "," + names[1] + "," + names[2] + "," + names[3];
    ASSERT_EQ(parser.push_line(header).status, io::CsvRowStatus::kHeader)
        << header;
    std::string row;
    for (int width = 1; width <= 4; ++width) {
      if (!row.empty()) row += ',';
      row += std::to_string(width);
      const auto r = parser.push_line(row);
      if (width < 4) {
        ASSERT_EQ(r.status, io::CsvRowStatus::kError)
            << header << " / " << row;
      } else {
        ASSERT_EQ(r.status, io::CsvRowStatus::kSample)
            << header << " / " << row;
      }
    }
  } while (std::next_permutation(names.begin(), names.end()));
}

TEST(MalformedCsv, NonFiniteValuesAreHandledNotThrown) {
  // Whether "nan" parses as a (later-sanitized) sample or is rejected is a
  // policy choice; what is pinned here is that neither path throws and the
  // result is well-formed either way.
  io::CsvStreamParser parser;
  for (const char* row : {"nan,0,0,1", "0,inf,0,1", "0,0,-inf,1",
                          "1,2,3,nan", "1e999,0,0,1"}) {
    io::CsvStreamParser::Result r;
    ASSERT_NO_THROW(r = parser.push_line(row)) << row;
    if (r.status == io::CsvRowStatus::kError) {
      EXPECT_FALSE(r.error.empty()) << row;
    } else {
      ASSERT_EQ(r.status, io::CsvRowStatus::kSample) << row;
    }
  }
}

TEST(MalformedCsv, OutOfOrderTimestampsAreAcceptedAtParseLayer) {
  // Reordering is the sanitizer's job (core layer), not the parser's: rows
  // with non-monotonic t must parse fine so serve can buffer them.
  io::CsvStreamParser parser;
  EXPECT_EQ(parser.push_line("x,y,z,phase,rssi,channel,t").status,
            io::CsvRowStatus::kHeader);
  double ts[] = {5.0, 1.0, 3.0, 2.0};
  for (double t : ts) {
    const auto r = parser.push_line("0.1,0.2,0.3,1.5,-60,7," +
                                    std::to_string(t));
    ASSERT_EQ(r.status, io::CsvRowStatus::kSample) << t;
    EXPECT_DOUBLE_EQ(r.sample.t, t);
  }
}

TEST(MalformedWire, RandomLinesParseTotally) {
  Lcg rng(97);
  const std::string alphabet =
      "!@#{}\",:= abcdefghij0123456789.-+\\\t";
  for (int i = 0; i < 5000; ++i) {
    std::string line;
    const std::size_t len = rng.below(80);
    for (std::size_t j = 0; j < len; ++j) {
      line += alphabet[rng.below(alphabet.size())];
    }
    serve::ParsedLine p;
    ASSERT_NO_THROW(p = serve::parse_line(line)) << "line " << i << ": " << line;
    if (p.kind == serve::ParsedLine::kError) {
      EXPECT_FALSE(p.error.empty()) << line;
    }
  }
}

TEST(MalformedWire, RandomBytesThroughServiceNeverCrash) {
  Lcg rng(4242);
  std::vector<std::string> lines;
  serve::ServiceConfig cfg;
  cfg.max_line_bytes = 256;  // exercise the oversized/resync path too
  serve::StreamService service(
      cfg, [&lines](std::string_view l) { lines.emplace_back(l); });
  for (int i = 0; i < 200; ++i) {
    std::string chunk;
    const std::size_t len = 1 + rng.below(512);
    for (std::size_t j = 0; j < len; ++j) {
      // Bias toward newline so many (garbage) lines complete.
      chunk += (rng.below(20) == 0)
                   ? '\n'
                   : static_cast<char>(32 + rng.below(95));
    }
    ASSERT_NO_THROW(service.ingest_bytes(chunk));
  }
  ASSERT_NO_THROW(service.finish());
  // Garbage in, structured errors out — every response is a complete JSON
  // object, and the service survived to give a stats snapshot.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"schema\":\"lion.error.v1\""), std::string::npos)
        << line;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.errors, lines.size());

  // The stream resyncs: a valid session + flush still works afterwards.
  std::size_t before = lines.size();
  service.ingest_bytes("!session ok center=0,0.8,0\n0.1,0.2,0.3,1\n!flush ok\n");
  service.finish();
  ASSERT_EQ(lines.size(), before + 1);
  EXPECT_NE(lines.back().find("\"schema\":\"lion.report.v1\""),
            std::string::npos);
}

TEST(MalformedWire, OversizedLinesAreCountedAndDropped) {
  Lcg rng(7);
  serve::ServiceConfig cfg;
  cfg.max_line_bytes = 64;
  std::vector<std::string> lines;
  serve::StreamService service(
      cfg, [&lines](std::string_view l) { lines.emplace_back(l); });
  service.ingest_line("!session a center=0,0.8,0");
  std::size_t oversized_sent = 0;
  for (int i = 0; i < 50; ++i) {
    if (rng.below(3) == 0) {
      service.ingest_bytes(std::string(65 + rng.below(400), 'x') + "\n");
      ++oversized_sent;
    } else {
      service.ingest_bytes("0.1,0.2,0.3,1.5\n");
    }
  }
  service.finish();
  EXPECT_EQ(service.stats().oversized, oversized_sent);
  std::size_t oversized_errors = 0;
  for (const auto& line : lines) {
    if (line.find("\"code\":\"oversized_line\"") != std::string::npos) {
      ++oversized_errors;
    }
  }
  EXPECT_EQ(oversized_errors, oversized_sent);
}

}  // namespace
}  // namespace lion
