// Serve-level conformance of the `!tick <id>` incremental pose path.
//
// The contract under test (see service.hpp "Determinism contract"):
//   - the emitted byte stream with pose ticks stays independent of chunk
//     boundaries ({1, 7, 4096, whole-stream} splits) and pool thread
//     count, across seeded interleavings of data / tick / flush lines;
//   - a fallback tick is byte-identical to the full-pipeline window solve
//     serialized through tick_response (source="fallback");
//   - an incremental tick is byte-identical to a locally mirrored
//     core::IncrementalTrackSolver fed the same accepted samples through
//     the same window mutations (push / carve-retire / flush-clear) —
//     including after window carving, the eviction-downdate regression;
//   - pose ticks on unknown or calibrate sessions answer errors;
//   - idle eviction destroys incremental state: a re-declared session
//     ticks as a fresh solver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace lion::serve {
namespace {

constexpr char kDeclare[] =
    "!session trk mode=track center=0,0,0 dir=1,0,0 speed=1 "
    "window=1000 hop=500 hint=-1,0.6,0";

/// Geometry matching kDeclare: tag from (-1, 0.6, 0) down the x belt at
/// 1 m/s, antenna at the origin, 100 Hz reads, exact Eq. (1) phases.
std::string track_row(int i) {
  const double t = 0.01 * i;
  const double x = -1.0 + t;
  const double d = std::sqrt(x * x + 0.6 * 0.6);
  const double phase = rf::wrap_phase(rf::distance_phase(d));
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"session\":\"trk\",\"x\":0,\"y\":0,\"z\":0,"
                "\"phase\":%.17g,\"t\":%.17g}",
                phase, t);
  return buf;
}

SessionConfig config_from_declare(const std::string& declare) {
  const ParsedLine parsed = parse_line(declare);
  SessionConfig cfg;
  std::string error;
  EXPECT_TRUE(make_session_config(parsed, cfg, error)) << error;
  return cfg;
}

std::vector<sim::PhaseSample> parsed_samples(
    const std::vector<std::string>& rows) {
  std::vector<sim::PhaseSample> out;
  for (const auto& row : rows) {
    const ParsedLine parsed = parse_line(row);
    EXPECT_TRUE(parsed.json_sample.has_value()) << row;
    if (parsed.json_sample) out.push_back(*parsed.json_sample);
  }
  return out;
}

struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;
  StreamService::Sink sink() {
    return [this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(line);
    };
  }
};

std::vector<std::string> run_stream(const std::string& input,
                                    std::size_t chunk,
                                    const ServiceConfig& cfg = {}) {
  Capture cap;
  StreamService service(cfg, cap.sink());
  if (chunk == 0) {
    service.ingest_bytes(input);
  } else {
    for (std::size_t i = 0; i < input.size(); i += chunk) {
      service.ingest_bytes(input.substr(i, chunk));
    }
  }
  service.finish();
  return cap.lines;
}

// ---------------------------------------------------------------------------
// Chunk / thread invariance
// ---------------------------------------------------------------------------

TEST(IncrementalServe, TickStreamIsChunkInvariant) {
  std::string input = std::string(kDeclare) + "\n";
  for (int i = 0; i < 220; ++i) {
    input += track_row(i);
    input += "\n";
    if (i % 40 == 39) input += "!tick trk\n";
  }
  input += "!flush trk\n!tick trk\n";

  const auto whole = run_stream(input, 0);
  ASSERT_FALSE(whole.empty());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    EXPECT_EQ(run_stream(input, chunk), whole) << "chunk " << chunk;
  }
}

TEST(IncrementalServe, SeededInterleavingsAreThreadCountInvariant) {
  // >= 200 seeded interleavings of append / tick / flush, each compared
  // across pool sizes (and a byte-chunked re-run of the first few).
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    std::string input = std::string(kDeclare) + "\n";
    int row = 0;
    for (int op = 0; op < 40; ++op) {
      const std::uint64_t dice = next() % 10;
      if (dice < 7) {
        const int burst = 1 + static_cast<int>(next() % 12);
        for (int i = 0; i < burst; ++i) {
          input += track_row(row++);
          input += "\n";
        }
      } else if (dice < 9) {
        input += "!tick trk\n";
      } else {
        input += "!flush trk\n";
      }
    }
    ServiceConfig one;
    one.threads = 1;
    ServiceConfig four;
    four.threads = 4;
    const auto base = run_stream(input, 0, one);
    EXPECT_EQ(run_stream(input, 0, four), base) << "seed " << seed;
    if (seed < 8) {
      EXPECT_EQ(run_stream(input, 7, four), base) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Byte-identity of both tick sources
// ---------------------------------------------------------------------------

TEST(IncrementalServe, FallbackTickIsByteIdenticalToWindowSolve) {
  // 15 samples span 0.15 m of arc < pair_interval: zero rows, so the tick
  // must take the fallback path — the full-pipeline solve of the current
  // window, serialized with source="fallback" and rows=0.
  std::vector<std::string> rows;
  for (int i = 0; i < 15; ++i) rows.push_back(track_row(i));

  std::string input = std::string(kDeclare) + "\n";
  for (const auto& r : rows) input += r + "\n";
  input += "!tick trk\n";
  const auto lines = run_stream(input, 0);
  ASSERT_EQ(lines.size(), 1u);

  const SessionConfig cfg = config_from_declare(kDeclare);
  const core::TrackFix fix =
      solve_track_window(parsed_samples(rows), cfg);
  EXPECT_EQ(lines[0], tick_response("trk", 0, 0, fix, 0, "fallback"));
  EXPECT_NE(lines[0].find("\"source\":\"fallback\""), std::string::npos);
}

TEST(IncrementalServe, IncrementalTickIsByteIdenticalToMirroredSolver) {
  std::vector<std::string> rows;
  for (int i = 0; i < 120; ++i) rows.push_back(track_row(i));

  std::string input = std::string(kDeclare) + "\n";
  for (const auto& r : rows) input += r + "\n";
  input += "!tick trk\n";
  const auto lines = run_stream(input, 0);
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_NE(lines[0].find("\"source\":\"incremental\""), std::string::npos)
      << lines[0];

  const SessionConfig cfg = config_from_declare(kDeclare);
  core::IncrementalTrackSolver mirror(incremental_config(cfg));
  for (const auto& s : parsed_samples(rows)) mirror.push(s);
  const core::TickResult tick = mirror.tick();
  ASSERT_TRUE(tick.valid);
  core::TrackFix fix;
  fix.t = tick.t;
  fix.start = tick.start;
  fix.position = tick.position;
  fix.sigma = tick.sigma;
  fix.mean_residual = tick.rms;
  fix.valid = true;
  EXPECT_EQ(lines[0],
            tick_response("trk", 0, 0, fix, tick.rows, "incremental"));
}

// Eviction-downdate regression: rows carved out of the window by the hop
// must have left the incremental normal equations via downdate, so a tick
// after several carves matches a mirror that replayed the same carving.
TEST(IncrementalServe, TickAfterWindowCarvesMatchesMirroredRetires) {
  constexpr char kCarving[] =
      "!session trk mode=track center=0,0,0 dir=1,0,0 speed=1 "
      "window=64 hop=32 hint=-1,0.6,0";
  std::vector<std::string> rows;
  for (int i = 0; i < 200; ++i) rows.push_back(track_row(i));

  std::string input = std::string(kCarving) + "\n";
  for (const auto& r : rows) input += r + "\n";
  input += "!tick trk\n";
  const auto lines = run_stream(input, 0);
  ASSERT_GE(lines.size(), 2u);  // carved-window fixes, then the tick
  const std::string& tick_line = lines.back();
  ASSERT_NE(tick_line.find("\"schema\":\"lion.tick.v1\""),
            std::string::npos);
  ASSERT_NE(tick_line.find("\"source\":\"incremental\""), std::string::npos)
      << tick_line;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"schema\":\"lion.fix.v1\""), std::string::npos)
        << lines[i];
  }

  // Mirror the service's window mutations exactly: push every accepted
  // sample; when the buffer reaches `window`, carve `hop` via retire.
  const SessionConfig cfg = config_from_declare(kCarving);
  core::IncrementalTrackSolver mirror(incremental_config(cfg));
  std::size_t buffered = 0;
  for (const auto& s : parsed_samples(rows)) {
    mirror.push(s);
    if (++buffered >= cfg.window) {
      mirror.retire(cfg.hop);
      buffered -= cfg.hop;
    }
  }
  const core::TickResult tick = mirror.tick();
  ASSERT_TRUE(tick.valid);
  core::TrackFix fix;
  fix.t = tick.t;
  fix.start = tick.start;
  fix.position = tick.position;
  fix.sigma = tick.sigma;
  fix.mean_residual = tick.rms;
  fix.valid = true;
  const std::uint64_t seq = lines.size() - 1;  // one seq per fix before it
  EXPECT_EQ(tick_line,
            tick_response("trk", seq, 0, fix, tick.rows, "incremental"));
}

// ---------------------------------------------------------------------------
// Error paths and lifecycle
// ---------------------------------------------------------------------------

TEST(IncrementalServe, TickOnUnknownOrCalibrateSessionErrors) {
  Capture cap;
  StreamService service(ServiceConfig{}, cap.sink());
  service.ingest_line("!tick nosuch");
  service.ingest_line("!session cal center=0,0.8,0");
  service.ingest_line("!tick cal");
  service.finish();
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_NE(cap.lines[0].find("\"code\":\"unknown_session\""),
            std::string::npos)
      << cap.lines[0];
  EXPECT_NE(cap.lines[1].find("\"code\":\"bad_control\""), std::string::npos)
      << cap.lines[1];

  const auto stats = service.stats();
  EXPECT_EQ(stats.pose_ticks, 0u);
  EXPECT_EQ(stats.errors, 2u);
}

TEST(IncrementalServe, StatsCountBothTickPaths) {
  Capture cap;
  StreamService service(ServiceConfig{}, cap.sink());
  service.ingest_line(kDeclare);
  service.ingest_line("!tick trk");  // no samples: fallback
  for (int i = 0; i < 120; ++i) service.ingest_line(track_row(i));
  service.ingest_line("!tick trk");  // warm: incremental
  service.ingest_line("!stats");
  service.finish();

  const auto stats = service.stats();
  EXPECT_EQ(stats.pose_ticks, 2u);
  EXPECT_EQ(stats.tick_fallbacks, 1u);
  bool saw_stats = false;
  for (const auto& line : cap.lines) {
    if (line.find("\"schema\":\"lion.stats.v1\"") == std::string::npos) {
      continue;
    }
    saw_stats = true;
    EXPECT_NE(line.find("\"pose_ticks\":2"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tick_fallbacks\":1"), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_stats);
}

TEST(IncrementalServe, FlushClearsIncrementalState) {
  Capture cap;
  StreamService service(ServiceConfig{}, cap.sink());
  service.ingest_line(kDeclare);
  for (int i = 0; i < 120; ++i) service.ingest_line(track_row(i));
  service.ingest_line("!flush trk");
  service.ingest_line("!tick trk");  // drained window: must fall back
  service.finish();
  bool saw_fallback_tick = false;
  for (const auto& line : cap.lines) {
    if (line.find("\"schema\":\"lion.tick.v1\"") == std::string::npos) {
      continue;
    }
    EXPECT_NE(line.find("\"source\":\"fallback\""), std::string::npos)
        << line;
    saw_fallback_tick = true;
  }
  EXPECT_TRUE(saw_fallback_tick);
}

TEST(IncrementalServe, EvictionDestroysIncrementalState) {
  ServiceConfig cfg;
  cfg.idle_ttl_ticks = 50;
  Capture cap;
  StreamService service(cfg, cap.sink());
  service.ingest_line(kDeclare);
  for (int i = 0; i < 120; ++i) service.ingest_line(track_row(i));
  service.ingest_line("!tick 100");  // idle the session past the TTL
  service.ingest_line("# sweep");    // any line runs the eviction sweep
  service.drain();
  EXPECT_EQ(service.stats().evictions, 1u);

  // Re-declare: the session must come back with *fresh* incremental
  // state — few samples, so the tick takes the fallback path and matches
  // a solve over only the new samples.
  service.ingest_line(kDeclare);
  std::vector<std::string> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(track_row(i));
  for (const auto& r : rows) service.ingest_line(r);
  service.ingest_line("!tick trk");
  service.finish();

  ASSERT_FALSE(cap.lines.empty());
  const std::string& tick_line = cap.lines.back();
  ASSERT_NE(tick_line.find("\"schema\":\"lion.tick.v1\""),
            std::string::npos)
      << tick_line;
  EXPECT_NE(tick_line.find("\"source\":\"fallback\""), std::string::npos)
      << tick_line;
  const SessionConfig scfg = config_from_declare(kDeclare);
  const core::TrackFix fix = solve_track_window(parsed_samples(rows), scfg);
  // Seq 1: the eviction event consumed seq 0.
  EXPECT_EQ(tick_line, tick_response("trk", 1, 0, fix, 0, "fallback"));
}

}  // namespace
}  // namespace lion::serve
