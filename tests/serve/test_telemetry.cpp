// Telemetry plane: per-session RED snapshots, the `!trace` span dump,
// the `!healthz` observability gauges, the Prometheus exposition
// renderer, the HTTP scrape endpoint under concurrent ingest load, and
// the contract that matters most — turning every observability feature
// on leaves the sequenced byte stream identical.

#include "serve/telemetry.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace lion {
namespace {

std::string data_path(const std::string& name) {
  return std::string(LION_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Feed one calibrate fixture through a service built on `cfg` and return
/// every emitted line.
std::vector<std::string> run_fixture(const serve::ServiceConfig& cfg,
                                     const std::string& csv_bytes,
                                     const std::vector<std::string>& extra =
                                         {}) {
  std::vector<std::string> lines;
  serve::StreamService service(
      cfg, [&lines](std::string_view line) { lines.emplace_back(line); });
  service.ingest_bytes("!session g center=0,0.8,0\n" + csv_bytes +
                       "\n!flush g\n");
  if (!extra.empty()) service.drain();  // solve spans precede the extras
  for (const std::string& l : extra) service.ingest_line(l);
  service.finish();
  return lines;
}

// RAII guard: tests that flip the process-wide obs switches must restore
// them, or they would leak into the rest of this binary's suites.
struct ObsFlagsGuard {
  ~ObsFlagsGuard() {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
  }
};

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Minimal HTTP/1.0 exchange against 127.0.0.1:port; returns the full
/// response (headers + body), or "" on connect failure.
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string response;
  if (send_all(fd, request.data(), request.size())) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(Telemetry, SnapshotTracksPerSessionRed) {
  const std::string csv = read_file(data_path("golden_rig.csv"));
  ASSERT_FALSE(csv.empty());
  std::vector<std::string> lines;
  serve::StreamService service(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  service.ingest_bytes("!session g center=0,0.8,0\n" + csv + "\n!flush g\n");
  service.drain();

  const serve::ServiceTelemetry tel = service.telemetry();
  EXPECT_GE(tel.uptime_s, 0.0);
  EXPECT_GT(tel.stats.samples, 0u);
  ASSERT_EQ(tel.sessions.size(), 1u);
  const serve::SessionTelemetry& s = tel.sessions[0];
  EXPECT_EQ(s.id, "g");
  EXPECT_FALSE(s.track);
  EXPECT_EQ(s.in_flight, 0u);  // drained
  EXPECT_EQ(s.samples, tel.stats.samples);
  EXPECT_EQ(s.flushes, 1u);
  EXPECT_GE(s.requests, 1u);
  EXPECT_EQ(s.errors, 0u);
  // The flush's solve landed in the duration histogram.
  EXPECT_GE(s.solve_seconds.count(), 1u);
  EXPECT_GT(s.solve_seconds.sum(), 0.0);
}

// `!trace` must answer on a completely uninstrumented daemon: the
// per-session span ring is always maintained, independent of the global
// metrics/tracing switches (both off by default in this binary).
TEST(Telemetry, TraceDumpListsPipelineSpans) {
  const std::string csv = read_file(data_path("golden_rig.csv"));
  const auto lines =
      run_fixture(serve::ServiceConfig{}, csv, {"!trace g"});

  std::string trace;
  for (const auto& l : lines) {
    if (l.rfind("{\"schema\":\"lion.trace.v1\"", 0) == 0) trace = l;
  }
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"session\":\"g\""), std::string::npos);
  // Out-of-band: a trace dump consumes no sequence number.
  EXPECT_EQ(trace.find("\"seq\":"), std::string::npos);
  // The ingest-side stages are recorded per line; the solve stages at
  // completion. All of them survive into the dump for a small stream.
  EXPECT_NE(trace.find("\"stage\":\"demux\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"stage\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"stage\":\"serve_solve\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur_ns\":"), std::string::npos);
}

TEST(Telemetry, TraceUnknownSessionIsAnError) {
  std::vector<std::string> lines;
  serve::StreamService service(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  service.ingest_line("!trace nosuch");
  service.finish();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"schema\":\"lion.error.v1\""), std::string::npos);
  EXPECT_NE(lines[0].find("unknown_session"), std::string::npos);
}

TEST(Telemetry, HealthzCarriesObservabilityGauges) {
  const std::string csv = read_file(data_path("golden_rig.csv"));
  const auto lines =
      run_fixture(serve::ServiceConfig{}, csv, {"!healthz"});
  std::string health;
  for (const auto& l : lines) {
    if (l.rfind("{\"schema\":\"lion.health.v1\"", 0) == 0) health = l;
  }
  ASSERT_FALSE(health.empty());
  EXPECT_NE(health.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(health.find("\"tick_fallback_ratio\":"), std::string::npos);
  EXPECT_NE(health.find("\"reorder_depth_hwm\":"), std::string::npos);
}

TEST(Telemetry, RenderMetricsBodyExposesSessionSeries) {
  // The daemon enables the registry whenever the scrape plane is up
  // (TelemetryServer::start does the same); mirror that here.
  ObsFlagsGuard guard;
  obs::set_metrics_enabled(true);
  const std::string csv = read_file(data_path("golden_rig.csv"));
  std::vector<std::string> lines;
  serve::StreamService service(
      serve::ServiceConfig{},
      [&lines](std::string_view line) { lines.emplace_back(line); });
  service.ingest_bytes("!session g center=0,0.8,0\n" + csv + "\n!flush g\n");
  service.drain();

  obs::EventLog events;
  events.emit(obs::Severity::kWarn, "slow_request", "g", "test");
  const std::string body =
      serve::render_metrics_body({service.telemetry()}, &events);

  EXPECT_NE(body.find("lion_serve_lines_total "), std::string::npos);
  EXPECT_NE(body.find("lion_serve_live_sessions 1"), std::string::npos);
  EXPECT_NE(body.find("lion_session_requests_total{session=\"g\"} "),
            std::string::npos);
  EXPECT_NE(body.find("lion_session_samples_total{session=\"g\"} "),
            std::string::npos);
  EXPECT_NE(body.find("lion_session_solve_seconds_bucket{session=\"g\","
                      "le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(body.find("lion_session_solve_seconds_sum{session=\"g\"} "),
            std::string::npos);
  EXPECT_NE(body.find("lion_session_solve_seconds_count{session=\"g\"} "),
            std::string::npos);
  EXPECT_NE(body.find("lion_process_rss_bytes "), std::string::npos);
  // Calibrate-flush split: the single cold flush above is a fallback with
  // reason "cold"; every other reason renders as an explicit zero.
  EXPECT_NE(body.find("lion_serve_cal_flushes_total 1"), std::string::npos);
  EXPECT_NE(body.find("lion_serve_cal_fallbacks_total 1"), std::string::npos);
  EXPECT_NE(body.find("lion_serve_cal_fallbacks_by_reason_total"
                      "{reason=\"cold\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("lion_serve_cal_fallbacks_by_reason_total"
                      "{reason=\"drift\"} 0"),
            std::string::npos);
  EXPECT_NE(body.find("lion_events_emitted_total 1"), std::string::npos);
  EXPECT_NE(body.find("lion_events_by_severity_total{severity=\"warn\"} 1"),
            std::string::npos);

  // Exposition shape: every non-comment line is `name[{labels}] value`
  // with a parseable value.
  std::istringstream iss(body);
  for (std::string line; std::getline(iss, line);) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
  }
}

// Sharded serving: the connection gauge comes from the transport (one
// service entry per *shard* no longer means one per connection), and the
// per-shard queue series render from the lock-free gauge mirrors.
TEST(Telemetry, RenderMetricsBodyExposesShardQueueSeries) {
  ObsFlagsGuard guard;
  obs::set_metrics_enabled(true);
  std::vector<serve::ShardGauges> shards(2);
  shards[0].shard = 0;
  shards[0].queue_depth = 5;
  shards[0].queue_hwm = 9;
  shards[0].queue_stalls = 2;
  shards[1].shard = 1;
  shards[1].queue_hwm = 3;
  const std::string body =
      serve::render_metrics_body({}, nullptr, shards, 7);
  EXPECT_NE(body.find("lion_serve_connections 7"), std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_depth{shard=\"0\"} 5"),
            std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_depth{shard=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_hwm{shard=\"0\"} 9"),
            std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_hwm{shard=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_stalls_total{shard=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(body.find("lion_shard_queue_stalls_total{shard=\"1\"} 0"),
            std::string::npos);

  // Legacy single-service callers (no transport plumbed in): connection
  // count falls back to the service entry count, no shard series.
  const std::string legacy = serve::render_metrics_body({}, nullptr);
  EXPECT_NE(legacy.find("lion_serve_connections 0"), std::string::npos);
  EXPECT_EQ(legacy.find("lion_shard_queue_depth"), std::string::npos);
}

// The scrape endpoint must answer correct 200s while a client hammers
// the data plane — and the concurrent scrapes must not perturb the
// session's responses (the replies below are still counted and checked).
TEST(Telemetry, EndpointServesScrapesUnderIngestLoad) {
  const std::string csv = read_file(data_path("golden_rig.csv"));
  serve::ServerConfig scfg;
  scfg.tcp_port = 0;
  serve::SocketServer server(scfg);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  serve::TelemetryConfig tcfg;
  tcfg.port = 0;
  tcfg.collect = [&server] { return server.telemetry(); };
  serve::TelemetryServer telemetry(tcfg);
  ASSERT_TRUE(telemetry.start(error)) << error;

  // Data-plane client.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::atomic<bool> done{false};
  std::atomic<int> scrapes_ok{0};
  std::atomic<int> scrapes_bad{0};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string response =
          http_request(telemetry.port(), "GET /metrics HTTP/1.0\r\n\r\n");
      if (response.rfind("HTTP/1.0 200", 0) == 0 &&
          response.find("lion_serve_lines_total") != std::string::npos) {
        scrapes_ok.fetch_add(1);
      } else {
        scrapes_bad.fetch_add(1);
      }
    }
  });

  const std::string wire =
      "!session load center=0,0.8,0\n" + csv + "\n!flush load\n";
  for (std::size_t off = 0; off < wire.size(); off += 512) {
    ASSERT_TRUE(
        send_all(fd, wire.data() + off, std::min<std::size_t>(512, wire.size() - off)));
  }
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  done.store(true);
  scraper.join();

  EXPECT_NE(reply.find("\"schema\":\"lion.report.v1\""), std::string::npos);
  EXPECT_EQ(reply.find("\"schema\":\"lion.error.v1\""), std::string::npos);
  EXPECT_GT(scrapes_ok.load(), 0);
  EXPECT_EQ(scrapes_bad.load(), 0);

  // Path/method handling.
  EXPECT_EQ(http_request(telemetry.port(), "GET /healthz HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 200", 0),
            0u);
  EXPECT_EQ(http_request(telemetry.port(), "GET /nope HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 404", 0),
            0u);
  EXPECT_EQ(http_request(telemetry.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405", 0),
            0u);

  telemetry.stop();
  server.stop();
}

// The determinism keystone: metrics on, tracing on, an event log attached
// and a hair-trigger slow-request threshold must leave every sequenced
// byte identical to the all-off run.
TEST(Telemetry, FullObservabilityKeepsSequencedBytesIdentical) {
  const std::string csv = read_file(data_path("golden_rig.csv"));
  ASSERT_FALSE(csv.empty());

  const auto baseline = run_fixture(serve::ServiceConfig{}, csv);
  ASSERT_FALSE(baseline.empty());

  ObsFlagsGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  obs::EventLog events;
  serve::ServiceConfig cfg;
  cfg.events = &events;
  cfg.slow_request_s = 1e-12;  // every request is "slow"
  const auto instrumented = run_fixture(cfg, csv);

  ASSERT_EQ(baseline.size(), instrumented.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i], instrumented[i]) << "line " << i;
  }
  // And the observation side actually observed: the slow-request event
  // fired without touching the byte stream.
  bool saw_slow = false;
  for (const auto& e : events.snapshot()) {
    if (e.type == "slow_request") saw_slow = true;
  }
  EXPECT_TRUE(saw_slow);
}

}  // namespace
}  // namespace lion
