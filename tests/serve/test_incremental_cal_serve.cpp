// Serve-level conformance of the incremental calibrate `!flush` path.
//
// The contract under test (see service.hpp and core/incremental_cal.hpp):
//   - every lion.report.v1 response carries a source tag, and a steady
//     clean session progresses fallback (cold) -> memo (unchanged buffer)
//     -> incremental (small append through the warm gates);
//   - a warm-tier report is byte-identical to the full batch pipeline's
//     report over the same buffer (the `"report":{...}` payload matches a
//     cold solve of an identical session byte for byte);
//   - the emitted byte stream is chunk-boundary invariant: the flush
//     decision depends on the accepted lines, not transport framing;
//   - each declinable gate shows up in `!stats` under its own counter
//     (cal_fb_cold / cal_fb_drift / cal_fb_delta / cal_fb_status), the
//     memo tier answers regardless of the anchor's status, and `!healthz`
//     carries the aggregate calibrate counters + fallback ratio;
//   - smoothing= is a calibrate-only declare option.
#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/vec.hpp"
#include "rf/phase_model.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/trajectory.hpp"

namespace lion::serve {
namespace {

constexpr char kDeclare[] = "!session cal center=0.009,0.789,0.006 smoothing=1";

/// Clean three-line-rig scan: exact Eq. (1) phases from a slightly offset
/// physical center plus a constant cable offset, sampled on the same
/// dt = 0.1 grid (with full rssi/channel/t columns) as the core
/// differential suite's clean_stream — the regime where the batch
/// tournament is basin-stable and the warm tier's gates admit appends.
/// Rows at index >= `corrupt_from` carry a +0.3 rad phase error — enough
/// residual mass to trip the warm tier's drift gate without derailing the
/// batch solve.
std::vector<std::string> rig_rows(std::size_t corrupt_from = SIZE_MAX) {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto traj = rig.build();
  const linalg::Vec3 center{0.009, 0.789, 0.006};
  std::vector<std::string> rows;
  for (double t = 0.0; t <= traj.duration(); t += 0.1) {
    const auto p = traj.position(t);
    double phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(center, p)) + 2.1);
    if (rows.size() >= corrupt_from) phase = rf::wrap_phase(phase + 0.3);
    char buf[200];
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%.17g,%.17g,-55,0,%.17g",
                  p[0], p[1], p[2], phase, t);
    rows.emplace_back(buf);
  }
  return rows;
}

/// Single-line scan (y = z = 0): 3D-degenerate on purpose, so the batch
/// pipeline reports a non-kOk status and the anchor fails the warm tier's
/// status gate.
std::vector<std::string> line_rows(std::size_t n) {
  const linalg::Vec3 center{0.0, 0.8, 0.0};
  std::vector<std::string> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        -0.5 + static_cast<double>(i) / static_cast<double>(n - 1);
    const linalg::Vec3 p{x, 0.0, 0.0};
    const double phase =
        rf::wrap_phase(rf::distance_phase(linalg::distance(center, p)));
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.17g,0,0,%.17g", x, phase);
    rows.emplace_back(buf);
  }
  return rows;
}

struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;
  StreamService::Sink sink() {
    return [this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(line);
    };
  }
};

std::vector<std::string> run_stream(const std::string& input,
                                    std::size_t chunk,
                                    const ServiceConfig& cfg = {}) {
  Capture cap;
  StreamService service(cfg, cap.sink());
  if (chunk == 0) {
    service.ingest_bytes(input);
  } else {
    for (std::size_t i = 0; i < input.size(); i += chunk) {
      service.ingest_bytes(input.substr(i, chunk));
    }
  }
  service.finish();
  return cap.lines;
}

std::vector<std::string> filter_reports(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const auto& l : lines) {
    if (l.find("\"schema\":\"lion.report.v1\"") != std::string::npos) {
      out.push_back(l);
    }
  }
  return out;
}

std::string source_of(const std::string& report_line) {
  const auto key = report_line.find("\"source\":\"");
  if (key == std::string::npos) return "";
  const auto start = key + 10;
  return report_line.substr(start, report_line.find('"', start) - start);
}

/// The serialized report payload, independent of envelope (seq, source).
std::string report_payload(const std::string& report_line) {
  const auto key = report_line.find("\"report\":");
  EXPECT_NE(key, std::string::npos) << report_line;
  if (key == std::string::npos) return "";
  return report_line.substr(key);
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tier progression and byte-identity
// ---------------------------------------------------------------------------

TEST(IncrementalCalServe, SourceTagProgressesColdMemoWarm) {
  const auto rows = rig_rows();
  const std::size_t base = rows.size() - rows.size() / 10;
  std::string input = std::string(kDeclare) + "\n";
  for (std::size_t i = 0; i < base; ++i) input += rows[i] + "\n";
  input += "!flush cal\n";  // no anchor yet -> cold fallback
  input += "!flush cal\n";  // unchanged buffer -> memo
  for (std::size_t i = base; i < rows.size(); ++i) input += rows[i] + "\n";
  input += "!flush cal\n";  // small clean append -> warm tier

  const auto reports = filter_reports(run_stream(input, 0));
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(source_of(reports[0]), "fallback");
  EXPECT_EQ(source_of(reports[1]), "memo");
  EXPECT_EQ(source_of(reports[2]), "incremental");

  // The memo answer re-serializes the anchor report: identical payload.
  EXPECT_EQ(report_payload(reports[1]), report_payload(reports[0]));
}

TEST(IncrementalCalServe, WarmReportIsByteIdenticalToBatch) {
  const auto rows = rig_rows();
  const std::size_t base = rows.size() - rows.size() / 10;

  // Session that answers the final flush from the warm tier.
  std::string warm_input = std::string(kDeclare) + "\n";
  for (std::size_t i = 0; i < base; ++i) warm_input += rows[i] + "\n";
  warm_input += "!flush cal\n";
  for (std::size_t i = base; i < rows.size(); ++i) warm_input += rows[i] + "\n";
  warm_input += "!flush cal\n";
  const auto warm_reports = filter_reports(run_stream(warm_input, 0));
  ASSERT_EQ(warm_reports.size(), 2u);
  ASSERT_EQ(source_of(warm_reports[1]), "incremental");

  // Fresh session over the full buffer: cold full-pipeline solve.
  std::string batch_input = std::string(kDeclare) + "\n";
  for (const auto& r : rows) batch_input += r + "\n";
  batch_input += "!flush cal\n";
  const auto batch_reports = filter_reports(run_stream(batch_input, 0));
  ASSERT_EQ(batch_reports.size(), 1u);
  ASSERT_EQ(source_of(batch_reports[0]), "fallback");

  EXPECT_EQ(report_payload(warm_reports[1]),
            report_payload(batch_reports[0]));
}

TEST(IncrementalCalServe, FlushStreamIsChunkAndThreadInvariant) {
  const auto rows = rig_rows();
  const std::size_t base = rows.size() - rows.size() / 10;
  std::string input = std::string(kDeclare) + "\n";
  for (std::size_t i = 0; i < base; ++i) input += rows[i] + "\n";
  input += "!flush cal\n!flush cal\n";
  for (std::size_t i = base; i < rows.size(); ++i) input += rows[i] + "\n";
  input += "!flush cal\n";

  const auto whole = run_stream(input, 0);
  ASSERT_FALSE(whole.empty());
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    EXPECT_EQ(run_stream(input, chunk), whole) << "chunk " << chunk;
  }
  ServiceConfig one;
  one.threads = 1;
  EXPECT_EQ(run_stream(input, 0, one), whole);
}

// ---------------------------------------------------------------------------
// Fallback reasons and counters
// ---------------------------------------------------------------------------

TEST(IncrementalCalServe, StatsCountFallbackReasonsPerGate) {
  const auto rows = rig_rows();
  const auto corrupted = rig_rows(300);
  ASSERT_GE(rows.size(), 350u);
  std::vector<std::string> input;

  // drift: the appended rows carry a phase error, so the re-derived
  // consensus mask / IRLS fixpoint no longer verifies against the anchor.
  input.push_back("!session drift center=0.009,0.789,0.006 smoothing=1");
  for (std::size_t i = 0; i < 300; ++i) input.push_back(corrupted[i]);
  input.push_back("!flush drift");  // cold
  for (std::size_t i = 300; i < 310; ++i) input.push_back(corrupted[i]);
  input.push_back("!flush drift");  // drift

  // sweep: the library-default smoothing window re-smooths old samples on
  // every append, so the sweep structure the anchor was solved under no
  // longer matches the current buffer's.
  input.push_back("!session sweep center=0.009,0.789,0.006");
  for (std::size_t i = 0; i < 300; ++i) input.push_back(rows[i]);
  input.push_back("!flush sweep");  // cold
  for (std::size_t i = 300; i < 310; ++i) input.push_back(rows[i]);
  input.push_back("!flush sweep");  // sweep

  // delta: 150 appended rows on a 200-row anchor exceeds the 50% delta cap.
  input.push_back("!session delta center=0.009,0.789,0.006 smoothing=1");
  for (std::size_t i = 0; i < 200; ++i) input.push_back(rows[i]);
  input.push_back("!flush delta");  // cold
  for (std::size_t i = 200; i < 350; ++i) input.push_back(rows[i]);
  input.push_back("!flush delta");  // delta

  const auto lines = run_stream(join(input) + "!stats\n", 0);
  const auto reports = filter_reports(lines);
  ASSERT_EQ(reports.size(), 6u);
  for (const auto& r : reports) EXPECT_EQ(source_of(r), "fallback") << r;

  ASSERT_FALSE(lines.empty());
  const std::string& stats = lines.back();
  ASSERT_NE(stats.find("\"schema\":\"lion.stats.v1\""), std::string::npos);
  EXPECT_NE(stats.find("\"cal_flushes\":6"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_fallbacks\":6"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_fb_cold\":3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_fb_drift\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_fb_sweep\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_fb_delta\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_memo\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_incremental\":0"), std::string::npos) << stats;
}

TEST(IncrementalCalServe, DegradedAnchorTripsStatusGateButMemoStillAnswers) {
  const auto rows = line_rows(120);
  std::string input =
      "!session line center=0,0.8,0 smoothing=1\n";
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) input += rows[i] + "\n";
  input += "!flush line\n";  // cold; installs a non-kOk (degenerate) anchor
  input += "!flush line\n";  // unchanged buffer -> memo, any status
  input += rows.back() + "\n";
  input += "!flush line\n";  // append on a degraded anchor -> status gate
  input += "!stats\n";

  const auto lines = run_stream(input, 0);
  const auto reports = filter_reports(lines);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(source_of(reports[0]), "fallback");
  EXPECT_EQ(source_of(reports[1]), "memo");
  EXPECT_EQ(report_payload(reports[1]), report_payload(reports[0]));
  EXPECT_EQ(source_of(reports[2]), "fallback");

  const std::string& stats = lines.back();
  EXPECT_NE(stats.find("\"cal_fb_status\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cal_memo\":1"), std::string::npos) << stats;
}

TEST(IncrementalCalServe, HealthzCarriesCalCountersAndRatio) {
  const auto rows = rig_rows();
  const std::size_t base = rows.size() - rows.size() / 10;
  std::string input = std::string(kDeclare) + "\n";
  for (std::size_t i = 0; i < base; ++i) input += rows[i] + "\n";
  input += "!flush cal\n!flush cal\n";
  for (std::size_t i = base; i < rows.size(); ++i) input += rows[i] + "\n";
  input += "!flush cal\n!healthz\n";

  const auto lines = run_stream(input, 0);
  ASSERT_FALSE(lines.empty());
  const std::string& health = lines.back();
  ASSERT_NE(health.find("\"schema\":\"lion.health.v1\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"cal_flushes\":3"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cal_memo\":1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cal_incremental\":1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cal_fallbacks\":1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cal_fallback_ratio\":"), std::string::npos)
      << health;
}

// ---------------------------------------------------------------------------
// Declare validation
// ---------------------------------------------------------------------------

TEST(IncrementalCalServe, SmoothingIsACalibrateOnlyOption) {
  const auto lines = run_stream(
      "!session trk mode=track center=0,0,0 dir=1,0,0 speed=1 "
      "window=1000 hop=500 smoothing=1\n",
      0);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"schema\":\"lion.error.v1\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("smoothing"), std::string::npos) << lines[0];
}

TEST(IncrementalCalServe, MalformedSmoothingValueIsAnError) {
  const auto lines =
      run_stream("!session cal center=0,0.8,0 smoothing=banana\n", 0);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"schema\":\"lion.error.v1\""), std::string::npos)
      << lines[0];
}

}  // namespace
}  // namespace lion::serve
