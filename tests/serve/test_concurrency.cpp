// Concurrency behavior of the session manager: N producer threads over M
// sessions, bounded in-flight queues with lossless backpressure, a shared
// worker pool across services, and determinism of the single-ingest-thread
// contract (including eviction under the virtual clock).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.hpp"
#include "serve/service.hpp"

namespace lion::serve {
namespace {

std::string json_row(int i, const std::string& session = "") {
  std::string row = "{";
  if (!session.empty()) {
    row += "\"session\":\"";
    row += session;
    row += "\",";
  }
  row += "\"x\":";
  row += std::to_string(0.01 * i);
  row += ",\"y\":0.2,\"z\":0,\"phase\":";
  row += std::to_string(i % 7);
  row += ",\"t\":";
  row += std::to_string(0.1 * i);
  row += "}";
  return row;
}

TEST(Concurrency, ManyProducersManySessions) {
  constexpr int kProducers = 4;
  constexpr int kSessions = 4;
  constexpr int kRowsPerProducer = 200;

  std::mutex mu;
  std::vector<std::string> lines;
  StreamService service(ServiceConfig{}, [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });

  std::vector<std::string> names;
  for (int s = 0; s < kSessions; ++s) {
    std::string name = "s";
    name += std::to_string(s);
    names.push_back(std::move(name));
  }
  for (const std::string& name : names) {
    service.ingest_line("!session " + name + " center=0,0.8,0");
  }

  // ingest_line is thread-safe; producers interleave arbitrarily, each
  // row naming its session inline so the interleaving cannot corrupt demux.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &names, p] {
      for (int i = 0; i < kRowsPerProducer; ++i) {
        service.ingest_line(json_row(i, names[(p + i) % kSessions]));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int s = 0; s < kSessions; ++s) {
    service.ingest_line("!flush s" + std::to_string(s));
  }
  service.finish();

  const auto stats = service.stats();
  EXPECT_EQ(stats.samples,
            static_cast<std::uint64_t>(kProducers * kRowsPerProducer));
  EXPECT_EQ(stats.parse_errors, 0u);
  EXPECT_EQ(stats.reports, static_cast<std::uint64_t>(kSessions));

  // Exactly one report per session, seqs strictly increasing, and every
  // line is a complete JSON object (the sink is serialized).
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kSessions));
  std::uint64_t last_seq = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"schema\":\"lion.report.v1\""),
              std::string::npos)
        << lines[i];
    const auto pos = lines[i].find("\"seq\":");
    ASSERT_NE(pos, std::string::npos);
    const std::uint64_t seq = std::stoull(lines[i].substr(pos + 6));
    if (i > 0) {
      EXPECT_GT(seq, last_seq) << lines[i];
    }
    last_seq = seq;
  }
}

TEST(Concurrency, BackpressureBlocksLosslesslyAtInflightOne) {
  // With one in-flight slot per session, rapid flushes must *wait*, not
  // drop: every flush still produces its report, in order.
  ServiceConfig cfg;
  cfg.max_inflight_per_session = 1;
  cfg.threads = 2;
  std::mutex mu;
  std::vector<std::string> lines;
  StreamService service(cfg, [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  service.ingest_line("!session a center=0,0.8,0");
  constexpr int kFlushes = 12;
  for (int f = 0; f < kFlushes; ++f) {
    for (int i = 0; i < 30; ++i) service.ingest_line(json_row(f * 30 + i));
    service.ingest_line("!flush a");
  }
  service.finish();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kFlushes));
  for (const auto& line : lines) {
    EXPECT_NE(line.find("\"schema\":\"lion.report.v1\""), std::string::npos)
        << line;
  }
  EXPECT_GT(service.stats().backpressure_waits, 0u);
  EXPECT_EQ(service.stats().rejected_busy, 0u);
}

TEST(Concurrency, SharedPoolAcrossServices) {
  // Two services on one caller-owned pool (the SocketServer topology):
  // both make progress, neither corrupts the other's output.
  engine::ThreadPool pool(3);
  std::mutex mu_a, mu_b;
  std::vector<std::string> lines_a, lines_b;
  {
    StreamService a(ServiceConfig{}, [&](std::string_view l) {
      std::lock_guard<std::mutex> lock(mu_a);
      lines_a.emplace_back(l);
    }, &pool);
    StreamService b(ServiceConfig{}, [&](std::string_view l) {
      std::lock_guard<std::mutex> lock(mu_b);
      lines_b.emplace_back(l);
    }, &pool);
    std::thread ta([&a] {
      a.ingest_line("!session x center=0,0.8,0");
      for (int i = 0; i < 100; ++i) a.ingest_line(json_row(i));
      a.ingest_line("!flush x");
      a.finish();
    });
    std::thread tb([&b] {
      b.ingest_line("!session y center=0,0.8,0");
      for (int i = 0; i < 100; ++i) b.ingest_line(json_row(i + 1));
      b.ingest_line("!flush y");
      b.finish();
    });
    ta.join();
    tb.join();
  }
  pool.wait_idle();
  ASSERT_EQ(lines_a.size(), 1u);
  ASSERT_EQ(lines_b.size(), 1u);
  EXPECT_NE(lines_a[0].find("\"session\":\"x\""), std::string::npos);
  EXPECT_NE(lines_b[0].find("\"session\":\"y\""), std::string::npos);
}

TEST(Concurrency, EvictionUnderVirtualClockIsDeterministic) {
  // The determinism contract: one ingest thread in, the byte stream out is
  // a pure function of the input — including evictions, which ride the
  // virtual clock (ticks), never wall time. Two runs with worker pools of
  // different sizes must still emit identical bytes.
  const std::vector<std::string> script = [] {
    std::vector<std::string> s;
    s.push_back("!session old center=0,0.8,0");
    for (int i = 0; i < 10; ++i) s.push_back(json_row(i, "old"));
    s.push_back("!session young center=0,0.8,0");
    s.push_back("!flush old");
    s.push_back("!tick 40");
    s.push_back("!stats");
    return s;
  }();

  auto run = [&script](std::size_t threads) {
    ServiceConfig cfg;
    cfg.idle_ttl_ticks = 30;
    cfg.threads = threads;
    std::vector<std::string> lines;
    StreamService service(cfg, [&lines](std::string_view l) {
      lines.emplace_back(l);
    });
    for (const auto& line : script) service.ingest_line(line);
    service.finish();
    return lines;
  };

  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one, four);
  // The script evicts both sessions at the tick jump (old went idle when
  // flushed; young never saw traffic after its declare).
  ASSERT_EQ(one.size(), 4u);  // report, 2 evict events, stats
  EXPECT_NE(one[1].find("\"event\":\"evict\""), std::string::npos) << one[1];
  EXPECT_NE(one[2].find("\"event\":\"evict\""), std::string::npos) << one[2];
  EXPECT_NE(one[3].find("\"schema\":\"lion.stats.v1\""), std::string::npos);
}

TEST(Concurrency, DrainIsIdempotentAndDestructionIsClean) {
  // Destroying a service with work in flight must not crash or deadlock;
  // drain() may be called repeatedly.
  for (int trial = 0; trial < 10; ++trial) {
    std::atomic<int> responses{0};
    StreamService service(ServiceConfig{}, [&](std::string_view) {
      responses.fetch_add(1);
    });
    service.ingest_line("!session a center=0,0.8,0");
    for (int i = 0; i < 50; ++i) service.ingest_line(json_row(i));
    service.ingest_line("!flush a");
    if (trial % 2 == 0) {
      service.drain();
      service.drain();
      EXPECT_EQ(responses.load(), 1);
    }
    // else: destructor drains.
  }
}

}  // namespace
}  // namespace lion::serve
