// StreamService behavior: session lifecycle, error statuses, the ordered
// emitter, the virtual clock, stats, and the timeout degradation path.
// Everything here is single-ingest-thread, where the service's output is
// contractually a pure function of its input.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"

namespace lion::serve {
namespace {

struct Harness {
  std::vector<std::string> lines;
  StreamService service;

  explicit Harness(ServiceConfig cfg = {})
      : service(std::move(cfg), [this](std::string_view line) {
          lines.emplace_back(line);
        }) {}

  void feed(const std::vector<std::string>& input) {
    for (const auto& l : input) service.ingest_line(l);
    service.drain();
  }
};

bool has_field(const std::string& line, const std::string& key,
               const std::string& value) {
  return line.find("\"" + key + "\":\"" + value + "\"") != std::string::npos;
}

// A tiny but solvable calibrate payload is overkill for lifecycle tests;
// most cases only need rows that *parse*, not rows that calibrate.
const char* kRow = "0.1,0.2,0.3,1.5";

TEST(Service, DeclareIsSilentAndDataBeforeDeclareErrors) {
  Harness h;
  h.feed({"0.1,0.2,0.3,1.5"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.error.v1"));
  EXPECT_TRUE(has_field(h.lines[0], "code", "unknown_session"));

  h.feed({"!session a center=0,0.8,0", kRow, kRow});
  EXPECT_EQ(h.lines.size(), 1u);  // declare + accepted rows answer nothing
  EXPECT_EQ(h.service.stats().samples, 2u);
}

TEST(Service, RoutedDataToUnknownSessionErrors) {
  Harness h;
  h.feed({"!session a center=0,0.8,0", "@ghost 0.1,0.2,0.3,1.5"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "unknown_session"));
  EXPECT_TRUE(has_field(h.lines[0], "session", "ghost"));
}

TEST(Service, DuplicateDeclareAndSessionLimit) {
  ServiceConfig cfg;
  cfg.max_sessions = 1;
  Harness h(cfg);
  h.feed({"!session a center=0,0.8,0", "!session a center=0,0.8,0",
          "!session b center=0,0.8,0"});
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "bad_control"));
  EXPECT_TRUE(has_field(h.lines[1], "code", "session_limit"));
}

TEST(Service, BadDeclareOptionsBecomeErrors) {
  Harness h;
  h.feed({"!session a",                                   // no center
          "!session b center=0,0,0 window=100",           // tracker knob
          "!session c mode=track center=0,0,0 window=4",  // window < 8
          "!session d mode=track center=0,0,0 dir=0,0,0"});
  ASSERT_EQ(h.lines.size(), 4u);
  for (const auto& line : h.lines) {
    EXPECT_TRUE(has_field(line, "code", "bad_control")) << line;
  }
}

TEST(Service, ImplicitCenterOpensDefaultSession) {
  ServiceConfig cfg;
  cfg.implicit_center = Vec3{0.0, 0.8, 0.0};
  Harness h(cfg);
  h.feed({"x,y,z,phase", kRow, "!flush default"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.report.v1"));
  EXPECT_TRUE(has_field(h.lines[0], "session", "default"));
  // One parseable row cannot calibrate — graceful degradation, not crash.
  EXPECT_NE(h.lines[0].find("\"status\":"), std::string::npos);
}

TEST(Service, CsvHeaderAndParseErrorsPerSession) {
  Harness h;
  h.feed({"!session a center=0,0.8,0", "x,y,z,phase",  // header: silent
          "1,2,3,nonsense",                            // parse error
          "1,2"});                                     // too few columns
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "parse_error"));
  EXPECT_TRUE(has_field(h.lines[1], "code", "parse_error"));
  EXPECT_EQ(h.service.stats().parse_errors, 2u);
}

TEST(Service, SequenceNumbersAreDenseAndOrdered) {
  Harness h;
  h.feed({"!session a center=0,0.8,0", "garbage,row", "!flush a",
          "@ghost 1,2,3,4", "!flush a", "!stats"});
  ASSERT_GE(h.lines.size(), 5u);
  for (std::size_t i = 0; i < h.lines.size(); ++i) {
    const std::string want = "\"seq\":" + std::to_string(i);
    EXPECT_NE(h.lines[i].find(want), std::string::npos)
        << "line " << i << ": " << h.lines[i];
  }
}

TEST(Service, StatsLineReportsCounters) {
  Harness h;
  h.feed({"!session a center=0,0.8,0", kRow, kRow, "bad,row", "!tick 5",
          "!stats"});
  ASSERT_EQ(h.lines.size(), 2u);
  const std::string& stats = h.lines[1];
  EXPECT_TRUE(has_field(stats, "schema", "lion.stats.v1"));
  EXPECT_NE(stats.find("\"sessions\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"samples\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"parse_errors\":1"), std::string::npos) << stats;
  // 6 lines ingested + 5 explicit ticks.
  EXPECT_NE(stats.find("\"ticks\":11"), std::string::npos) << stats;
}

TEST(Service, CloseFlushesThenForgetsSession) {
  Harness h;
  h.feed({"!session a center=0,0.8,0", kRow, "!close a", "@a 1,2,3,4"});
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.report.v1"));
  EXPECT_TRUE(has_field(h.lines[1], "code", "unknown_session"));
  EXPECT_EQ(h.service.stats().sessions, 0u);
}

TEST(Service, FlushUnknownSessionErrors) {
  Harness h;
  h.feed({"!flush nope", "!close nope"});
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "unknown_session"));
  EXPECT_TRUE(has_field(h.lines[1], "code", "unknown_session"));
}

TEST(Service, IdleSessionsEvictDeterministically) {
  ServiceConfig cfg;
  cfg.idle_ttl_ticks = 10;
  Harness h(cfg);
  // b is *older* than c but both expire on the same sweep: eviction order
  // must be (last_active, id) — b first.
  h.feed({"!session b center=0,0.8,0", "!session c center=0,0.8,0",
          "!tick 20"});
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[0], "event", "evict"));
  EXPECT_TRUE(has_field(h.lines[0], "session", "b"));
  EXPECT_TRUE(has_field(h.lines[1], "session", "c"));
  EXPECT_EQ(h.service.stats().evictions, 2u);
  EXPECT_EQ(h.service.stats().sessions, 0u);

  // Active traffic refreshes the TTL.
  h.feed({"!session d center=0,0.8,0", "@d 1,2,3,4", "!tick 9", "@d 1,2,3,4",
          "!tick 9"});
  EXPECT_EQ(h.service.stats().sessions, 1u);
}

TEST(Service, EvictionIsByteIdenticalAcrossRuns) {
  const std::vector<std::string> script = {
      "!session m2 center=0,0.8,0", "!session m1 center=0,0.8,0",
      "@m1 1,2,3,4", "!tick 6",     "!session m3 center=0,0.8,0",
      "!tick 7",     "!stats"};
  ServiceConfig cfg;
  cfg.idle_ttl_ticks = 8;
  Harness first(cfg), second(cfg);
  first.feed(script);
  second.feed(script);
  EXPECT_EQ(first.lines, second.lines);
}

TEST(Service, BusyRejectionWhenInflightCapIsZero) {
  ServiceConfig cfg;
  cfg.max_inflight_per_session = 0;
  cfg.reject_when_busy = true;
  Harness h(cfg);
  h.feed({"!session a center=0,0.8,0", kRow, "!flush a"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "busy"));
  EXPECT_EQ(h.service.stats().rejected_busy, 1u);
  EXPECT_EQ(h.service.stats().reports, 0u);
}

TEST(Service, BusyRejectedCloseKeepsSessionForRetry) {
  // Clog a 1-thread shared pool so the flush's solve stays in flight; the
  // close that follows is busy-rejected and must NOT drop the session (and
  // with it the accumulated buffer) — the client retries the close.
  engine::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> released = gate.get_future().share();
  ServiceConfig cfg;
  cfg.max_inflight_per_session = 1;
  cfg.reject_when_busy = true;
  std::vector<std::string> lines;
  {
    StreamService service(
        cfg, [&lines](std::string_view l) { lines.emplace_back(l); }, &pool);
    pool.submit([released] { released.wait(); });
    service.ingest_line("!session a center=0,0.8,0");
    service.ingest_line(kRow);
    service.ingest_line("!flush a");  // occupies the only in-flight slot
    service.ingest_line("!close a");  // busy-rejected
    EXPECT_EQ(service.stats().sessions, 1u);
    EXPECT_EQ(service.stats().rejected_busy, 1u);
    gate.set_value();
    service.drain();
    service.ingest_line("!close a");  // retry now succeeds
    service.finish();
    EXPECT_EQ(service.stats().sessions, 0u);
  }
  // Seq order: flush report, busy error, close report.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(has_field(lines[0], "schema", "lion.report.v1"));
  EXPECT_TRUE(has_field(lines[1], "code", "busy"));
  EXPECT_TRUE(has_field(lines[2], "schema", "lion.report.v1"));
}

TEST(Service, WorkerExceptionEmitsErrorAndStillDrains) {
  // A clock that throws exactly on the worker's deadline check: before the
  // run_request guard this leaked the reserved seq and outstanding_ slot,
  // wedging the reorder buffer and hanging drain()/finish() forever.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ServiceConfig cfg;
  cfg.request_timeout_s = 1.0;
  cfg.clock = [calls]() -> double {
    if (calls->fetch_add(1) == 1) {
      throw std::runtime_error("injected clock fault");
    }
    return 0.0;
  };
  Harness h(cfg);
  h.feed({"!session a center=0,0.8,0", kRow, "!flush a"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.error.v1"));
  EXPECT_TRUE(has_field(h.lines[0], "code", "internal_error"));
  EXPECT_EQ(h.service.stats().errors, 1u);
  // The fault is per-request: the session survives and later solves work.
  h.feed({"!flush a"});
  ASSERT_EQ(h.lines.size(), 2u);
  EXPECT_TRUE(has_field(h.lines[1], "schema", "lion.report.v1"));
}

TEST(Service, RequestTimeoutDegradesToSolverFailureReport) {
  // Virtual clock that leaps 1000s per reading: the worker's deadline
  // check always sees the request as expired.
  auto tick = std::make_shared<std::atomic<int>>(0);
  ServiceConfig cfg;
  cfg.request_timeout_s = 0.5;
  cfg.clock = [tick] { return 1000.0 * tick->fetch_add(1); };
  Harness h(cfg);
  h.feed({"!session a center=0,0.8,0", kRow, "!flush a"});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.report.v1"));
  EXPECT_TRUE(has_field(h.lines[0], "status", "solver_failure"));
  EXPECT_NE(h.lines[0].find("deadline"), std::string::npos);
  EXPECT_EQ(h.service.stats().timeouts, 1u);
}

TEST(Service, BufferFullRejectsExtraSamples) {
  ServiceConfig cfg;
  cfg.max_session_samples = 2;
  Harness h(cfg);
  h.feed({"!session a center=0,0.8,0", kRow, kRow, kRow});
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "buffer_full"));
}

TEST(Service, OversizedWireLineBecomesErrorStatus) {
  ServiceConfig cfg;
  cfg.max_line_bytes = 16;
  Harness h(cfg);
  h.service.ingest_bytes("!session a center=0,0.8,0 wavelength=0.326\n");
  h.service.finish();
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "code", "oversized_line"));
  EXPECT_EQ(h.service.stats().oversized, 1u);
  EXPECT_EQ(h.service.stats().sessions, 0u);
}

TEST(Service, TrackSessionEmitsWindowFixes) {
  Harness h;
  h.service.ingest_line(
      "!session belt mode=track center=0,0.8,0 window=8 hop=8 speed=0.1");
  for (int i = 0; i < 24; ++i) {
    h.service.ingest_line("{\"x\":0,\"y\":0,\"z\":0,\"phase\":" +
                          std::to_string(i % 6) + ",\"t\":" +
                          std::to_string(0.1 * i) + "}");
  }
  h.service.finish();
  ASSERT_EQ(h.lines.size(), 3u);  // 24 samples / window 8
  for (std::size_t i = 0; i < h.lines.size(); ++i) {
    EXPECT_TRUE(has_field(h.lines[i], "schema", "lion.fix.v1")) << h.lines[i];
    EXPECT_NE(h.lines[i].find("\"window\":" + std::to_string(i)),
              std::string::npos)
        << h.lines[i];
  }
  EXPECT_EQ(h.service.stats().fixes, 3u);
}

TEST(Service, TrackFlushDrainsPartialWindow) {
  Harness h;
  h.service.ingest_line(
      "!session belt mode=track center=0,0.8,0 window=100 hop=50");
  for (int i = 0; i < 10; ++i) {
    h.service.ingest_line("{\"x\":0,\"y\":0,\"z\":0,\"phase\":1,\"t\":" +
                          std::to_string(0.1 * i) + "}");
  }
  h.service.ingest_line("!flush belt");
  h.service.finish();
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_TRUE(has_field(h.lines[0], "schema", "lion.fix.v1"));
}

}  // namespace
}  // namespace lion::serve
