// Journal codec and store fuzzing: framing round-trips, torn tails,
// bit-flipped CRCs, interleaved partial records, and the claim/resume
// lifecycle of JournalStore. Recovery must skip torn tails and never
// throw, no matter what bytes the disk hands back.

#include <gtest/gtest.h>

#include <unistd.h>
#include <dirent.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/wire.hpp"

namespace lion::serve {
namespace {

struct Lcg {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/lion_journal_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

void remove_dir_recursive(const std::string& dir) {
  if (::DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

struct TempDir {
  std::string path = make_temp_dir();
  ~TempDir() { remove_dir_recursive(path); }
};

std::vector<JournalRecord> sample_records(std::size_t n) {
  std::vector<JournalRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    JournalRecord r;
    r.type = i == 0 ? JournalRecordType::kDeclare
                    : (i % 7 == 0 ? JournalRecordType::kFlush
                                  : JournalRecordType::kCsvRow);
    r.lsn = i;
    r.tick = 10 + i;
    r.seq = 2 * i;
    r.line = r.type == JournalRecordType::kFlush
                 ? ""
                 : "0.1,0.2,0.3," + std::to_string(i);
    records.push_back(std::move(r));
  }
  return records;
}

std::string encode_all(const std::vector<JournalRecord>& records) {
  std::string bytes;
  for (const auto& r : records) bytes += encode_journal_record(r);
  return bytes;
}

void expect_prefix_matches(const JournalDecode& decoded,
                           const std::vector<JournalRecord>& originals) {
  ASSERT_LE(decoded.records.size(), originals.size());
  for (std::size_t i = 0; i < decoded.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].type, originals[i].type) << i;
    EXPECT_EQ(decoded.records[i].lsn, originals[i].lsn) << i;
    EXPECT_EQ(decoded.records[i].tick, originals[i].tick) << i;
    EXPECT_EQ(decoded.records[i].seq, originals[i].seq) << i;
    EXPECT_EQ(decoded.records[i].line, originals[i].line) << i;
  }
}

TEST(JournalCodec, RoundTripsMixedRecords) {
  const auto records = sample_records(25);
  const auto decoded = decode_journal_records(encode_all(records));
  EXPECT_FALSE(decoded.torn);
  ASSERT_EQ(decoded.records.size(), records.size());
  expect_prefix_matches(decoded, records);
}

TEST(JournalCodec, EveryTruncationYieldsValidPrefixAndNeverThrows) {
  const auto records = sample_records(8);
  const std::string bytes = encode_all(records);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto decoded = decode_journal_records(bytes.substr(0, cut));
    expect_prefix_matches(decoded, records);
    // Cutting on a record boundary is a clean (shorter) journal; any
    // other cut is a torn tail.
    EXPECT_EQ(decoded.torn, cut != decoded.consumed) << "cut=" << cut;
    EXPECT_LE(decoded.consumed, cut);
  }
}

TEST(JournalCodec, BitFlipsStopDecodeAtTheDamagedRecord) {
  const auto records = sample_records(10);
  const std::string bytes = encode_all(records);
  Lcg rng;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const std::size_t pos = rng.next() % mutated.size();
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1u << (rng.next() % 8)));
    const auto decoded = decode_journal_records(mutated);
    // The flip corrupts exactly one record's frame: everything before it
    // decodes verbatim, nothing after is trusted (no resync by design —
    // only a torn *tail* is recoverable), and nothing throws.
    EXPECT_TRUE(decoded.torn) << "pos=" << pos;
    expect_prefix_matches(decoded, records);
    EXPECT_LT(decoded.records.size(), records.size()) << "pos=" << pos;
  }
}

TEST(JournalCodec, InterleavedPartialRecordIsATornTail) {
  const auto records = sample_records(6);
  std::string bytes;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i == 3) {
      // Half of a valid frame spliced in mid-file (a lost write).
      const std::string frame = encode_journal_record(records[i]);
      bytes += frame.substr(0, frame.size() / 2);
      break;
    }
    bytes += encode_journal_record(records[i]);
  }
  const auto decoded = decode_journal_records(bytes);
  EXPECT_TRUE(decoded.torn);
  ASSERT_EQ(decoded.records.size(), 3u);
  expect_prefix_matches(decoded, records);
}

TEST(JournalCodec, OversizedLengthAndBadLsnAreCorruption) {
  const auto records = sample_records(3);
  std::string bytes = encode_all(records);
  // A frame whose length field claims more than kJournalMaxPayload.
  std::string huge = encode_journal_record(records[0]);
  huge[4] = '\xff';
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\x7f';
  auto decoded = decode_journal_records(bytes + huge);
  EXPECT_TRUE(decoded.torn);
  EXPECT_EQ(decoded.records.size(), 3u);

  // A record with the wrong (non-contiguous) LSN, valid CRC and all.
  JournalRecord skip = records[0];
  skip.lsn = 7;  // expected 3
  decoded = decode_journal_records(bytes + encode_journal_record(skip));
  EXPECT_TRUE(decoded.torn);
  EXPECT_EQ(decoded.records.size(), 3u);
}

TEST(JournalCodec, CrcIsTheIeeeReflectedPolynomial) {
  // Pin the CRC so journals stay readable across refactors.
  EXPECT_EQ(journal_crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(journal_crc32(""), 0u);
}

TEST(JournalCodec, NormalizedDeclareIsOrderAndSpellingInvariant) {
  const ParsedLine a = parse_line("!session s1 center=1,2,3 wavelength=0.33");
  const ParsedLine b =
      parse_line("!session s1 wavelength=0.33 center=1.0,2.00,3");
  ASSERT_EQ(a.kind, ParsedLine::kSession);
  ASSERT_EQ(b.kind, ParsedLine::kSession);
  EXPECT_EQ(normalize_declare_line(a), normalize_declare_line(b));

  const ParsedLine c = parse_line("!session s1 center=1,2,3.5");
  EXPECT_NE(normalize_declare_line(a), normalize_declare_line(c));
}

TEST(JournalCodec, CanonicalSampleLineRoundTripsThroughParseLine) {
  sim::PhaseSample s;
  s.t = 1.25;
  s.position = {0.1, -0.25, 1e-17};
  s.phase = 3.14159265358979;
  s.rssi_dbm = -61.5;
  s.channel = 12;
  const std::string line = canonical_sample_line(s);
  const ParsedLine parsed = parse_line(line);
  ASSERT_TRUE(parsed.json_sample.has_value()) << line;
  EXPECT_EQ(parsed.json_sample->t, s.t);
  EXPECT_EQ(parsed.json_sample->position[0], s.position[0]);
  EXPECT_EQ(parsed.json_sample->position[1], s.position[1]);
  EXPECT_EQ(parsed.json_sample->position[2], s.position[2]);
  EXPECT_EQ(parsed.json_sample->phase, s.phase);
  EXPECT_EQ(parsed.json_sample->rssi_dbm, s.rssi_dbm);
  EXPECT_EQ(parsed.json_sample->channel, s.channel);
}

// ---------------------------------------------------------------------------
// JournalStore lifecycle
// ---------------------------------------------------------------------------

JournalStoreConfig store_cfg(const std::string& dir,
                             std::size_t fsync_every = 64) {
  JournalStoreConfig cfg;
  cfg.dir = dir;
  cfg.fsync_every = fsync_every;
  return cfg;
}

std::string declare_for(const std::string& id) {
  return normalize_declare_line(
      parse_line("!session " + id + " center=0,0.8,0"));
}

void write_session_journal(JournalStore& store, const std::string& id,
                           std::size_t rows) {
  auto writer = store.open_writer(id, 0);
  ASSERT_NE(writer, nullptr);
  ASSERT_TRUE(writer->append(JournalRecordType::kDeclare, declare_for(id),
                             1, 0));
  for (std::size_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(writer->append(JournalRecordType::kCsvRow,
                               "0.1,0.2,0.3," + std::to_string(i), 2 + i,
                               i));
  }
  ASSERT_TRUE(writer->sync());
  writer.reset();
  store.detach(id);
}

TEST(JournalStore, ClaimRecoversWhatTheWriterAppended) {
  TempDir tmp;
  JournalStore store(store_cfg(tmp.path));
  ASSERT_TRUE(store.ok()) << store.error();
  write_session_journal(store, "a", 5);

  JournalStore reopened(store_cfg(tmp.path));  // a new process
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.recovered_at_start(), 1u);
  std::string error;
  const auto rec = reopened.claim("a", error);
  ASSERT_TRUE(rec.has_value()) << error;
  EXPECT_EQ(rec->declare_line, declare_for("a"));
  EXPECT_EQ(rec->record_count, 6u);
  EXPECT_EQ(rec->records.size(), 5u);  // declare popped into declare_line
  EXPECT_FALSE(rec->torn);
  EXPECT_EQ(rec->last_tick, 6u);
  EXPECT_EQ(rec->last_seq, 4u);
}

TEST(JournalStore, ClaimIsExclusiveUntilDetach) {
  TempDir tmp;
  JournalStore store(store_cfg(tmp.path));
  write_session_journal(store, "a", 2);
  std::string error;
  ASSERT_TRUE(store.claim("a", error).has_value()) << error;
  EXPECT_FALSE(store.claim("a", error).has_value());
  EXPECT_FALSE(error.empty());
  store.detach("a");
  error.clear();
  EXPECT_TRUE(store.claim("a", error).has_value()) << error;
}

TEST(JournalStore, TornTailIsTruncatedAndResumable) {
  TempDir tmp;
  {
    JournalStore store(store_cfg(tmp.path));
    write_session_journal(store, "a", 4);
  }
  // Chop bytes off the newest record, as a crash mid-write would.
  const std::string path = tmp.path + "/a.lionj";
  struct stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);

  JournalStore store(store_cfg(tmp.path));
  std::string error;
  const auto rec = store.claim("a", error);
  ASSERT_TRUE(rec.has_value()) << error;
  EXPECT_TRUE(rec->torn);
  EXPECT_EQ(rec->record_count, 4u);  // declare + 3 intact rows

  // Appending after the claim resumes cleanly at the truncated boundary.
  auto writer = store.open_writer("a", rec->record_count);
  ASSERT_NE(writer, nullptr);
  ASSERT_TRUE(writer->append(JournalRecordType::kCsvRow, "resumed", 99, 9));
  ASSERT_TRUE(writer->sync());
  writer.reset();
  store.detach("a");

  JournalStore again(store_cfg(tmp.path));
  const auto rec2 = again.claim("a", error);
  ASSERT_TRUE(rec2.has_value()) << error;
  EXPECT_FALSE(rec2->torn);
  EXPECT_EQ(rec2->record_count, 5u);
  EXPECT_EQ(rec2->records.back().line, "resumed");
}

TEST(JournalStore, FileWithoutDeclareIsQuarantinedNotFatal) {
  TempDir tmp;
  {
    std::ofstream f(tmp.path + "/bad.lionj", std::ios::binary);
    f.write(kJournalMagic, sizeof(kJournalMagic));
    f << "this is not a journal record";
  }
  JournalStore store(store_cfg(tmp.path));
  ASSERT_TRUE(store.ok());
  std::string error;
  EXPECT_FALSE(store.claim("bad", error).has_value());
  EXPECT_TRUE(error.empty());  // treated as absent, not as a conflict
  EXPECT_GE(store.stats().corrupt_files, 1u);
}

TEST(JournalStore, RemoveDeletesTheFile) {
  TempDir tmp;
  JournalStore store(store_cfg(tmp.path));
  write_session_journal(store, "gone", 1);
  store.remove("gone");
  std::ifstream f(tmp.path + "/gone.lionj");
  EXPECT_FALSE(f.good());
  EXPECT_GE(store.stats().removed, 1u);
}

TEST(JournalStore, FuzzedGarbageFilesNeverThrow) {
  Lcg rng;
  for (int trial = 0; trial < 50; ++trial) {
    TempDir tmp;
    {
      std::ofstream f(tmp.path + "/fuzz.lionj", std::ios::binary);
      f.write(kJournalMagic, sizeof(kJournalMagic));
      const std::size_t n = rng.next() % 512;
      std::string noise;
      for (std::size_t i = 0; i < n; ++i) {
        noise.push_back(static_cast<char>(rng.next() & 0xff));
      }
      f << noise;
    }
    JournalStore store(store_cfg(tmp.path));
    std::string error;
    EXPECT_NO_THROW({
      const auto rec = store.claim("fuzz", error);
      if (rec) {
        auto writer = store.open_writer("fuzz", rec->record_count);
        if (writer) writer->append(JournalRecordType::kFlush, "", 1, 1);
      }
    });
  }
}

}  // namespace
}  // namespace lion::serve
