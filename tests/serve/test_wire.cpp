// Wire-layer unit tests: chunk reassembly is transport-independent, the
// line grammar is total (never throws, every malformed input maps to
// kError), and session-id validation is strict.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace lion::serve {
namespace {

std::vector<std::string> feed_in_chunks(const std::string& bytes,
                                        std::size_t chunk,
                                        std::size_t max_line = kDefaultMaxLineBytes) {
  ChunkDecoder decoder(max_line);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    auto out = decoder.feed(bytes.substr(i, chunk));
    for (auto& l : out.lines) lines.push_back(std::move(l));
  }
  auto tail = decoder.finish();
  for (auto& l : tail.lines) lines.push_back(std::move(l));
  return lines;
}

TEST(ChunkDecoder, ReassemblyIsChunkInvariant) {
  const std::string bytes = "first line\nsecond\r\nthird,with,fields\n!ctl x\n";
  const auto whole = feed_in_chunks(bytes, bytes.size());
  ASSERT_EQ(whole.size(), 4u);
  EXPECT_EQ(whole[0], "first line");
  EXPECT_EQ(whole[1], "second");  // \r stripped
  EXPECT_EQ(whole[2], "third,with,fields");
  for (const std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 16u}) {
    EXPECT_EQ(feed_in_chunks(bytes, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(ChunkDecoder, FinishFlushesUnterminatedLine) {
  ChunkDecoder decoder;
  EXPECT_TRUE(decoder.feed("no newline yet").lines.empty());
  EXPECT_EQ(decoder.pending(), 14u);
  const auto tail = decoder.finish();
  ASSERT_EQ(tail.lines.size(), 1u);
  EXPECT_EQ(tail.lines[0], "no newline yet");
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(ChunkDecoder, OversizedLineIsDroppedAndStreamResyncs) {
  ChunkDecoder decoder(8);
  const std::string giant(100, 'x');
  auto out = decoder.feed("ok1\n" + giant + "\nok2\n");
  ASSERT_EQ(out.lines.size(), 2u);
  EXPECT_EQ(out.lines[0], "ok1");
  EXPECT_EQ(out.lines[1], "ok2");
  EXPECT_EQ(out.oversized_dropped, 1u);
}

TEST(ChunkDecoder, OversizedDetectionSpansChunks) {
  ChunkDecoder decoder(8);
  std::size_t dropped = 0;
  std::vector<std::string> lines;
  for (const char c : std::string(50, 'y')) {
    auto out = decoder.feed(std::string(1, c));
    dropped += out.oversized_dropped;
  }
  auto out = decoder.feed("\nafter\n");
  dropped += out.oversized_dropped;
  ASSERT_EQ(out.lines.size(), 1u);
  EXPECT_EQ(out.lines[0], "after");
  EXPECT_EQ(dropped, 1u);
}

TEST(ChunkDecoder, OversizedTrailingLineCountedByFinish) {
  ChunkDecoder decoder(4);
  EXPECT_EQ(decoder.feed(std::string(20, 'z')).oversized_dropped, 0u);
  EXPECT_EQ(decoder.finish().oversized_dropped, 1u);
}

TEST(WireGrammar, CommentsAndBlanksAreIgnored) {
  EXPECT_EQ(parse_line("").kind, ParsedLine::kComment);
  EXPECT_EQ(parse_line("   ").kind, ParsedLine::kComment);
  EXPECT_EQ(parse_line("# a comment").kind, ParsedLine::kComment);
  EXPECT_EQ(parse_line("  # indented").kind, ParsedLine::kComment);
}

TEST(WireGrammar, SessionDeclareParsesAllOptions) {
  const auto p = parse_line(
      "!session belt3 mode=track center=0.1,-0.2,0.3 dir=0,1,0 hint=1,2,3 "
      "speed=0.25 wavelength=0.33 window=64 hop=16 dim=3");
  ASSERT_EQ(p.kind, ParsedLine::kSession);
  EXPECT_EQ(p.session, "belt3");
  EXPECT_EQ(p.mode, SessionMode::kTrack);
  ASSERT_TRUE(p.center);
  EXPECT_DOUBLE_EQ((*p.center)[1], -0.2);
  ASSERT_TRUE(p.direction);
  EXPECT_DOUBLE_EQ((*p.direction)[1], 1.0);
  ASSERT_TRUE(p.hint);
  ASSERT_TRUE(p.speed);
  EXPECT_DOUBLE_EQ(*p.speed, 0.25);
  ASSERT_TRUE(p.wavelength);
  ASSERT_TRUE(p.window);
  EXPECT_EQ(*p.window, 64u);
  ASSERT_TRUE(p.hop);
  EXPECT_EQ(*p.hop, 16u);
  ASSERT_TRUE(p.dim);
  EXPECT_EQ(*p.dim, 3u);
}

TEST(WireGrammar, ControlErrorsAreTotalNotThrown) {
  for (const char* bad : {
           "!flush",                          // missing id
           "!flush a b",                      // extra token
           "!flush bad/id",                   // invalid id chars
           "!close",                          //
           "!stats now",                      // extra token
           "!tick",                           // missing count
           "!tick -3",                        // negative
           "!tick 0",                         // zero
           "!tick 1.5",                       // fractional
           "!session",                        // missing id
           "!session x mode=sideways",        // bad enum
           "!session x center=1,2",           // short vec
           "!session x center=1,2,3,4",       // long vec
           "!session x speed=-1",             // nonpositive
           "!session x window=abc",           //
           "!session x dim=4",                // dims are 2|3
           "!session x novalue",              // not key=value
           "!session x =v",                   // empty key
           "!session x bogus=1",              // unknown key
           "!nosuch",                         // unknown control
       }) {
    const auto p = parse_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::kError) << bad;
    EXPECT_FALSE(p.error.empty()) << bad;
  }
}

TEST(WireGrammar, RoutedCsvRow) {
  const auto p = parse_line("@a1 0.1,0.2,0.3,1.5");
  ASSERT_EQ(p.kind, ParsedLine::kData);
  EXPECT_EQ(p.session, "a1");
  EXPECT_EQ(p.csv_row, "0.1,0.2,0.3,1.5");
  EXPECT_FALSE(p.json_sample);

  EXPECT_EQ(parse_line("@nospace").kind, ParsedLine::kError);
  EXPECT_EQ(parse_line("@bad/id 1,2,3,4").kind, ParsedLine::kError);
}

TEST(WireGrammar, BareCsvRowTargetsCurrentSession) {
  const auto p = parse_line("0.1,0.2,0.3,1.5,-60");
  ASSERT_EQ(p.kind, ParsedLine::kData);
  EXPECT_TRUE(p.session.empty());
}

TEST(WireGrammar, JsonRecordHappyPath) {
  const auto p = parse_line(
      R"({"session":"s1","x":0.5,"y":-0.25,"z":0,"phase":3.14,"rssi":-60,"channel":7,"t":1.5})");
  ASSERT_EQ(p.kind, ParsedLine::kData) << p.error;
  EXPECT_EQ(p.session, "s1");
  ASSERT_TRUE(p.json_sample);
  EXPECT_DOUBLE_EQ(p.json_sample->position[0], 0.5);
  EXPECT_DOUBLE_EQ(p.json_sample->phase, 3.14);
  EXPECT_EQ(p.json_sample->channel, 7u);
  EXPECT_DOUBLE_EQ(p.json_sample->t, 1.5);
}

TEST(WireGrammar, JsonRecordWithoutSessionUsesCurrent) {
  const auto p = parse_line(R"({"x":1,"y":2,"z":3,"phase":4})");
  ASSERT_EQ(p.kind, ParsedLine::kData) << p.error;
  EXPECT_TRUE(p.session.empty());
}

TEST(WireGrammar, JsonRecordErrorsAreTotal) {
  for (const char* bad : {
           R"({"x":1,"y":2,"z":3})",                    // missing phase
           R"({"x":1,"y":2,"z":3,"phase":})",           // empty number
           R"({"x":1,"y":2,"z":3,"phase":4,"w":5})",    // unknown key
           R"({"x":1,"y":2,"z":3,"phase":{"a":1}})",    // nesting
           R"({"x":1,"y":2,"z":3,"phase":4} trailing)", // trailing bytes
           R"({"session":"bad id","x":1,"y":2,"z":3,"phase":4})",
           R"({"session":"s)",                          // unterminated
           R"({"x":1 "y":2})",                          // missing comma
           R"({"channel":-1,"x":1,"y":2,"z":3,"phase":4})",
           R"({12:"x"})",                               // non-string key
       }) {
    const auto p = parse_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::kError) << bad;
    EXPECT_FALSE(p.error.empty()) << bad;
  }
}

TEST(WireGrammar, SessionIdValidation) {
  EXPECT_TRUE(valid_session_id("a"));
  EXPECT_TRUE(valid_session_id("A-Z_0.9:x"));
  EXPECT_TRUE(valid_session_id(std::string(64, 'k')));
  EXPECT_FALSE(valid_session_id(""));
  EXPECT_FALSE(valid_session_id(std::string(65, 'k')));
  EXPECT_FALSE(valid_session_id("has space"));
  EXPECT_FALSE(valid_session_id("quote\""));
  EXPECT_FALSE(valid_session_id("back\\slash"));
  EXPECT_FALSE(valid_session_id("new\nline"));
}

}  // namespace
}  // namespace lion::serve
