// Metamorphic properties of the windowed tracking path.
//
// Two invariances underwrite the serve track mode's design (a fresh
// single-window solve per carved window instead of a shared streaming
// tracker):
//
//   1. hop/window invariance — the j-th fix of a streaming
//      ConveyorTracker(window=W, hop=H) equals, bit for bit, a fresh
//      tracker(window=hop=W) fed exactly samples[jH, jH+W). solve_window
//      is pure over (buffer, config); this suite pins that.
//
//   2. sample-chunking invariance — the service's emitted byte stream for
//      a track session is independent of how the wire bytes are chunked,
//      and each fix line equals the serializer applied to the direct
//      tracker's fix.
//
// Both properties are exercised over >= 200 randomized (seeded) cases.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/tracker.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "sim/reader.hpp"

namespace lion {
namespace {

using linalg::Vec3;

struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
  double unit() { return static_cast<double>(next() % 1000000) / 1e6; }
};

// A synthetic belt pass: the tag rides +x at belt speed past an antenna
// at `center`; phase is the wrapped two-way range phase plus noise. The
// samples don't need to be *solvable* for the invariance to hold (invalid
// fixes must match bitwise too), but realistic geometry keeps a healthy
// mix of valid and degenerate windows.
std::vector<sim::PhaseSample> make_belt_stream(Lcg& rng, std::size_t count,
                                               const Vec3& center) {
  std::vector<sim::PhaseSample> samples;
  samples.reserve(count);
  const double speed = 0.05 + 0.2 * rng.unit();
  const double wavelength = 0.326;
  for (std::size_t i = 0; i < count; ++i) {
    sim::PhaseSample s;
    s.t = 0.05 * static_cast<double>(i);
    s.position = {-0.5 + speed * s.t, 0.0, 0.0};
    const double dx = s.position[0] - center[0];
    const double dy = s.position[1] - center[1];
    const double dz = s.position[2] - center[2];
    const double range = std::sqrt(dx * dx + dy * dy + dz * dz);
    constexpr double kPi = 3.14159265358979323846;
    s.phase = std::fmod(4.0 * kPi * range / wavelength +
                            0.02 * (rng.unit() - 0.5),
                        2.0 * kPi);
    s.rssi_dbm = -55.0 - 10.0 * rng.unit();
    s.channel = static_cast<std::uint32_t>(rng.below(16));
    samples.push_back(s);
  }
  return samples;
}

void expect_fix_eq(const core::TrackFix& a, const core::TrackFix& b,
                   const std::string& label) {
  EXPECT_EQ(a.valid, b.valid) << label;
  EXPECT_EQ(a.t, b.t) << label;
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(a.start[k], b.start[k]) << label << " start[" << k << "]";
    EXPECT_EQ(a.position[k], b.position[k]) << label << " pos[" << k << "]";
  }
  EXPECT_EQ(a.sigma, b.sigma) << label;
  EXPECT_EQ(a.mean_residual, b.mean_residual) << label;
}

TEST(TrackerMetamorphic, HopWindowInvariance) {
  // >= 200 cases: random window/hop/length, streaming fixes must equal
  // isolated single-window solves over the carved sample ranges.
  int windows_checked = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Lcg rng(seed * 7919);
    const Vec3 center{0.0, 0.6 + 0.4 * rng.unit(), 0.2 * rng.unit()};
    const std::size_t window = 8 + rng.below(40);
    const std::size_t hop = 1 + rng.below(window);
    const std::size_t count = window + hop * (2 + rng.below(6));
    const auto stream = make_belt_stream(rng, count, center);

    core::TrackerConfig cfg;
    cfg.antenna_phase_center = center;
    cfg.window = window;
    cfg.hop = hop;
    core::ConveyorTracker streaming(cfg);
    for (const auto& s : stream) streaming.push(s);

    const auto& fixes = streaming.fixes();
    ASSERT_GE(fixes.size(), 2u) << "seed " << seed;
    for (std::size_t j = 0; j < fixes.size(); ++j) {
      const std::size_t begin = j * hop;
      ASSERT_LE(begin + window, stream.size());
      core::TrackerConfig solo_cfg = cfg;
      solo_cfg.window = window;
      solo_cfg.hop = window;
      core::ConveyorTracker solo(solo_cfg);
      std::optional<core::TrackFix> fix;
      for (std::size_t i = begin; i < begin + window; ++i) {
        fix = solo.push(stream[i]);
      }
      ASSERT_TRUE(fix) << "seed " << seed << " window " << j;
      expect_fix_eq(fixes[j], *fix,
                    "seed " + std::to_string(seed) + " window " +
                        std::to_string(j));
      ++windows_checked;
    }
  }
  EXPECT_GE(windows_checked, 200);
}

TEST(TrackerMetamorphic, ServeWindowCarvingMatchesStreamingTracker) {
  // The service's carve-and-solve must agree with a directly-driven
  // streaming tracker over the same samples and config.
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    Lcg rng(seed);
    const Vec3 center{0.0, 0.8, 0.0};
    const std::size_t window = 8 + rng.below(24);
    const std::size_t hop = 1 + rng.below(window);
    const auto stream = make_belt_stream(rng, window + hop * 4, center);

    core::TrackerConfig cfg;
    cfg.antenna_phase_center = center;
    cfg.window = window;
    cfg.hop = hop;
    core::ConveyorTracker direct(cfg);
    for (const auto& s : stream) direct.push(s);

    std::vector<std::string> lines;
    serve::StreamService service(
        serve::ServiceConfig{},
        [&lines](std::string_view l) { lines.emplace_back(l); });
    service.ingest_line("!session belt mode=track center=0,0.8,0 window=" +
                        std::to_string(window) +
                        " hop=" + std::to_string(hop));
    for (const auto& s : stream) {
      service.ingest_line(
          "{\"x\":" + std::to_string(s.position[0]) +
          ",\"y\":" + std::to_string(s.position[1]) +
          ",\"z\":" + std::to_string(s.position[2]) +
          ",\"phase\":" + std::to_string(s.phase) +
          ",\"rssi\":" + std::to_string(s.rssi_dbm) +
          ",\"channel\":" + std::to_string(s.channel) +
          ",\"t\":" + std::to_string(s.t) + "}");
    }
    service.finish();

    // The service parsed the JSON-serialized samples (~6 digits), so
    // re-drive the direct tracker from the same rounded values for the
    // byte-level comparison: parse what we sent.
    core::ConveyorTracker rounded(cfg);
    std::vector<core::TrackFix> rounded_fixes;
    for (const auto& s : stream) {
      sim::PhaseSample q = s;
      for (int k = 0; k < 3; ++k) {
        q.position[k] = std::stod(std::to_string(s.position[k]));
      }
      q.phase = std::stod(std::to_string(s.phase));
      q.rssi_dbm = std::stod(std::to_string(s.rssi_dbm));
      q.t = std::stod(std::to_string(s.t));
      if (auto fix = rounded.push(q)) rounded_fixes.push_back(*fix);
    }

    ASSERT_EQ(lines.size(), rounded_fixes.size()) << "seed " << seed;
    for (std::size_t j = 0; j < rounded_fixes.size(); ++j) {
      EXPECT_EQ(lines[j],
                serve::fix_response("belt", j, j, rounded_fixes[j]))
          << "seed " << seed << " window " << j;
    }
  }
}

TEST(TrackerMetamorphic, ServiceOutputIsChunkingInvariant) {
  // >= 200 random chunkings of one track-session payload must produce
  // byte-identical response streams.
  Lcg gen(314159);
  const Vec3 center{0.0, 0.8, 0.0};
  const auto stream = make_belt_stream(gen, 64, center);
  std::string payload = "!session belt mode=track center=0,0.8,0 window=16 hop=8\n";
  for (const auto& s : stream) {
    payload += std::to_string(s.position[0]) + "," +
               std::to_string(s.position[1]) + "," +
               std::to_string(s.position[2]) + "," +
               std::to_string(s.phase) + "," + std::to_string(s.rssi_dbm) +
               "," + std::to_string(s.channel) + "," + std::to_string(s.t) +
               "\n";
  }
  payload += "!flush belt\n";

  auto run_chunked = [&payload](Lcg& rng, bool whole) {
    std::vector<std::string> lines;
    serve::StreamService service(
        serve::ServiceConfig{},
        [&lines](std::string_view l) { lines.emplace_back(l); });
    if (whole) {
      service.ingest_bytes(payload);
    } else {
      std::size_t off = 0;
      while (off < payload.size()) {
        const std::size_t n =
            std::min(payload.size() - off, 1 + rng.below(97));
        service.ingest_bytes(payload.substr(off, n));
        off += n;
      }
    }
    service.finish();
    return lines;
  };

  Lcg ref_rng(0);
  const auto reference = run_chunked(ref_rng, /*whole=*/true);
  ASSERT_GE(reference.size(), 4u);  // 64 samples / window 16, hop 8 + flush
  for (const auto& line : reference) {
    EXPECT_NE(line.find("\"schema\":\"lion.fix.v1\""), std::string::npos)
        << line;
  }
  for (int trial = 0; trial < 200; ++trial) {
    Lcg rng(1000 + static_cast<std::uint64_t>(trial));
    EXPECT_EQ(run_chunked(rng, /*whole=*/false), reference)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace lion
