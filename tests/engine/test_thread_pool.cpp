// ThreadPool: execution, idle barrier, stealing, exception containment,
// and teardown — the properties the batch engine's determinism and
// liveness rest on.

#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace lion::engine {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadRunsEachTaskExactlyOnce) {
  // Execution *order* is deliberately unspecified (the owner pops its queue
  // LIFO, so a backed-up single worker runs late submissions first); the
  // engine's determinism rests only on each task running exactly once. The
  // unsynchronized vector doubles as a race detector: with one worker,
  // tasks never overlap, so plain push_back is safe.
  ThreadPool pool(1);
  std::vector<int> ran;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran, i] { ran.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(ran.size(), 64u);
  std::vector<int> sorted = ran;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // no tasks ever submitted
  SUCCEED();
}

TEST(ThreadPool, StealsFromABlockedWorkersQueue) {
  // Pin worker A in a task that cannot finish until 8 follow-up tasks have
  // run. Round-robin assignment puts half of those follow-ups in A's own
  // queue — the test only terminates if worker B steals them. A pool
  // without stealing deadlocks here (and is killed by the ctest timeout).
  ThreadPool pool(2);
  std::atomic<int> followups{0};
  std::atomic<bool> blocker_started{false};
  pool.submit([&] {
    blocker_started.store(true);
    while (followups.load(std::memory_order_acquire) < 8) {
      std::this_thread::yield();
    }
  });
  while (!blocker_started.load()) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) {
    pool.submit([&followups] {
      followups.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(followups.load(), 8);
  EXPECT_GE(pool.steal_count(), 1u);
}

TEST(ThreadPool, TaskExceptionIsContained) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([] { throw 42; });  // non-std exception too
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(pool.exception_count(), 2u);
  // The pool is still alive and accepts more work.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, DestructorJoinsWithoutHanging) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 6; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No wait_idle: destructor must stop cleanly regardless of progress.
  }
  // Whatever ran, ran fully; nothing crashed or deadlocked.
  EXPECT_LE(ran.load(), 6);
}

TEST(ThreadPool, ManyWaitIdleCyclesReuseTheSamePool) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&total] { total.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(total.load(), (round + 1) * 50);
  }
}

}  // namespace
}  // namespace lion::engine
