// BatchEngine: the determinism contract (1 thread vs N byte-identical),
// empty batch, 1000-job smoke, exception-to-status mapping, and the
// per-job seeding rule.

#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "io/report_json.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"

namespace lion::engine {
namespace {

// A trimmed config that keeps per-job solve cost at the milliseconds scale
// for the big batches: fewer adaptive candidates, same robust machinery.
core::RobustCalibrationConfig cheap_config() {
  core::RobustCalibrationConfig cfg;
  cfg.adaptive.ranges = {0.6, 0.8};
  cfg.adaptive.intervals = {0.15, 0.25};
  cfg.adaptive.base.ransac.max_iterations = 16;
  return cfg;
}

SimulatedBatchSpec small_spec(std::size_t jobs) {
  SimulatedBatchSpec spec;
  spec.jobs = jobs;
  spec.rig_half_span = 0.35;
  spec.config = cheap_config();
  return spec;
}

std::vector<std::string> serialized_reports(const BatchResult& r) {
  std::vector<std::string> out;
  out.reserve(r.results.size());
  for (const auto& jr : r.results) out.push_back(io::report_json(jr.report));
  return out;
}

TEST(BatchEngine, EmptyBatch) {
  BatchEngine engine(BatchEngineOptions{4});
  const auto r = engine.run({});
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.stats.jobs, 0u);
  EXPECT_EQ(r.succeeded(), 0u);
}

TEST(BatchEngine, DeterministicAcrossThreadCounts) {
  const auto jobs = make_simulated_batch(small_spec(12));
  const auto reference =
      serialized_reports(BatchEngine(BatchEngineOptions{1}).run(jobs));
  ASSERT_EQ(reference.size(), 12u);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto got = serialized_reports(
        BatchEngine(BatchEngineOptions{threads}).run(jobs));
    ASSERT_EQ(got.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Byte-identical serialization == bitwise-identical report payload.
      EXPECT_EQ(got[i], reference[i])
          << "job " << i << " differs at " << threads << " threads";
    }
  }
}

TEST(BatchEngine, DeterministicWithInstrumentationEnabled) {
  // Observability is measurement-only: enabling metrics + tracing must not
  // perturb a single report byte relative to the uninstrumented run.
  const auto jobs = make_simulated_batch(small_spec(6));
  const auto reference =
      serialized_reports(BatchEngine(BatchEngineOptions{1}).run(jobs));

  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  obs::MetricsRegistry::instance().reset();
  obs::trace_reset();
  const auto instrumented =
      serialized_reports(BatchEngine(BatchEngineOptions{4}).run(jobs));
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  const auto events = obs::trace_snapshot();
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);

  EXPECT_EQ(instrumented, reference);

  // And the instrumentation actually observed the run: per-job spans and
  // the engine counters are populated.
  std::uint64_t engine_jobs = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "engine.jobs") engine_jobs = value;
  }
  EXPECT_EQ(engine_jobs, 6u);
  std::size_t job_spans = 0;
  for (const auto& e : events) {
    if (std::string(e.name) == obs::stage_name(obs::Stage::kJob)) ++job_spans;
  }
  EXPECT_EQ(job_spans, 6u);
}

TEST(BatchEngine, TinyBatchPercentileSemantics) {
  // BatchStats latency percentiles come from an obs::HistogramData; for
  // n < 3 they follow the documented small-sample estimates rather than
  // order statistics.
  const auto one = BatchEngine(BatchEngineOptions{1})
                       .run(make_simulated_batch(small_spec(1)));
  EXPECT_EQ(one.stats.latency.count(), 1u);
  EXPECT_DOUBLE_EQ(one.stats.latency_p50_s, one.stats.latency.min());
  EXPECT_DOUBLE_EQ(one.stats.latency_p99_s, one.stats.latency.max());

  const auto two = BatchEngine(BatchEngineOptions{1})
                       .run(make_simulated_batch(small_spec(2)));
  EXPECT_EQ(two.stats.latency.count(), 2u);
  EXPECT_GE(two.stats.latency_p50_s, two.stats.latency.min());
  EXPECT_LE(two.stats.latency_p50_s, two.stats.latency.max());
  EXPECT_GE(two.stats.latency_p99_s, two.stats.latency_p50_s);
  EXPECT_LE(two.stats.latency_p99_s, two.stats.latency.max());
}

TEST(BatchEngine, RerunOfTheSameBatchIsIdentical) {
  const auto jobs = make_simulated_batch(small_spec(4));
  BatchEngine engine(BatchEngineOptions{4});
  EXPECT_EQ(serialized_reports(engine.run(jobs)),
            serialized_reports(engine.run(jobs)));
}

TEST(BatchEngine, ResultsComeBackInJobOrder) {
  auto jobs = make_simulated_batch(small_spec(8));
  // Give the ids a recognizable non-contiguous pattern.
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = 1000 + 7 * i;
  const auto r = BatchEngine(BatchEngineOptions{4}).run(jobs);
  ASSERT_EQ(r.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(r.results[i].id, 1000 + 7 * i);
  }
}

TEST(BatchEngine, ThousandJobSmoke) {
  // 1000 cheap jobs: every job shares the same small stream (copies), the
  // point is pool/engine throughput and bookkeeping, not accuracy.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(77)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.3;
  rig.x_max = 0.3;
  const auto samples = scenario.sweep(0, 0, rig.build());

  core::RobustCalibrationConfig cfg = cheap_config();
  cfg.adaptive.ranges = {0.6};
  cfg.adaptive.intervals = {0.2};
  std::vector<CalibrationJob> jobs;
  jobs.reserve(1000);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    jobs.push_back(make_calibration_job(id, samples, {0.0, 0.8, 0.0}, cfg));
  }
  const auto r = BatchEngine(BatchEngineOptions{4}).run(jobs);
  ASSERT_EQ(r.results.size(), 1000u);
  EXPECT_EQ(r.stats.jobs, 1000u);
  EXPECT_EQ(r.succeeded(), 1000u);
  EXPECT_EQ(r.stats.exceptions, 0u);
  std::size_t histogram_total = 0;
  for (const auto n : r.stats.status_histogram) histogram_total += n;
  EXPECT_EQ(histogram_total, 1000u);
  EXPECT_GT(r.stats.throughput_jps, 0.0);
  EXPECT_GE(r.stats.latency_p99_s, r.stats.latency_p50_s);
}

TEST(BatchEngine, ExceptionInJobBecomesFailureStatusNotACrash) {
  auto jobs = make_simulated_batch(small_spec(4));
  jobs[1].work = [](const CalibrationJob&) -> core::CalibrationReport {
    throw std::runtime_error("injected job failure");
  };
  jobs[3].work = [](const CalibrationJob&) -> core::CalibrationReport {
    throw 17;  // non-std exception
  };
  const auto r = BatchEngine(BatchEngineOptions{4}).run(jobs);
  ASSERT_EQ(r.results.size(), 4u);

  EXPECT_TRUE(r.results[1].threw);
  EXPECT_EQ(r.results[1].report.status, core::CalibrationStatus::kSolverFailure);
  EXPECT_NE(r.results[1].report.diagnostics.message.find("injected"),
            std::string::npos);
  EXPECT_TRUE(r.results[3].threw);
  EXPECT_EQ(r.results[3].report.status, core::CalibrationStatus::kSolverFailure);

  // The healthy jobs were unaffected.
  EXPECT_FALSE(r.results[0].threw);
  EXPECT_TRUE(r.results[0].report.ok());
  EXPECT_FALSE(r.results[2].threw);
  EXPECT_TRUE(r.results[2].report.ok());
  EXPECT_EQ(r.stats.exceptions, 2u);
}

TEST(BatchEngine, JobSeedDerivesFromJobId) {
  const auto a = make_calibration_job(0, {}, {});
  const auto b = make_calibration_job(1, {}, {});
  EXPECT_EQ(a.config.adaptive.base.ransac.seed, job_seed(0));
  EXPECT_EQ(b.config.adaptive.base.ransac.seed, job_seed(1));
  EXPECT_NE(a.config.adaptive.base.ransac.seed,
            b.config.adaptive.base.ransac.seed);
}

TEST(BatchEngine, JobSeedsAreDecorrelated) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 4096; ++id) seeds.insert(job_seed(id));
  EXPECT_EQ(seeds.size(), 4096u);  // no collisions over a realistic fleet
}

TEST(BatchEngine, SimulatedBatchIsDeterministic) {
  const auto a = make_simulated_batch(small_spec(3));
  const auto b = make_simulated_batch(small_spec(3));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].samples.size(), b[i].samples.size());
    for (std::size_t s = 0; s < a[i].samples.size(); ++s) {
      EXPECT_EQ(a[i].samples[s].phase, b[i].samples[s].phase);
      EXPECT_EQ(a[i].samples[s].t, b[i].samples[s].t);
    }
  }
  // Different jobs see different streams (own antenna unit + own seed).
  ASSERT_GE(a.size(), 2u);
  EXPECT_NE(a[0].samples.front().phase, a[1].samples.front().phase);
}

TEST(BatchEngine, ZeroThreadOptionMeansHardwareConcurrency) {
  BatchEngine engine{};
  EXPECT_GE(engine.threads(), 1u);
}

}  // namespace
}  // namespace lion::engine
