// bench/common.hpp deduplicates the scenario plumbing that every figure
// harness used to copy by hand. These tests pin the helpers to the exact
// hand-built equivalents so a refactor of the helpers cannot silently
// change what the figure benches measure.

#include <gtest/gtest.h>

#include <vector>

#include "bench/common.hpp"
#include "core/calibration.hpp"
#include "engine/batch.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"

namespace lion {
namespace {

sim::ThreeLineRig small_rig() {
  sim::ThreeLineRig rig;
  rig.x_min = -0.35;
  rig.x_max = 0.35;
  return rig;
}

TEST(PlainAntenna, HasNoHiddenQuirks) {
  const auto antenna = bench::plain_antenna({0.1, 0.8, -0.2});
  EXPECT_EQ(antenna.physical_center[0], 0.1);
  EXPECT_EQ(antenna.physical_center[1], 0.8);
  EXPECT_EQ(antenna.physical_center[2], -0.2);
  EXPECT_EQ(antenna.phase_center_displacement.norm(), 0.0);
  // Phase center == physical center: nothing to calibrate away.
  EXPECT_EQ(antenna.phase_center()[0], antenna.physical_center[0]);
  EXPECT_EQ(antenna.phase_center()[1], antenna.physical_center[1]);
  EXPECT_EQ(antenna.phase_center()[2], antenna.physical_center[2]);
}

TEST(StandardScenario, MatchesAHandBuiltScenarioSampleForSample) {
  const auto antenna = rf::make_antenna({0.0, 0.8, 0.0}, 3);

  auto helper = bench::standard_scenario(sim::EnvironmentKind::kLabTypical,
                                         antenna, 42);
  auto manual = sim::Scenario::Builder{}
                    .environment(sim::EnvironmentKind::kLabTypical)
                    .add_antenna(antenna)
                    .add_tag()
                    .seed(42)
                    .build();

  const auto a = helper.sweep(0, 0, small_rig().build());
  const auto b = manual.sweep(0, 0, small_rig().build());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(a[i].position[0], b[i].position[0]);
    EXPECT_EQ(a[i].position[1], b[i].position[1]);
    EXPECT_EQ(a[i].position[2], b[i].position[2]);
  }
}

TEST(StandardScenario, Vec3OverloadUsesAutoQuirkedUnitZero) {
  const linalg::Vec3 center{0.0, 0.8, 0.0};
  auto helper =
      bench::standard_scenario(sim::EnvironmentKind::kLabClean, center, 7);
  const auto& antenna = helper.antennas()[0];
  EXPECT_EQ(antenna.id, 0u);
  EXPECT_EQ(antenna.physical_center[1], 0.8);
  // make_antenna(_, 0) draws a nonzero per-unit displacement.
  EXPECT_GT(antenna.phase_center_displacement.norm(), 0.0);
}

TEST(CalibrateBatch, MatchesDirectRobustCalibrationWithEngineSeeding) {
  // Two antennas, two streams — the helper must reproduce exactly what a
  // serial loop over calibrate_antenna_robust produces when given the same
  // per-job RANSAC seeds the engine assigns.
  std::vector<std::vector<sim::PhaseSample>> streams;
  std::vector<linalg::Vec3> centers;
  core::RobustCalibrationConfig cfg;
  cfg.adaptive.ranges = {0.6, 0.8};
  cfg.adaptive.intervals = {0.15, 0.25};

  for (std::uint32_t unit = 0; unit < 2; ++unit) {
    const linalg::Vec3 center{0.0, 0.8, 0.0};
    auto scenario =
        bench::standard_scenario(sim::EnvironmentKind::kLabClean,
                                 rf::make_antenna(center, unit), 500 + unit);
    streams.push_back(scenario.sweep(0, 0, small_rig().build()));
    centers.push_back(center);
  }

  const auto batch_reports =
      bench::calibrate_batch(streams, centers, /*threads=*/2, cfg);
  ASSERT_EQ(batch_reports.size(), 2u);

  for (std::size_t i = 0; i < streams.size(); ++i) {
    auto direct_cfg = cfg;
    direct_cfg.adaptive.base.ransac.seed = engine::job_seed(i);
    const auto direct =
        core::calibrate_antenna_robust(streams[i], centers[i], direct_cfg);
    EXPECT_EQ(batch_reports[i].status, direct.status);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(batch_reports[i].center.estimated_center[k],
                direct.center.estimated_center[k]);
    }
    EXPECT_EQ(batch_reports[i].phase_offset, direct.phase_offset);
  }
}

TEST(CalibrateBatch, EmptyInputYieldsNoReports) {
  EXPECT_TRUE(bench::calibrate_batch({}, {}).empty());
}

}  // namespace
}  // namespace lion
