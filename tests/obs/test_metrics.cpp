// Metrics layer: HistogramData semantics (including the documented n < 3
// percentile behavior), registry registration rules, multi-threaded shard
// merging, snapshot determinism, and the runtime enable flag.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace lion::obs {
namespace {

TEST(HistogramData, RejectsBadBounds) {
  EXPECT_THROW(HistogramData(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(HistogramData({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(HistogramData({2.0, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW(HistogramData({1.0, 2.0, 3.0}));
}

TEST(HistogramData, ExactMoments) {
  HistogramData h({1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramData, PercentileEmptyIsZero) {
  HistogramData h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(HistogramData, PercentileSingleSampleIsThatValue) {
  HistogramData h({1.0, 2.0, 4.0});
  h.record(1.7);
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 1.7) << "p=" << p;
  }
}

TEST(HistogramData, PercentileTwoSamplesInterpolatesWithinEnvelope) {
  HistogramData h({1.0, 2.0, 4.0, 8.0});
  h.record(1.5);
  h.record(6.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 6.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 1.5);
  EXPECT_LT(p50, 6.0);
}

TEST(HistogramData, PercentileBoundedByBucketWidth) {
  HistogramData h(duration_bounds());
  for (int i = 1; i <= 1000; ++i) h.record(1e-3 * i);  // 1 ms .. 1 s
  // Each estimate must land within the bucket containing the true
  // quantile; duration bounds grow by 1.3x, so 35% relative slack.
  EXPECT_NEAR(h.percentile(50.0), 0.5, 0.5 * 0.35);
  EXPECT_NEAR(h.percentile(95.0), 0.95, 0.95 * 0.35);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.0);
}

TEST(HistogramData, MergeRequiresIdenticalBounds) {
  HistogramData a({1.0, 2.0});
  HistogramData b({1.0, 2.0});
  HistogramData c({1.0, 3.0});
  a.record(0.5);
  b.record(1.5);
  b.record(9.0);
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_FALSE(a.merge(c));
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramData, FromPartsRoundTrips) {
  HistogramData h({1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  const auto r = HistogramData::from_parts(h.bounds(), h.buckets(), h.count(),
                                           h.sum(), h.min(), h.max());
  EXPECT_EQ(r.count(), h.count());
  EXPECT_DOUBLE_EQ(r.sum(), h.sum());
  EXPECT_EQ(r.buckets(), h.buckets());
}

TEST(BoundsPresets, StrictlyIncreasing) {
  for (const auto& bounds :
       {duration_bounds(), count_bounds(), fraction_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    ASSERT_LE(bounds.size(), kMaxHistogramBuckets - 1);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(MetricsRegistry, CounterRegistrationIsIdempotent) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("a");
  const MetricId b = reg.counter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.counter("a"), a);
}

TEST(MetricsRegistry, HistogramFirstRegistrationWins) {
  MetricsRegistry reg;
  const MetricId id = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(reg.histogram("h", {5.0, 6.0, 7.0}), id);
  reg.record(id, 1.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.bounds(),
            (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, InvalidIdIsNoOp) {
  MetricsRegistry reg;
  reg.add(kInvalidMetric, 5);
  reg.record(kInvalidMetric, 1.0);
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistry, SingleThreadAddAndRecord) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("jobs");
  const MetricId h = reg.histogram("lat", {1.0, 2.0});
  reg.add(c, 3);
  reg.add(c, 4);
  reg.record(h, 0.5);
  reg.record(h, 1.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 2u);
}

TEST(MetricsRegistry, EightThreadMergeIsExact) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("ops");
  const MetricId h = reg.histogram("v", {0.25, 0.5, 0.75, 1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, c, h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(c, 1);
        reg.record(h, (t % 4) * 0.25 + 0.1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Two threads per residue class, deterministic bucket totals.
  ASSERT_EQ(hist.buckets().size(), 5u);
  EXPECT_EQ(hist.buckets()[0], 2u * kPerThread);  // 0.10
  EXPECT_EQ(hist.buckets()[1], 2u * kPerThread);  // 0.35
  EXPECT_EQ(hist.buckets()[2], 2u * kPerThread);  // 0.60
  EXPECT_EQ(hist.buckets()[3], 2u * kPerThread);  // 0.85
  EXPECT_EQ(hist.buckets()[4], 0u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.1);
  EXPECT_DOUBLE_EQ(hist.max(), 0.85);
}

TEST(MetricsRegistry, RetiredThreadShardsSurviveInSnapshot) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("n");
  {
    std::thread worker([&reg, c] { reg.add(c, 41); });
    worker.join();
  }
  reg.add(c, 1);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 42u);
}

TEST(MetricsRegistry, SnapshotJsonIsDeterministicAndSorted) {
  auto build = [] {
    MetricsRegistry reg;
    // Register out of lexicographic order on purpose.
    const MetricId b = reg.counter("zeta");
    const MetricId a = reg.counter("alpha");
    const MetricId h = reg.histogram("hist", {1.0, 2.0});
    reg.add(b, 2);
    reg.add(a, 1);
    reg.record(h, 1.5);
    return reg.snapshot_json();
  };
  const std::string one = build();
  EXPECT_EQ(one, build());
  EXPECT_NE(one.find("\"schema\":\"lion.metrics.v1\""), std::string::npos);
  EXPECT_LT(one.find("\"alpha\""), one.find("\"zeta\""));
  EXPECT_NE(one.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, ResetKeepsRegistrations) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("n");
  const MetricId h = reg.histogram("h", {1.0});
  reg.add(c, 9);
  reg.record(h, 0.5);
  reg.reset();
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 0u);
  reg.add(c, 2);  // ids stay valid after reset
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].second, 2u);
}

TEST(MetricsRegistry, RegistrationCapThrows) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_THROW(reg.counter("one-too-many"), std::length_error);
}

// The checked registration path: at the cap the registry degrades
// (kInvalidMetric, adds become no-ops) instead of throwing out of a
// daemon's instrumentation site. Regression for the macro layer, which
// routes through try_counter/try_histogram.
TEST(MetricsRegistry, TryRegisterPastCapDegrades) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    ASSERT_NE(reg.try_counter("c" + std::to_string(i)), kInvalidMetric);
  }
  const MetricId overflow = reg.try_counter("one-too-many");
  EXPECT_EQ(overflow, kInvalidMetric);
  EXPECT_NO_THROW(reg.add(overflow, 7));  // silently dropped

  // Existing registrations keep working and re-registration by name still
  // resolves to the live id.
  const MetricId c0 = reg.try_counter("c0");
  ASSERT_NE(c0, kInvalidMetric);
  reg.add(c0, 3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), kMaxCounters);
  bool saw_c0 = false;
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "one-too-many");
    if (name == "c0") {
      saw_c0 = true;
      EXPECT_EQ(value, 3u);
    }
  }
  EXPECT_TRUE(saw_c0);
}

TEST(MetricsRegistry, TryHistogramDegradesOnCapAndBadBounds) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.try_histogram("bad", {}), kInvalidMetric);
  EXPECT_EQ(reg.try_histogram("bad2", {2.0, 1.0}), kInvalidMetric);
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    ASSERT_NE(reg.try_histogram("h" + std::to_string(i), {1.0, 2.0}),
              kInvalidMetric);
  }
  const MetricId overflow = reg.try_histogram("one-too-many", {1.0, 2.0});
  EXPECT_EQ(overflow, kInvalidMetric);
  EXPECT_NO_THROW(reg.record(overflow, 1.5));
  EXPECT_EQ(reg.snapshot().histograms.size(), kMaxHistograms);
}

TEST(ObsMacros, DisabledMacrosRecordNothing) {
  ASSERT_FALSE(metrics_enabled());
  LION_OBS_COUNT("test.disabled_counter", 1);
  LION_OBS_HIST("test.disabled_hist", fraction_bounds(), 0.5);
  const auto snap = MetricsRegistry::instance().snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "test.disabled_counter");
  }
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_NE(name, "test.disabled_hist");
  }
}

TEST(ObsMacros, EnabledMacrosRecordIntoSingleton) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().reset();
  LION_OBS_COUNT("test.enabled_counter", 3);
  LION_OBS_HIST("test.enabled_hist", fraction_bounds(), 0.5);
  { LION_OBS_SPAN(Stage::kUnwrap); }
  const auto snap = MetricsRegistry::instance().snapshot();
  set_metrics_enabled(false);

  std::uint64_t counter = 0;
  bool hist_seen = false;
  std::uint64_t unwrap_count = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.enabled_counter") counter = value;
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "test.enabled_hist") hist_seen = hist.count() == 1;
    if (name == std::string("stage.") + stage_name(Stage::kUnwrap) +
                    ".seconds") {
      unwrap_count = hist.count();
    }
  }
  EXPECT_EQ(counter, 3u);
  EXPECT_TRUE(hist_seen);
  EXPECT_EQ(unwrap_count, 1u);
}

TEST(PipelineSchema, EnableRegistersEveryStageHistogram) {
  set_metrics_enabled(true);
  const auto snap = MetricsRegistry::instance().snapshot();
  set_metrics_enabled(false);
  for (std::size_t s = 0; s < static_cast<std::size_t>(Stage::kCount); ++s) {
    const std::string want = std::string("stage.") +
                             stage_name(static_cast<Stage>(s)) + ".seconds";
    bool found = false;
    for (const auto& [name, hist] : snap.histograms) {
      if (name == want) found = true;
    }
    EXPECT_TRUE(found) << want;
  }
  for (const char* want : {"engine.jobs", "engine.steals", "engine.exceptions",
                           "radical.rows", "ransac.iterations"}) {
    bool found = false;
    for (const auto& [name, value] : snap.counters) {
      if (name == want) found = true;
    }
    EXPECT_TRUE(found) << want;
  }
}

}  // namespace
}  // namespace lion::obs
