// EventLog: ring retention and drop accounting, per-type token-bucket
// rate limiting on a virtual clock, severity counters, lion.evlog.v1
// JSON shape, and the line sink (including the write-failure latch).
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace lion::obs {
namespace {

EventLogConfig virtual_clock_config(double* clock_s) {
  EventLogConfig cfg;
  cfg.clock = [clock_s] { return *clock_s; };
  return cfg;
}

TEST(EventLog, EmitRetainsAndStamps) {
  double clock_s = 1000.0;
  EventLog log(virtual_clock_config(&clock_s));
  EXPECT_TRUE(log.emit(Severity::kInfo, "restore", "cal0", "42 records", 42));
  clock_s = 1001.5;
  EXPECT_TRUE(log.emit(Severity::kWarn, "slow_request", "cal1", "solve", 7));

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_DOUBLE_EQ(events[0].wall_s, 1000.0);
  EXPECT_EQ(events[0].type, "restore");
  EXPECT_EQ(events[0].session, "cal0");
  EXPECT_EQ(events[0].value, 42u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].severity, Severity::kWarn);
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, RingOverwritesOldestAndCountsDropped) {
  double clock_s = 0.0;
  EventLogConfig cfg = virtual_clock_config(&clock_s);
  cfg.capacity = 4;
  cfg.rate_per_s = 1e9;  // rate limiting out of the way
  cfg.burst = 1e9;
  EventLog log(cfg);
  for (int i = 0; i < 10; ++i) {
    log.emit(Severity::kInfo, "tick", "", std::to_string(i),
             static_cast<std::uint64_t>(i));
  }
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the surviving window is [6, 9].
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].value,
              static_cast<std::uint64_t>(6 + i));
  }
  EXPECT_EQ(log.emitted(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(EventLog, PerTypeTokenBucketLimitsSustainedRate) {
  double clock_s = 0.0;
  EventLogConfig cfg = virtual_clock_config(&clock_s);
  cfg.rate_per_s = 2.0;
  cfg.burst = 3.0;
  EventLog log(cfg);

  // The burst admits 3, then the bucket is dry.
  for (int i = 0; i < 5; ++i) log.emit(Severity::kWarn, "hot", "", "");
  EXPECT_EQ(log.emitted(), 3u);
  EXPECT_EQ(log.rate_limited(), 2u);

  // A different type has its own bucket.
  EXPECT_TRUE(log.emit(Severity::kInfo, "cold", "", ""));

  // 1 s refills 2 tokens for "hot".
  clock_s = 1.0;
  EXPECT_TRUE(log.emit(Severity::kWarn, "hot", "", ""));
  EXPECT_TRUE(log.emit(Severity::kWarn, "hot", "", ""));
  EXPECT_FALSE(log.emit(Severity::kWarn, "hot", "", ""));
  EXPECT_EQ(log.rate_limited(), 3u);
}

TEST(EventLog, SeverityCountsTrackAcceptedOnly) {
  double clock_s = 0.0;
  EventLogConfig cfg = virtual_clock_config(&clock_s);
  cfg.rate_per_s = 1e-9;  // burst only, effectively no refill
  cfg.burst = 2.0;
  EventLog log(cfg);
  log.emit(Severity::kError, "x", "", "");
  log.emit(Severity::kError, "x", "", "");
  log.emit(Severity::kError, "x", "", "");  // rate-limited, not counted
  log.emit(Severity::kDebug, "y", "", "");
  const auto counts = log.severity_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(Severity::kDebug)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Severity::kInfo)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Severity::kError)], 2u);
}

TEST(EventLog, ToJsonIsFlatSingleLineWithEscaping) {
  Event e;
  e.seq = 3;
  e.wall_s = 12.5;
  e.severity = Severity::kWarn;
  e.type = "slow_request";
  e.session = "cal \"7\"";
  e.detail = "line1\nline2";
  e.value = 99;
  const std::string json = e.to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"lion.evlog.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"slow_request\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":99"), std::string::npos);
  EXPECT_NE(json.find("cal \\\"7\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(EventLog, SinkReceivesOneJsonLinePerEvent) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  double clock_s = 5.0;
  EventLog log(virtual_clock_config(&clock_s));
  log.set_sink(sink);
  log.emit(Severity::kInfo, "a", "s0", "first");
  log.emit(Severity::kWarn, "b", "s1", "second");
  log.set_sink(nullptr);

  std::rewind(sink);
  std::vector<std::string> lines;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, sink) != nullptr) lines.emplace_back(buf);
  std::fclose(sink);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"b\""), std::string::npos);
  EXPECT_EQ(lines[1].back(), '\n');
}

TEST(EventLog, SinkWriteFailureLatchesOffWithoutErroring) {
  // /dev/full accepts the fopen but fails every write with ENOSPC.
  std::FILE* sink = std::fopen("/dev/full", "w");
  if (sink == nullptr) GTEST_SKIP() << "/dev/full unavailable";
  double clock_s = 0.0;
  EventLog log(virtual_clock_config(&clock_s));
  log.set_sink(sink);
  // Neither emit may throw or fail the caller; the ring still retains.
  EXPECT_TRUE(log.emit(Severity::kInfo, "a", "", ""));
  EXPECT_TRUE(log.emit(Severity::kInfo, "b", "", ""));
  EXPECT_EQ(log.snapshot().size(), 2u);
  log.set_sink(nullptr);
  std::fclose(sink);
}

TEST(EventLog, RateLimitedEventsDoNotReachTheSink) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  double clock_s = 0.0;
  EventLogConfig cfg = virtual_clock_config(&clock_s);
  cfg.rate_per_s = 1e-9;  // burst only, effectively no refill
  cfg.burst = 1.0;
  EventLog log(cfg);
  log.set_sink(sink);
  log.emit(Severity::kInfo, "t", "", "kept");
  log.emit(Severity::kInfo, "t", "", "limited");
  log.set_sink(nullptr);
  std::rewind(sink);
  std::size_t lines = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, sink) != nullptr) ++lines;
  std::fclose(sink);
  EXPECT_EQ(lines, 1u);
}

}  // namespace
}  // namespace lion::obs
