// Compile-time kill switch: this binary is built with -DLION_OBS_OFF, so
// every instrumentation macro must expand to ((void)0) — well-formed in
// all the contexts the pipeline uses them in, and recording nothing even
// when the runtime flags are on.
#ifndef LION_OBS_OFF
#error "this test must be compiled with -DLION_OBS_OFF"
#endif

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace lion::obs {
namespace {

TEST(ObsOff, MacrosCompileAndRecordNothing) {
  set_metrics_enabled(true);
  set_tracing_enabled(true);
  MetricsRegistry::instance().reset();
  trace_reset();

  {
    LION_OBS_SPAN(Stage::kUnwrap);
    LION_OBS_SPAN_TAGGED(Stage::kJob, 7);
    LION_OBS_COUNT("off.counter", 1);
    LION_OBS_HIST("off.hist", fraction_bounds(), 0.5);
    if (true) LION_OBS_COUNT("off.branch", 1);  // statement context
  }

  const auto snap = MetricsRegistry::instance().snapshot();
  set_metrics_enabled(false);
  set_tracing_enabled(false);

  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "off.counter");
    EXPECT_NE(name, "off.branch");
    EXPECT_EQ(value, 0u) << name;  // schema is registered, all zeros
  }
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_NE(name, "off.hist");
    EXPECT_EQ(hist.count(), 0u) << name;
  }
  EXPECT_TRUE(trace_snapshot().empty());
}

}  // namespace
}  // namespace lion::obs
