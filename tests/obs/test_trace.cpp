// Trace layer: span recording, nesting order in the merged snapshot,
// per-thread ids, ring wrap accounting, and the Chrome trace_event export.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace lion::obs {
namespace {

// Every test owns the global trace state for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_reset();
    set_tracing_enabled(true);
  }
  void TearDown() override {
    set_tracing_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_tracing_enabled(false);
  { TraceSpan span("outer"); }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(TraceTest, NestedSpansSortParentFirst) {
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    { TraceSpan inner2("inner2"); }
  }
  const auto events = trace_snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Sorted (start asc, dur desc): the enclosing span precedes both inner
  // spans, and the inner spans keep their start order.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "inner2");
  // Containment: inner spans lie inside the outer interval, same thread.
  for (int i : {1, 2}) {
    EXPECT_EQ(events[i].tid, events[0].tid);
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns,
              events[0].start_ns + events[0].dur_ns);
  }
  EXPECT_LE(events[1].start_ns + events[1].dur_ns, events[2].start_ns);
}

TEST_F(TraceTest, ThreadsGetDistinctIds) {
  { TraceSpan span("main-thread"); }
  std::thread worker([] { TraceSpan span("worker-thread"); });
  worker.join();
  const auto events = trace_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, RingWrapCountsDropped) {
  set_trace_capacity(4);
  // A fresh thread gets the small ring; overflow must be counted.
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      TraceSpan span("tiny");
    }
  });
  worker.join();
  set_trace_capacity(16384);
  EXPECT_EQ(trace_dropped(), 6u);
  EXPECT_EQ(trace_snapshot().size(), 4u);
}

TEST_F(TraceTest, ChromeJsonShape) {
  {
    TraceSpan outer("calibrate");
    TraceSpan tagged("job", 42);
  }
  const std::string json = trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"calibrate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"job\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // ts/dur are microseconds keys required by the Chrome loader.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, StageSpanEmitsTraceWithoutMetrics) {
  ASSERT_FALSE(metrics_enabled());
  { StageSpan span(Stage::kSolve); }
  const auto events = trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, stage_name(Stage::kSolve));
}

TEST_F(TraceTest, ResetClearsEventsAndDropCounter) {
  { TraceSpan span("a"); }
  trace_reset();
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(TraceTest, MonotonicClock) {
  const auto a = trace_now_ns();
  const auto b = trace_now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace lion::obs
