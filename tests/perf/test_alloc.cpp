// Steady-state allocation contract of the small-system solver core: once a
// SolverWorkspace and result object have been warmed on a system shape, the
// whole RANSAC/IRLS hot path must not touch the heap again. This pins the
// PR's central claim — allocator pressure, not FLOPs, dominated the batch
// engine — with a hard zero, not a benchmark.
//
// Mechanism: the test binary replaces the global allocation functions with
// counting wrappers. Counting is gated by an atomic flag so GTest's own
// bookkeeping between phases does not pollute the numbers; delete stays
// unconditional (it must always free what any new returned).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/ransac.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "linalg/small.hpp"
#include "rf/rng.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lion {
namespace {

struct Problem {
  linalg::Matrix a;
  std::vector<double> b;
};

Problem line_problem(std::size_t n, double outlier_fraction,
                     std::uint64_t seed) {
  rf::Rng rng(seed);
  Problem p{linalg::Matrix(n, 2), std::vector<double>(n)};
  const std::size_t bad =
      static_cast<std::size_t>(outlier_fraction * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 0.1 * static_cast<double>(i);
    p.a(i, 0) = x;
    p.a(i, 1) = 1.0;
    p.b[i] = 2.0 * x - 3.0 + rng.gaussian(0.01);
    if (i < bad) p.b[i] += 5.0;
  }
  return p;
}

/// Count global-new calls while running `fn`.
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocationContract, CountersSeeVectorGrowth) {
  // Sanity-check the instrumentation itself: heap traffic is visible.
  const std::size_t n = allocations_during([] {
    std::vector<double> v(4096);
    v[0] = 1.0;
  });
  EXPECT_GT(n, 0u);
}

TEST(AllocationContract, WarmRansacSolveIsAllocationFree) {
  const auto p = line_problem(120, 0.3, 11);
  const core::RansacOptions opt;
  linalg::SolverWorkspace ws;
  core::RansacResult out;
  // Two warm passes: the first sizes the workspace and result vectors, the
  // second proves the sizing is stable before counting starts.
  core::ransac_solve(p.a, p.b, opt, ws, out);
  core::ransac_solve(p.a, p.b, opt, ws, out);

  const std::size_t n = allocations_during([&] {
    for (int i = 0; i < 5; ++i) core::ransac_solve(p.a, p.b, opt, ws, out);
  });
  EXPECT_EQ(n, 0u) << "warmed consensus loop touched the heap " << n
                   << " times";
  ASSERT_TRUE(out.consensus);
}

TEST(AllocationContract, WarmIrlsSolveIsAllocationFree) {
  const auto p = line_problem(120, 0.1, 12);
  linalg::IrlsOptions opt;
  opt.loss = linalg::RobustLoss::kHuber;
  linalg::SolverWorkspace ws;
  linalg::LstsqResult out;
  linalg::solve_irls(p.a, p.b, opt, ws, out);
  linalg::solve_irls(p.a, p.b, opt, ws, out);

  const std::size_t n = allocations_during([&] {
    for (int i = 0; i < 5; ++i) linalg::solve_irls(p.a, p.b, opt, ws, out);
  });
  EXPECT_EQ(n, 0u) << "warmed IRLS loop touched the heap " << n << " times";
  ASSERT_EQ(out.x.size(), 2u);
  EXPECT_TRUE(std::isfinite(out.x[0]));
}

TEST(AllocationContract, ReloadAcrossShapesStaysAllocationFreeOnceWarm) {
  // Alternating between two row counts after warming both: load() must
  // reuse capacity, not reallocate per shape switch.
  const auto small = line_problem(60, 0.2, 13);
  const auto large = line_problem(140, 0.2, 14);
  const core::RansacOptions opt;
  linalg::SolverWorkspace ws;
  core::RansacResult out;
  for (int i = 0; i < 2; ++i) {
    core::ransac_solve(small.a, small.b, opt, ws, out);
    core::ransac_solve(large.a, large.b, opt, ws, out);
  }

  const std::size_t n = allocations_during([&] {
    core::ransac_solve(small.a, small.b, opt, ws, out);
    core::ransac_solve(large.a, large.b, opt, ws, out);
  });
  EXPECT_EQ(n, 0u) << "shape switch reallocated " << n << " times";
}

}  // namespace
}  // namespace lion
