#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

// A full simulated calibration scan for one antenna.
struct CalScan {
  sim::Scenario scenario;
  std::vector<sim::PhaseSample> samples;
  signal::PhaseProfile profile;
};

CalScan make_scan(std::uint64_t seed,
                  sim::EnvironmentKind env = sim::EnvironmentKind::kLabClean) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(env)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(seed)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  auto samples = scenario.sweep(0, 0, rig.build());
  auto profile = signal::preprocess(samples);
  return {std::move(scenario), std::move(samples), std::move(profile)};
}

TEST(CenterCalibration, RecoversHiddenDisplacement) {
  auto scan = make_scan(11);
  const auto& antenna = scan.scenario.antennas()[0];
  const auto cal = calibrate_phase_center(scan.profile,
                                          antenna.physical_center, {});
  const double err =
      linalg::distance(cal.estimated_center, antenna.phase_center());
  EXPECT_LT(err, 0.02) << "estimated " << cal.estimated_center;
  // The displacement estimate must clearly beat the no-calibration
  // assumption (displacement zero, i.e. error = true displacement norm).
  EXPECT_LT(err, antenna.phase_center_displacement.norm());
}

TEST(CenterCalibration, DisplacementIsEstimateMinusPhysical) {
  auto scan = make_scan(12);
  const auto& antenna = scan.scenario.antennas()[0];
  const auto cal = calibrate_phase_center(scan.profile,
                                          antenna.physical_center, {});
  const Vec3 expected = cal.estimated_center - antenna.physical_center;
  EXPECT_NEAR(linalg::distance(cal.displacement, expected), 0.0, 1e-12);
}

TEST(CenterCalibration, DetailsExposeAdaptiveSweep) {
  auto scan = make_scan(13);
  const auto cal = calibrate_phase_center(
      scan.profile, scan.scenario.antennas()[0].physical_center, {});
  EXPECT_FALSE(cal.details.candidates.empty());
  EXPECT_FALSE(cal.details.selected.empty());
  EXPECT_GT(cal.details.best_range, 0.0);
}

TEST(CenterCalibration, PhysicalCenterActsAsSideHint) {
  // Even with no explicit hint, the estimate must land on the antenna's
  // side of the rig (positive y), not the mirror side.
  auto scan = make_scan(14);
  const auto cal = calibrate_phase_center(
      scan.profile, scan.scenario.antennas()[0].physical_center, {});
  EXPECT_GT(cal.estimated_center[1], 0.0);
}

TEST(OffsetCalibration, RecoversCombinedHardwareOffset) {
  auto scan = make_scan(15);
  const auto& antenna = scan.scenario.antennas()[0];
  const auto& tag = scan.scenario.tags()[0];
  // Use the true phase center: isolates the offset-estimation error.
  const double offset =
      calibrate_phase_offset(scan.samples, antenna.phase_center());
  const double truth =
      rf::wrap_phase(antenna.reader_offset_rad + tag.tag_offset_rad);
  EXPECT_LT(rf::circular_distance(offset, truth), 0.25);
}

TEST(OffsetCalibration, CenterErrorDegradesOffset) {
  auto scan = make_scan(16);
  const auto& antenna = scan.scenario.antennas()[0];
  const double good =
      calibrate_phase_offset(scan.samples, antenna.phase_center());
  const double bad = calibrate_phase_offset(
      scan.samples, antenna.phase_center() + Vec3{0.0, 0.05, 0.0});
  const double truth = rf::wrap_phase(antenna.reader_offset_rad +
                                      scan.scenario.tags()[0].tag_offset_rad);
  EXPECT_LT(rf::circular_distance(good, truth),
            rf::circular_distance(bad, truth) + 0.2);
}

TEST(OffsetCalibration, ResultInCircle) {
  auto scan = make_scan(17);
  const double offset = calibrate_phase_offset(
      scan.samples, scan.scenario.antennas()[0].phase_center());
  EXPECT_GE(offset, 0.0);
  EXPECT_LT(offset, rf::kTwoPi);
}

TEST(OffsetCalibration, ThrowsOnEmptySamples) {
  EXPECT_THROW(calibrate_phase_offset({}, Vec3{}), std::invalid_argument);
}

TEST(RelativeOffset, CancelsSharedTagContribution) {
  // Two antennas calibrated with the same tag: the difference of offsets
  // equals the difference of reader offsets (theta_T cancels).
  AntennaCalibration a;
  a.phase_offset = rf::wrap_phase(1.0 + 2.5);  // theta_T=1.0, theta_R=2.5
  AntennaCalibration b;
  b.phase_offset = rf::wrap_phase(1.0 + 0.7);
  EXPECT_NEAR(relative_offset(a, b), rf::wrap_phase(2.5 - 0.7), 1e-12);
}

TEST(RemoveOffset, InvertsEquationOne) {
  const double d = 1.23;
  const double offset = 2.2;
  const double measured = rf::reported_phase(d, offset, 0.0);
  const double corrected = remove_offset(measured, offset);
  EXPECT_NEAR(corrected, rf::wrap_phase(rf::distance_phase(d)), 1e-12);
}

TEST(RemoveOffset, ResultAlwaysWrapped) {
  for (double m = 0.0; m < rf::kTwoPi; m += 0.7) {
    for (double o = 0.0; o < rf::kTwoPi; o += 0.9) {
      const double c = remove_offset(m, o);
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, rf::kTwoPi);
    }
  }
}

}  // namespace
}  // namespace lion::core
