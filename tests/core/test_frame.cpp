#include "core/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lion::core {
namespace {

signal::PhaseProfile points(std::initializer_list<Vec3> ps) {
  signal::PhaseProfile p;
  for (const auto& v : ps) p.push_back({v, 0.0, 0.0});
  return p;
}

signal::PhaseProfile line_along(const Vec3& dir, const Vec3& origin,
                                int n = 21) {
  signal::PhaseProfile p;
  for (int i = 0; i < n; ++i) {
    const double s = -0.5 + static_cast<double>(i) / (n - 1);
    p.push_back({origin + s * dir, 0.0, 0.0});
  }
  return p;
}

TEST(Frame, LineAlongXHasRankOne) {
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}), 2);
  EXPECT_EQ(f.rank, 1u);
  ASSERT_EQ(f.axes.size(), 1u);
  EXPECT_NEAR(std::abs(f.axes[0][0]), 1.0, 1e-9);
}

TEST(Frame, DiagonalLineInPlaneHasRankOne) {
  const auto f = analyze_frame(line_along({1.0, 1.0, 0.0}, {}), 2);
  EXPECT_EQ(f.rank, 1u);
  EXPECT_NEAR(std::abs(f.axes[0][0]), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::abs(f.axes[0][1]), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(Frame, PlanarScatterHasRankTwoIn2D) {
  const auto p = points({{0.0, 0.0, 0.0},
                         {1.0, 0.0, 0.0},
                         {0.0, 1.0, 0.0},
                         {1.0, 1.0, 0.0},
                         {0.5, 0.3, 0.0}});
  const auto f = analyze_frame(p, 2);
  EXPECT_EQ(f.rank, 2u);
  EXPECT_FALSE(f.has_perpendicular);
}

TEST(Frame, PlanarScatterHasRankTwoIn3DWithNormal) {
  const auto p = points({{0.0, 0.0, 0.0},
                         {1.0, 0.0, 0.0},
                         {0.0, 1.0, 0.0},
                         {1.0, 1.0, 0.0},
                         {0.4, 0.7, 0.0}});
  const auto f = analyze_frame(p, 3);
  EXPECT_EQ(f.rank, 2u);
  ASSERT_TRUE(f.has_perpendicular);
  EXPECT_NEAR(std::abs(f.perpendicular[2]), 1.0, 1e-9);
}

TEST(Frame, LinearScanIn2DGetsInPlaneNormal) {
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}), 2);
  ASSERT_TRUE(f.has_perpendicular);
  EXPECT_NEAR(std::abs(f.perpendicular[1]), 1.0, 1e-9);
  EXPECT_NEAR(f.perpendicular[2], 0.0, 1e-12);
}

TEST(Frame, FullRank3DScatter) {
  const auto p = points({{0.0, 0.0, 0.0},
                         {1.0, 0.0, 0.0},
                         {0.0, 1.0, 0.0},
                         {0.0, 0.0, 1.0},
                         {1.0, 1.0, 1.0}});
  const auto f = analyze_frame(p, 3);
  EXPECT_EQ(f.rank, 3u);
  EXPECT_FALSE(f.has_perpendicular);
}

TEST(Frame, LineIn3DIsRankOneNoPerpendicular) {
  // Deficit of 2: no unique perpendicular.
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}), 3);
  EXPECT_EQ(f.rank, 1u);
  EXPECT_FALSE(f.has_perpendicular);
}

TEST(Frame, CentroidIsMean) {
  const auto p = points({{0.0, 0.0, 0.0}, {2.0, 4.0, 6.0}});
  const auto f = analyze_frame(p, 3);
  EXPECT_NEAR(f.centroid[0], 1.0, 1e-12);
  EXPECT_NEAR(f.centroid[1], 2.0, 1e-12);
  EXPECT_NEAR(f.centroid[2], 3.0, 1e-12);
}

TEST(Frame, ToLocalFromLocalRoundTrip) {
  const auto p = points({{0.0, 0.0, 0.0},
                         {1.0, 0.2, 0.0},
                         {0.3, 1.0, 0.0},
                         {0.9, 0.8, 0.0}});
  const auto f = analyze_frame(p, 2);
  ASSERT_EQ(f.rank, 2u);
  for (const auto& pt : p) {
    const auto local = f.to_local(pt.position);
    const Vec3 back = f.from_local(local);
    EXPECT_NEAR(linalg::distance(back, pt.position), 0.0, 1e-9);
  }
}

TEST(Frame, FromLocalPerpendicularOffset) {
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}), 2);
  ASSERT_TRUE(f.has_perpendicular);
  const Vec3 p = f.from_local({0.1}, 0.5);
  // 0.5 m off the x-axis line in the y direction (sign of normal may vary).
  EXPECT_NEAR(std::abs(p[1]), 0.5, 1e-9);
}

TEST(Frame, FromLocalSizeMismatchThrows) {
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}), 2);
  EXPECT_THROW(f.from_local({0.1, 0.2}), std::invalid_argument);
}

TEST(Frame, SpreadReflectsExtent) {
  const auto f = analyze_frame(line_along({1.0, 0.0, 0.0}, {}, 101), 2);
  ASSERT_EQ(f.spread.size(), 1u);
  // RMS of uniform [-0.5, 0.5] is ~0.29.
  EXPECT_NEAR(f.spread[0], 0.29, 0.03);
}

TEST(Frame, ValidatesArguments) {
  const auto p = line_along({1.0, 0.0, 0.0}, {});
  EXPECT_THROW(analyze_frame(p, 1), std::invalid_argument);
  EXPECT_THROW(analyze_frame(p, 4), std::invalid_argument);
  EXPECT_THROW(analyze_frame({}, 2), std::invalid_argument);
  EXPECT_THROW(analyze_frame(points({{1.0, 1.0, 1.0}}), 2),
               std::invalid_argument);
}

TEST(Frame, AxesAreOrthonormal) {
  const auto p = points({{0.0, 0.0, 0.0},
                         {1.0, 0.1, 0.0},
                         {0.2, 1.0, 0.3},
                         {0.8, 0.9, 0.7},
                         {0.4, 0.2, 0.9}});
  const auto f = analyze_frame(p, 3);
  for (std::size_t i = 0; i < f.axes.size(); ++i) {
    EXPECT_NEAR(f.axes[i].norm(), 1.0, 1e-9);
    for (std::size_t j = i + 1; j < f.axes.size(); ++j) {
      EXPECT_NEAR(f.axes[i].dot(f.axes[j]), 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace lion::core
