#include "core/offset_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::core {
namespace {

using linalg::Matrix;

// Build a wrapped Theta[a][t] = rho_a + tau_t (+ noise) grid.
Matrix make_grid(const std::vector<double>& rho, const std::vector<double>& tau,
                 double sigma = 0.0, std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  Matrix m(rho.size(), tau.size());
  for (std::size_t a = 0; a < rho.size(); ++a) {
    for (std::size_t t = 0; t < tau.size(); ++t) {
      m(a, t) = rf::wrap_phase(rho[a] + tau[t] + rng.gaussian(sigma));
    }
  }
  return m;
}

// Compare decomposition to truth up to the gauge (tau_0 = 0 convention).
void expect_matches(const OffsetDecomposition& d,
                    const std::vector<double>& rho,
                    const std::vector<double>& tau, double tol) {
  // Gauge-align the truth: shift so tau[0] -> 0.
  const double gauge = tau[0];
  for (std::size_t a = 0; a < rho.size(); ++a) {
    EXPECT_LT(rf::circular_distance(d.antenna_offsets[a],
                                    rf::wrap_phase(rho[a] + gauge)),
              tol)
        << "antenna " << a;
  }
  for (std::size_t t = 0; t < tau.size(); ++t) {
    EXPECT_LT(rf::circular_distance(d.tag_offsets[t],
                                    rf::wrap_phase(tau[t] - gauge)),
              tol)
        << "tag " << t;
  }
}

TEST(OffsetGraph, ExactRecoveryNoiseless) {
  const std::vector<double> rho{0.5, 2.7, 4.1, 5.9};
  const std::vector<double> tau{1.1, 3.3, 0.2};
  const auto d = decompose_offsets(make_grid(rho, tau));
  expect_matches(d, rho, tau, 1e-9);
  EXPECT_LT(d.rms_residual, 1e-9);
}

TEST(OffsetGraph, GaugeConventionTagZeroIsZero) {
  const auto d = decompose_offsets(make_grid({1.0, 2.0}, {0.7, 1.9}));
  EXPECT_NEAR(d.tag_offsets[0], 0.0, 1e-9);
}

TEST(OffsetGraph, HandlesWrapAroundValues) {
  // Offsets straddling the 0/2*pi seam must not break the circular means.
  const std::vector<double> rho{6.2, 0.1};
  const std::vector<double> tau{6.1, 0.2};
  const auto d = decompose_offsets(make_grid(rho, tau));
  expect_matches(d, rho, tau, 1e-9);
}

TEST(OffsetGraph, NoiseAveragesDown) {
  const std::vector<double> rho{0.5, 2.7, 4.1, 5.9};
  const std::vector<double> tau{1.1, 3.3, 0.2, 2.8};
  const auto d = decompose_offsets(make_grid(rho, tau, 0.05, 7));
  // 4 measurements per node at sigma 0.05: expect ~0.03 rad accuracy.
  expect_matches(d, rho, tau, 0.08);
  EXPECT_LT(d.rms_residual, 0.1);
}

TEST(OffsetGraph, MissingPairsTolerated) {
  const std::vector<double> rho{0.5, 2.7, 4.1};
  const std::vector<double> tau{1.1, 3.3};
  Matrix m = make_grid(rho, tau);
  m(1, 0) = kMissingOffset;  // one pair skipped; graph stays connected
  const auto d = decompose_offsets(m);
  expect_matches(d, rho, tau, 1e-9);
}

TEST(OffsetGraph, PredictedPairOffsetConsistent) {
  const std::vector<double> rho{0.5, 2.7};
  const std::vector<double> tau{1.1, 3.3};
  const auto m = make_grid(rho, tau);
  const auto d = decompose_offsets(m);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_LT(rf::circular_distance(predicted_pair_offset(d, a, t), m(a, t)),
                1e-9);
    }
  }
}

TEST(OffsetGraph, RejectsEmptyMatrix) {
  EXPECT_THROW(decompose_offsets(Matrix()), std::invalid_argument);
}

TEST(OffsetGraph, RejectsAntennaWithoutPairs) {
  Matrix m = make_grid({1.0, 2.0}, {0.5});
  m(1, 0) = kMissingOffset;
  EXPECT_THROW(decompose_offsets(m), std::invalid_argument);
}

TEST(OffsetGraph, RejectsTagWithoutPairs) {
  Matrix m = make_grid({1.0}, {0.5, 1.5});
  m(0, 1) = kMissingOffset;
  EXPECT_THROW(decompose_offsets(m), std::invalid_argument);
}

TEST(OffsetGraph, RejectsDisconnectedGraph) {
  // Two independent blocks: {A0,T0} and {A1,T1}.
  Matrix m(2, 2, kMissingOffset);
  m(0, 0) = 1.0;
  m(1, 1) = 2.0;
  EXPECT_THROW(decompose_offsets(m), std::invalid_argument);
}

TEST(OffsetGraph, ReportsIterations) {
  const auto d = decompose_offsets(make_grid({1.0, 2.0}, {0.5, 1.5}));
  EXPECT_GE(d.iterations, 1u);
}

TEST(OffsetGraph, RelativeAntennaOffsetsGaugeFree) {
  // The *difference* between antenna offsets must match truth regardless of
  // gauge — this is what multi-antenna localization consumes.
  const std::vector<double> rho{0.9, 4.4, 2.2};
  const std::vector<double> tau{2.0, 5.1};
  const auto d = decompose_offsets(make_grid(rho, tau, 0.02, 3));
  for (std::size_t a = 1; a < 3; ++a) {
    const double est = rf::wrap_phase(d.antenna_offsets[a] -
                                      d.antenna_offsets[0]);
    const double truth = rf::wrap_phase(rho[a] - rho[0]);
    EXPECT_LT(rf::circular_distance(est, truth), 0.06);
  }
}

}  // namespace
}  // namespace lion::core
