#include "core/tag_locator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

// Simulated conveyor scan: the tag starts at `start` and moves along +x;
// phases measured by an antenna at `antenna`.
std::vector<TagScanPoint> conveyor_scan(const Vec3& antenna, const Vec3& start,
                                        double travel, double sigma,
                                        std::uint64_t seed) {
  rf::Rng rng(seed);
  std::vector<TagScanPoint> scan;
  for (double s = 0.0; s <= travel + 1e-12; s += 0.005) {
    TagScanPoint p;
    p.displacement = {s, 0.0, 0.0};
    const double d = linalg::distance(antenna, start + p.displacement);
    p.phase = rf::distance_phase(d) + 0.5 + rng.gaussian(sigma);
    scan.push_back(p);
  }
  return scan;
}

TEST(VirtualProfile, PositionsAreAntennaMinusDisplacement) {
  const Vec3 antenna{0.0, 0.8, 0.0};
  std::vector<TagScanPoint> scan{{{0.1, 0.0, 0.0}, 1.0},
                                 {{0.2, 0.05, 0.0}, 2.0}};
  const auto profile = virtual_profile(antenna, scan);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].position, (Vec3{-0.1, 0.8, 0.0}));
  EXPECT_EQ(profile[1].position, (Vec3{-0.2, 0.75, 0.0}));
  EXPECT_DOUBLE_EQ(profile[0].phase, 1.0);
}

TEST(TagLocator, NoiselessConveyorIsExact) {
  const Vec3 antenna{0.0, 0.8, 0.0};
  const Vec3 start{-0.4, 0.0, 0.0};
  const auto scan = conveyor_scan(antenna, start, 0.8, 0.0, 1);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};  // tag is below the antenna in y
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_NEAR(linalg::distance(r.position, start), 0.0, 1e-5);
}

TEST(TagLocator, ConveyorScanIsLowerDimension) {
  const Vec3 antenna{0.0, 0.8, 0.0};
  const auto scan = conveyor_scan(antenna, {-0.4, 0.0, 0.0}, 0.8, 0.0, 2);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_EQ(r.trajectory_rank, 1u);
}

TEST(TagLocator, NoisyConveyorSubCentimetre) {
  const Vec3 antenna{0.0, 0.8, 0.0};
  const Vec3 start{-0.3, 0.0, 0.0};
  const auto scan = conveyor_scan(antenna, start, 0.8, 0.05, 3);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kWeightedLeastSquares;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_LT(linalg::distance(r.position, start), 0.01);
}

TEST(TagLocator, WorksForDifferentStartOffsets) {
  const Vec3 antenna{0.0, 1.0, 0.0};
  for (double x0 : {-0.5, -0.2, 0.1}) {
    const Vec3 start{x0, 0.0, 0.0};
    const auto scan = conveyor_scan(antenna, start, 0.7, 0.0, 4);
    LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.side_hint = Vec3{0.0, 0.0, 0.0};
    const auto r = locate_tag_start(antenna, scan, cfg);
    EXPECT_NEAR(linalg::distance(r.position, start), 0.0, 1e-4)
        << "start x " << x0;
  }
}

TEST(TagLocator, ThreeDStartFromTwoDepthPasses) {
  // Two belt passes at different depths give a rank-2 virtual scan; the
  // start's height is recovered from d_r (the Fig. 13 3D setup).
  const Vec3 antenna{0.0, 0.8, 0.1};
  const Vec3 start{-0.3, 0.0, 0.0};
  rf::Rng rng(9);
  std::vector<TagScanPoint> scan;
  for (double dy : {0.0, -0.2}) {
    for (double s = 0.0; s <= 0.7 + 1e-12; s += 0.005) {
      TagScanPoint p;
      p.displacement = {s, dy, 0.0};
      p.phase = rf::distance_phase(
          linalg::distance(antenna, start + p.displacement));
      scan.push_back(p);
    }
  }
  LocalizerConfig cfg;
  cfg.target_dim = 3;
  cfg.side_hint = start;
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_EQ(r.trajectory_rank, 2u);
  EXPECT_LT(linalg::distance(r.position, start), 1e-3);
}

TEST(TagLocator, ReportsUncertainty) {
  const Vec3 antenna{0.0, 0.8, 0.0};
  const auto scan = conveyor_scan(antenna, {-0.3, 0.0, 0.0}, 0.8, 0.05, 11);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_GT(r.position_sigma, 0.0);
  EXPECT_LT(r.position_sigma, 0.05);
}

TEST(TagLocator, MirrorAmbiguityResolvedByHint) {
  // Without a hint the tag could equally be mirrored across the virtual
  // scan line; the hint must select the true side.
  const Vec3 antenna{0.0, 0.8, 0.0};
  const Vec3 start{-0.3, 0.2, 0.0};  // 60 cm from the antenna plane? no: y=0.2
  const auto scan = conveyor_scan(antenna, start, 0.7, 0.0, 5);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.0, 0.0};
  const auto r = locate_tag_start(antenna, scan, cfg);
  EXPECT_NEAR(linalg::distance(r.position, start), 0.0, 1e-4);
}

}  // namespace
}  // namespace lion::core
