#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

struct Rig {
  sim::Scenario scenario;
  Vec3 center;
  Vec3 start;
  std::vector<sim::PhaseSample> samples;
};

Rig make_rig(std::uint64_t seed, const Vec3& start = {-0.45, 0.0, 0.0}) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabClean)
                      .add_antenna({0.0, 0.8, 0.0})
                      .add_tag()
                      .seed(seed)
                      .build();
  const Vec3 center = scenario.antennas()[0].phase_center();
  auto samples = scenario.sweep(
      0, 0, sim::LinearTrajectory(start, start + Vec3{0.9, 0.0, 0.0}, 0.1));
  return {std::move(scenario), center, start, std::move(samples)};
}

TrackerConfig default_config(const Vec3& center, const Vec3& hint) {
  TrackerConfig cfg;
  cfg.antenna_phase_center = center;
  cfg.belt_direction = {1.0, 0.0, 0.0};
  cfg.belt_speed = 0.1;
  cfg.window = 600;
  cfg.hop = 200;
  cfg.localizer.target_dim = 2;
  cfg.localizer.side_hint = hint;
  return cfg;
}

TEST(Tracker, EmitsFixesAsWindowsComplete) {
  auto rig = make_rig(1);
  ConveyorTracker tracker(default_config(rig.center, rig.start));
  std::size_t emitted = 0;
  for (const auto& s : rig.samples) {
    if (tracker.push(s)) ++emitted;
  }
  // ~1080 samples, window 600, hop 200 -> first fix at 600 then every 200.
  EXPECT_GE(emitted, 2u);
  EXPECT_EQ(emitted, tracker.fixes().size());
}

TEST(Tracker, FixesAreAccurate) {
  auto rig = make_rig(2);
  ConveyorTracker tracker(default_config(rig.center, rig.start));
  const double stream_t0 = rig.samples.front().t;
  for (const auto& s : rig.samples) tracker.push(s);
  ASSERT_FALSE(tracker.fixes().empty());
  for (const auto& fix : tracker.fixes()) {
    ASSERT_TRUE(fix.valid);
    // Oracle: the tag's true position at the fix timestamp.
    const Vec3 truth =
        rig.start + 0.1 * (fix.t - stream_t0) * Vec3{1.0, 0.0, 0.0};
    const double err = std::hypot(fix.position[0] - truth[0],
                                  fix.position[1] - truth[1]);
    EXPECT_LT(err, 0.03) << "fix at t=" << fix.t;
  }
}

TEST(Tracker, ImpliedPositionAdvancesWithBelt) {
  auto rig = make_rig(3);
  ConveyorTracker tracker(default_config(rig.center, rig.start));
  for (const auto& s : rig.samples) tracker.push(s);
  ASSERT_GE(tracker.fixes().size(), 2u);
  const auto& first = tracker.fixes().front();
  // position = start + speed * (t - t0): the implied position must sit
  // ahead of the start along the belt by that travel.
  const double travel = first.position[0] - first.start[0];
  EXPECT_NEAR(travel, 0.1 * first.t - 0.1 * rig.samples.front().t, 0.02);
}

TEST(Tracker, ReportsUncertainty) {
  auto rig = make_rig(4);
  ConveyorTracker tracker(default_config(rig.center, rig.start));
  for (const auto& s : rig.samples) tracker.push(s);
  ASSERT_FALSE(tracker.fixes().empty());
  for (const auto& fix : tracker.fixes()) {
    EXPECT_GT(fix.sigma, 0.0);
    EXPECT_LT(fix.sigma, 0.1);
  }
}

TEST(Tracker, PendingCountsBufferedSamples) {
  auto rig = make_rig(5);
  auto cfg = default_config(rig.center, rig.start);
  ConveyorTracker tracker(cfg);
  for (std::size_t i = 0; i < 100; ++i) tracker.push(rig.samples[i]);
  EXPECT_EQ(tracker.pending(), 100u);
}

TEST(Tracker, InvalidWindowFlaggedNotThrown) {
  auto rig = make_rig(6);
  auto cfg = default_config(rig.center, rig.start);
  cfg.window = 20;  // far too little belt travel for the pairing interval
  cfg.hop = 20;
  ConveyorTracker tracker(cfg);
  for (const auto& s : rig.samples) tracker.push(s);
  ASSERT_FALSE(tracker.fixes().empty());
  for (const auto& fix : tracker.fixes()) {
    EXPECT_FALSE(fix.valid);
  }
}

TEST(Tracker, ValidatesConfig) {
  TrackerConfig cfg;
  cfg.belt_direction = {0.0, 0.0, 0.0};
  EXPECT_THROW(ConveyorTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.belt_speed = 0.0;
  EXPECT_THROW(ConveyorTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.window = 4;
  EXPECT_THROW(ConveyorTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.hop = 0;
  EXPECT_THROW(ConveyorTracker{cfg}, std::invalid_argument);
}

TEST(Tracker, NormalizesBeltDirection) {
  TrackerConfig cfg;
  cfg.belt_direction = {3.0, 0.0, 0.0};
  ConveyorTracker tracker(cfg);
  EXPECT_NEAR(tracker.config().belt_direction.norm(), 1.0, 1e-12);
}

TEST(Tracker, OverlappingWindowsTrackDifferentStarts) {
  // Two parcels at different slots produce different fixes.
  auto rig_a = make_rig(7, {-0.45, 0.0, 0.0});
  auto rig_b = make_rig(7, {-0.25, 0.0, 0.0});
  auto run = [&](Rig& rig) {
    ConveyorTracker tracker(default_config(rig.center, rig.start));
    for (const auto& s : rig.samples) tracker.push(s);
    return tracker.fixes().front().start;
  };
  const Vec3 fix_a = run(rig_a);
  const Vec3 fix_b = run(rig_b);
  EXPECT_NEAR(fix_b[0] - fix_a[0], 0.2, 0.03);
}

}  // namespace
}  // namespace lion::core
