#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

signal::PhaseProfile noisy_two_line_profile(const Vec3& target, double sigma,
                                            std::uint64_t seed) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (double y : {0.0, -0.2}) {
    for (double x = -0.6; x <= 0.6 + 1e-12; x += 0.005) {
      const Vec3 pos{x, y, 0.0};
      const double d = linalg::distance(pos, target);
      p.push_back({pos, rf::distance_phase(d) + rng.gaussian(sigma), 0.0});
    }
  }
  return p;
}

TEST(Adaptive, EvaluatesFullCandidateGrid) {
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = noisy_two_line_profile(target, 0.05, 1);
  AdaptiveConfig cfg;
  cfg.ranges = {0.6, 0.8, 1.0};
  cfg.intervals = {0.15, 0.25};
  cfg.base.target_dim = 2;
  const auto r = locate_adaptive(profile, cfg);
  EXPECT_EQ(r.candidates.size(), 6u);
}

TEST(Adaptive, SelectedSubsetNonEmptyAndSorted) {
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = noisy_two_line_profile(target, 0.08, 2);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  const auto r = locate_adaptive(profile, cfg);
  ASSERT_FALSE(r.selected.empty());
  for (std::size_t i = 1; i < r.selected.size(); ++i) {
    EXPECT_LE(std::abs(r.selected[i - 1].result.mean_residual),
              std::abs(r.selected[i].result.mean_residual));
  }
}

TEST(Adaptive, EstimateIsAccurateUnderNoise) {
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = noisy_two_line_profile(target, 0.1, 3);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  const auto r = locate_adaptive(profile, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.03);
}

TEST(Adaptive, BestCandidateHasSmallestAbsMeanResidual) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.08, 4);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  const auto r = locate_adaptive(profile, cfg);
  double best = std::abs(r.selected.front().result.mean_residual);
  for (const auto& c : r.candidates) {
    if (c.usable) {
      EXPECT_GE(std::abs(c.result.mean_residual), best - 1e-15);
    }
  }
  EXPECT_EQ(r.best_range, r.selected.front().range);
  EXPECT_EQ(r.best_interval, r.selected.front().interval);
}

TEST(Adaptive, KeepFractionOneAveragesAllUsable) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 5);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  cfg.keep_fraction = 1.0;
  const auto r = locate_adaptive(profile, cfg);
  std::size_t usable = 0;
  for (const auto& c : r.candidates) usable += c.usable ? 1 : 0;
  EXPECT_EQ(r.selected.size(), usable);
}

TEST(Adaptive, UnusableCombinationsAreMarkedNotFatal) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 6);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  cfg.ranges = {0.05, 0.8};      // 5 cm window: too small for the intervals
  cfg.intervals = {0.25};
  const auto r = locate_adaptive(profile, cfg);
  bool any_unusable = false;
  bool any_usable = false;
  for (const auto& c : r.candidates) {
    any_unusable = any_unusable || !c.usable;
    any_usable = any_usable || c.usable;
  }
  EXPECT_TRUE(any_unusable);
  EXPECT_TRUE(any_usable);
}

TEST(Adaptive, ThrowsWhenNothingSolvable) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 7);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  cfg.ranges = {0.01};      // nothing fits
  cfg.intervals = {0.5};
  EXPECT_THROW(locate_adaptive(profile, cfg), std::invalid_argument);
}

TEST(Adaptive, ThrowsOnEmptyCandidateLists) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 8);
  AdaptiveConfig cfg;
  cfg.ranges = {};
  EXPECT_THROW(locate_adaptive(profile, cfg), std::invalid_argument);
}

TEST(Adaptive, RejectsIllConditionedWindows) {
  // A window whose pairs barely span one axis solves but with a huge
  // condition estimate; max_condition must keep it out of the average.
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 21);
  AdaptiveConfig strict;
  strict.base.target_dim = 2;
  strict.max_condition = 1.0;  // nothing passes
  EXPECT_THROW(locate_adaptive(profile, strict), std::invalid_argument);

  AdaptiveConfig lax;
  lax.base.target_dim = 2;
  lax.max_condition = 1e12;
  EXPECT_NO_THROW(locate_adaptive(profile, lax));
}

TEST(Adaptive, MinEquationsGuardsOverfit) {
  const auto profile = noisy_two_line_profile({0.0, 0.8, 0.0}, 0.05, 22);
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  cfg.min_equations = 100000;  // no candidate can reach this
  EXPECT_THROW(locate_adaptive(profile, cfg), std::invalid_argument);
}

TEST(Adaptive, RangeCenterShiftsWindow) {
  // Profile spanning 0..1.2 m: centering at 0.6 keeps data, centering at
  // -5 m discards everything.
  rf::Rng rng(9);
  signal::PhaseProfile p;
  const Vec3 target{0.6, 0.8, 0.0};
  for (double y : {0.0, -0.2}) {
    for (double x = 0.0; x <= 1.2; x += 0.005) {
      const Vec3 pos{x, y, 0.0};
      p.push_back({pos, rf::distance_phase(linalg::distance(pos, target)) +
                            rng.gaussian(0.05),
                   0.0});
    }
  }
  AdaptiveConfig cfg;
  cfg.base.target_dim = 2;
  cfg.range_center_x = 0.6;
  const auto r = locate_adaptive(p, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.03);

  cfg.range_center_x = -5.0;
  EXPECT_THROW(locate_adaptive(p, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace lion::core
