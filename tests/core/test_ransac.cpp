// Consensus-solver tests: recovery under block contamination that defeats
// reweighting from a poisoned start, plus the fallback behaviour on
// degenerate or tiny systems.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ransac.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "rf/rng.hpp"

namespace lion {
namespace {

// y = 2x - 3 with mild noise, plus a coherent block of wrong equations.
struct Problem {
  linalg::Matrix a;
  std::vector<double> b;
};

Problem line_problem(std::size_t n, double outlier_fraction,
                     std::uint64_t seed) {
  rf::Rng rng(seed);
  Problem p{linalg::Matrix(n, 2), std::vector<double>(n)};
  const std::size_t bad = static_cast<std::size_t>(
      outlier_fraction * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 0.1 * static_cast<double>(i);
    p.a(i, 0) = x;
    p.a(i, 1) = 1.0;
    p.b[i] = 2.0 * x - 3.0 + rng.gaussian(0.01);
    // A coherent block (not scattered): all shifted the same way, the
    // regime that drags an OLS-seeded IRLS into the wrong basin.
    if (i < bad) p.b[i] += 5.0;
  }
  return p;
}

TEST(Ransac, RecoversUnderThirtyPercentCoherentOutliers) {
  const auto p = line_problem(100, 0.3, 1);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_TRUE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 0.05);
  EXPECT_NEAR(r.solution.x[1], -3.0, 0.05);
  EXPECT_GT(r.inlier_fraction, 0.6);
  EXPECT_LT(r.inlier_fraction, 0.8);
  // The contaminated block is excluded from the consensus set.
  std::size_t bad_kept = 0;
  for (std::size_t i = 0; i < 30; ++i) bad_kept += r.inlier_mask[i] ? 1 : 0;
  EXPECT_EQ(bad_kept, 0u);
}

TEST(Ransac, CleanSystemKeepsEveryRow) {
  const auto p = line_problem(80, 0.0, 2);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_TRUE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 0.01);
  EXPECT_GT(r.inlier_fraction, 0.9);
}

TEST(Ransac, TinySystemFallsBackToRobustIrls) {
  // Four rows, two unknowns: below the sampling floor.
  linalg::Matrix a(4, 2);
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 1.0;
    b[i] = 2.0 * static_cast<double>(i) + 1.0;
  }
  const auto r = core::ransac_solve(a, b);
  EXPECT_FALSE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.solution.x[1], 1.0, 1e-9);
  EXPECT_EQ(r.inlier_fraction, 1.0);
}

TEST(Ransac, UnderdeterminedThrows) {
  linalg::Matrix a(1, 2);
  EXPECT_THROW(core::ransac_solve(a, {1.0}), std::invalid_argument);
  linalg::Matrix a2(3, 2);
  EXPECT_THROW(core::ransac_solve(a2, {1.0}), std::invalid_argument);
}

TEST(Ransac, MajorityContaminationDoesNotCrash) {
  // 60% outliers exceeds the LMedS breakdown point; demand only a finite,
  // consensus-or-fallback answer, never a throw.
  const auto p = line_problem(100, 0.6, 3);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_EQ(r.solution.x.size(), 2u);
  EXPECT_TRUE(std::isfinite(r.solution.x[0]));
  EXPECT_TRUE(std::isfinite(r.solution.x[1]));
}

TEST(Ransac, DeterministicForFixedSeed) {
  const auto p = line_problem(100, 0.25, 4);
  core::RansacOptions opts;
  opts.seed = 99;
  const auto r1 = core::ransac_solve(p.a, p.b, opts);
  const auto r2 = core::ransac_solve(p.a, p.b, opts);
  ASSERT_EQ(r1.solution.x.size(), r2.solution.x.size());
  EXPECT_EQ(r1.solution.x[0], r2.solution.x[0]);
  EXPECT_EQ(r1.solution.x[1], r2.solution.x[1]);
  EXPECT_EQ(r1.inlier_fraction, r2.inlier_fraction);
}

TEST(Ransac, WorkspacePathBitIdenticalToDefaultPath) {
  linalg::SolverWorkspace ws;
  // Reuse the workspace across several unrelated systems: reuse must not
  // leak state between solves.
  for (std::uint64_t seed : {5, 6, 7}) {
    const auto p = line_problem(100, 0.3, seed);
    const auto ref = core::ransac_solve(p.a, p.b);
    const auto got = core::ransac_solve(p.a, p.b, {}, ws);
    ASSERT_TRUE(got.consensus);
    EXPECT_EQ(got.solution.x, ref.solution.x);
    EXPECT_EQ(got.solution.residuals, ref.solution.residuals);
    EXPECT_EQ(got.solution.weights, ref.solution.weights);
    EXPECT_EQ(got.solution.mean_residual, ref.solution.mean_residual);
    EXPECT_EQ(got.solution.rms_residual, ref.solution.rms_residual);
    EXPECT_EQ(got.solution.iterations, ref.solution.iterations);
    EXPECT_EQ(got.inlier_mask, ref.inlier_mask);
    EXPECT_EQ(got.inlier_fraction, ref.inlier_fraction);
    EXPECT_EQ(got.iterations, ref.iterations);
    EXPECT_EQ(got.consensus, ref.consensus);

    // The caller-owned-result overload matches too.
    core::RansacResult out;
    core::ransac_solve(p.a, p.b, {}, ws, out);
    EXPECT_EQ(out.solution.x, ref.solution.x);
    EXPECT_EQ(out.inlier_mask, ref.inlier_mask);
  }
}

TEST(Ransac, DegenerateSubsetsAreCountedNotThrown) {
  // 15 of 20 rows are copies of one row: a minimal subset drawn from the
  // duplicated block is rank deficient. The sampling loop must classify
  // and count those draws (ransac.degenerate_subsets) instead of burning
  // an exception per draw, and still produce a finite answer.
  const std::size_t n = 20;
  linalg::Matrix a(n, 2);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 15) {
      a(i, 0) = 1.0;
      a(i, 1) = 1.0;
      b[i] = -1.0;
    } else {
      const double x = static_cast<double>(i);
      a(i, 0) = x;
      a(i, 1) = 1.0;
      b[i] = 2.0 * x - 3.0;
    }
  }

  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  const auto r = core::ransac_solve(a, b);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);

  ASSERT_EQ(r.solution.x.size(), 2u);
  EXPECT_TRUE(std::isfinite(r.solution.x[0]));
  EXPECT_TRUE(std::isfinite(r.solution.x[1]));

  std::uint64_t degenerate = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "ransac.degenerate_subsets") degenerate = value;
  }
  // P(all-duplicate 3-row subset) ~ 0.34 per iteration; over 64 seeded
  // iterations at least one degenerate draw is certain in practice.
  EXPECT_GT(degenerate, 0u);
}

}  // namespace
}  // namespace lion
