// Consensus-solver tests: recovery under block contamination that defeats
// reweighting from a poisoned start, plus the fallback behaviour on
// degenerate or tiny systems.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ransac.hpp"
#include "linalg/matrix.hpp"
#include "rf/rng.hpp"

namespace lion {
namespace {

// y = 2x - 3 with mild noise, plus a coherent block of wrong equations.
struct Problem {
  linalg::Matrix a;
  std::vector<double> b;
};

Problem line_problem(std::size_t n, double outlier_fraction,
                     std::uint64_t seed) {
  rf::Rng rng(seed);
  Problem p{linalg::Matrix(n, 2), std::vector<double>(n)};
  const std::size_t bad = static_cast<std::size_t>(
      outlier_fraction * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 0.1 * static_cast<double>(i);
    p.a(i, 0) = x;
    p.a(i, 1) = 1.0;
    p.b[i] = 2.0 * x - 3.0 + rng.gaussian(0.01);
    // A coherent block (not scattered): all shifted the same way, the
    // regime that drags an OLS-seeded IRLS into the wrong basin.
    if (i < bad) p.b[i] += 5.0;
  }
  return p;
}

TEST(Ransac, RecoversUnderThirtyPercentCoherentOutliers) {
  const auto p = line_problem(100, 0.3, 1);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_TRUE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 0.05);
  EXPECT_NEAR(r.solution.x[1], -3.0, 0.05);
  EXPECT_GT(r.inlier_fraction, 0.6);
  EXPECT_LT(r.inlier_fraction, 0.8);
  // The contaminated block is excluded from the consensus set.
  std::size_t bad_kept = 0;
  for (std::size_t i = 0; i < 30; ++i) bad_kept += r.inlier_mask[i] ? 1 : 0;
  EXPECT_EQ(bad_kept, 0u);
}

TEST(Ransac, CleanSystemKeepsEveryRow) {
  const auto p = line_problem(80, 0.0, 2);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_TRUE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 0.01);
  EXPECT_GT(r.inlier_fraction, 0.9);
}

TEST(Ransac, TinySystemFallsBackToRobustIrls) {
  // Four rows, two unknowns: below the sampling floor.
  linalg::Matrix a(4, 2);
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 1.0;
    b[i] = 2.0 * static_cast<double>(i) + 1.0;
  }
  const auto r = core::ransac_solve(a, b);
  EXPECT_FALSE(r.consensus);
  EXPECT_NEAR(r.solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.solution.x[1], 1.0, 1e-9);
  EXPECT_EQ(r.inlier_fraction, 1.0);
}

TEST(Ransac, UnderdeterminedThrows) {
  linalg::Matrix a(1, 2);
  EXPECT_THROW(core::ransac_solve(a, {1.0}), std::invalid_argument);
  linalg::Matrix a2(3, 2);
  EXPECT_THROW(core::ransac_solve(a2, {1.0}), std::invalid_argument);
}

TEST(Ransac, MajorityContaminationDoesNotCrash) {
  // 60% outliers exceeds the LMedS breakdown point; demand only a finite,
  // consensus-or-fallback answer, never a throw.
  const auto p = line_problem(100, 0.6, 3);
  const auto r = core::ransac_solve(p.a, p.b);
  ASSERT_EQ(r.solution.x.size(), 2u);
  EXPECT_TRUE(std::isfinite(r.solution.x[0]));
  EXPECT_TRUE(std::isfinite(r.solution.x[1]));
}

TEST(Ransac, DeterministicForFixedSeed) {
  const auto p = line_problem(100, 0.25, 4);
  core::RansacOptions opts;
  opts.seed = 99;
  const auto r1 = core::ransac_solve(p.a, p.b, opts);
  const auto r2 = core::ransac_solve(p.a, p.b, opts);
  ASSERT_EQ(r1.solution.x.size(), r2.solution.x.size());
  EXPECT_EQ(r1.solution.x[0], r2.solution.x[0]);
  EXPECT_EQ(r1.solution.x[1], r2.solution.x[1]);
  EXPECT_EQ(r1.inlier_fraction, r2.inlier_fraction);
}

}  // namespace
}  // namespace lion
