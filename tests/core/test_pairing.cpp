#include "core/pairing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lion::core {
namespace {

using linalg::Vec3;

// Evenly spaced points along x, 1 cm apart.
signal::PhaseProfile x_line(std::size_t n, double spacing = 0.01) {
  signal::PhaseProfile p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back({{spacing * static_cast<double>(i), 0.0, 0.0}, 0.0, 0.0});
  }
  return p;
}

TEST(IntervalPairs, PairsAreRequestedDistanceApart) {
  const auto profile = x_line(101);  // 0..1 m
  const auto pairs = interval_pairs(profile, 0.2);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [i, j] : pairs) {
    const double d =
        linalg::distance(profile[i].position, profile[j].position);
    EXPECT_NEAR(d, 0.2, 0.011);
  }
}

TEST(IntervalPairs, CountMatchesGeometry) {
  const auto profile = x_line(101);
  // Interval 0.2 m on a 1 m scan with stride 1: anchors 0..80 cm -> 81.
  const auto pairs = interval_pairs(profile, 0.2);
  EXPECT_EQ(pairs.size(), 81u);
}

TEST(IntervalPairs, StrideSubsamples) {
  const auto profile = x_line(101);
  const auto dense = interval_pairs(profile, 0.2, 0.02, 1);
  const auto sparse = interval_pairs(profile, 0.2, 0.02, 10);
  EXPECT_GT(dense.size(), 5 * sparse.size());
}

TEST(IntervalPairs, TooLargeIntervalYieldsNothing) {
  const auto profile = x_line(11);  // 10 cm scan
  EXPECT_TRUE(interval_pairs(profile, 0.5).empty());
}

TEST(IntervalPairs, RejectsNonPositiveInterval) {
  const auto profile = x_line(10);
  EXPECT_THROW(interval_pairs(profile, 0.0), std::invalid_argument);
  EXPECT_THROW(interval_pairs(profile, -0.1), std::invalid_argument);
}

TEST(IntervalPairs, SkipsAcrossStreamGaps) {
  // A big hole in the stream: anchors just before the hole would need a
  // partner deep inside it; the tolerance must reject the overshoot.
  signal::PhaseProfile profile;
  for (int i = 0; i <= 20; ++i) {
    profile.push_back({{0.01 * i, 0.0, 0.0}, 0.0, 0.0});
  }
  for (int i = 0; i <= 20; ++i) {
    profile.push_back({{0.8 + 0.01 * i, 0.0, 0.0}, 0.0, 0.0});
  }
  const auto pairs = interval_pairs(profile, 0.1, 0.02);
  for (const auto& [i, j] : pairs) {
    const double d =
        linalg::distance(profile[i].position, profile[j].position);
    EXPECT_LT(d, 0.13);
  }
}

TEST(LadderPairs, RungsAreGeometric) {
  const auto profile = x_line(201);  // 0..2 m
  const auto pairs = ladder_pairs(profile, 0.1, 0.02, 50);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [i, j] : pairs) {
    const double d =
        linalg::distance(profile[i].position, profile[j].position);
    // Every rung is ~0.1 * 2^k for some k >= 0.
    const double k = std::log2(d / 0.1);
    EXPECT_NEAR(k, std::round(k), 0.3) << "distance " << d;
  }
}

TEST(LadderPairs, ReachesAcrossSegmentGaps) {
  // Two parallel lines recorded back to back: ladder pairs must include
  // cross-line pairs so the perpendicular coordinate stays observable.
  signal::PhaseProfile profile;
  for (int i = 0; i <= 100; ++i) {
    profile.push_back({{0.01 * i, 0.0, 0.0}, 0.0, 0.0});
  }
  for (int i = 0; i <= 100; ++i) {
    profile.push_back({{0.01 * i, -0.2, 0.0}, 0.0, 0.0});
  }
  const auto pairs = ladder_pairs(profile, 0.2, 0.05);
  bool any_cross = false;
  for (const auto& [i, j] : pairs) {
    if (std::abs(profile[i].position[1] - profile[j].position[1]) > 0.1) {
      any_cross = true;
    }
  }
  EXPECT_TRUE(any_cross);
}

TEST(LadderPairs, MoreThanIntervalPairsAlone) {
  const auto profile = x_line(201);
  EXPECT_GT(ladder_pairs(profile, 0.2, 0.02).size(),
            interval_pairs(profile, 0.2, 0.02).size());
}

TEST(LadderPairs, RejectsNonPositiveInterval) {
  EXPECT_THROW(ladder_pairs(x_line(10), 0.0), std::invalid_argument);
}

TEST(LadderPairs, EmptyProfileGivesNoPairs) {
  EXPECT_TRUE(ladder_pairs({}, 0.1).empty());
}

TEST(SpreadPairs, AllPairsRespectMinSeparation) {
  const auto profile = x_line(51);
  const auto pairs = spread_pairs(profile, 0.3);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [i, j] : pairs) {
    EXPECT_GE(linalg::distance(profile[i].position, profile[j].position),
              0.3 - 1e-12);
  }
}

TEST(SpreadPairs, CapRespected) {
  const auto profile = x_line(101);
  const auto pairs = spread_pairs(profile, 0.05, 17);
  EXPECT_EQ(pairs.size(), 17u);
}

TEST(SpreadPairs, ZeroSeparationGivesAllPairs) {
  const auto profile = x_line(5);
  const auto pairs = spread_pairs(profile, 1e-9, 1000);
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2)
}

TEST(ThreeLinePairs, GeneratesAllThreeKinds) {
  sim::ThreeLineRig rig;
  rig.x_min = -0.4;
  rig.x_max = 0.4;
  // Build a dense profile on the rig lines (no transits for simplicity).
  signal::PhaseProfile profile;
  for (int line = 0; line < 3; ++line) {
    for (double x = rig.x_min; x <= rig.x_max + 1e-9; x += 0.005) {
      profile.push_back({rig.point_on_line(line, x), 0.0, 0.0});
    }
  }
  const auto pairs = three_line_pairs(profile, rig, 0.2);
  ASSERT_FALSE(pairs.empty());
  int along = 0;
  int cross_y = 0;
  int cross_z = 0;
  for (const auto& [i, j] : pairs) {
    const Vec3 diff = profile[j].position - profile[i].position;
    if (std::abs(diff[0]) > 0.1) {
      ++along;
    } else if (std::abs(diff[1]) > 0.1) {
      ++cross_y;
    } else if (std::abs(diff[2]) > 0.1) {
      ++cross_z;
    }
  }
  EXPECT_GT(along, 0);
  EXPECT_GT(cross_y, 0);
  EXPECT_GT(cross_z, 0);
}

TEST(ThreeLinePairs, EmptyWhenProfileOffRig) {
  sim::ThreeLineRig rig;
  signal::PhaseProfile profile;
  for (int i = 0; i < 20; ++i) {
    profile.push_back({{0.01 * i, 5.0, 5.0}, 0.0, 0.0});  // far from rig
  }
  EXPECT_TRUE(three_line_pairs(profile, rig, 0.2).empty());
}

TEST(ThreeLinePairs, RejectsNonPositiveInterval) {
  sim::ThreeLineRig rig;
  EXPECT_THROW(three_line_pairs(x_line(10), rig, 0.0), std::invalid_argument);
}

TEST(RestrictToXRange, KeepsOnlyWindow) {
  // Power-of-two spacing keeps the boundary arithmetic exact.
  const auto profile = x_line(65, 0.015625);  // 0..1 m in 1/64 steps
  const auto windowed = restrict_to_x_range(profile, 0.5, 0.5);
  ASSERT_FALSE(windowed.empty());
  for (const auto& p : windowed) {
    EXPECT_GE(p.position[0], 0.25);
    EXPECT_LE(p.position[0], 0.75);
  }
  // x in [0.25, 0.75] -> i in [16, 48] -> 33 points.
  EXPECT_EQ(windowed.size(), 33u);
}

TEST(RestrictToXRange, EmptyWindowWhenOutside) {
  const auto profile = x_line(11);
  EXPECT_TRUE(restrict_to_x_range(profile, 5.0, 0.2).empty());
}

TEST(RestrictToXRange, RejectsNonPositiveRange) {
  EXPECT_THROW(restrict_to_x_range(x_line(5), 0.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace lion::core
