// Robust calibration-path tests: the no-throw entry point must map every
// stream — clean, faulted, degenerate, empty — to a meaningful status,
// and keep accuracy under contamination that breaks the plain solvers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/lion.hpp"
#include "rf/rng.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using linalg::Vec3;

constexpr Vec3 kPhysical{0.0, 0.8, 0.0};

sim::Scenario make_scenario(std::uint64_t seed,
                            sim::EnvironmentKind env =
                                sim::EnvironmentKind::kLabClean) {
  return sim::Scenario::Builder{}
      .environment(env)
      .add_antenna(kPhysical)
      .add_tag()
      .seed(seed)
      .build();
}

std::vector<sim::PhaseSample> rig_sweep(sim::Scenario& scenario) {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  return scenario.sweep(0, 0, rig.build());
}

TEST(RobustCalibration, CleanStreamIsOkAndAccurate) {
  auto scenario = make_scenario(1);
  const auto report =
      core::calibrate_antenna_robust(rig_sweep(scenario), kPhysical);
  ASSERT_EQ(report.status, core::CalibrationStatus::kOk);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(linalg::distance(report.center.estimated_center,
                             scenario.antennas()[0].phase_center()),
            0.02);
  EXPECT_TRUE(report.diagnostics.sanitize.clean());
  EXPECT_GT(report.diagnostics.inlier_fraction, 0.5);
  EXPECT_GT(report.diagnostics.condition, 0.0);
}

TEST(RobustCalibration, EmptyStreamReportsNoSamples) {
  const auto report = core::calibrate_antenna_robust({}, kPhysical);
  EXPECT_EQ(report.status, core::CalibrationStatus::kNoSamples);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.diagnostics.message.empty());
}

TEST(RobustCalibration, AllNanStreamReportsNoSamples) {
  std::vector<sim::PhaseSample> stream(300);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].t = static_cast<double>(i);
    stream[i].phase = std::numeric_limits<double>::quiet_NaN();
  }
  const auto report = core::calibrate_antenna_robust(stream, kPhysical);
  EXPECT_EQ(report.status, core::CalibrationStatus::kNoSamples);
  EXPECT_EQ(report.diagnostics.sanitize.dropped_nonfinite, 300u);
}

TEST(RobustCalibration, StationaryScanReportsDegenerateGeometry) {
  std::vector<sim::PhaseSample> stream(100);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].t = 0.01 * static_cast<double>(i);
    stream[i].position = {0.1, 0.2, 0.0};
    stream[i].phase = 1.0;
  }
  const auto report = core::calibrate_antenna_robust(stream, kPhysical);
  EXPECT_EQ(report.status, core::CalibrationStatus::kDegenerateGeometry);
  EXPECT_FALSE(report.ok());
}

TEST(RobustCalibration, CollinearScanFallsBackTo2D) {
  // A single straight line cannot give a 3D fix; the robust path must
  // degrade to the planar solve instead of throwing.
  auto scenario = make_scenario(2);
  const auto samples = scenario.sweep(
      0, 0, sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1));
  const auto report = core::calibrate_antenna_robust(samples, kPhysical);
  ASSERT_EQ(report.status, core::CalibrationStatus::kDegraded2D);
  ASSERT_TRUE(report.ok());
  // z pinned to the believed physical height.
  EXPECT_EQ(report.center.estimated_center[2], kPhysical[2]);
  // The in-plane coordinates are still localized decently.
  const Vec3 truth = scenario.antennas()[0].phase_center();
  const double planar = std::hypot(report.center.estimated_center[0] - truth[0],
                                   report.center.estimated_center[1] - truth[1]);
  EXPECT_LT(planar, 0.05);
  EXPECT_FALSE(report.diagnostics.message.empty());
}

TEST(RobustCalibration, NearCollinearScanDoesNotReturnWild3DAnswer) {
  // Three "lines" squeezed to sub-millimetre separation: technically rank
  // 2-3, but the cross-line geometry is hopeless. Whatever path is taken,
  // the answer must be reported (possibly degraded) and finite.
  auto scenario = make_scenario(3);
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  rig.y0 = 0.0005;
  rig.z0 = 0.0005;
  const auto samples = scenario.sweep(0, 0, rig.build());
  const auto report = core::calibrate_antenna_robust(samples, kPhysical);
  if (report.ok()) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(std::isfinite(report.center.estimated_center[i]));
    }
    // The degeneracy gate must have kept the accepted system sane.
    EXPECT_LE(report.diagnostics.condition, 1e5 + 1.0);
  } else {
    EXPECT_NE(report.status, core::CalibrationStatus::kOk);
  }
}

TEST(RobustCalibration, SurvivesEveryFaultKindAtFullSeverity) {
  auto scenario = make_scenario(4, sim::EnvironmentKind::kLabTypical);
  const auto base = rig_sweep(scenario);
  for (const auto kind : sim::all_fault_kinds()) {
    rf::Rng rng(17);
    const auto faulted = sim::inject_fault(base, {kind, 1.0}, rng);
    const auto report = core::calibrate_antenna_robust(faulted, kPhysical);
    // Status must be a meaningful classification — never an exception.
    switch (report.status) {
      case core::CalibrationStatus::kOk:
      case core::CalibrationStatus::kDegraded2D:
        for (std::size_t i = 0; i < 3; ++i) {
          EXPECT_TRUE(std::isfinite(report.center.estimated_center[i]))
              << sim::fault_kind_name(kind);
        }
        break;
      case core::CalibrationStatus::kNoSamples:
      case core::CalibrationStatus::kDegenerateGeometry:
      case core::CalibrationStatus::kSolverFailure:
        EXPECT_FALSE(report.ok());
        break;
    }
  }
}

TEST(RobustCalibration, MultipathBurstsBarelyMoveTheRobustEstimate) {
  auto scenario = make_scenario(5, sim::EnvironmentKind::kLabTypical);
  const auto base = rig_sweep(scenario);
  const auto clean_report = core::calibrate_antenna_robust(base, kPhysical);
  ASSERT_TRUE(clean_report.ok());
  rf::Rng rng(23);
  const auto faulted =
      sim::inject_fault(base, {sim::FaultKind::kMultipathSpike, 0.1}, rng);
  const auto report = core::calibrate_antenna_robust(faulted, kPhysical);
  ASSERT_TRUE(report.ok());
  const Vec3 truth = scenario.antennas()[0].phase_center();
  const double clean_err =
      linalg::distance(clean_report.center.estimated_center, truth);
  const double faulted_err =
      linalg::distance(report.center.estimated_center, truth);
  // Within 2x of the clean error, with slack for an already-tiny baseline.
  EXPECT_LT(faulted_err, std::max(2.0 * clean_err, 0.02));
}

TEST(RobustCalibration, PhaseOffsetStillComputedOnDegradedPath) {
  auto scenario = make_scenario(6);
  const auto samples = scenario.sweep(
      0, 0, sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1));
  const auto report = core::calibrate_antenna_robust(samples, kPhysical);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.phase_offset, 0.0);
  EXPECT_LT(report.phase_offset, rf::kTwoPi);
}

}  // namespace
}  // namespace lion
