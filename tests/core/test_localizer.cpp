#include "core/localizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

signal::PhaseProfile synthetic(const std::vector<Vec3>& positions,
                               const Vec3& target, double noise_sigma = 0.0,
                               std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.777 + rng.gaussian(noise_sigma), 0.0});
  }
  return p;
}

std::vector<Vec3> dense_line(double x0, double x1, double y, double z,
                             double step = 0.005) {
  std::vector<Vec3> ps;
  for (double x = x0; x <= x1 + 1e-12; x += step) ps.push_back({x, y, z});
  return ps;
}

std::vector<Vec3> two_lines_2d() {
  auto ps = dense_line(-0.5, 0.5, 0.0, 0.0);
  const auto second = dense_line(-0.5, 0.5, -0.2, 0.0);
  ps.insert(ps.end(), second.begin(), second.end());
  return ps;
}

TEST(Localizer, FullRank2DNoiselessIsExact) {
  const Vec3 target{0.2, 0.9, 0.0};
  const auto profile = synthetic(two_lines_2d(), target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kLeastSquares;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-6);
  EXPECT_EQ(r.trajectory_rank, 2u);
  EXPECT_FALSE(r.perpendicular_recovered);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-9);
}

TEST(Localizer, ReferenceDistanceMatchesGeometry) {
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = synthetic(two_lines_2d(), target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.reference_index = 0;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_NEAR(r.reference_distance,
              linalg::distance(target, profile[0].position), 1e-6);
}

TEST(Localizer, LowerDimension2DLinearTrajectory) {
  // The paper's Fig. 9 setup: tag on the x-axis, antenna at (0.2, 1).
  const Vec3 target{0.2, 1.0, 0.0};
  const auto profile = synthetic(dense_line(-0.3, 0.3, 0.0, 0.0), target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, 0.5, 0.0};
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_EQ(r.trajectory_rank, 1u);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-5);
}

TEST(Localizer, SideHintPicksCorrectHalfPlane) {
  const Vec3 target{0.2, -1.0, 0.0};  // below the scan line
  const auto profile = synthetic(dense_line(-0.3, 0.3, 0.0, 0.0), target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.side_hint = Vec3{0.0, -0.5, 0.0};
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-5);
}

TEST(Localizer, WithoutHintReturnsOneOfTheMirrorSolutions) {
  const Vec3 target{0.1, 0.9, 0.0};
  const Vec3 mirror{0.1, -0.9, 0.0};
  const auto profile = synthetic(dense_line(-0.3, 0.3, 0.0, 0.0), target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto r = LinearLocalizer(cfg).locate(profile);
  const double err_t = linalg::distance(r.position, target);
  const double err_m = linalg::distance(r.position, mirror);
  EXPECT_LT(std::min(err_t, err_m), 1e-5);
}

TEST(Localizer, ThreeDFullRankThreeLines) {
  std::vector<Vec3> ps = dense_line(-0.5, 0.5, 0.0, 0.0);
  const auto l2 = dense_line(-0.5, 0.5, 0.0, 0.2);
  const auto l3 = dense_line(-0.5, 0.5, -0.2, 0.0);
  ps.insert(ps.end(), l2.begin(), l2.end());
  ps.insert(ps.end(), l3.begin(), l3.end());
  const Vec3 target{0.05, 0.8, 0.1};
  const auto profile = synthetic(ps, target);
  LocalizerConfig cfg;
  cfg.target_dim = 3;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_EQ(r.trajectory_rank, 3u);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-4);
}

TEST(Localizer, ThreeDPlanarTrajectoryRecoversZ) {
  // Two lines in the z=0 plane; target above the plane.
  const Vec3 target{0.0, 0.8, 0.25};
  const auto profile = synthetic(two_lines_2d(), target);
  LocalizerConfig cfg;
  cfg.target_dim = 3;
  cfg.side_hint = Vec3{0.0, 0.0, 1.0};
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_TRUE(r.perpendicular_recovered);
  EXPECT_EQ(r.trajectory_rank, 2u);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-4);
}

TEST(Localizer, SingleLineCannotGive3DFix) {
  const auto profile =
      synthetic(dense_line(-0.5, 0.5, 0.0, 0.0), {0.0, 1.0, 0.0});
  LocalizerConfig cfg;
  cfg.target_dim = 3;
  EXPECT_THROW(LinearLocalizer(cfg).locate(profile), std::invalid_argument);
}

TEST(Localizer, NoisyDataStillAccurate) {
  // The paper's simulation default: N(0, 0.1) phase noise.
  const Vec3 target{0.0, 1.0, 0.0};
  const auto profile = synthetic(two_lines_2d(), target, 0.1, 77);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kWeightedLeastSquares;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_LT(linalg::distance(r.position, target), 0.03);
}

TEST(Localizer, WlsIterationCountReported) {
  const auto profile = synthetic(two_lines_2d(), {0.0, 0.8, 0.0}, 0.05);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kWeightedLeastSquares;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_EQ(r.solver_iterations, 1u);
}

TEST(Localizer, IrlsRunsMultipleIterations) {
  const auto profile = synthetic(two_lines_2d(), {0.0, 0.8, 0.0}, 0.1, 5);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.method = SolveMethod::kIterativeReweighted;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_GE(r.solver_iterations, 1u);
}

TEST(Localizer, EquationsCountReported) {
  const auto profile = synthetic(two_lines_2d(), {0.0, 0.8, 0.0});
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_GT(r.equations, 10u);
}

TEST(Localizer, CustomPairsPath) {
  const auto profile = synthetic(two_lines_2d(), {0.1, 0.7, 0.0});
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto pairs = spread_pairs(profile, 0.2, 300);
  const auto r = LinearLocalizer(cfg).locate_with_pairs(profile, pairs);
  EXPECT_NEAR(linalg::distance(r.position, {0.1, 0.7, 0.0}), 0.0, 1e-5);
}

TEST(Localizer, ValidatesConfig) {
  LocalizerConfig bad_dim;
  bad_dim.target_dim = 4;
  EXPECT_THROW(LinearLocalizer{bad_dim}, std::invalid_argument);
  LocalizerConfig bad_wl;
  bad_wl.wavelength = 0.0;
  EXPECT_THROW(LinearLocalizer{bad_wl}, std::invalid_argument);
  LocalizerConfig bad_int;
  bad_int.pair_interval = -1.0;
  EXPECT_THROW(LinearLocalizer{bad_int}, std::invalid_argument);
}

TEST(Localizer, ThrowsOnTinyProfile) {
  LocalizerConfig cfg;
  signal::PhaseProfile tiny{{{0.0, 0.0, 0.0}, 0.0, 0.0},
                            {{0.1, 0.0, 0.0}, 0.1, 0.0}};
  EXPECT_THROW(LinearLocalizer(cfg).locate(tiny), std::invalid_argument);
}

TEST(Localizer, ThrowsWhenNoPairsFit) {
  const auto profile = synthetic(dense_line(-0.05, 0.05, 0.0, 0.0),
                                 {0.0, 1.0, 0.0});
  LocalizerConfig cfg;
  cfg.pair_interval = 0.5;  // longer than the whole scan
  EXPECT_THROW(LinearLocalizer(cfg).locate(profile), std::invalid_argument);
}

TEST(Localizer, SolveMethodNames) {
  EXPECT_EQ(std::string(solve_method_name(SolveMethod::kLeastSquares)), "LS");
  EXPECT_EQ(std::string(solve_method_name(SolveMethod::kWeightedLeastSquares)),
            "WLS");
  EXPECT_EQ(std::string(solve_method_name(SolveMethod::kIterativeReweighted)),
            "IRLS");
}

TEST(Localizer, SigmaNearZeroOnNoiselessData) {
  const auto profile = synthetic(two_lines_2d(), {0.1, 0.8, 0.0});
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto r = LinearLocalizer(cfg).locate(profile);
  ASSERT_EQ(r.sigma.size(), 3u);  // x, y, d_r
  EXPECT_LT(r.position_sigma, 1e-6);
}

TEST(Localizer, SigmaGrowsWithNoise) {
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto quiet_r = LinearLocalizer(cfg).locate(
      synthetic(two_lines_2d(), {0.1, 0.8, 0.0}, 0.02, 9));
  const auto loud_r = LinearLocalizer(cfg).locate(
      synthetic(two_lines_2d(), {0.1, 0.8, 0.0}, 0.2, 9));
  EXPECT_GT(loud_r.position_sigma, 3.0 * quiet_r.position_sigma);
}

TEST(Localizer, SigmaPredictsActualErrorScale) {
  // The reported one-sigma should be within an order of magnitude of the
  // realized error, averaged over trials.
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const Vec3 target{0.0, 0.8, 0.0};
  double err_sum = 0.0;
  double sigma_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto r = LinearLocalizer(cfg).locate(
        synthetic(two_lines_2d(), target, 0.1, seed));
    err_sum += linalg::distance(r.position, target);
    sigma_sum += r.position_sigma;
  }
  EXPECT_GT(sigma_sum, 0.1 * err_sum);
  EXPECT_LT(sigma_sum, 10.0 * err_sum);
}

TEST(Localizer, SigmaGrowsWithDepth) {
  // Geometric dilution: a farther target is less constrained by the same
  // scan, so the predicted uncertainty must grow.
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  const auto near_r = LinearLocalizer(cfg).locate(
      synthetic(two_lines_2d(), {0.0, 0.6, 0.0}, 0.1, 3));
  const auto far_r = LinearLocalizer(cfg).locate(
      synthetic(two_lines_2d(), {0.0, 1.6, 0.0}, 0.1, 3));
  EXPECT_GT(far_r.position_sigma, near_r.position_sigma);
}

TEST(Localizer, CircularTrajectory2D) {
  // Fig. 6 setup: circle of radius 0.3 m, antenna 1 m away.
  std::vector<Vec3> ps;
  for (int i = 0; i < 120; ++i) {
    const double a = rf::kTwoPi * i / 120.0;
    ps.push_back({0.3 * std::cos(a), 0.3 * std::sin(a), 0.0});
  }
  const Vec3 target{1.0, 0.0, 0.0};
  const auto profile = synthetic(ps, target);
  LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.pair_interval = 0.25;
  const auto r = LinearLocalizer(cfg).locate(profile);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-4);
}

}  // namespace
}  // namespace lion::core
