#include "core/radical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"

namespace lion::core {
namespace {

using linalg::Vec3;

// Noiseless unwrapped phases for a known target, arbitrary constant offset.
signal::PhaseProfile synthetic_profile(const std::vector<Vec3>& positions,
                                       const Vec3& target,
                                       double offset = 1.234) {
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    const double d = linalg::distance(pos, target);
    p.push_back({pos, rf::distance_phase(d) + offset, 0.0});
  }
  return p;
}

std::vector<Vec3> grid_positions() {
  std::vector<Vec3> ps;
  for (int i = 0; i <= 10; ++i) {
    ps.push_back({-0.5 + 0.1 * i, 0.0, 0.0});
    ps.push_back({-0.5 + 0.1 * i, -0.2, 0.0});
  }
  return ps;
}

TEST(BuildSystem, TrueSolutionSatisfiesEquationsExactly) {
  const Vec3 target{0.1, 0.8, 0.0};
  const auto profile = synthetic_profile(grid_positions(), target);
  const auto frame = analyze_frame(profile, 2);
  ASSERT_EQ(frame.rank, 2u);
  const auto pairs = spread_pairs(profile, 0.15, 500);
  const std::size_t ref = profile.size() / 2;
  const auto sys = build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);

  // x_true = [local target coords, d_r].
  const auto local = frame.to_local(target);
  const double d_r = linalg::distance(target, profile[ref].position);
  std::vector<double> x_true{local[0], local[1], d_r};

  const auto lhs = sys.a.multiply(x_true);
  for (std::size_t r = 0; r < lhs.size(); ++r) {
    EXPECT_NEAR(lhs[r], sys.k[r], 1e-9) << "row " << r;
  }
}

TEST(BuildSystem, DeltaDMatchesGroundTruthDistances) {
  const Vec3 target{0.0, 1.0, 0.0};
  const auto profile = synthetic_profile(grid_positions(), target);
  const auto frame = analyze_frame(profile, 2);
  const auto pairs = spread_pairs(profile, 0.1, 100);
  const std::size_t ref = 3;
  const auto sys = build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);
  const double d_ref = linalg::distance(target, profile[ref].position);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double d_i = linalg::distance(target, profile[i].position);
    EXPECT_NEAR(sys.delta_d[i], d_i - d_ref, 1e-9);
  }
}

TEST(BuildSystem, RowCountMatchesPairs) {
  const auto profile = synthetic_profile(grid_positions(), {0.0, 1.0, 0.0});
  const auto frame = analyze_frame(profile, 2);
  const auto pairs = spread_pairs(profile, 0.2, 50);
  const auto sys = build_system(profile, frame, pairs, 0, rf::kDefaultWavelength);
  EXPECT_EQ(sys.a.rows(), pairs.size());
  EXPECT_EQ(sys.a.cols(), frame.rank + 1);
  EXPECT_EQ(sys.k.size(), pairs.size());
}

TEST(BuildSystem, CoefficientsMatchPaperFormulas) {
  // Hand-check one row against Eq. (7)'s alpha/omega for a rank-1 scan.
  std::vector<Vec3> positions;
  for (int i = 0; i <= 10; ++i) positions.push_back({0.1 * i, 0.0, 0.0});
  const Vec3 target{0.3, 0.9, 0.0};
  const auto profile = synthetic_profile(positions, target);
  const auto frame = analyze_frame(profile, 2);
  ASSERT_EQ(frame.rank, 1u);
  const std::vector<IndexPair> pairs{{2, 7}};
  const std::size_t ref = 5;
  const auto sys = build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);

  const double qi = frame.to_local(profile[2].position)[0];
  const double qj = frame.to_local(profile[7].position)[0];
  EXPECT_NEAR(sys.a(0, 0), 2.0 * (qi - qj), 1e-12);
  EXPECT_NEAR(sys.a(0, 1), 2.0 * (sys.delta_d[2] - sys.delta_d[7]), 1e-12);
  EXPECT_NEAR(sys.k[0],
              qi * qi - qj * qj - sys.delta_d[2] * sys.delta_d[2] +
                  sys.delta_d[7] * sys.delta_d[7],
              1e-12);
}

TEST(BuildSystem, ReferenceChoiceDoesNotBreakConsistency) {
  const Vec3 target{-0.2, 0.7, 0.0};
  const auto profile = synthetic_profile(grid_positions(), target);
  const auto frame = analyze_frame(profile, 2);
  const auto pairs = spread_pairs(profile, 0.15, 200);
  for (std::size_t ref : {std::size_t{0}, profile.size() / 2,
                          profile.size() - 1}) {
    const auto sys =
        build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);
    const auto local = frame.to_local(target);
    const double d_r = linalg::distance(target, profile[ref].position);
    const auto lhs = sys.a.multiply({local[0], local[1], d_r});
    for (std::size_t r = 0; r < lhs.size(); ++r) {
      EXPECT_NEAR(lhs[r], sys.k[r], 1e-9);
    }
  }
}

TEST(BuildSystem, ValidatesArguments) {
  const auto profile = synthetic_profile(grid_positions(), {0.0, 1.0, 0.0});
  const auto frame = analyze_frame(profile, 2);
  const auto pairs = spread_pairs(profile, 0.2, 10);
  EXPECT_THROW(
      build_system(profile, frame, pairs, profile.size(), rf::kDefaultWavelength),
      std::invalid_argument);
  EXPECT_THROW(build_system(profile, frame, {}, 0, rf::kDefaultWavelength),
               std::invalid_argument);
  EXPECT_THROW(build_system(profile, frame, {{0, profile.size()}}, 0,
                            rf::kDefaultWavelength),
               std::invalid_argument);
}

TEST(BuildSystem, ReferenceIndexExtremesProduceUsableSystems) {
  // First and last sample as reference: both are legal, and pairs that
  // contain the reference itself must not corrupt the rows.
  const Vec3 target{0.1, 0.8, 0.0};
  const auto profile = synthetic_profile(grid_positions(), target);
  const auto frame = analyze_frame(profile, 2);
  const std::vector<IndexPair> pairs{
      {0, profile.size() - 1}, {0, profile.size() / 2}, {1, profile.size() - 2}};
  for (std::size_t ref : {std::size_t{0}, profile.size() - 1}) {
    const auto sys =
        build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);
    ASSERT_EQ(sys.a.rows(), pairs.size());
    // delta_d of the reference against itself must be exactly zero.
    EXPECT_EQ(sys.delta_d[ref], 0.0);
    const auto local = frame.to_local(target);
    const double d_r = linalg::distance(target, profile[ref].position);
    const auto lhs = sys.a.multiply({local[0], local[1], d_r});
    for (std::size_t r = 0; r < lhs.size(); ++r) {
      EXPECT_NEAR(lhs[r], sys.k[r], 1e-9) << "ref " << ref << " row " << r;
    }
  }
}

TEST(BuildSystem, CollinearProfileYieldsRankOneFrame) {
  // A single-line scan must come back rank 1 — the radical-line system
  // then has 2 unknowns, which is what the 2D/3D fallback logic keys on.
  std::vector<Vec3> positions;
  for (int i = 0; i <= 20; ++i) positions.push_back({0.05 * i, 0.3, 0.1});
  const auto profile = synthetic_profile(positions, {0.5, 1.0, 0.1});
  const auto frame = analyze_frame(profile, 3);
  EXPECT_EQ(frame.rank, 1u);
  const auto pairs = spread_pairs(profile, 0.1, 50);
  const auto sys = build_system(profile, frame, pairs, 0, rf::kDefaultWavelength);
  EXPECT_EQ(sys.a.cols(), 2u);
}

TEST(BuildSystem, NearCollinearProfileStaysFiniteEvenIfIllConditioned) {
  // Sub-millimetre lateral spread: whether analyze_frame keeps or drops the
  // weak direction, the assembled system must be finite.
  std::vector<Vec3> positions;
  for (int i = 0; i <= 20; ++i) {
    positions.push_back({0.05 * i, 0.3 + 2e-5 * (i % 3), 0.1});
  }
  const auto profile = synthetic_profile(positions, {0.5, 1.0, 0.1});
  const auto frame = analyze_frame(profile, 3);
  EXPECT_GE(frame.rank, 1u);
  const auto pairs = spread_pairs(profile, 0.1, 50);
  const auto sys = build_system(profile, frame, pairs, 5, rf::kDefaultWavelength);
  for (std::size_t r = 0; r < sys.a.rows(); ++r) {
    for (std::size_t c = 0; c < sys.a.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(sys.a(r, c)));
    }
    EXPECT_TRUE(std::isfinite(sys.k[r]));
  }
}

TEST(BuildSystem, ThreeDSystemSatisfiedByTruth) {
  std::vector<Vec3> positions;
  for (int i = 0; i <= 10; ++i) {
    positions.push_back({-0.5 + 0.1 * i, 0.0, 0.0});
    positions.push_back({-0.5 + 0.1 * i, 0.0, 0.2});
    positions.push_back({-0.5 + 0.1 * i, -0.2, 0.0});
  }
  const Vec3 target{0.05, 0.75, 0.1};
  const auto profile = synthetic_profile(positions, target);
  const auto frame = analyze_frame(profile, 3);
  ASSERT_EQ(frame.rank, 3u);
  const auto pairs = spread_pairs(profile, 0.15, 500);
  const std::size_t ref = 7;
  const auto sys =
      build_system(profile, frame, pairs, ref, rf::kDefaultWavelength);
  const auto local = frame.to_local(target);
  const double d_r = linalg::distance(target, profile[ref].position);
  const auto lhs = sys.a.multiply({local[0], local[1], local[2], d_r});
  for (std::size_t r = 0; r < lhs.size(); ++r) {
    EXPECT_NEAR(lhs[r], sys.k[r], 1e-9);
  }
}

}  // namespace
}  // namespace lion::core
