// Differential / negative-path suite for the incremental calibrate solver.
//
// The solver's contract is brutal on purpose: every flush it answers
// (memo or warm) must be BYTE-identical — compared through the same
// io::report_json serialization the serving stack ships — to a fresh
// full-pipeline calibrate_antenna_robust over the same buffer, and every
// flush it cannot prove must fall back with a counted reason. The
// 200-seed interleaving test is the referee for the first half; the
// per-reason trip tests for the second.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/incremental_cal.hpp"
#include "core/lion.hpp"
#include "io/report_json.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "sim/scenario.hpp"

namespace lion {
namespace {

using core::CalFallbackReason;
using core::CalFlushSource;
using core::IncrementalCalConfig;
using core::IncrementalCalibrationSolver;
using linalg::Vec3;

constexpr Vec3 kPhysical{0.0, 0.8, 0.0};

IncrementalCalConfig make_config() {
  IncrementalCalConfig cfg;
  cfg.physical_center = kPhysical;
  return cfg;
}

// Warm-tier regime config: smoothing disabled. The default moving average
// injects window-truncation bias (~1e-3 rad) even into exact-phase
// streams, which lifts residuals off the rounding floor and puts them in
// a continuum around the derived threshold — the warm tier then (rightly)
// declines every flush. Without smoothing, exact streams keep residuals
// at rounding level, orders below the 1e-12 consensus floor, where mask
// equality is provable and answers are bit-identical.
IncrementalCalConfig make_clean_config() {
  IncrementalCalConfig cfg;
  cfg.physical_center = kPhysical;
  cfg.calibration.preprocess.smoothing_window = 1;
  return cfg;
}

// Noise-free analytic stream along the *continuous* Fig. 11 three-line
// rig trajectory: exact distance phases from a known electrical center.
// Continuity matters — phase unwrapping assumes adjacent samples are
// close, so the stream must traverse the line transits, not jump.
std::vector<sim::PhaseSample> clean_stream(const Vec3& center,
                                           double phase_offset,
                                           double dt = 0.1) {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto traj = rig.build();
  std::vector<sim::PhaseSample> out;
  for (double t = 0.0; t <= traj.duration(); t += dt) {
    sim::PhaseSample s;
    s.t = t;
    s.position = traj.position(t);
    const double d = linalg::distance(center, s.position);
    s.phase = rf::wrap_phase(rf::distance_phase(d) + phase_offset);
    s.rssi_dbm = -55.0;
    s.channel = 0;
    out.push_back(s);
  }
  return out;
}

std::vector<sim::PhaseSample> noisy_stream(std::uint64_t seed) {
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna(kPhysical)
                      .add_tag()
                      .seed(seed)
                      .build();
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  return scenario.sweep(0, 0, rig.build());
}

core::CalibrationReport batch(const std::vector<sim::PhaseSample>& buffer,
                              const core::RobustCalibrationConfig& config = {}) {
  return core::calibrate_antenna_robust(buffer, kPhysical, config);
}

std::string json(const core::CalibrationReport& report) {
  return io::report_json(report);
}

TEST(IncrementalCal, ColdFlushFallsBack) {
  IncrementalCalibrationSolver solver(make_config());
  const auto stream = clean_stream(kPhysical + Vec3{0.01, -0.008, 0.005}, 1.0);
  const auto d = solver.flush(stream);
  EXPECT_EQ(d.source, CalFlushSource::kFallback);
  EXPECT_EQ(d.reason, CalFallbackReason::kCold);
  EXPECT_FALSE(d.report_ready);
  EXPECT_EQ(solver.stats().fallbacks, 1u);
  EXPECT_EQ(solver.stats().fb_cold, 1u);
}

TEST(IncrementalCal, MemoFlushIsByteIdentical) {
  IncrementalCalibrationSolver solver(make_config());
  const auto stream = clean_stream(kPhysical + Vec3{0.012, -0.01, 0.004}, 0.7);
  const auto report = batch(stream);
  ASSERT_EQ(report.status, core::CalibrationStatus::kOk);
  solver.install_anchor(stream, report);

  const auto d = solver.flush(stream);
  ASSERT_EQ(d.source, CalFlushSource::kMemo);
  ASSERT_TRUE(d.report_ready);
  EXPECT_EQ(json(d.report), json(report));
  EXPECT_EQ(solver.stats().memo, 1u);
}

TEST(IncrementalCal, MemoServesNonOkAnchorsToo) {
  // The memo tier rests on pipeline determinism alone, so even a
  // degenerate-geometry report is memoizable byte-for-byte.
  IncrementalCalibrationSolver solver(make_config());
  std::vector<sim::PhaseSample> stream(100);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].t = 0.01 * static_cast<double>(i);
    stream[i].position = {0.1, 0.2, 0.0};
    stream[i].phase = 1.0;
  }
  const auto report = batch(stream);
  ASSERT_EQ(report.status, core::CalibrationStatus::kDegenerateGeometry);
  solver.install_anchor(stream, report);
  const auto d = solver.flush(stream);
  ASSERT_EQ(d.source, CalFlushSource::kMemo);
  EXPECT_EQ(json(d.report), json(report));
}

TEST(IncrementalCal, WarmAppendFlushIsByteIdenticalToBatch) {
  const auto cfg = make_clean_config();
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.009, -0.011, 0.006}, 2.1);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 10);
  const auto anchor = batch(buffer, cfg.calibration);
  ASSERT_EQ(anchor.status, core::CalibrationStatus::kOk);
  solver.install_anchor(buffer, anchor);

  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  ASSERT_EQ(d.source, CalFlushSource::kIncremental) << d.detail;
  ASSERT_TRUE(d.report_ready);
  EXPECT_EQ(json(d.report), json(batch(buffer, cfg.calibration)));
  EXPECT_EQ(solver.stats().incremental, 1u);
}

TEST(IncrementalCal, WarmFlushIsDeterministicAcrossRepeats) {
  const auto cfg = make_clean_config();
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.01, -0.009, 0.007}, 0.3);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 12);
  solver.install_anchor(buffer, batch(buffer, cfg.calibration));
  buffer.assign(full.begin(), full.end());

  const auto d1 = solver.flush(buffer);
  const auto d2 = solver.flush(buffer);
  ASSERT_EQ(d1.source, CalFlushSource::kIncremental) << d1.detail;
  ASSERT_EQ(d2.source, CalFlushSource::kIncremental) << d2.detail;
  EXPECT_EQ(json(d1.report), json(d2.report));
}

// The referee: 200 seeded interleavings of append / carve / flush over
// clean and noisy streams. Every answered flush must serialize to the
// same bytes as a fresh full-pipeline solve over the same buffer; every
// fallback is followed by a batch solve + anchor install, like the
// serving layer does.
TEST(IncrementalCal, DifferentialInterleavings200Seeds) {
  std::uint64_t answered = 0;
  std::uint64_t fallbacks = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    rf::Rng rng(seed * 7919 + 13);
    const bool noisy = (seed % 4) == 3;
    const Vec3 center =
        kPhysical + Vec3{0.005 + 0.0001 * static_cast<double>(seed % 17),
                         -0.012 + 0.0002 * static_cast<double>(seed % 11),
                         0.004};
    const auto full =
        noisy ? noisy_stream(seed + 1)
              : clean_stream(center, 0.1 * static_cast<double>(seed % 31));
    ASSERT_GE(full.size(), 60u) << "seed " << seed;

    // Clean seeds run the warm-tier regime (no smoothing); noisy seeds run
    // the production defaults, where every gate earns its keep. The fresh
    // reference solve always uses the solver's own config — the contract
    // is pipeline equality, not config equality.
    const auto cfg = noisy ? make_config() : make_clean_config();
    IncrementalCalibrationSolver solver(cfg);
    std::vector<sim::PhaseSample> buffer(full.begin(),
                                         full.begin() + full.size() / 2);
    std::size_t cursor = buffer.size();

    const int ops = 3 + static_cast<int>(rng.uniform_int(0, 2));
    for (int op = 0; op < ops; ++op) {
      const int kind = static_cast<int>(rng.uniform_int(0, 9));
      if (kind < 5 && cursor < full.size()) {
        // Append a chunk of the remaining stream.
        const std::size_t avail = full.size() - cursor;
        const std::size_t cap = std::min<std::size_t>(avail, 12);
        const std::size_t chunk = 1 + static_cast<std::size_t>(rng.uniform_int(
                                          0, static_cast<std::int64_t>(cap) - 1));
        buffer.insert(buffer.end(), full.begin() + cursor,
                      full.begin() + cursor + chunk);
        cursor += chunk;
      } else if (kind < 6 && buffer.size() > 30) {
        // Carve the tail (not something the serving buffer does, but the
        // solver must detect it rather than trust the append invariant).
        buffer.resize(buffer.size() - 5);
        cursor -= 5;
      }

      auto d = solver.flush(buffer);
      const auto fresh = batch(buffer, cfg.calibration);
      if (d.report_ready) {
        ++answered;
        EXPECT_EQ(json(d.report), json(fresh))
            << "seed " << seed << " op " << op << " source "
            << core::cal_flush_source_name(d.source);
      } else {
        ++fallbacks;
        solver.install_anchor(buffer, fresh);
      }
    }
  }
  // The split is workload-dependent, but the suite must exercise both
  // paths heavily — an always-fallback solver would pass the byte checks
  // vacuously.
  EXPECT_GT(answered, 100u);
  EXPECT_GT(fallbacks, 200u);
}

// ---------------------------------------------------------------------------
// Negative paths: every fallback reason must be trippable on demand, must
// leave the decision report-less, and must bump exactly its counter.
// ---------------------------------------------------------------------------

TEST(IncrementalCal, CarveTripsOnTruncationAndOnPrefixMutation) {
  IncrementalCalibrationSolver solver(make_config());
  auto stream = clean_stream(kPhysical + Vec3{0.008, -0.01, 0.003}, 1.4);
  solver.install_anchor(stream, batch(stream));

  auto truncated = stream;
  truncated.pop_back();
  EXPECT_EQ(solver.flush(truncated).reason, CalFallbackReason::kCarve);

  auto mutated = stream;
  mutated[mutated.size() / 2].phase += 1e-9;
  EXPECT_EQ(solver.flush(mutated).reason, CalFallbackReason::kCarve);
  EXPECT_EQ(solver.stats().fb_carve, 2u);
}

TEST(IncrementalCal, DeltaGateTripsOnOversizedAppend) {
  auto cfg = make_config();
  cfg.max_delta_fraction = 0.1;
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.01, -0.01, 0.005}, 0.9);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.begin() + full.size() / 2);
  solver.install_anchor(buffer, batch(buffer));
  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  EXPECT_EQ(d.source, CalFlushSource::kFallback);
  EXPECT_EQ(d.reason, CalFallbackReason::kDelta);
  EXPECT_EQ(solver.stats().fb_delta, 1u);
}

TEST(IncrementalCal, RowsGateTripsWhenWarmSystemsAreTooSmall) {
  auto cfg = make_config();
  cfg.min_rows = 100000;  // no realistic window clears this
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.01, -0.01, 0.005}, 0.4);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 10);
  solver.install_anchor(buffer, batch(buffer));
  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  EXPECT_EQ(d.reason, CalFallbackReason::kRows);
  EXPECT_EQ(solver.stats().fb_rows, 1u);
}

TEST(IncrementalCal, DriftGateTripsOnNoisyResidualBands) {
  // Lab-typical noise puts residuals throughout the margin band around
  // the consensus threshold: the warm mask cannot be proven equal to the
  // tournament's, so the solver must decline.
  IncrementalCalibrationSolver solver(make_config());
  const auto full = noisy_stream(41);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 10);
  const auto anchor = batch(buffer);
  ASSERT_TRUE(anchor.ok());
  solver.install_anchor(buffer, anchor);
  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  EXPECT_EQ(d.source, CalFlushSource::kFallback);
  EXPECT_EQ(d.reason, CalFallbackReason::kDrift);
  EXPECT_EQ(solver.stats().fb_drift, 1u);
}

TEST(IncrementalCal, CancellationGateTripsWhenConfigured) {
  auto cfg = make_clean_config();
  cfg.max_cancellation = 0.5;  // cancellation() >= 1 by construction
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.011, -0.009, 0.006}, 1.8);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 10);
  solver.install_anchor(buffer, batch(buffer, cfg.calibration));
  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  EXPECT_EQ(d.reason, CalFallbackReason::kCancellation) << d.detail;
  EXPECT_EQ(solver.stats().fb_cancellation, 1u);
}

TEST(IncrementalCal, StatusGateTripsOnDegradedAnchor) {
  IncrementalCalibrationSolver solver(make_config());
  // Single-line scan: the batch pipeline degrades to 2D — a valid anchor
  // for the memo tier but not for warm derivation.
  std::vector<sim::PhaseSample> buffer;
  const Vec3 center = kPhysical + Vec3{0.01, -0.01, 0.0};
  for (double x = -0.55; x <= 0.55 + 1e-9; x += 0.01) {
    sim::PhaseSample s;
    s.t = static_cast<double>(buffer.size()) * 0.1;
    s.position = {x, 0.0, 0.0};
    s.phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(center, s.position)) + 0.5);
    s.rssi_dbm = -55.0;
    s.channel = 0;
    buffer.push_back(s);
  }
  const auto anchor = batch(buffer);
  ASSERT_EQ(anchor.status, core::CalibrationStatus::kDegraded2D);
  solver.install_anchor(buffer, anchor);

  auto grown = buffer;
  sim::PhaseSample extra = buffer.back();
  extra.t += 0.1;
  extra.position[0] += 0.01;
  extra.phase = rf::wrap_phase(
      rf::distance_phase(linalg::distance(center, extra.position)) + 0.5);
  grown.push_back(extra);
  const auto d = solver.flush(grown);
  EXPECT_EQ(d.reason, CalFallbackReason::kStatus);
  EXPECT_EQ(solver.stats().fb_status, 1u);
}

TEST(IncrementalCal, SweepGateTripsWhenTheGridChanges) {
  // Anchor produced under the default 6x6 sweep, solver configured with a
  // coarser grid: candidate lists no longer correspond, the warm sweep
  // must refuse rather than mis-seed.
  auto cfg = make_config();
  cfg.calibration.adaptive.ranges = {0.8, 1.0};
  IncrementalCalibrationSolver solver(cfg);
  const auto full = clean_stream(kPhysical + Vec3{0.01, -0.008, 0.004}, 2.6);
  std::vector<sim::PhaseSample> buffer(full.begin(),
                                       full.end() - full.size() / 10);
  solver.install_anchor(buffer, batch(buffer));  // default-grid report
  buffer.assign(full.begin(), full.end());
  const auto d = solver.flush(buffer);
  EXPECT_EQ(d.reason, CalFallbackReason::kSweep);
  EXPECT_EQ(solver.stats().fb_sweep, 1u);
}

TEST(IncrementalCal, ResetReturnsToCold) {
  IncrementalCalibrationSolver solver(make_config());
  const auto stream = clean_stream(kPhysical + Vec3{0.01, -0.01, 0.005}, 0.2);
  solver.install_anchor(stream, batch(stream));
  ASSERT_TRUE(solver.has_anchor());
  solver.reset();
  EXPECT_FALSE(solver.has_anchor());
  EXPECT_EQ(solver.flush(stream).reason, CalFallbackReason::kCold);
}

TEST(IncrementalCal, DigestDetectsEveryFieldFlip) {
  const auto stream = clean_stream(kPhysical + Vec3{0.01, -0.01, 0.005}, 0.2);
  const auto base = core::cal_buffer_digest(stream, stream.size());
  auto flip = [&](auto mutate) {
    auto copy = stream;
    mutate(copy[copy.size() / 3]);
    return core::cal_buffer_digest(copy, copy.size());
  };
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.t += 1e-12; }));
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.position[1] += 1e-12; }));
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.phase += 1e-12; }));
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.rssi_dbm += 1.0; }));
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.channel += 1; }));
  // Bitwise, not numeric: -0.0 differs from 0.0 (position[2] is 0.0 on L1).
  EXPECT_NE(base, flip([](sim::PhaseSample& s) { s.position[2] = -0.0; }));
  // Prefix digest ignores rows past `count`.
  auto longer = stream;
  longer.push_back(stream.back());
  EXPECT_EQ(base, core::cal_buffer_digest(longer, stream.size()));
}

TEST(IncrementalCal, BatchPipelineIsPureAcrossWorkspaceReuse) {
  // The fallback contract rests on pipeline purity: the same buffer must
  // serialize identically through a cold call and a reused-workspace call.
  const auto stream = noisy_stream(7);
  linalg::SolverWorkspace ws;
  const auto warm1 = core::calibrate_antenna_robust(stream, kPhysical, {}, &ws);
  const auto warm2 = core::calibrate_antenna_robust(stream, kPhysical, {}, &ws);
  const auto cold = core::calibrate_antenna_robust(stream, kPhysical);
  EXPECT_EQ(json(warm1), json(cold));
  EXPECT_EQ(json(warm2), json(cold));
}

}  // namespace
}  // namespace lion
