// Conformance suite for the incremental per-session solver.
//
// Three layers of proof, matching the module's contract:
//   1. Metamorphic kernel properties of linalg::IncrementalNormals — the
//      rank-1 update/downdate must round-trip (1e-12), be row-order
//      invariant, and match fresh accumulation across window slides.
//   2. Differential properties of core::IncrementalTrackSolver — the
//      maintained normal equations must match a fresh batch accumulation
//      over the currently included rows (1e-12 after pure append /
//      retire, 1e-9 across rebuild boundaries), across >= 200 seeded
//      append/retire/tick interleavings; ticking is pure (bit-identical
//      on repeat); degenerate windows trip the fallback gate.
//   3. Warm-started RANSAC — an empty prior is bit-identical to the cold
//      solver; a good prior still finds the consensus.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.hpp"
#include "core/ransac.hpp"
#include "linalg/small.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"
#include "sim/reader.hpp"

namespace lion {
namespace {

using core::IncrementalTrackConfig;
using core::IncrementalTrackSolver;
using linalg::IncrementalNormals;
using linalg::Vec3;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

struct RawRow {
  double a[2];
  double k;
};

std::vector<RawRow> random_rows(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::vector<RawRow> rows(n);
  for (auto& r : rows) {
    r.a[0] = u(rng);
    r.a[1] = u(rng);
    r.k = u(rng);
  }
  return rows;
}

// `tol` is relative: each entry is compared within tol * (1 + |want|),
// since Gram magnitudes scale with the row count.
void expect_normals_near(const IncrementalNormals& got,
                         const IncrementalNormals& want, double tol) {
  ASSERT_EQ(got.cols(), want.cols());
  ASSERT_EQ(got.rows(), want.rows());
  const auto near = [tol](double g, double w) {
    return std::abs(g - w) <= tol * (1.0 + std::abs(w));
  };
  const std::size_t packed = got.cols() * (got.cols() + 1) / 2;
  for (std::size_t i = 0; i < packed; ++i) {
    EXPECT_TRUE(near(got.gram_packed()[i], want.gram_packed()[i]))
        << "gram entry " << i << ": " << got.gram_packed()[i] << " vs "
        << want.gram_packed()[i];
  }
  for (std::size_t i = 0; i < got.cols(); ++i) {
    EXPECT_TRUE(near(got.rhs()[i], want.rhs()[i]))
        << "rhs entry " << i << ": " << got.rhs()[i] << " vs "
        << want.rhs()[i];
  }
  EXPECT_TRUE(near(got.rhs_squared_sum(), want.rhs_squared_sum()))
      << got.rhs_squared_sum() << " vs " << want.rhs_squared_sum();
}

/// Synthetic conveyor stream: a tag riding the belt past a fixed antenna,
/// exact Eq. (1) phases (no hardware offsets — they cancel in the deltas
/// anyway) plus optional Gaussian phase noise.
struct StreamParams {
  Vec3 antenna{0.0, 0.0, 0.0};
  Vec3 belt_dir{1.0, 0.0, 0.0};
  double belt_speed = 1.0;        // [m/s]
  double read_rate = 100.0;       // [Hz]
  Vec3 tag_start{-1.0, 0.6, 0.0}; // position at t = 0
  double wavelength = rf::kDefaultWavelength;
  double phase_noise = 0.0;       // [rad]
};

std::vector<sim::PhaseSample> make_stream(std::size_t n,
                                          const StreamParams& p,
                                          std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<sim::PhaseSample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / p.read_rate;
    const Vec3 pos = p.tag_start + (p.belt_speed * t) * p.belt_dir;
    const double d = (pos - p.antenna).norm();
    double phase = rf::distance_phase(d, p.wavelength);
    if (p.phase_noise > 0.0) phase += p.phase_noise * noise(rng);
    out[i].t = t;
    out[i].position = pos;
    out[i].phase = rf::wrap_phase(phase);
  }
  return out;
}

IncrementalTrackConfig config_for(const StreamParams& p) {
  IncrementalTrackConfig cfg;
  cfg.antenna_phase_center = p.antenna;
  cfg.belt_direction = p.belt_dir;
  cfg.belt_speed = p.belt_speed;
  cfg.wavelength = p.wavelength;
  cfg.side_hint = p.tag_start;  // pick the true perpendicular sign
  return cfg;
}

Vec3 tag_position_at(const StreamParams& p, double t) {
  return p.tag_start + (p.belt_speed * t) * p.belt_dir;
}

// ---------------------------------------------------------------------------
// 1. IncrementalNormals metamorphic kernel properties
// ---------------------------------------------------------------------------

TEST(IncrementalNormals, ResetValidatesColumnCount) {
  IncrementalNormals n;
  EXPECT_THROW(n.reset(0), std::invalid_argument);
  EXPECT_THROW(n.reset(linalg::kSmallMaxCols + 1), std::invalid_argument);
  n.reset(2);
  EXPECT_EQ(n.cols(), 2u);
  EXPECT_TRUE(n.empty());
}

TEST(IncrementalNormals, AppendThenDowndateRoundTripsToPriorGram) {
  const auto base = random_rows(40, 11);
  const auto extra = random_rows(16, 12);
  IncrementalNormals n;
  n.reset(2);
  for (const auto& r : base) n.append(r.a, r.k);

  IncrementalNormals before = n;  // value copy: the prior Gram
  for (const auto& r : extra) n.append(r.a, r.k);
  for (const auto& r : extra) n.downdate(r.a, r.k);

  expect_normals_near(n, before, 1e-12);
}

TEST(IncrementalNormals, RowShuffleLeavesSolutionInvariant) {
  auto rows = random_rows(64, 21);
  IncrementalNormals fwd;
  fwd.reset(2);
  for (const auto& r : rows) fwd.append(r.a, r.k);

  std::mt19937_64 rng(22);
  std::shuffle(rows.begin(), rows.end(), rng);
  IncrementalNormals shuffled;
  shuffled.reset(2);
  for (const auto& r : rows) shuffled.append(r.a, r.k);

  double xf[2], xs[2];
  ASSERT_TRUE(fwd.solve(xf));
  ASSERT_TRUE(shuffled.solve(xs));
  EXPECT_NEAR(xf[0], xs[0], 1e-12);
  EXPECT_NEAR(xf[1], xs[1], 1e-12);
  EXPECT_NEAR(fwd.rms(xf), shuffled.rms(xs), 1e-12);
}

TEST(IncrementalNormals, WindowSlideEqualsFreshReaccumulation) {
  const auto rows = random_rows(200, 31);
  const std::size_t window = 48;
  IncrementalNormals live;
  live.reset(2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    live.append(rows[i].a, rows[i].k);
    if (i + 1 > window) {
      live.downdate(rows[i - window].a, rows[i - window].k);
    }
    if (i + 1 < window) continue;
    IncrementalNormals fresh;
    fresh.reset(2);
    for (std::size_t j = i + 1 - window; j <= i; ++j) {
      fresh.append(rows[j].a, rows[j].k);
    }
    ASSERT_NO_FATAL_FAILURE(expect_normals_near(live, fresh, 1e-10))
        << "slide at row " << i;
    double xl[2], xf[2];
    ASSERT_EQ(live.solve(xl), fresh.solve(xf));
    if (live.solve(xl) && fresh.solve(xf)) {
      EXPECT_NEAR(xl[0], xf[0], 1e-9);
      EXPECT_NEAR(xl[1], xf[1], 1e-9);
    }
  }
}

TEST(IncrementalNormals, RmsMatchesDirectResidualNorm) {
  const auto rows = random_rows(50, 41);
  IncrementalNormals n;
  n.reset(2);
  for (const auto& r : rows) n.append(r.a, r.k);
  double x[2];
  ASSERT_TRUE(n.solve(x));
  double ss = 0.0;
  for (const auto& r : rows) {
    const double res = r.a[0] * x[0] + r.a[1] * x[1] - r.k;
    ss += res * res;
  }
  EXPECT_NEAR(n.rms(x), std::sqrt(ss / static_cast<double>(rows.size())),
              1e-9);
}

TEST(IncrementalNormals, UnderdeterminedAndRankDeficientSolvesFail) {
  IncrementalNormals n;
  n.reset(2);
  double x[2];
  EXPECT_FALSE(n.solve(x));  // no rows
  const double a0[2] = {1.0, 2.0};
  n.append(a0, 1.0);
  EXPECT_FALSE(n.solve(x));  // 1 row < 2 cols
  // Collinear rows: Gram is singular, Cholesky must refuse.
  const double a1[2] = {2.0, 4.0};
  n.append(a1, 2.0);
  n.append(a1, 2.0);
  EXPECT_FALSE(n.solve(x));
}

TEST(IncrementalNormals, CancellationGrowsAsMassLeaves) {
  const auto rows = random_rows(100, 51);
  IncrementalNormals n;
  n.reset(2);
  for (const auto& r : rows) n.append(r.a, r.k);
  const double before = n.cancellation();
  EXPECT_GE(before, 1.0 - 1e-12);
  for (std::size_t i = 0; i < 90; ++i) n.downdate(rows[i].a, rows[i].k);
  // 90% of the diagonal mass has been subtracted back out: the ratio of
  // ever-appended to live mass must reflect it.
  EXPECT_GT(n.cancellation(), before * 2.0);
}

// ---------------------------------------------------------------------------
// 2. IncrementalTrackSolver differential properties
// ---------------------------------------------------------------------------

TEST(IncrementalTrackSolver, ConstructorValidatesGeometry) {
  IncrementalTrackConfig cfg;
  cfg.belt_direction = Vec3{0.0, 0.0, 0.0};
  EXPECT_THROW(IncrementalTrackSolver{cfg}, std::invalid_argument);
  cfg = IncrementalTrackConfig{};
  cfg.belt_speed = 0.0;
  EXPECT_THROW(IncrementalTrackSolver{cfg}, std::invalid_argument);
  cfg = IncrementalTrackConfig{};
  cfg.pair_interval = -1.0;
  EXPECT_THROW(IncrementalTrackSolver{cfg}, std::invalid_argument);
}

TEST(IncrementalTrackSolver, CleanStreamRecoversTheTagPose) {
  StreamParams p;
  const auto stream = make_stream(400, p);
  IncrementalTrackSolver solver(config_for(p));
  for (const auto& s : stream) solver.push(s);

  const core::TickResult tick = solver.tick();
  ASSERT_TRUE(tick.valid);
  EXPECT_FALSE(tick.fallback);
  EXPECT_GT(tick.rows, 8u);
  const Vec3 truth = tag_position_at(p, stream.back().t);
  EXPECT_NEAR((tick.position - truth).norm(), 0.0, 1e-5);
  const Vec3 start_truth = tag_position_at(p, stream.front().t);
  EXPECT_NEAR((tick.start - start_truth).norm(), 0.0, 1e-5);
  EXPECT_LT(tick.rms, 1e-6);
}

TEST(IncrementalTrackSolver, TickIsPureAndBitStable) {
  StreamParams p;
  p.phase_noise = 0.02;
  const auto stream = make_stream(300, p, 7);
  IncrementalTrackSolver solver(config_for(p));
  for (const auto& s : stream) solver.push(s);
  const core::TickResult a = solver.tick();
  const core::TickResult b = solver.tick();
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.position[0], b.position[0]);
  EXPECT_EQ(a.position[1], b.position[1]);
  EXPECT_EQ(a.position[2], b.position[2]);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.rms, b.rms);
  EXPECT_EQ(a.rows, b.rows);
}

TEST(IncrementalTrackSolver, NormalsMatchBatchAccumulationAfterAppends) {
  StreamParams p;
  p.phase_noise = 0.05;
  const auto stream = make_stream(500, p, 13);
  IncrementalTrackSolver solver(config_for(p));
  for (const auto& s : stream) solver.push(s);
  expect_normals_near(solver.normals(), solver.batch_normals(), 1e-10);
}

// Satellite regression: rows evicted by a window slide must leave the
// normal equations via downdate — after retire(), the maintained normals
// equal a fresh accumulation over the *surviving* included rows.
TEST(IncrementalTrackSolver, RetiredRowsLeaveByDowndate) {
  StreamParams p;
  p.phase_noise = 0.05;
  const auto stream = make_stream(600, p, 17);
  IncrementalTrackSolver solver(config_for(p));
  for (const auto& s : stream) solver.push(s);

  const std::uint64_t rebuilds_before = solver.rebuilds();
  solver.retire(150);
  // The slide stayed on the downdate path (no re-accumulation kicked in),
  // so this genuinely exercises subtraction, not a rebuild.
  EXPECT_EQ(solver.rebuilds(), rebuilds_before);
  EXPECT_EQ(solver.sample_count(), 450u);
  expect_normals_near(solver.normals(), solver.batch_normals(), 1e-10);

  double xi[2], xb[2];
  const auto batch = solver.batch_normals();
  ASSERT_TRUE(solver.normals().solve(xi));
  ASSERT_TRUE(batch.solve(xb));
  EXPECT_NEAR(xi[0], xb[0], 1e-9);
  EXPECT_NEAR(xi[1], xb[1], 1e-9);
}

TEST(IncrementalTrackSolver, SlideEqualsFreshSolverOverSurvivors) {
  StreamParams p;
  const auto stream = make_stream(700, p, 19);
  IncrementalTrackSolver slid(config_for(p));
  for (const auto& s : stream) slid.push(s);
  slid.retire(200);
  slid.force_rebuild();

  IncrementalTrackSolver fresh(config_for(p));
  for (std::size_t i = 200; i < stream.size(); ++i) fresh.push(stream[i]);
  fresh.force_rebuild();

  // Same surviving samples, same epoch datum after the rebuild: the two
  // solvers must agree on the re-accumulated system and the pose.
  expect_normals_near(slid.normals(), fresh.normals(), 1e-9);
  const core::TickResult a = slid.tick();
  const core::TickResult b = fresh.tick();
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_NEAR((a.position - b.position).norm(), 0.0, 1e-9);
  EXPECT_NEAR(a.rms, b.rms, 1e-9);
}

TEST(IncrementalTrackSolver, DegenerateWindowsTripTheFallbackGate) {
  StreamParams p;
  IncrementalTrackSolver solver(config_for(p));
  EXPECT_TRUE(solver.tick().fallback);  // empty

  const auto stream = make_stream(10, p);  // far too short to pair
  for (const auto& s : stream) solver.push(s);
  EXPECT_TRUE(solver.tick().fallback);
  EXPECT_FALSE(solver.tick().valid);

  solver.clear();
  EXPECT_EQ(solver.sample_count(), 0u);
  EXPECT_EQ(solver.included_rows(), 0u);
  EXPECT_TRUE(solver.tick().fallback);
}

TEST(IncrementalTrackSolver, ClearThenRefillMatchesFreshSolver) {
  StreamParams p;
  const auto first = make_stream(300, p, 23);
  StreamParams p2 = p;
  p2.tag_start = Vec3{-0.5, 0.8, 0.1};
  const auto second = make_stream(300, p2, 29);

  IncrementalTrackSolver reused(config_for(p));
  for (const auto& s : first) reused.push(s);
  reused.clear();
  for (const auto& s : second) reused.push(s);

  IncrementalTrackSolver fresh(config_for(p));
  for (const auto& s : second) fresh.push(s);

  expect_normals_near(reused.normals(), fresh.normals(), 1e-12);
  const core::TickResult a = reused.tick();
  const core::TickResult b = fresh.tick();
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.position[0], b.position[0]);
  EXPECT_EQ(a.position[1], b.position[1]);
  EXPECT_EQ(a.position[2], b.position[2]);
}

// The core differential property, >= 200 seeded interleavings: random
// append / retire / clear / tick schedules, with the maintained normals
// checked against fresh accumulation at every probe, and the whole
// schedule replayed on a second solver to prove determinism.
TEST(IncrementalTrackSolver, SeededInterleavingsMatchBatchAndReplay) {
  StreamParams p;
  p.phase_noise = 0.03;
  const auto stream = make_stream(4000, p, 31);

  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed * 2654435761ULL + 1);
    IncrementalTrackSolver solver(config_for(p));
    IncrementalTrackSolver replay(config_for(p));
    std::size_t cursor = 0;
    std::vector<core::TickResult> ticks;

    for (int op = 0; op < 60; ++op) {
      const std::uint32_t dice = static_cast<std::uint32_t>(rng() % 100);
      if (dice < 70) {  // push a burst
        const std::size_t burst = 1 + rng() % 40;
        for (std::size_t i = 0; i < burst && cursor < stream.size(); ++i) {
          solver.push(stream[cursor]);
          replay.push(stream[cursor]);
          ++cursor;
        }
      } else if (dice < 85) {  // slide
        const std::size_t count = 1 + rng() % 30;
        solver.retire(count);
        replay.retire(count);
      } else if (dice < 90) {  // flush
        solver.clear();
        replay.clear();
      } else {  // probe
        ticks.push_back(solver.tick());
        expect_normals_near(solver.normals(), solver.batch_normals(), 1e-9);
      }
    }
    // Determinism: the replayed schedule lands in a bit-identical state.
    const core::TickResult a = solver.tick();
    const core::TickResult b = replay.tick();
    ASSERT_EQ(a.valid, b.valid) << "seed " << seed;
    ASSERT_EQ(a.fallback, b.fallback) << "seed " << seed;
    ASSERT_EQ(a.position[0], b.position[0]) << "seed " << seed;
    ASSERT_EQ(a.position[1], b.position[1]) << "seed " << seed;
    ASSERT_EQ(a.position[2], b.position[2]) << "seed " << seed;
    ASSERT_EQ(a.rms, b.rms) << "seed " << seed;
    ASSERT_EQ(a.rows, b.rows) << "seed " << seed;
    ASSERT_EQ(solver.rebuilds(), replay.rebuilds()) << "seed " << seed;
    // Every valid probe taken while the geometry is informative carried a
    // sane pose. Probes far past the antenna (end-fire: the q and dd
    // columns turn collinear) or over a thin consensus are information-
    // starved — the *batch* pipeline is equally wrong there, and the
    // differential checks above already pin the incremental path to it —
    // so the accuracy claim is scoped to the aperture.
    for (const auto& t : ticks) {
      if (!t.valid || t.rows < 64) continue;
      const Vec3 truth = tag_position_at(p, t.t);
      const double along =
          std::fabs((truth - p.antenna).dot(p.belt_dir));
      if (along > 2.0) continue;
      EXPECT_LT((t.position - truth).norm(), 0.25) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Warm-started RANSAC
// ---------------------------------------------------------------------------

struct ContaminatedSystem {
  linalg::Matrix a{1, 1};
  std::vector<double> b;
  std::vector<char> truth;  // true inlier mask
};

ContaminatedSystem contaminated_line(std::size_t n, double outlier_frac,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(-3.0, 3.0);
  std::normal_distribution<double> noise(0.0, 0.01);
  std::uniform_real_distribution<double> burst(3.0, 8.0);
  ContaminatedSystem sys;
  sys.a = linalg::Matrix(n, 2);
  sys.b.resize(n);
  sys.truth.resize(n, 1);
  const std::size_t outliers = static_cast<std::size_t>(outlier_frac * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = ux(rng);
    sys.a(i, 0) = x;
    sys.a(i, 1) = 1.0;
    sys.b[i] = 2.0 * x + 1.0 + noise(rng);
    if (i < outliers) {
      sys.b[i] += burst(rng);
      sys.truth[i] = 0;
    }
  }
  return sys;
}

TEST(RansacWarm, EmptyPriorIsBitIdenticalToColdSolve) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto sys = contaminated_line(80, 0.3, 100 + seed);
    core::RansacOptions opt;

    linalg::SolverWorkspace ws_cold;
    core::RansacResult cold;
    core::ransac_solve(sys.a, sys.b, opt, ws_cold, cold);

    linalg::SolverWorkspace ws_warm;
    core::RansacResult warm;
    core::ransac_solve_warm(sys.a, sys.b, opt, ws_warm, {}, warm);

    ASSERT_EQ(cold.solution.x.size(), warm.solution.x.size());
    for (std::size_t i = 0; i < cold.solution.x.size(); ++i) {
      EXPECT_EQ(cold.solution.x[i], warm.solution.x[i]) << "seed " << seed;
    }
    EXPECT_EQ(cold.inlier_mask, warm.inlier_mask) << "seed " << seed;
    EXPECT_EQ(cold.consensus, warm.consensus) << "seed " << seed;
  }
}

TEST(RansacWarm, GoodPriorFindsTheConsensus) {
  const auto sys = contaminated_line(120, 0.35, 7);
  core::RansacOptions opt;
  linalg::SolverWorkspace ws;
  core::RansacResult out;
  core::ransac_solve_warm(sys.a, sys.b, opt, ws, sys.truth, out);
  ASSERT_TRUE(out.consensus);
  ASSERT_EQ(out.solution.x.size(), 2u);
  EXPECT_NEAR(out.solution.x[0], 2.0, 0.05);
  EXPECT_NEAR(out.solution.x[1], 1.0, 0.05);
  // The consensus must reject essentially all planted outliers.
  std::size_t kept_outliers = 0;
  for (std::size_t i = 0; i < sys.truth.size(); ++i) {
    if (!sys.truth[i] && out.inlier_mask[i]) ++kept_outliers;
  }
  EXPECT_LE(kept_outliers, 2u);
}

TEST(RansacWarm, StalePriorStillConverges) {
  const auto sys = contaminated_line(120, 0.3, 9);
  core::RansacOptions opt;
  // Worst-case prior: everything (outliers included) marked inlier.
  const std::vector<char> stale(sys.b.size(), 1);
  linalg::SolverWorkspace ws;
  core::RansacResult out;
  core::ransac_solve_warm(sys.a, sys.b, opt, ws, stale, out);
  ASSERT_TRUE(out.consensus);
  EXPECT_NEAR(out.solution.x[0], 2.0, 0.05);
  EXPECT_NEAR(out.solution.x[1], 1.0, 0.05);
}

}  // namespace
}  // namespace lion
