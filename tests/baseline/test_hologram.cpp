#include "baseline/hologram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::baseline {
namespace {

signal::PhaseProfile synthetic(const std::vector<Vec3>& positions,
                               const Vec3& target, double sigma = 0.0,
                               std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.9 + rng.gaussian(sigma), 0.0});
  }
  return p;
}

std::vector<Vec3> scan_line() {
  std::vector<Vec3> ps;
  for (double x = -0.4; x <= 0.4 + 1e-12; x += 0.01) ps.push_back({x, 0.0, 0.0});
  return ps;
}

TEST(Hologram, LikelihoodPeaksAtTruth) {
  const Vec3 target{0.1, 0.6, 0.0};
  const auto profile = synthetic(scan_line(), target);
  const double at_truth = hologram_likelihood(
      profile, profile.size() / 2, target, rf::kDefaultWavelength);
  EXPECT_NEAR(at_truth, 1.0, 1e-9);
  const double off = hologram_likelihood(profile, profile.size() / 2,
                                         {0.3, 0.4, 0.0},
                                         rf::kDefaultWavelength);
  EXPECT_LT(off, at_truth);
}

TEST(Hologram, LikelihoodRidgeFollowsHyperbola) {
  // With only two measurements the high-likelihood set is a hyperbola
  // branch (Fig. 4): points with the same distance *difference* to the two
  // tag positions score 1.
  const Vec3 t1{-0.3, 0.0, 0.0};
  const Vec3 t2{0.3, 0.0, 0.0};
  const Vec3 target{0.5, 0.5, 0.0};
  const auto profile = synthetic({t1, t2}, target);
  const double dd = linalg::distance(target, t1) - linalg::distance(target, t2);
  // Another point on the same hyperbola branch (numerically constructed):
  // walk along y and solve for x giving the same distance difference.
  auto on_branch = [&](double y) {
    double lo = -1.0;
    double hi = 2.0;
    for (int it = 0; it < 80; ++it) {
      const double mid = 0.5 * (lo + hi);
      const Vec3 p{mid, y, 0.0};
      const double f =
          linalg::distance(p, t1) - linalg::distance(p, t2) - dd;
      if (f > 0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return Vec3{0.5 * (lo + hi), y, 0.0};
  };
  for (double y : {0.2, 0.8, 1.2}) {
    const Vec3 p = on_branch(y);
    EXPECT_NEAR(hologram_likelihood(profile, 0, p, rf::kDefaultWavelength),
                1.0, 1e-6)
        << "y=" << y;
  }
}

TEST(Hologram, LocatesTargetOnCoarseGrid) {
  const Vec3 target{0.1, 0.6, 0.0};
  const auto profile = synthetic(scan_line(), target, 0.05, 3);
  HologramConfig cfg;
  cfg.min_corner = {-0.1, 0.4, 0.0};
  cfg.max_corner = {0.3, 0.8, 0.0};
  cfg.grid_size = 0.005;
  const auto r = locate_hologram(profile, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.02);
  EXPECT_GT(r.peak_likelihood, 0.5);
}

TEST(Hologram, CellCountMatchesBox) {
  const auto profile = synthetic(scan_line(), {0.0, 0.5, 0.0});
  HologramConfig cfg;
  cfg.min_corner = {0.0, 0.0, 0.0};
  cfg.max_corner = {0.1, 0.1, 0.0};
  cfg.grid_size = 0.01;
  cfg.augmented = false;
  const auto r = locate_hologram(profile, cfg);
  EXPECT_EQ(r.cells, 121u);  // 11 x 11 x 1
}

TEST(Hologram, AugmentedDoublesCellWork) {
  const auto profile = synthetic(scan_line(), {0.0, 0.5, 0.0});
  HologramConfig cfg;
  cfg.min_corner = {-0.05, 0.45, 0.0};
  cfg.max_corner = {0.05, 0.55, 0.0};
  cfg.grid_size = 0.01;
  cfg.augmented = true;
  const auto r = locate_hologram(profile, cfg);
  EXPECT_EQ(r.cells, 2u * 121u);
}

TEST(Hologram, AugmentationImprovesUnderMultipathLikeCorruption) {
  // Corrupt one third of the samples with a constant phase bias (a crude
  // stand-in for a multipath cluster) and check the augmented pass is no
  // worse than the plain pass.
  const Vec3 target{0.05, 0.55, 0.0};
  auto profile = synthetic(scan_line(), target, 0.03, 7);
  for (std::size_t i = 0; i < profile.size() / 3; ++i) {
    profile[i].phase += 0.8;
  }
  HologramConfig cfg;
  cfg.min_corner = {-0.1, 0.4, 0.0};
  cfg.max_corner = {0.2, 0.7, 0.0};
  cfg.grid_size = 0.005;
  cfg.augmented = false;
  const auto plain = locate_hologram(profile, cfg);
  cfg.augmented = true;
  const auto augmented = locate_hologram(profile, cfg);
  EXPECT_LE(linalg::distance(augmented.position, target),
            linalg::distance(plain.position, target) + 0.005);
}

TEST(Hologram, ValidatesArguments) {
  const auto profile = synthetic(scan_line(), {0.0, 0.5, 0.0});
  HologramConfig cfg;
  cfg.min_corner = {0.0, 0.0, 0.0};
  cfg.max_corner = {0.1, 0.1, 0.0};
  cfg.grid_size = 0.0;
  EXPECT_THROW(locate_hologram(profile, cfg), std::invalid_argument);
  cfg.grid_size = 0.01;
  EXPECT_THROW(locate_hologram({}, cfg), std::invalid_argument);
  cfg.reference_index = 9999;
  EXPECT_THROW(locate_hologram(profile, cfg), std::invalid_argument);
  HologramConfig inverted;
  inverted.min_corner = {0.1, 0.0, 0.0};
  inverted.max_corner = {0.0, 0.1, 0.0};
  EXPECT_THROW(locate_hologram(profile, inverted), std::invalid_argument);
}

TEST(Hologram, ThreeDimensionalSearch) {
  // Full 3D box: the search must recover all three coordinates from a
  // 3D-diverse scan.
  std::vector<Vec3> ps;
  for (double x = -0.4; x <= 0.4 + 1e-12; x += 0.02) {
    ps.push_back({x, 0.0, 0.0});
    ps.push_back({x, -0.2, 0.0});
    ps.push_back({x, 0.0, 0.2});
  }
  const Vec3 target{0.05, 0.6, 0.1};
  const auto profile = synthetic(ps, target, 0.02, 5);
  HologramConfig cfg;
  cfg.min_corner = target - Vec3{0.04, 0.04, 0.04};
  cfg.max_corner = target + Vec3{0.04, 0.04, 0.04};
  cfg.grid_size = 0.004;
  const auto r = locate_hologram(profile, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.015);
  // ~21^3 cells, two passes (augmented); the exact per-axis step count can
  // land on 20 or 21 depending on float rounding of the box edges.
  EXPECT_GE(r.cells, 2u * 20u * 20u * 20u);
  EXPECT_LE(r.cells, 2u * 22u * 22u * 22u);
}

TEST(Hologram, CostScalesWithVolumeNotAccuracy) {
  // The cost driver the paper attacks: halving the grid size in 3D is 8x
  // the cells.
  const auto profile = synthetic(scan_line(), {0.0, 0.5, 0.0});
  HologramConfig coarse;
  coarse.min_corner = {-0.04, 0.46, -0.04};
  coarse.max_corner = {0.04, 0.54, 0.04};
  coarse.grid_size = 0.02;
  coarse.augmented = false;
  HologramConfig fine = coarse;
  fine.grid_size = 0.01;
  const auto c = locate_hologram(profile, coarse);
  const auto f = locate_hologram(profile, fine);
  EXPECT_EQ(c.cells, 5u * 5u * 5u);
  EXPECT_EQ(f.cells, 9u * 9u * 9u);
}

TEST(MultiAntennaHologram, LocatesStaticTag) {
  const Vec3 tag{-0.1, 0.8, 0.0};
  std::vector<AntennaReading> readings;
  for (double x : {-0.3, 0.0, 0.3}) {
    AntennaReading r;
    r.antenna_position = {x, 0.0, 0.0};
    r.phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(tag, r.antenna_position)));
    readings.push_back(r);
  }
  HologramConfig cfg;
  cfg.min_corner = {-0.3, 0.6, 0.0};
  cfg.max_corner = {0.1, 1.0, 0.0};
  cfg.grid_size = 0.005;
  const auto res = locate_tag_multi_antenna(readings, cfg);
  EXPECT_LT(linalg::distance(res.position, tag), 0.02);
}

TEST(MultiAntennaHologram, OffsetCorrectionApplied) {
  // Give each antenna a distinct hardware offset; with offsets passed in,
  // the fix should match the clean case.
  const Vec3 tag{0.0, 0.7, 0.0};
  const double offsets[] = {1.1, 2.3, 0.4};
  std::vector<AntennaReading> readings;
  int k = 0;
  for (double x : {-0.3, 0.0, 0.3}) {
    AntennaReading r;
    r.antenna_position = {x, 0.0, 0.0};
    r.phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(tag, r.antenna_position)) +
        offsets[k]);
    r.offset = offsets[k];
    ++k;
    readings.push_back(r);
  }
  HologramConfig cfg;
  cfg.min_corner = {-0.2, 0.5, 0.0};
  cfg.max_corner = {0.2, 0.9, 0.0};
  cfg.grid_size = 0.005;
  const auto res = locate_tag_multi_antenna(readings, cfg);
  EXPECT_LT(linalg::distance(res.position, tag), 0.02);
}

TEST(MultiAntennaHologram, UncorrectedOffsetsBiasTheFix) {
  const Vec3 tag{0.0, 0.7, 0.0};
  const double offsets[] = {1.1, 2.9, 0.4};
  std::vector<AntennaReading> corrected;
  std::vector<AntennaReading> uncorrected;
  int k = 0;
  for (double x : {-0.3, 0.0, 0.3}) {
    AntennaReading r;
    r.antenna_position = {x, 0.0, 0.0};
    r.phase = rf::wrap_phase(
        rf::distance_phase(linalg::distance(tag, r.antenna_position)) +
        offsets[k]);
    AntennaReading u = r;
    r.offset = offsets[k];
    ++k;
    corrected.push_back(r);
    uncorrected.push_back(u);
  }
  HologramConfig cfg;
  cfg.min_corner = {-0.2, 0.5, 0.0};
  cfg.max_corner = {0.2, 0.9, 0.0};
  cfg.grid_size = 0.005;
  const auto good = locate_tag_multi_antenna(corrected, cfg);
  const auto bad = locate_tag_multi_antenna(uncorrected, cfg);
  EXPECT_LT(linalg::distance(good.position, tag),
            linalg::distance(bad.position, tag));
}

TEST(MultiAntennaHologram, RequiresTwoAntennas) {
  HologramConfig cfg;
  cfg.max_corner = {0.1, 0.1, 0.0};
  EXPECT_THROW(locate_tag_multi_antenna({AntennaReading{}}, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace lion::baseline
