#include "baseline/parabola.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::baseline {
namespace {

signal::PhaseProfile line_scan(const Vec3& target, double x0, double x1,
                               double sigma = 0.0, std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (double x = x0; x <= x1 + 1e-12; x += 0.005) {
    const Vec3 pos{x, 0.0, 0.0};
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.1 + rng.gaussian(sigma), 0.0});
  }
  return p;
}

TEST(Parabola, RecoversFootAndDepth) {
  const Vec3 target{0.05, 0.8, 0.0};
  // Narrow scan around the foot keeps the parabolic approximation honest.
  const auto profile = line_scan(target, -0.25, 0.35);
  ParabolaConfig cfg;
  cfg.side_hint = {0.0, 1.0, 0.0};
  const auto r = locate_parabola(profile, cfg);
  EXPECT_NEAR(r.s0 + 0.05, 0.05 + (r.s0 - (r.s0)), 1.0);  // sanity: finite
  EXPECT_NEAR(r.position[0], 0.05, 0.01);
  EXPECT_NEAR(r.position[1], 0.8, 0.03);
}

TEST(Parabola, SideHintSelectsHalfPlane) {
  const Vec3 target{0.0, -0.7, 0.0};
  const auto profile = line_scan(target, -0.3, 0.3);
  ParabolaConfig cfg;
  cfg.side_hint = {0.0, -1.0, 0.0};
  const auto r = locate_parabola(profile, cfg);
  EXPECT_LT(r.position[1], 0.0);
  EXPECT_NEAR(r.position[1], -0.7, 0.03);
}

TEST(Parabola, NoisyScanStillClose) {
  const Vec3 target{-0.1, 0.6, 0.0};
  const auto profile = line_scan(target, -0.4, 0.2, 0.05, 3);
  ParabolaConfig cfg;
  cfg.side_hint = {0.0, 1.0, 0.0};
  const auto r = locate_parabola(profile, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.06);
}

TEST(Parabola, DepthBiasGrowsWithWideScan) {
  // The quadratic approximation under-curves far from the foot, so a wide
  // scan biases the depth estimate — the known limitation of [8].
  const Vec3 target{0.0, 0.6, 0.0};
  ParabolaConfig cfg;
  cfg.side_hint = {0.0, 1.0, 0.0};
  const auto narrow = locate_parabola(line_scan(target, -0.15, 0.15), cfg);
  const auto wide = locate_parabola(line_scan(target, -0.6, 0.6), cfg);
  EXPECT_LT(std::abs(narrow.depth - 0.6), std::abs(wide.depth - 0.6));
}

TEST(Parabola, RequiresLinearScan) {
  signal::PhaseProfile circle;
  for (int i = 0; i < 60; ++i) {
    const double a = rf::kTwoPi * i / 60.0;
    circle.push_back({{0.3 * std::cos(a), 0.3 * std::sin(a), 0.0}, 0.0, 0.0});
  }
  EXPECT_THROW(locate_parabola(circle, {}), std::invalid_argument);
}

TEST(Parabola, RequiresPhaseValley) {
  // Target foot far outside the scan window: phase is monotonic, curvature
  // fit unusable.
  const Vec3 target{5.0, 0.3, 0.0};
  const auto profile = line_scan(target, -0.3, 0.3);
  EXPECT_THROW(locate_parabola(profile, {}), std::invalid_argument);
}

TEST(Parabola, RequiresThreeSamples) {
  signal::PhaseProfile two{{{0.0, 0.0, 0.0}, 0.0, 0.0},
                           {{0.1, 0.0, 0.0}, 0.1, 0.0}};
  EXPECT_THROW(locate_parabola(two, {}), std::invalid_argument);
}

TEST(Parabola, CurvatureMatchesTheory) {
  // a = 2*pi / (lambda * d0).
  const double d0 = 0.8;
  const auto profile = line_scan({0.0, d0, 0.0}, -0.2, 0.2);
  ParabolaConfig cfg;
  cfg.side_hint = {0.0, 1.0, 0.0};
  const auto r = locate_parabola(profile, cfg);
  const double expected = 2.0 * rf::kPi / (rf::kDefaultWavelength * d0);
  EXPECT_NEAR(r.curvature, expected, 0.08 * expected);
}

}  // namespace
}  // namespace lion::baseline
