#include "baseline/hyperbola.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/pairing.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::baseline {
namespace {

signal::PhaseProfile synthetic(const std::vector<Vec3>& positions,
                               const Vec3& target, double sigma = 0.0,
                               std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.4 + rng.gaussian(sigma), 0.0});
  }
  return p;
}

std::vector<Vec3> two_lines() {
  std::vector<Vec3> ps;
  for (double x = -0.5; x <= 0.5 + 1e-12; x += 0.01) {
    ps.push_back({x, 0.0, 0.0});
    ps.push_back({x, -0.2, 0.0});
  }
  return ps;
}

TEST(Hyperbola, ConvergesToTruthNoiseless) {
  const Vec3 target{0.1, 0.8, 0.0};
  const auto profile = synthetic(two_lines(), target);
  const auto pairs = core::spread_pairs(profile, 0.2, 500);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.0, 0.5, 0.0};
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-5);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-6);
}

TEST(Hyperbola, NoisyDataCentimetreAccuracy) {
  const Vec3 target{0.0, 0.9, 0.0};
  const auto profile = synthetic(two_lines(), target, 0.1, 9);
  const auto pairs = core::spread_pairs(profile, 0.2, 800);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.1, 0.6, 0.0};
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_LT(linalg::distance(r.position, target), 0.03);
}

TEST(Hyperbola, InsensitiveToReasonableInitialGuess) {
  const Vec3 target{-0.1, 0.7, 0.0};
  const auto profile = synthetic(two_lines(), target);
  const auto pairs = core::spread_pairs(profile, 0.2, 500);
  for (const Vec3 guess : {Vec3{0.0, 0.3, 0.0}, Vec3{0.3, 1.2, 0.0},
                           Vec3{-0.4, 0.5, 0.0}}) {
    HyperbolaConfig cfg;
    cfg.initial_guess = guess;
    const auto r = locate_hyperbola(profile, pairs, cfg);
    EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-4);
  }
}

TEST(Hyperbola, PlanarFlagKeepsZFixed) {
  const Vec3 target{0.0, 0.8, 0.0};
  const auto profile = synthetic(two_lines(), target);
  const auto pairs = core::spread_pairs(profile, 0.2, 300);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.0, 0.5, 0.123};
  cfg.planar = true;
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_DOUBLE_EQ(r.position[2], 0.123);
}

TEST(Hyperbola, ThreeDSolveWithThreeLineScan) {
  std::vector<Vec3> ps;
  for (double x = -0.5; x <= 0.5 + 1e-12; x += 0.01) {
    ps.push_back({x, 0.0, 0.0});
    ps.push_back({x, 0.0, 0.2});
    ps.push_back({x, -0.2, 0.0});
  }
  const Vec3 target{0.0, 0.8, 0.1};
  const auto profile = synthetic(ps, target);
  const auto pairs = core::spread_pairs(profile, 0.2, 800);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.0, 0.5, 0.0};
  cfg.planar = false;
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_NEAR(linalg::distance(r.position, target), 0.0, 1e-4);
}

TEST(Hyperbola, IterationsReported) {
  const auto profile = synthetic(two_lines(), {0.0, 0.8, 0.0});
  const auto pairs = core::spread_pairs(profile, 0.2, 200);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.2, 0.4, 0.0};
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_LE(r.iterations, cfg.max_iterations);
}

TEST(Hyperbola, ValidatesArguments) {
  const auto profile = synthetic(two_lines(), {0.0, 0.8, 0.0});
  HyperbolaConfig cfg;
  EXPECT_THROW(locate_hyperbola(profile, {}, cfg), std::invalid_argument);
  cfg.reference_index = 99999;
  EXPECT_THROW(
      locate_hyperbola(profile, core::spread_pairs(profile, 0.2, 10), cfg),
      std::invalid_argument);
}

TEST(Hyperbola, IterationCapStopsSolver) {
  const auto profile = synthetic(two_lines(), {0.0, 0.8, 0.0}, 0.1, 4);
  const auto pairs = core::spread_pairs(profile, 0.2, 200);
  HyperbolaConfig cfg;
  cfg.initial_guess = {0.0, 0.4, 0.0};
  cfg.max_iterations = 2;
  cfg.tolerance = 0.0;  // can never converge by tolerance
  const auto r = locate_hyperbola(profile, pairs, cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 2u);
}

}  // namespace
}  // namespace lion::baseline
