#include "baseline/tagspin.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::baseline {
namespace {

signal::PhaseProfile circular_scan(const Vec3& center, double radius,
                                   const Vec3& target, double sigma = 0.0,
                                   std::uint64_t seed = 1,
                                   std::size_t n = 180) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rf::kTwoPi * static_cast<double>(i) /
                     static_cast<double>(n);
    const Vec3 pos = center + Vec3{radius * std::cos(a),
                                   radius * std::sin(a), 0.0};
    const double d = linalg::distance(pos, target);
    p.push_back(
        {pos, rf::distance_phase(d) + 0.2 + rng.gaussian(sigma), 0.0});
  }
  return p;
}

TEST(Tagspin, RecoversBearingAndRange) {
  const Vec3 center{0.0, 0.0, 0.0};
  const Vec3 target{0.0, 0.7, 0.0};  // bearing pi/2, range 0.7
  const auto profile = circular_scan(center, 0.15, target);
  const auto r = locate_tagspin(profile, {});
  EXPECT_NEAR(r.range, 0.7, 0.02);
  EXPECT_LT(linalg::distance(r.position, target), 0.03);
}

TEST(Tagspin, WorksForVariousBearings) {
  const Vec3 center{0.0, 0.0, 0.0};
  for (double bearing : {0.0, 1.0, 2.5, 4.0}) {
    const Vec3 target{0.8 * std::cos(bearing), 0.8 * std::sin(bearing), 0.0};
    const auto profile = circular_scan(center, 0.15, target, 0.0,
                                       7 + static_cast<std::uint64_t>(
                                               bearing * 10));
    const auto r = locate_tagspin(profile, {});
    EXPECT_LT(linalg::distance(r.position, target), 0.05)
        << "bearing " << bearing;
  }
}

TEST(Tagspin, LargerRadiusImprovesAccuracy) {
  // Same noise, two rotation radii: the larger radius gives more phase
  // leverage (the paper's Fig. 21 trend).
  const Vec3 center{0.0, 0.0, 0.0};
  const Vec3 target{0.0, 0.7, 0.0};
  double err_small = 0.0;
  double err_large = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto small = circular_scan(center, 0.05, target, 0.1, seed);
    const auto large = circular_scan(center, 0.20, target, 0.1, seed);
    err_small += linalg::distance(locate_tagspin(small, {}).position, target);
    err_large += linalg::distance(locate_tagspin(large, {}).position, target);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(Tagspin, NoisyScanStillDecimetreOrBetter) {
  const Vec3 center{0.0, 0.0, 0.0};
  const Vec3 target{0.3, 0.6, 0.0};
  const auto profile = circular_scan(center, 0.2, target, 0.1, 21);
  const auto r = locate_tagspin(profile, {});
  EXPECT_LT(linalg::distance(r.position, target), 0.1);
}

TEST(Tagspin, RejectsNonCircularScan) {
  signal::PhaseProfile line;
  for (double x = -0.3; x <= 0.3; x += 0.01) {
    line.push_back({{x, 0.0, 0.0}, 0.0, 0.0});
  }
  EXPECT_THROW(locate_tagspin(line, {}), std::invalid_argument);
}

TEST(Tagspin, RejectsEllipticalScan) {
  signal::PhaseProfile ellipse;
  for (int i = 0; i < 90; ++i) {
    const double a = rf::kTwoPi * i / 90.0;
    ellipse.push_back({{0.3 * std::cos(a), 0.1 * std::sin(a), 0.0}, 0.0, 0.0});
  }
  EXPECT_THROW(locate_tagspin(ellipse, {}), std::invalid_argument);
}

TEST(Tagspin, RejectsTooFewSamples) {
  signal::PhaseProfile tiny;
  for (int i = 0; i < 5; ++i) {
    const double a = rf::kTwoPi * i / 5.0;
    tiny.push_back({{0.2 * std::cos(a), 0.2 * std::sin(a), 0.0}, 0.0, 0.0});
  }
  EXPECT_THROW(locate_tagspin(tiny, {}), std::invalid_argument);
}

TEST(Tagspin, RangeBracketRespected) {
  const Vec3 center{0.0, 0.0, 0.0};
  const Vec3 target{0.0, 0.9, 0.0};
  const auto profile = circular_scan(center, 0.15, target);
  TagspinConfig cfg;
  cfg.min_range = 0.3;
  cfg.max_range = 2.0;
  const auto r = locate_tagspin(profile, cfg);
  EXPECT_GE(r.range, 0.3);
  EXPECT_LE(r.range, 2.0);
}

}  // namespace
}  // namespace lion::baseline
