#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace lion::linalg {
namespace {

TEST(SymmetricEigen, DiagonalMatrixEigenvaluesSortedDescending) {
  const auto eig = symmetric_eigen(Matrix::diagonal({1.0, 5.0, 3.0}));
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const auto eig = symmetric_eigen(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eig.vectors(0, 0);
  const double v1 = eig.vectors(1, 0);
  EXPECT_NEAR(std::abs(v0), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(v0, v1, 1e-10);
}

TEST(SymmetricEigen, VectorsAreOrthonormal) {
  const Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  const auto eig = symmetric_eigen(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 3; ++r) {
        dot += eig.vectors(r, i) * eig.vectors(r, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  const Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  const auto eig = symmetric_eigen(a);
  Matrix recon(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) {
        s += eig.values[k] * eig.vectors(i, k) * eig.vectors(j, k);
      }
      recon(i, j) = s;
    }
  }
  EXPECT_TRUE(approx_equal(a, recon, 1e-10));
}

TEST(SymmetricEigen, SatisfiesEigenEquation) {
  const Matrix a{{5.0, 2.0}, {2.0, 1.0}};
  const auto eig = symmetric_eigen(a);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 2; ++r) {
      double av = 0.0;
      for (std::size_t c = 0; c < 2; ++c) av += a(r, c) * eig.vectors(c, k);
      EXPECT_NEAR(av, eig.values[k] * eig.vectors(r, k), 1e-10);
    }
  }
}

TEST(SymmetricEigen, TraceEqualsEigenvalueSum) {
  std::mt19937 gen(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      a(r, c) = dist(gen);
      a(c, r) = a(r, c);
    }
  }
  const auto eig = symmetric_eigen(a);
  double trace = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    trace += a(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(SymmetricEigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(SymmetricEigen, HandlesOneByOne) {
  const auto eig = symmetric_eigen(Matrix{{7.0}});
  EXPECT_NEAR(eig.values[0], 7.0, 1e-15);
  EXPECT_NEAR(eig.vectors(0, 0), 1.0, 1e-15);
}

TEST(SpdRank, FullRankCovariance) {
  const auto eig = symmetric_eigen(Matrix::diagonal({1.0, 0.5, 0.25}));
  EXPECT_EQ(spd_rank(eig), 3u);
}

TEST(SpdRank, DetectsRankDeficiency) {
  const auto eig = symmetric_eigen(Matrix::diagonal({1.0, 1e-14, 0.0}));
  EXPECT_EQ(spd_rank(eig), 1u);
}

TEST(SpdRank, RespectsTolerance) {
  const auto eig = symmetric_eigen(Matrix::diagonal({1.0, 1e-3}));
  EXPECT_EQ(spd_rank(eig, 1e-2), 1u);
  EXPECT_EQ(spd_rank(eig, 1e-4), 2u);
}

TEST(SpdRank, EmptyDecompositionIsRankZero) {
  EigenDecomposition empty;
  EXPECT_EQ(spd_rank(empty), 0u);
}

}  // namespace
}  // namespace lion::linalg
