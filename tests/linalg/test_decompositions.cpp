#include "linalg/decompositions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace lion::linalg {
namespace {

Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(gen);
  }
  Matrix spd = a.gram();  // A^T A is PSD
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;  // make it PD
  return spd;
}

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(gen);
  return v;
}

// ---------------------------------------------------------------- Cholesky

TEST(Cholesky, FactorsKnownMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->l()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->l()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->l()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const std::vector<double> x_true{1.0, -2.0};
  const auto b = a.multiply(x_true);
  const auto x = Cholesky::factor(a)->solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky::factor(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, SolveSizeMismatchThrows) {
  const auto chol = Cholesky::factor(Matrix::identity(2));
  ASSERT_TRUE(chol);
  EXPECT_THROW(chol->solve({1.0}), std::invalid_argument);
}

TEST(Cholesky, DeterminantOfKnownMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  EXPECT_NEAR(Cholesky::factor(a)->determinant(), 8.0, 1e-12);
}

TEST(Cholesky, RandomSpdRoundTrip) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    const Matrix a = random_spd(4, seed);
    const auto x_true = random_vector(4, seed + 100);
    const auto b = a.multiply(x_true);
    const auto x = Cholesky::factor(a)->solve(b);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// ------------------------------------------------------------ PartialPivLU

TEST(PartialPivLU, SolvesGeneralSystem) {
  const Matrix a{{0.0, 2.0}, {1.0, 1.0}};  // needs pivoting (a00 == 0)
  const auto lu = PartialPivLU::factor(a);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve({4.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(PartialPivLU, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(PartialPivLU::factor(a).has_value());
}

TEST(PartialPivLU, DeterminantWithPivotSign) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};  // det = -1
  EXPECT_NEAR(PartialPivLU::factor(a)->determinant(), -1.0, 1e-12);
}

TEST(PartialPivLU, RejectsNonSquare) {
  EXPECT_THROW(PartialPivLU::factor(Matrix(3, 2)), std::invalid_argument);
}

TEST(PartialPivLU, RandomRoundTrip) {
  std::mt19937 gen(77);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix a(5, 5);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) a(r, c) = dist(gen);
    }
    for (std::size_t i = 0; i < 5; ++i) a(i, i) += 3.0;  // well-conditioned
    const auto x_true = random_vector(5, 200 + trial);
    const auto b = a.multiply(x_true);
    const auto x = PartialPivLU::factor(a)->solve(b);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// ----------------------------------------------------------- HouseholderQR

TEST(HouseholderQR, SolvesSquareSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const HouseholderQR qr(a);
  const auto x = qr.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(HouseholderQR, LeastSquaresMatchesNormalEquations) {
  // Overdetermined consistent-ish system; compare against the closed form.
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  const std::vector<double> b{6.0, 5.0, 7.0, 10.0};
  const HouseholderQR qr(a);
  const auto x = qr.solve(b);
  // Classic linear regression: intercept 3.5, slope 1.4.
  EXPECT_NEAR(x[0], 3.5, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(HouseholderQR, ThrowsWhenUnderdetermined) {
  EXPECT_THROW(HouseholderQR(Matrix(2, 3)), std::invalid_argument);
}

TEST(HouseholderQR, ThrowsOnRankDeficientSolve) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const HouseholderQR qr(a);
  EXPECT_THROW(qr.solve({1.0, 2.0, 3.0}), std::domain_error);
}

TEST(HouseholderQR, ConditionEstimateOfIdentityIsOne) {
  const HouseholderQR qr(Matrix::identity(3));
  EXPECT_NEAR(qr.condition_estimate(), 1.0, 1e-12);
}

TEST(HouseholderQR, ConditionEstimateGrowsForSkewedMatrix) {
  const Matrix a{{1.0, 0.0}, {0.0, 1e-6}};
  EXPECT_GT(HouseholderQR(a).condition_estimate(), 1e5);
}

TEST(HouseholderQR, SolveSizeMismatchThrows) {
  const HouseholderQR qr(Matrix::identity(2));
  EXPECT_THROW(qr.solve({1.0}), std::invalid_argument);
}

// ------------------------------------------------------------------- misc

TEST(Inverse, InvertsKnownMatrix) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  EXPECT_TRUE(approx_equal(a * inv, Matrix::identity(2), 1e-12));
  EXPECT_TRUE(approx_equal(inv * a, Matrix::identity(2), 1e-12));
}

TEST(Inverse, ThrowsOnSingular) {
  EXPECT_THROW(inverse(Matrix{{1.0, 2.0}, {2.0, 4.0}}), std::domain_error);
}

TEST(SolveSquare, UsesCholeskyPathForSpd) {
  const Matrix a = random_spd(3, 9);
  const auto x_true = random_vector(3, 10);
  const auto x = solve_square(a, a.multiply(x_true));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveSquare, FallsBackToLuForIndefinite) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve_square(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveSquare, ThrowsOnSingular) {
  EXPECT_THROW(solve_square(Matrix{{1.0, 1.0}, {1.0, 1.0}}, {1.0, 1.0}),
               std::domain_error);
}

}  // namespace
}  // namespace lion::linalg
