// Metamorphic suite for the *weighted* IncrementalNormals kernels: the
// weighted rank-1 append/downdate and the in-place re-weight that back the
// incremental calibrate-flush solver. The accumulation contract mirrors
// the legacy weighted-gram term order, so the build-up test is bit-exact;
// the mutation round-trips (downdate, re-weight) are pinned at 1e-12
// relative like the unweighted suite.

#include "linalg/small.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"

namespace lion::linalg {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t p,
                     double scale = 1.0) {
  std::uniform_real_distribution<double> d(-scale, scale);
  Matrix a(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) a(i, j) = d(rng);
  }
  return a;
}

std::vector<double> random_vector(std::mt19937_64& rng, std::size_t n,
                                  double lo = -1.0, double hi = 1.0) {
  std::uniform_real_distribution<double> d(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

// Relative agreement of two packed grams / rhs vectors at `tol`.
void expect_close(const IncrementalNormals& got, const IncrementalNormals& ref,
                  double tol) {
  ASSERT_EQ(got.cols(), ref.cols());
  const std::size_t packed = got.cols() * (got.cols() + 1) / 2;
  for (std::size_t i = 0; i < packed; ++i) {
    const double scale = std::max(1.0, std::abs(ref.gram_packed()[i]));
    EXPECT_NEAR(got.gram_packed()[i], ref.gram_packed()[i], tol * scale)
        << "gram entry " << i;
  }
  for (std::size_t i = 0; i < got.cols(); ++i) {
    const double scale = std::max(1.0, std::abs(ref.rhs()[i]));
    EXPECT_NEAR(got.rhs()[i], ref.rhs()[i], tol * scale) << "rhs entry " << i;
  }
  EXPECT_NEAR(got.rhs_squared_sum(), ref.rhs_squared_sum(),
              tol * std::max(1.0, std::abs(ref.rhs_squared_sum())));
  EXPECT_NEAR(got.weight_sum(), ref.weight_sum(),
              tol * std::max(1.0, std::abs(ref.weight_sum())));
}

// ---------------------------------------------------------------------------
// Build-up: weighted appends in row order are bit-exact with the legacy
// Matrix::weighted_gram / weighted_transpose_multiply accumulation.
// ---------------------------------------------------------------------------

TEST(IncrementalWeighted, AppendWeightedMatchesWeightedGramBitExact) {
  std::mt19937_64 rng(11);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t n = p + 3 + static_cast<std::size_t>(trial % 17);
      const Matrix a = random_matrix(rng, n, p, 3.0);
      const auto b = random_vector(rng, n, -2.0, 2.0);
      const auto w = random_vector(rng, n, 0.0, 1.5);

      IncrementalNormals inc;
      inc.reset(p);
      std::vector<double> row(p);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        inc.append_weighted(row.data(), b[i], w[i]);
      }

      const Matrix wg = a.weighted_gram(w);
      const auto wtb = a.weighted_transpose_multiply(w, b);
      std::size_t idx = 0;
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = i; j < p; ++j) {
          EXPECT_EQ(inc.gram_packed()[idx++], wg(i, j))
              << "p=" << p << " trial=" << trial;
        }
        EXPECT_EQ(inc.rhs()[i], wtb[i]);
      }
      EXPECT_EQ(inc.rows(), n);
    }
  }
}

// ---------------------------------------------------------------------------
// Round-trips at 1e-12: append/downdate and re-weight cycles return the
// accumulator to a fresh accumulation of the surviving state.
// ---------------------------------------------------------------------------

TEST(IncrementalWeighted, AppendDowndateRoundTripAt1e12) {
  std::mt19937_64 rng(23);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 30; ++trial) {
      const std::size_t n = 20 + static_cast<std::size_t>(trial);
      const Matrix a = random_matrix(rng, n, p, 2.0);
      const auto b = random_vector(rng, n);
      const auto w = random_vector(rng, n, 0.1, 2.0);

      // Append everything, then downdate a random half.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::shuffle(order.begin(), order.end(), rng);
      const std::size_t drop = n / 2;

      IncrementalNormals inc;
      inc.reset(p);
      std::vector<double> row(p);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        inc.append_weighted(row.data(), b[i], w[i]);
      }
      for (std::size_t d = 0; d < drop; ++d) {
        const std::size_t i = order[d];
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        inc.downdate_weighted(row.data(), b[i], w[i]);
      }

      IncrementalNormals ref;
      ref.reset(p);
      for (std::size_t i = 0; i < n; ++i) {
        if (std::find(order.begin(), order.begin() + drop, i) !=
            order.begin() + drop) {
          continue;
        }
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        ref.append_weighted(row.data(), b[i], w[i]);
      }
      ASSERT_EQ(inc.rows(), ref.rows());
      expect_close(inc, ref, 1e-12);
    }
  }
}

TEST(IncrementalWeighted, ReweightMatchesDowndateAppendBitExact) {
  std::mt19937_64 rng(31);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t n = 24;
    const Matrix a = random_matrix(rng, n, p, 2.0);
    const auto b = random_vector(rng, n);
    const auto w0 = random_vector(rng, n, 0.1, 1.0);
    const auto w1 = random_vector(rng, n, 0.1, 1.0);

    IncrementalNormals fused;
    IncrementalNormals split;
    fused.reset(p);
    split.reset(p);
    std::vector<double> row(p);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      fused.append_weighted(row.data(), b[i], w0[i]);
      split.append_weighted(row.data(), b[i], w0[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      fused.reweight(row.data(), b[i], w0[i], w1[i]);
      split.downdate_weighted(row.data(), b[i], w0[i]);
      split.append_weighted(row.data(), b[i], w1[i]);
    }
    const std::size_t packed = p * (p + 1) / 2;
    for (std::size_t i = 0; i < packed; ++i) {
      EXPECT_EQ(fused.gram_packed()[i], split.gram_packed()[i]);
    }
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(fused.rhs()[i], split.rhs()[i]);
    }
    EXPECT_EQ(fused.rhs_squared_sum(), split.rhs_squared_sum());
    // reweight leaves the row count alone; the split path round-trips it.
    EXPECT_EQ(fused.rows(), split.rows());
  }
}

TEST(IncrementalWeighted, ReweightCycleRoundTripAt1e12) {
  std::mt19937_64 rng(41);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t n = 30;
    const Matrix a = random_matrix(rng, n, p, 2.0);
    const auto b = random_vector(rng, n);
    const auto w = random_vector(rng, n, 0.1, 2.0);
    const auto w_mid = random_vector(rng, n, 0.1, 2.0);

    IncrementalNormals inc;
    IncrementalNormals ref;
    inc.reset(p);
    ref.reset(p);
    std::vector<double> row(p);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.append_weighted(row.data(), b[i], w[i]);
      ref.append_weighted(row.data(), b[i], w[i]);
    }
    // Perturb every weight and restore it: w -> w_mid -> w.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.reweight(row.data(), b[i], w[i], w_mid[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.reweight(row.data(), b[i], w_mid[i], w[i]);
    }
    expect_close(inc, ref, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Order invariance: the accumulated state is a sum, so shuffling the rows
// (carrying each row's weight with it) only reorders the additions.
// ---------------------------------------------------------------------------

TEST(IncrementalWeighted, RowShuffleWithWeightPermutationInvariance) {
  std::mt19937_64 rng(53);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 25 + static_cast<std::size_t>(trial);
      const Matrix a = random_matrix(rng, n, p, 2.0);
      const auto b = random_vector(rng, n);
      const auto w = random_vector(rng, n, 0.0, 2.0);
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::shuffle(order.begin(), order.end(), rng);

      IncrementalNormals fwd;
      IncrementalNormals shuffled;
      fwd.reset(p);
      shuffled.reset(p);
      std::vector<double> row(p);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        fwd.append_weighted(row.data(), b[i], w[i]);
      }
      for (std::size_t s = 0; s < n; ++s) {
        const std::size_t i = order[s];
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        shuffled.append_weighted(row.data(), b[i], w[i]);
      }
      expect_close(shuffled, fwd, 1e-12);

      // Permuting the weights *without* the rows is not an invariance:
      // it changes which equation each weight trusts, so the solutions
      // must differ for a generic system (guards against a kernel that
      // ignores its weight argument).
      IncrementalNormals mismatched;
      mismatched.reset(p);
      bool permutation_moves_weight = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (std::abs(w[order[i]] - w[i]) > 1e-3) {
          permutation_moves_weight = true;
        }
        for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
        mismatched.append_weighted(row.data(), b[i], w[order[i]]);
      }
      if (permutation_moves_weight) {
        double x_fwd[kSmallMaxCols];
        double x_mis[kSmallMaxCols];
        if (fwd.solve(x_fwd) && mismatched.solve(x_mis)) {
          double diff = 0.0;
          for (std::size_t c = 0; c < p; ++c) {
            diff = std::max(diff, std::abs(x_fwd[c] - x_mis[c]));
          }
          EXPECT_GT(diff, 1e-9);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate weights: the gate behavior the calibrate solver relies on.
// ---------------------------------------------------------------------------

TEST(IncrementalWeighted, AllZeroWeightsRejectSolve) {
  std::mt19937_64 rng(67);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t n = 16;
    const Matrix a = random_matrix(rng, n, p, 2.0);
    const auto b = random_vector(rng, n);
    IncrementalNormals inc;
    inc.reset(p);
    std::vector<double> row(p);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.append_weighted(row.data(), b[i], 0.0);
    }
    EXPECT_EQ(inc.rows(), n);
    EXPECT_EQ(inc.weight_sum(), 0.0);
    double x[kSmallMaxCols];
    EXPECT_FALSE(inc.solve(x)) << "zero gram must not factor (p=" << p << ")";
  }
}

TEST(IncrementalWeighted, SingleInlierWeightRejectsSolve) {
  // One surviving weight leaves a rank-1 gram: Cholesky must reject it
  // rather than hallucinate a solution from one equation.
  std::mt19937_64 rng(71);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t n = 16;
    const Matrix a = random_matrix(rng, n, p, 2.0);
    const auto b = random_vector(rng, n);
    IncrementalNormals inc;
    inc.reset(p);
    std::vector<double> row(p);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.append_weighted(row.data(), b[i], i == 3 ? 1.0 : 0.0);
    }
    EXPECT_EQ(inc.weight_sum(), 1.0);
    double x[kSmallMaxCols];
    EXPECT_FALSE(inc.solve(x)) << "rank-1 gram must not factor (p=" << p
                               << ")";
  }
}

TEST(IncrementalWeighted, WeightedRssMatchesDirectSum) {
  std::mt19937_64 rng(83);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t n = 32;
    const Matrix a = random_matrix(rng, n, p, 2.0);
    const auto b = random_vector(rng, n);
    const auto w = random_vector(rng, n, 0.0, 2.0);
    IncrementalNormals inc;
    inc.reset(p);
    std::vector<double> row(p);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.append_weighted(row.data(), b[i], w[i]);
    }
    double x[kSmallMaxCols];
    ASSERT_TRUE(inc.solve(x));
    double direct = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double r = -b[i];
      for (std::size_t j = 0; j < p; ++j) r += a(i, j) * x[j];
      direct += w[i] * r * r;
    }
    EXPECT_NEAR(inc.weighted_rss(x), direct,
                1e-9 * std::max(1.0, direct));
  }
}

TEST(IncrementalWeighted, ReweightChurnRaisesCancellation) {
  std::mt19937_64 rng(97);
  const std::size_t p = 4;
  const std::size_t n = 20;
  const Matrix a = random_matrix(rng, n, p, 2.0);
  const auto b = random_vector(rng, n);
  IncrementalNormals inc;
  inc.reset(p);
  std::vector<double> row(p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
    inc.append_weighted(row.data(), b[i], 1.0);
  }
  const double before = inc.cancellation();
  // Every re-weight adds traffic without adding surviving mass beyond the
  // final weights, so the cancellation ratio must grow monotonically —
  // the rebuild gate the calibrate solver checks.
  double prev = before;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) row[j] = a(i, j);
      inc.reweight(row.data(), b[i], 1.0, 1.0);
    }
    const double now = inc.cancellation();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_GT(prev, before);
}

}  // namespace
}  // namespace lion::linalg
