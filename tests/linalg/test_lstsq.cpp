#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/small.hpp"
#include "linalg/stats.hpp"

namespace lion::linalg {
namespace {

TEST(LeastSquares, ExactSystemHasZeroResiduals) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{2.0, 3.0, 5.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
  EXPECT_NEAR(r.x[1], 3.0, 1e-12);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-12);
  EXPECT_NEAR(r.mean_residual, 0.0, 1e-12);
}

TEST(LeastSquares, LinearRegressionClosedForm) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  const std::vector<double> b{6.0, 5.0, 7.0, 10.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.5, 1e-12);
  EXPECT_NEAR(r.x[1], 1.4, 1e-12);
}

TEST(LeastSquares, ResidualsMatchDefinition) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{1.0, 2.0, 6.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.0, 1e-12);  // mean
  ASSERT_EQ(r.residuals.size(), 3u);
  EXPECT_NEAR(r.residuals[0], 2.0, 1e-12);
  EXPECT_NEAR(r.residuals[1], 1.0, 1e-12);
  EXPECT_NEAR(r.residuals[2], -3.0, 1e-12);
}

TEST(LeastSquares, OlsWeightsAreAllOne) {
  const Matrix a{{1.0}, {2.0}};
  const auto r = solve_least_squares(a, {1.0, 2.0});
  EXPECT_EQ(r.weights, (std::vector<double>{1.0, 1.0}));
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(1, 2), {1.0}), std::domain_error);
}

TEST(LeastSquares, RhsSizeMismatchThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(3, 2), {1.0}),
               std::invalid_argument);
}

TEST(LeastSquares, RankDeficientFallsToQrAndThrows) {
  // Two identical columns: no unique solution even via QR.
  const Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), std::domain_error);
}

TEST(WeightedLeastSquares, ZeroWeightIgnoresRow) {
  // Three observations of a constant; the wild third one has zero weight.
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{2.0, 2.0, 100.0};
  const auto r = solve_weighted_least_squares(a, b, {1.0, 1.0, 0.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
}

TEST(WeightedLeastSquares, MatchesClosedFormWeightedMean) {
  const Matrix a{{1.0}, {1.0}};
  const std::vector<double> b{0.0, 10.0};
  const auto r = solve_weighted_least_squares(a, b, {3.0, 1.0});
  EXPECT_NEAR(r.x[0], 2.5, 1e-12);  // (3*0 + 1*10) / 4
}

TEST(WeightedLeastSquares, UniformWeightsMatchOls) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const std::vector<double> b{1.0, 2.0, 2.5};
  const auto ols = solve_least_squares(a, b);
  const auto wls = solve_weighted_least_squares(a, b, {2.0, 2.0, 2.0});
  EXPECT_NEAR(ols.x[0], wls.x[0], 1e-12);
  EXPECT_NEAR(ols.x[1], wls.x[1], 1e-12);
}

TEST(WeightedLeastSquares, SizeMismatchThrows) {
  EXPECT_THROW(
      solve_weighted_least_squares(Matrix(2, 1), {1.0, 2.0}, {1.0}),
      std::invalid_argument);
}

TEST(GaussianResidualWeights, CleanResidualGetsHighWeight) {
  // One outlier among small residuals.
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 5.0};
  const auto w = gaussian_residual_weights(residuals);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(w[i], w[4]);
  EXPECT_LT(w[4], 0.2);
}

TEST(GaussianResidualWeights, AllWeightsInUnitInterval) {
  const auto w = gaussian_residual_weights({1.0, -2.0, 0.5, 0.0});
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GaussianResidualWeights, EqualResidualsGetWeightOne) {
  // Degenerate spread: sigma floored, all residuals at the mean.
  const auto w = gaussian_residual_weights({0.5, 0.5, 0.5});
  for (double v : w) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Irls, ConvergesOnCleanData) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  std::vector<double> b{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x exactly
  const auto r = solve_irls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(Irls, DownweightsOutlier) {
  // y = 2x with one corrupted observation; IRLS should sit closer to the
  // clean slope than OLS does.
  Matrix a(9, 1);
  std::vector<double> b(9);
  for (std::size_t i = 0; i < 9; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    b[i] = 2.0 * static_cast<double>(i + 1);
  }
  b[4] += 30.0;  // outlier
  const auto ols = solve_least_squares(a, b);
  const auto irls = solve_irls(a, b);
  EXPECT_LT(std::abs(irls.x[0] - 2.0), std::abs(ols.x[0] - 2.0));
}

TEST(Irls, OutlierWeightIsSmallest) {
  Matrix a(7, 1);
  std::vector<double> b(7);
  for (std::size_t i = 0; i < 7; ++i) {
    a(i, 0) = 1.0;
    b[i] = 1.0;
  }
  b[3] = 50.0;
  const auto r = solve_irls(a, b);
  const auto min_it = std::min_element(r.weights.begin(), r.weights.end());
  EXPECT_EQ(std::distance(r.weights.begin(), min_it), 3);
}

TEST(Irls, RespectsIterationCap) {
  IrlsOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;  // never converges by tolerance
  Matrix a(4, 1);
  std::vector<double> b{1.0, 2.0, 3.0, 10.0};
  for (std::size_t i = 0; i < 4; ++i) a(i, 0) = 1.0;
  const auto r = solve_irls(a, b, opts);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_FALSE(r.converged);
}

TEST(Irls, ReportsIterationCount) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const auto r = solve_irls(a, {1.0, 1.0, 1.0});
  EXPECT_GE(r.iterations, 1u);
  EXPECT_TRUE(r.converged);
}

TEST(RobustWeights, HuberKeepsSmallResidualsAtFullWeight) {
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 5.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kHuber);
  ASSERT_EQ(w.size(), residuals.size());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(w[i], 1.0);
  EXPECT_LT(w[4], 0.1);
}

TEST(RobustWeights, TukeyZerosGrossOutliers) {
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 0.02, 50.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kTukey);
  EXPECT_EQ(w.back(), 0.0);
  for (std::size_t i = 0; i + 1 < w.size(); ++i) EXPECT_GT(w[i], 0.5);
}

TEST(RobustWeights, ScaleInvariant) {
  // MAD normalization: multiplying every residual by a constant must not
  // change the weights.
  const std::vector<double> r1{0.1, -0.2, 0.15, -0.1, 3.0};
  std::vector<double> r2 = r1;
  for (auto& v : r2) v *= 1000.0;
  const auto w1 = robust_residual_weights(r1, RobustLoss::kHuber);
  const auto w2 = robust_residual_weights(r2, RobustLoss::kHuber);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w2[i], 1e-12);
  }
}

TEST(RobustWeights, TukeyAllZeroFallsBackToHuber) {
  // Identical residual magnitudes make MAD zero; the guard must not return
  // an all-zero weight vector that would make the refit singular.
  const std::vector<double> residuals{1.0, 1.0, 1.0, 1.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kTukey);
  double total = 0.0;
  for (const double v : w) total += v;
  EXPECT_GT(total, 0.0);
}

TEST(Irls, HuberLossRecoversFromCoherentBlock) {
  // Scattered-outlier robustness is shared; the block case is where the
  // Gaussian weighting (centered on the poisoned OLS fit) struggles most.
  Matrix a(30, 1);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = 1.0;
    b[i] = 2.0;
  }
  for (std::size_t i = 0; i < 6; ++i) b[i] = 12.0;
  IrlsOptions huber;
  huber.loss = RobustLoss::kHuber;
  const auto r = solve_irls(a, b, huber);
  EXPECT_NEAR(r.x[0], 2.0, 0.2);
}

TEST(Irls, TukeyLossIgnoresCoherentBlockCompletely) {
  Matrix a(30, 1);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = 1.0;
    b[i] = 2.0;
  }
  for (std::size_t i = 0; i < 6; ++i) b[i] = 12.0;
  IrlsOptions tukey;
  tukey.loss = RobustLoss::kTukey;
  const auto r = solve_irls(a, b, tukey);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(RobustLossNames, AreStable) {
  EXPECT_STREQ(robust_loss_name(RobustLoss::kGaussian), "gaussian");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kHuber), "huber");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kTukey), "tukey");
}

TEST(SolveStatusNames, AreStable) {
  EXPECT_STREQ(solve_status_name(SolveStatus::kOk), "ok");
  EXPECT_STREQ(solve_status_name(SolveStatus::kUnderdetermined),
               "underdetermined");
  EXPECT_STREQ(solve_status_name(SolveStatus::kRankDeficient),
               "rank_deficient");
}

TEST(LeastSquares, SolutionOnlyEntryMatchesFullSolveBitExact) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int trial = 0; trial < 25; ++trial) {
    Matrix a(12, 3);
    std::vector<double> b(12);
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 3; ++j) a(i, j) = d(rng);
      b[i] = d(rng);
    }
    const auto full = solve_least_squares(a, b);
    const auto sol = solve_least_squares_solution(a, b);
    ASSERT_EQ(sol.size(), full.x.size());
    for (std::size_t i = 0; i < sol.size(); ++i) EXPECT_EQ(sol[i], full.x[i]);
  }
  // Same failure modes as the diagnostic entry point.
  EXPECT_THROW(solve_least_squares_solution(Matrix(1, 2), {1.0}),
               std::domain_error);
  EXPECT_THROW(solve_least_squares_solution(Matrix(3, 2), {1.0}),
               std::invalid_argument);
}

TEST(LeastSquares, TrySolveStatusMatchesThrowingPath) {
  std::vector<double> x;
  EXPECT_EQ(try_solve_least_squares(Matrix(1, 2), {1.0}, x),
            SolveStatus::kUnderdetermined);

  // Identical columns: the throwing path raises domain_error, the status
  // path reports kRankDeficient — same systems, same classification.
  const Matrix deficient{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW(solve_least_squares(deficient, b), std::domain_error);
  EXPECT_EQ(try_solve_least_squares(deficient, b, x),
            SolveStatus::kRankDeficient);

  const Matrix ok{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> bo{2.0, 3.0, 5.0};
  ASSERT_EQ(try_solve_least_squares(ok, bo, x), SolveStatus::kOk);
  const auto ref = solve_least_squares(ok, bo);
  ASSERT_EQ(x.size(), ref.x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], ref.x[i]);

  // A rhs size mismatch is a caller bug, not a data property: still throws.
  EXPECT_THROW(try_solve_least_squares(Matrix(3, 2), {1.0}, x),
               std::invalid_argument);
}

TEST(RobustWeights, TukeyHardZerosSurviveLargeMinSigma) {
  // Regression for the weight-mass gate: the old check compared the total
  // weight mass against min_sigma — a residual *scale* in measurement
  // units — so a large scale floor silently replaced valid Tukey weights
  // with Huber ones. The gate is now a dimensionless mean-weight floor
  // (kMinMeanRobustWeight); total mass 3.0 < min_sigma 6.0 must keep the
  // Tukey weights, hard zeros included.
  const std::vector<double> residuals{0.0, 0.0, 0.0, 50.0, -50.0};
  const auto w =
      robust_residual_weights(residuals, RobustLoss::kTukey, 0.0, 6.0);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w[0], 1.0);  // at the median: weight 1
  EXPECT_EQ(w[1], 1.0);
  EXPECT_EQ(w[2], 1.0);
  EXPECT_EQ(w[3], 0.0);  // |z| = 50/6 beyond the 4.685 cutoff: rejected
  EXPECT_EQ(w[4], 0.0);
}

TEST(RobustWeights, AllRejectingTukeyStillFallsBackToHuber) {
  // Every row beyond a tiny tuning cutoff: the whole system would be
  // zeroed, so the Huber weights (never zero) must take over.
  const std::vector<double> residuals{1.0, 2.0, 4.0, 5.0};
  const auto w =
      robust_residual_weights(residuals, RobustLoss::kTukey, 0.1, 1e-12);
  ASSERT_EQ(w.size(), 4u);
  for (double v : w) EXPECT_GT(v, 0.0);
}

TEST(Irls, WorkspaceOverloadBitIdenticalAcrossLosses) {
  std::mt19937 rng(33);
  std::uniform_real_distribution<double> d(-1.5, 1.5);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (RobustLoss loss :
         {RobustLoss::kGaussian, RobustLoss::kHuber, RobustLoss::kTukey}) {
      Matrix a(24, p);
      std::vector<double> b(24);
      for (std::size_t i = 0; i < 24; ++i) {
        for (std::size_t j = 0; j < p; ++j) a(i, j) = d(rng);
        b[i] = d(rng) + (i % 7 == 0 ? 4.0 : 0.0);  // a few outliers
      }
      IrlsOptions opt;
      opt.loss = loss;

      const auto legacy = solve_irls(a, b, opt);
      SolverWorkspace ws;
      LstsqResult got;
      solve_irls(a, b, opt, ws, got);

      EXPECT_EQ(got.x, legacy.x);
      EXPECT_EQ(got.residuals, legacy.residuals);
      EXPECT_EQ(got.weights, legacy.weights);
      EXPECT_EQ(got.mean_residual, legacy.mean_residual);
      EXPECT_EQ(got.rms_residual, legacy.rms_residual);
      EXPECT_EQ(got.iterations, legacy.iterations);
      EXPECT_EQ(got.converged, legacy.converged);
    }
  }
}

TEST(Irls, MaskedSolveMatchesMaterializedSubsystemBitExact) {
  std::mt19937 rng(34);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  const std::size_t n = 40;
  const std::size_t p = 3;
  Matrix a(n, p);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) a(i, j) = d(rng);
    b[i] = d(rng);
  }
  std::vector<char> mask(n, 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += (mask[i] = (i % 3 != 0));

  Matrix sub(count, p);
  std::vector<double> sub_b(count);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    for (std::size_t j = 0; j < p; ++j) sub(r, j) = a(i, j);
    sub_b[r] = b[i];
    ++r;
  }

  IrlsOptions opt;
  opt.loss = RobustLoss::kHuber;
  const auto ref = solve_irls(sub, sub_b, opt);

  SolverWorkspace ws;
  ws.load(a, b);
  LstsqResult got;
  ASSERT_EQ(solve_irls_masked(ws, mask.data(), count, opt, got),
            SolveStatus::kOk);
  EXPECT_EQ(got.x, ref.x);
  EXPECT_EQ(got.residuals, ref.residuals);
  EXPECT_EQ(got.weights, ref.weights);
  EXPECT_EQ(got.mean_residual, ref.mean_residual);
  EXPECT_EQ(got.rms_residual, ref.rms_residual);
  EXPECT_EQ(got.iterations, ref.iterations);
  EXPECT_EQ(got.converged, ref.converged);
}

TEST(Irls, MaskedSolveReportsUnderdeterminedStatus) {
  SolverWorkspace ws;
  ws.load(Matrix(5, 3), std::vector<double>(5, 0.0));
  const std::vector<char> mask{1, 1, 0, 0, 0};
  LstsqResult out;
  EXPECT_EQ(solve_irls_masked(ws, mask.data(), 2, {}, out),
            SolveStatus::kUnderdetermined);
}

}  // namespace
}  // namespace lion::linalg
