#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/stats.hpp"

namespace lion::linalg {
namespace {

TEST(LeastSquares, ExactSystemHasZeroResiduals) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{2.0, 3.0, 5.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
  EXPECT_NEAR(r.x[1], 3.0, 1e-12);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-12);
  EXPECT_NEAR(r.mean_residual, 0.0, 1e-12);
}

TEST(LeastSquares, LinearRegressionClosedForm) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  const std::vector<double> b{6.0, 5.0, 7.0, 10.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.5, 1e-12);
  EXPECT_NEAR(r.x[1], 1.4, 1e-12);
}

TEST(LeastSquares, ResidualsMatchDefinition) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{1.0, 2.0, 6.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.0, 1e-12);  // mean
  ASSERT_EQ(r.residuals.size(), 3u);
  EXPECT_NEAR(r.residuals[0], 2.0, 1e-12);
  EXPECT_NEAR(r.residuals[1], 1.0, 1e-12);
  EXPECT_NEAR(r.residuals[2], -3.0, 1e-12);
}

TEST(LeastSquares, OlsWeightsAreAllOne) {
  const Matrix a{{1.0}, {2.0}};
  const auto r = solve_least_squares(a, {1.0, 2.0});
  EXPECT_EQ(r.weights, (std::vector<double>{1.0, 1.0}));
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(1, 2), {1.0}), std::domain_error);
}

TEST(LeastSquares, RhsSizeMismatchThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(3, 2), {1.0}),
               std::invalid_argument);
}

TEST(LeastSquares, RankDeficientFallsToQrAndThrows) {
  // Two identical columns: no unique solution even via QR.
  const Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), std::domain_error);
}

TEST(WeightedLeastSquares, ZeroWeightIgnoresRow) {
  // Three observations of a constant; the wild third one has zero weight.
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{2.0, 2.0, 100.0};
  const auto r = solve_weighted_least_squares(a, b, {1.0, 1.0, 0.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
}

TEST(WeightedLeastSquares, MatchesClosedFormWeightedMean) {
  const Matrix a{{1.0}, {1.0}};
  const std::vector<double> b{0.0, 10.0};
  const auto r = solve_weighted_least_squares(a, b, {3.0, 1.0});
  EXPECT_NEAR(r.x[0], 2.5, 1e-12);  // (3*0 + 1*10) / 4
}

TEST(WeightedLeastSquares, UniformWeightsMatchOls) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const std::vector<double> b{1.0, 2.0, 2.5};
  const auto ols = solve_least_squares(a, b);
  const auto wls = solve_weighted_least_squares(a, b, {2.0, 2.0, 2.0});
  EXPECT_NEAR(ols.x[0], wls.x[0], 1e-12);
  EXPECT_NEAR(ols.x[1], wls.x[1], 1e-12);
}

TEST(WeightedLeastSquares, SizeMismatchThrows) {
  EXPECT_THROW(
      solve_weighted_least_squares(Matrix(2, 1), {1.0, 2.0}, {1.0}),
      std::invalid_argument);
}

TEST(GaussianResidualWeights, CleanResidualGetsHighWeight) {
  // One outlier among small residuals.
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 5.0};
  const auto w = gaussian_residual_weights(residuals);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(w[i], w[4]);
  EXPECT_LT(w[4], 0.2);
}

TEST(GaussianResidualWeights, AllWeightsInUnitInterval) {
  const auto w = gaussian_residual_weights({1.0, -2.0, 0.5, 0.0});
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GaussianResidualWeights, EqualResidualsGetWeightOne) {
  // Degenerate spread: sigma floored, all residuals at the mean.
  const auto w = gaussian_residual_weights({0.5, 0.5, 0.5});
  for (double v : w) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Irls, ConvergesOnCleanData) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  std::vector<double> b{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x exactly
  const auto r = solve_irls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(Irls, DownweightsOutlier) {
  // y = 2x with one corrupted observation; IRLS should sit closer to the
  // clean slope than OLS does.
  Matrix a(9, 1);
  std::vector<double> b(9);
  for (std::size_t i = 0; i < 9; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    b[i] = 2.0 * static_cast<double>(i + 1);
  }
  b[4] += 30.0;  // outlier
  const auto ols = solve_least_squares(a, b);
  const auto irls = solve_irls(a, b);
  EXPECT_LT(std::abs(irls.x[0] - 2.0), std::abs(ols.x[0] - 2.0));
}

TEST(Irls, OutlierWeightIsSmallest) {
  Matrix a(7, 1);
  std::vector<double> b(7);
  for (std::size_t i = 0; i < 7; ++i) {
    a(i, 0) = 1.0;
    b[i] = 1.0;
  }
  b[3] = 50.0;
  const auto r = solve_irls(a, b);
  const auto min_it = std::min_element(r.weights.begin(), r.weights.end());
  EXPECT_EQ(std::distance(r.weights.begin(), min_it), 3);
}

TEST(Irls, RespectsIterationCap) {
  IrlsOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;  // never converges by tolerance
  Matrix a(4, 1);
  std::vector<double> b{1.0, 2.0, 3.0, 10.0};
  for (std::size_t i = 0; i < 4; ++i) a(i, 0) = 1.0;
  const auto r = solve_irls(a, b, opts);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_FALSE(r.converged);
}

TEST(Irls, ReportsIterationCount) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const auto r = solve_irls(a, {1.0, 1.0, 1.0});
  EXPECT_GE(r.iterations, 1u);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace lion::linalg
