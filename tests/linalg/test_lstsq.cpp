#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/stats.hpp"

namespace lion::linalg {
namespace {

TEST(LeastSquares, ExactSystemHasZeroResiduals) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{2.0, 3.0, 5.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
  EXPECT_NEAR(r.x[1], 3.0, 1e-12);
  EXPECT_NEAR(r.rms_residual, 0.0, 1e-12);
  EXPECT_NEAR(r.mean_residual, 0.0, 1e-12);
}

TEST(LeastSquares, LinearRegressionClosedForm) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  const std::vector<double> b{6.0, 5.0, 7.0, 10.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.5, 1e-12);
  EXPECT_NEAR(r.x[1], 1.4, 1e-12);
}

TEST(LeastSquares, ResidualsMatchDefinition) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{1.0, 2.0, 6.0};
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.x[0], 3.0, 1e-12);  // mean
  ASSERT_EQ(r.residuals.size(), 3u);
  EXPECT_NEAR(r.residuals[0], 2.0, 1e-12);
  EXPECT_NEAR(r.residuals[1], 1.0, 1e-12);
  EXPECT_NEAR(r.residuals[2], -3.0, 1e-12);
}

TEST(LeastSquares, OlsWeightsAreAllOne) {
  const Matrix a{{1.0}, {2.0}};
  const auto r = solve_least_squares(a, {1.0, 2.0});
  EXPECT_EQ(r.weights, (std::vector<double>{1.0, 1.0}));
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(1, 2), {1.0}), std::domain_error);
}

TEST(LeastSquares, RhsSizeMismatchThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(3, 2), {1.0}),
               std::invalid_argument);
}

TEST(LeastSquares, RankDeficientFallsToQrAndThrows) {
  // Two identical columns: no unique solution even via QR.
  const Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), std::domain_error);
}

TEST(WeightedLeastSquares, ZeroWeightIgnoresRow) {
  // Three observations of a constant; the wild third one has zero weight.
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const std::vector<double> b{2.0, 2.0, 100.0};
  const auto r = solve_weighted_least_squares(a, b, {1.0, 1.0, 0.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
}

TEST(WeightedLeastSquares, MatchesClosedFormWeightedMean) {
  const Matrix a{{1.0}, {1.0}};
  const std::vector<double> b{0.0, 10.0};
  const auto r = solve_weighted_least_squares(a, b, {3.0, 1.0});
  EXPECT_NEAR(r.x[0], 2.5, 1e-12);  // (3*0 + 1*10) / 4
}

TEST(WeightedLeastSquares, UniformWeightsMatchOls) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const std::vector<double> b{1.0, 2.0, 2.5};
  const auto ols = solve_least_squares(a, b);
  const auto wls = solve_weighted_least_squares(a, b, {2.0, 2.0, 2.0});
  EXPECT_NEAR(ols.x[0], wls.x[0], 1e-12);
  EXPECT_NEAR(ols.x[1], wls.x[1], 1e-12);
}

TEST(WeightedLeastSquares, SizeMismatchThrows) {
  EXPECT_THROW(
      solve_weighted_least_squares(Matrix(2, 1), {1.0, 2.0}, {1.0}),
      std::invalid_argument);
}

TEST(GaussianResidualWeights, CleanResidualGetsHighWeight) {
  // One outlier among small residuals.
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 5.0};
  const auto w = gaussian_residual_weights(residuals);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(w[i], w[4]);
  EXPECT_LT(w[4], 0.2);
}

TEST(GaussianResidualWeights, AllWeightsInUnitInterval) {
  const auto w = gaussian_residual_weights({1.0, -2.0, 0.5, 0.0});
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GaussianResidualWeights, EqualResidualsGetWeightOne) {
  // Degenerate spread: sigma floored, all residuals at the mean.
  const auto w = gaussian_residual_weights({0.5, 0.5, 0.5});
  for (double v : w) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Irls, ConvergesOnCleanData) {
  const Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  std::vector<double> b{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x exactly
  const auto r = solve_irls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(Irls, DownweightsOutlier) {
  // y = 2x with one corrupted observation; IRLS should sit closer to the
  // clean slope than OLS does.
  Matrix a(9, 1);
  std::vector<double> b(9);
  for (std::size_t i = 0; i < 9; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    b[i] = 2.0 * static_cast<double>(i + 1);
  }
  b[4] += 30.0;  // outlier
  const auto ols = solve_least_squares(a, b);
  const auto irls = solve_irls(a, b);
  EXPECT_LT(std::abs(irls.x[0] - 2.0), std::abs(ols.x[0] - 2.0));
}

TEST(Irls, OutlierWeightIsSmallest) {
  Matrix a(7, 1);
  std::vector<double> b(7);
  for (std::size_t i = 0; i < 7; ++i) {
    a(i, 0) = 1.0;
    b[i] = 1.0;
  }
  b[3] = 50.0;
  const auto r = solve_irls(a, b);
  const auto min_it = std::min_element(r.weights.begin(), r.weights.end());
  EXPECT_EQ(std::distance(r.weights.begin(), min_it), 3);
}

TEST(Irls, RespectsIterationCap) {
  IrlsOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;  // never converges by tolerance
  Matrix a(4, 1);
  std::vector<double> b{1.0, 2.0, 3.0, 10.0};
  for (std::size_t i = 0; i < 4; ++i) a(i, 0) = 1.0;
  const auto r = solve_irls(a, b, opts);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_FALSE(r.converged);
}

TEST(Irls, ReportsIterationCount) {
  const Matrix a{{1.0}, {1.0}, {1.0}};
  const auto r = solve_irls(a, {1.0, 1.0, 1.0});
  EXPECT_GE(r.iterations, 1u);
  EXPECT_TRUE(r.converged);
}

TEST(RobustWeights, HuberKeepsSmallResidualsAtFullWeight) {
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 5.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kHuber);
  ASSERT_EQ(w.size(), residuals.size());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(w[i], 1.0);
  EXPECT_LT(w[4], 0.1);
}

TEST(RobustWeights, TukeyZerosGrossOutliers) {
  const std::vector<double> residuals{0.01, -0.02, 0.015, -0.01, 0.02, 50.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kTukey);
  EXPECT_EQ(w.back(), 0.0);
  for (std::size_t i = 0; i + 1 < w.size(); ++i) EXPECT_GT(w[i], 0.5);
}

TEST(RobustWeights, ScaleInvariant) {
  // MAD normalization: multiplying every residual by a constant must not
  // change the weights.
  const std::vector<double> r1{0.1, -0.2, 0.15, -0.1, 3.0};
  std::vector<double> r2 = r1;
  for (auto& v : r2) v *= 1000.0;
  const auto w1 = robust_residual_weights(r1, RobustLoss::kHuber);
  const auto w2 = robust_residual_weights(r2, RobustLoss::kHuber);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w2[i], 1e-12);
  }
}

TEST(RobustWeights, TukeyAllZeroFallsBackToHuber) {
  // Identical residual magnitudes make MAD zero; the guard must not return
  // an all-zero weight vector that would make the refit singular.
  const std::vector<double> residuals{1.0, 1.0, 1.0, 1.0};
  const auto w = robust_residual_weights(residuals, RobustLoss::kTukey);
  double total = 0.0;
  for (const double v : w) total += v;
  EXPECT_GT(total, 0.0);
}

TEST(Irls, HuberLossRecoversFromCoherentBlock) {
  // Scattered-outlier robustness is shared; the block case is where the
  // Gaussian weighting (centered on the poisoned OLS fit) struggles most.
  Matrix a(30, 1);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = 1.0;
    b[i] = 2.0;
  }
  for (std::size_t i = 0; i < 6; ++i) b[i] = 12.0;
  IrlsOptions huber;
  huber.loss = RobustLoss::kHuber;
  const auto r = solve_irls(a, b, huber);
  EXPECT_NEAR(r.x[0], 2.0, 0.2);
}

TEST(Irls, TukeyLossIgnoresCoherentBlockCompletely) {
  Matrix a(30, 1);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = 1.0;
    b[i] = 2.0;
  }
  for (std::size_t i = 0; i < 6; ++i) b[i] = 12.0;
  IrlsOptions tukey;
  tukey.loss = RobustLoss::kTukey;
  const auto r = solve_irls(a, b, tukey);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(RobustLossNames, AreStable) {
  EXPECT_STREQ(robust_loss_name(RobustLoss::kGaussian), "gaussian");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kHuber), "huber");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kTukey), "tukey");
}

}  // namespace
}  // namespace lion::linalg
