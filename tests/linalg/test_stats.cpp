#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lion::linalg {
namespace {

TEST(Stats, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, VarianceAndStddev) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianSingleElement) { EXPECT_DOUBLE_EQ(median({7.0}), 7.0); }

TEST(Stats, MedianEmptyThrows) {
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(Stats, PercentileEndpointsAndMidpoint) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
  EXPECT_THROW(min_value({}), std::invalid_argument);
  EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(Stats, Rms) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Stats, RmsOfConstantIsMagnitude) {
  EXPECT_DOUBLE_EQ(rms({-2.0, -2.0, -2.0}), 2.0);
}

TEST(Stats, EmpiricalCdfIsSortedAndEndsAtOne) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, EmpiricalCdfEmpty) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(Stats, SummarizeBundlesAllFields) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p90, percentile(v, 90.0));
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummarizeEmptyThrows) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

}  // namespace
}  // namespace lion::linalg
