// Property tests of the zero-allocation small-matrix kernels against the
// general Matrix / Cholesky / HouseholderQR reference path. The kernels'
// contract is *bit-exactness* — they must perform the same floating-point
// operations in the same order as the code they replace — so almost every
// assertion here is EXPECT_EQ on doubles, not EXPECT_NEAR.

#include "linalg/small.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "linalg/decompositions.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"

namespace lion::linalg {
namespace {

Matrix random_matrix(std::mt19937_64& rng, std::size_t n, std::size_t p,
                     double scale = 1.0) {
  std::uniform_real_distribution<double> d(-scale, scale);
  Matrix a(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) a(i, j) = d(rng);
  }
  return a;
}

std::vector<double> random_vector(std::mt19937_64& rng, std::size_t n,
                                  double lo = -1.0, double hi = 1.0) {
  std::uniform_real_distribution<double> d(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

TEST(SolverWorkspace, LoadValidatesShape) {
  SolverWorkspace ws;
  EXPECT_THROW(ws.load(Matrix(3, 5), std::vector<double>(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ws.load(Matrix(3, 2), std::vector<double>(2, 0.0)),
               std::invalid_argument);
  EXPECT_FALSE(ws.loaded());
  ws.load(Matrix(3, 2), std::vector<double>(3, 0.0));
  EXPECT_TRUE(ws.loaded());
  EXPECT_EQ(ws.rows(), 3u);
  EXPECT_EQ(ws.cols(), 2u);
}

TEST(SmallKernels, UnweightedAccumulationMatchesGramBitExact) {
  std::mt19937_64 rng(7);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t n = 5 + static_cast<std::size_t>(trial);
      const Matrix a = random_matrix(rng, n, p, 3.0);
      const auto b = random_vector(rng, n, -2.0, 2.0);

      SolverWorkspace ws;
      ws.load(a, b);
      SmallGram g;
      g.reset(p);
      double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
      accumulate_masked(ws, nullptr, g, rhs);
      g.mirror();

      const Matrix ref = a.gram();
      const auto ref_rhs = a.transpose_multiply(b);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(g.g[i][j], ref(i, j));
        EXPECT_EQ(rhs[i], ref_rhs[i]);
      }
    }
  }
}

TEST(SmallKernels, UnweightedAccumulationWithZeroEntriesStaysBitExact) {
  // Matrix::gram skips zero terms; the cache adds them unconditionally.
  // Adding +/-0.0 products must not move any accumulator.
  std::mt19937_64 rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 12;
    const std::size_t p = 3;
    Matrix a = random_matrix(rng, n, p, 2.0);
    std::uniform_int_distribution<int> coin(0, 3);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        if (coin(rng) == 0) a(i, j) = coin(rng) == 0 ? -0.0 : 0.0;
      }
    }
    const auto b = random_vector(rng, n);

    SolverWorkspace ws;
    ws.load(a, b);
    SmallGram g;
    g.reset(p);
    double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
    accumulate_masked(ws, nullptr, g, rhs);
    g.mirror();

    const Matrix ref = a.gram();
    const auto ref_rhs = a.transpose_multiply(b);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(g.g[i][j], ref(i, j));
      EXPECT_EQ(rhs[i], ref_rhs[i]);
    }
  }
}

TEST(SmallKernels, GramMatrixHelperMatchesGramBitExact) {
  std::mt19937_64 rng(9);
  for (std::size_t p = 2; p <= 4; ++p) {
    const Matrix a = random_matrix(rng, 40, p, 5.0);
    const auto b = random_vector(rng, 40);
    SolverWorkspace ws;
    ws.load(a, b);
    const Matrix got = ws.gram_matrix();
    const Matrix ref = a.gram();
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(got(i, j), ref(i, j));
    }
  }
  SolverWorkspace empty;
  EXPECT_THROW(empty.gram_matrix(), std::logic_error);
}

TEST(SmallKernels, WeightedAccumulationMatchesWeightedGramBitExact) {
  std::mt19937_64 rng(10);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t n = 8 + static_cast<std::size_t>(trial % 7);
      Matrix a = random_matrix(rng, n, p, 2.0);
      const auto b = random_vector(rng, n);
      auto w = random_vector(rng, n, 0.0, 1.0);
      // Exercise the zero-weight / zero-entry skip branches of the
      // legacy weighted_gram, which the straight-line kernel must match.
      w[trial % n] = 0.0;
      a((trial + 1) % n, trial % p) = 0.0;

      SolverWorkspace ws;
      ws.load(a, b);
      SmallGram g;
      g.reset(p);
      double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
      accumulate_weighted_masked(ws, nullptr, w.data(), g, rhs);
      g.mirror();

      const Matrix ref = a.weighted_gram(w);
      const auto ref_rhs = a.weighted_transpose_multiply(w, b);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(g.g[i][j], ref(i, j));
        EXPECT_EQ(rhs[i], ref_rhs[i]);
      }
    }
  }
}

TEST(SmallKernels, MaskedWeightedAccumulationMatchesSubsystem) {
  std::mt19937_64 rng(11);
  const std::size_t p = 4;
  const std::size_t n = 30;
  const Matrix a = random_matrix(rng, n, p);
  const auto b = random_vector(rng, n);
  std::vector<char> mask(n, 0);
  std::uniform_int_distribution<int> coin(0, 1);
  std::size_t count = 0;
  for (auto& m : mask) count += (m = static_cast<char>(coin(rng)));
  ASSERT_GT(count, p);
  const auto w = random_vector(rng, count, 0.1, 2.0);

  SolverWorkspace ws;
  ws.load(a, b);
  SmallGram g;
  g.reset(p);
  double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  accumulate_weighted_masked(ws, mask.data(), w.data(), g, rhs);
  g.mirror();

  // Materialize the masked subsystem and run the legacy reference on it.
  Matrix sub(count, p);
  std::vector<double> sub_b(count);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    for (std::size_t c = 0; c < p; ++c) sub(r, c) = a(i, c);
    sub_b[r] = b[i];
    ++r;
  }
  const Matrix ref = sub.weighted_gram(w);
  const auto ref_rhs = sub.weighted_transpose_multiply(w, sub_b);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(g.g[i][j], ref(i, j));
    EXPECT_EQ(rhs[i], ref_rhs[i]);
  }
}

TEST(SmallKernels, CholeskyMatchesReferenceBitExact) {
  std::mt19937_64 rng(12);
  for (std::size_t p = 2; p <= 4; ++p) {
    for (int trial = 0; trial < 50; ++trial) {
      const Matrix a = random_matrix(rng, p + 4, p, 2.0);
      const Matrix gram = a.gram();
      const auto b = random_vector(rng, p);

      SmallGram g;
      g.reset(p);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) g.g[i][j] = gram(i, j);
      }
      SmallCholesky chol;
      const bool ok = small_cholesky_factor(g, chol);
      const auto ref = Cholesky::factor(gram);
      ASSERT_EQ(ok, ref.has_value());
      if (!ok) continue;
      double x[kSmallMaxCols];
      small_cholesky_solve(chol, b.data(), x);
      const auto ref_x = ref->solve(b);
      for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(x[i], ref_x[i]);
    }
  }
}

TEST(SmallKernels, CholeskyRejectsNonSpdLikeReference) {
  // Rank-1 gram: both paths must reject it the same way.
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const Matrix gram = a.gram();
  SmallGram g;
  g.reset(2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) g.g[i][j] = gram(i, j);
  }
  SmallCholesky chol;
  EXPECT_FALSE(small_cholesky_factor(g, chol));
  EXPECT_FALSE(Cholesky::factor(gram).has_value());
}

TEST(SmallKernels, QrSolveMatchesHouseholderBitExact) {
  std::mt19937_64 rng(13);
  for (std::size_t p = 2; p <= 4; ++p) {
    const std::size_t m = p + 1;  // the RANSAC minimal-subset shape
    for (int trial = 0; trial < 100; ++trial) {
      const Matrix a = random_matrix(rng, m, p, 2.0);
      const auto b = random_vector(rng, m);

      double qa[kSmallMaxMinimalRows][kSmallMaxCols];
      double qb[kSmallMaxMinimalRows];
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t c = 0; c < p; ++c) qa[i][c] = a(i, c);
        qb[i] = b[i];
      }
      double x[kSmallMaxCols];
      const SolveStatus st = small_qr_solve(qa, qb, m, p, x);
      ASSERT_EQ(st, SolveStatus::kOk);
      const auto ref = HouseholderQR(a).solve(b);
      for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(x[i], ref[i]);
    }
  }
}

TEST(SmallKernels, QrReportsRankDeficientExactlyWhenReferenceThrows) {
  std::mt19937_64 rng(14);
  std::size_t deficient = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t p = 2 + static_cast<std::size_t>(trial % 3);
    const std::size_t m = p + 1;
    Matrix a = random_matrix(rng, m, p);
    // Half the trials get a duplicated column (rank deficient), the rest
    // stay generic; the status and the throw must always agree.
    if (trial % 2 == 0) {
      for (std::size_t i = 0; i < m; ++i) a(i, p - 1) = a(i, 0);
    }
    const auto b = random_vector(rng, m);

    double qa[kSmallMaxMinimalRows][kSmallMaxCols];
    double qb[kSmallMaxMinimalRows];
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t c = 0; c < p; ++c) qa[i][c] = a(i, c);
      qb[i] = b[i];
    }
    double x[kSmallMaxCols];
    const SolveStatus st = small_qr_solve(qa, qb, m, p, x);

    bool threw = false;
    std::vector<double> ref;
    try {
      ref = HouseholderQR(a).solve(b);
    } catch (const std::domain_error&) {
      threw = true;
    }
    ASSERT_EQ(st == SolveStatus::kRankDeficient, threw) << "trial " << trial;
    if (threw) ++deficient;
    if (!threw && st == SolveStatus::kOk) {
      for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(x[i], ref[i]);
    }
  }
  EXPECT_GT(deficient, 50u);  // the degenerate half actually exercised
}

TEST(SmallKernels, QrUnderdeterminedStatus) {
  double qa[kSmallMaxMinimalRows][kSmallMaxCols] = {};
  double qb[kSmallMaxMinimalRows] = {};
  double x[kSmallMaxCols];
  EXPECT_EQ(small_qr_solve(qa, qb, 2, 3, x), SolveStatus::kUnderdetermined);
}

TEST(SmallKernels, SubsetAccumulationMatchesGatheredSubsystem) {
  std::mt19937_64 rng(15);
  const std::size_t p = 4;
  const std::size_t n = 25;
  const std::size_t m = p + 1;
  const Matrix a = random_matrix(rng, n, p);
  const auto b = random_vector(rng, n);
  SolverWorkspace ws;
  ws.load(a, b);

  const std::size_t subset[kSmallMaxMinimalRows] = {17, 3, 22, 9, 11};
  SmallGram g;
  g.reset(p);
  double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  accumulate_rows(ws, subset, m, g, rhs);
  g.mirror();

  Matrix sub(m, p);
  std::vector<double> sub_b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t c = 0; c < p; ++c) sub(i, c) = a(subset[i], c);
    sub_b[i] = b[subset[i]];
  }
  const Matrix ref = sub.gram();
  const auto ref_rhs = sub.transpose_multiply(sub_b);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) EXPECT_EQ(g.g[i][j], ref(i, j));
    EXPECT_EQ(rhs[i], ref_rhs[i]);
  }
}

}  // namespace
}  // namespace lion::linalg
