#include "linalg/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lion::linalg {
namespace {

TEST(Vec, DefaultConstructedIsZero) {
  Vec3 v;
  EXPECT_EQ(v[0], 0.0);
  EXPECT_EQ(v[1], 0.0);
  EXPECT_EQ(v[2], 0.0);
}

TEST(Vec, InitializerListSetsComponents) {
  Vec3 v{1.0, -2.0, 3.5};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(v[2], 3.5);
}

TEST(Vec, InitializerListSizeMismatchThrows) {
  EXPECT_THROW((Vec3{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((Vec2{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Vec, AtThrowsOutOfRange) {
  Vec2 v{1.0, 2.0};
  EXPECT_THROW(v.at(2), std::out_of_range);
  EXPECT_EQ(v.at(1), 2.0);
}

TEST(Vec, AdditionAndSubtraction) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{0.5, -1.0, 2.0};
  const Vec3 sum = a + b;
  const Vec3 diff = a - b;
  EXPECT_EQ(sum, (Vec3{1.5, 1.0, 5.0}));
  EXPECT_EQ(diff, (Vec3{0.5, 3.0, 1.0}));
}

TEST(Vec, ScalarMultiplyBothSides) {
  const Vec2 v{1.0, -2.0};
  EXPECT_EQ(v * 2.0, (Vec2{2.0, -4.0}));
  EXPECT_EQ(2.0 * v, (Vec2{2.0, -4.0}));
  EXPECT_EQ(v / 2.0, (Vec2{0.5, -1.0}));
}

TEST(Vec, UnaryMinus) {
  const Vec3 v{1.0, -2.0, 0.0};
  EXPECT_EQ(-v, (Vec3{-1.0, 2.0, 0.0}));
}

TEST(Vec, CompoundOperators) {
  Vec2 v{1.0, 1.0};
  v += Vec2{1.0, 2.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v -= Vec2{0.5, 0.5};
  EXPECT_EQ(v, (Vec2{1.5, 2.5}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{3.0, 5.0}));
  v /= 2.0;
  EXPECT_EQ(v, (Vec2{1.5, 2.5}));
}

TEST(Vec, DotProduct) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 10.0 + 18.0);
}

TEST(Vec, NormAndSquaredNorm) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vec, NormalizedHasUnitLength) {
  const Vec3 v{1.0, 2.0, -2.0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
}

TEST(Vec, NormalizedZeroThrows) {
  EXPECT_THROW(Vec3{}.normalized(), std::domain_error);
}

TEST(Vec, Distance) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(Vec, Cross2DIsSignedArea) {
  EXPECT_DOUBLE_EQ(cross(Vec2{1.0, 0.0}, Vec2{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{0.0, 1.0}, Vec2{1.0, 0.0}), -1.0);
}

TEST(Vec, Cross3DRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(cross(x, y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(cross(y, x), (Vec3{0.0, 0.0, -1.0}));
}

TEST(Vec, CrossIsOrthogonalToInputs) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 4.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec, LiftAndDropZ) {
  const Vec2 p{1.5, -2.5};
  const Vec3 q = lift(p, 7.0);
  EXPECT_EQ(q, (Vec3{1.5, -2.5, 7.0}));
  EXPECT_EQ(drop_z(q), p);
  EXPECT_EQ(lift(p), (Vec3{1.5, -2.5, 0.0}));
}

TEST(Vec, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.0, 2.0};
  EXPECT_EQ(os.str(), "(1, 2)");
}

TEST(Vec, IterationCoversAllComponents) {
  Vec3 v{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

}  // namespace
}  // namespace lion::linalg
