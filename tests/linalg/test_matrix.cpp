#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

namespace lion::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, SizedConstructionZeroFills) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstruction) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(1, 2), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 5.0;
  EXPECT_EQ(m.at(1, 1), 5.0);
}

TEST(Matrix, Transposed) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  EXPECT_EQ(a + b, (Matrix{{5.0, 5.0}, {5.0, 5.0}}));
  EXPECT_EQ(a - b, (Matrix{{-3.0, -1.0}, {1.0, 3.0}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2.0, 4.0}, {6.0, 8.0}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a * b, (Matrix{{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, ProductShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MatrixVectorMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> v{1.0, -1.0};
  const auto out = a.multiply(v);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], -1.0);
  EXPECT_EQ(out[1], -1.0);
  EXPECT_EQ(out[2], -1.0);
}

TEST(Matrix, MultiplySizeMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(a.multiply({1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix expected = a.transposed() * a;
  EXPECT_TRUE(approx_equal(a.gram(), expected, 1e-12));
}

TEST(Matrix, WeightedGramMatchesExplicitProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> w{0.5, 2.0, 1.0};
  const Matrix expected = a.transposed() * Matrix::diagonal(w) * a;
  EXPECT_TRUE(approx_equal(a.weighted_gram(w), expected, 1e-12));
}

TEST(Matrix, WeightedGramSizeMismatchThrows) {
  const Matrix a(3, 2);
  EXPECT_THROW(a.weighted_gram({1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, TransposeMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> v{1.0, 1.0, 1.0};
  const auto out = a.transpose_multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 9.0);
  EXPECT_EQ(out[1], 12.0);
}

TEST(Matrix, WeightedTransposeMultiply) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const auto out = a.weighted_transpose_multiply({2.0, 3.0}, {1.0, 1.0});
  EXPECT_EQ(out[0], 2.0);
  EXPECT_EQ(out[1], 3.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbs) {
  const Matrix a{{-7.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, ApproxEqualRespectsTolerance) {
  const Matrix a{{1.0}};
  const Matrix b{{1.0 + 1e-10}};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-11));
  EXPECT_FALSE(approx_equal(a, Matrix(1, 2), 1.0));
}

TEST(Matrix, StreamOutput) {
  std::ostringstream os;
  os << Matrix{{1.0, 2.0}};
  EXPECT_EQ(os.str(), "[1, 2]");
}

TEST(Matrix, RowDataIsContiguous) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const double* row1 = m.row_data(1);
  EXPECT_EQ(row1[0], 3.0);
  EXPECT_EQ(row1[1], 4.0);
}

}  // namespace
}  // namespace lion::linalg
