#include "sim/environment.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lion::sim {
namespace {

TEST(Environment, FreeSpaceHasNoReflectors) {
  EXPECT_TRUE(make_reflectors(EnvironmentKind::kFreeSpace).empty());
}

TEST(Environment, SeverityOrdersReflectorCount) {
  EXPECT_LT(make_reflectors(EnvironmentKind::kLabClean).size(),
            make_reflectors(EnvironmentKind::kLabTypical).size());
  EXPECT_LT(make_reflectors(EnvironmentKind::kLabTypical).size(),
            make_reflectors(EnvironmentKind::kLabHarsh).size());
}

TEST(Environment, FreeSpaceUsesPaperNoiseDefault) {
  const auto n = make_noise(EnvironmentKind::kFreeSpace);
  EXPECT_DOUBLE_EQ(n.phase_sigma, 0.1);  // the paper's N(0, 0.1)
  EXPECT_DOUBLE_EQ(n.off_beam_gain, 0.0);
}

TEST(Environment, HarshIsNoisierThanClean) {
  EXPECT_GT(make_noise(EnvironmentKind::kLabHarsh).phase_sigma,
            make_noise(EnvironmentKind::kLabClean).phase_sigma);
}

TEST(Environment, ReflectorNormalsAreUnit) {
  for (auto kind : {EnvironmentKind::kLabClean, EnvironmentKind::kLabTypical,
                    EnvironmentKind::kLabHarsh}) {
    for (const auto& r : make_reflectors(kind)) {
      EXPECT_NEAR(r.normal.norm(), 1.0, 1e-12);
      EXPECT_GT(r.coefficient, 0.0);
      EXPECT_LE(r.coefficient, 1.0);
    }
  }
}

TEST(Environment, MakeChannelWiresNoiseAndReflectors) {
  const auto ch = make_channel(EnvironmentKind::kLabTypical);
  EXPECT_EQ(ch.reflectors().size(),
            make_reflectors(EnvironmentKind::kLabTypical).size());
  EXPECT_DOUBLE_EQ(ch.noise().phase_sigma,
                   make_noise(EnvironmentKind::kLabTypical).phase_sigma);
}

TEST(Environment, NamesAreDistinct) {
  const std::string names[] = {
      environment_name(EnvironmentKind::kFreeSpace),
      environment_name(EnvironmentKind::kLabClean),
      environment_name(EnvironmentKind::kLabTypical),
      environment_name(EnvironmentKind::kLabHarsh),
  };
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) EXPECT_NE(names[i], names[j]);
  }
}

}  // namespace
}  // namespace lion::sim
