#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lion::sim {
namespace {

TEST(Scenario, BuilderRequiresAntennaAndTag) {
  EXPECT_THROW(Scenario::Builder{}.add_tag().build(), std::invalid_argument);
  EXPECT_THROW(Scenario::Builder{}.add_antenna({0.0, 1.0, 0.0}).build(),
               std::invalid_argument);
}

TEST(Scenario, AutoAntennasGetSequentialIds) {
  auto s = Scenario::Builder{}
               .add_antenna({0.0, 1.0, 0.0})
               .add_antenna({0.3, 1.0, 0.0})
               .add_tag()
               .build();
  ASSERT_EQ(s.antennas().size(), 2u);
  EXPECT_EQ(s.antennas()[0].id, 0u);
  EXPECT_EQ(s.antennas()[1].id, 1u);
}

TEST(Scenario, SweepProducesSamples) {
  auto s = Scenario::Builder{}
               .add_antenna({0.0, 0.8, 0.0})
               .add_tag()
               .seed(11)
               .build();
  LinearTrajectory traj({-0.3, 0.0, 0.0}, {0.3, 0.0, 0.0}, 0.1);
  const auto samples = s.sweep(0, 0, traj);
  EXPECT_GT(samples.size(), 100u);
}

TEST(Scenario, SweepValidatesIndices) {
  auto s = Scenario::Builder{}
               .add_antenna({0.0, 0.8, 0.0})
               .add_tag()
               .build();
  LinearTrajectory traj({-0.3, 0.0, 0.0}, {0.3, 0.0, 0.0}, 0.1);
  EXPECT_THROW(s.sweep(1, 0, traj), std::out_of_range);
  EXPECT_THROW(s.sweep(0, 1, traj), std::out_of_range);
}

TEST(Scenario, SameSeedReproducesSamples) {
  auto make = [] {
    return Scenario::Builder{}
        .add_antenna({0.0, 0.8, 0.0})
        .add_tag()
        .seed(42)
        .build();
  };
  auto s1 = make();
  auto s2 = make();
  LinearTrajectory traj({-0.3, 0.0, 0.0}, {0.3, 0.0, 0.0}, 0.1);
  const auto a = s1.sweep(0, 0, traj);
  const auto b = s2.sweep(0, 0, traj);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].phase, b[i].phase);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto s1 = Scenario::Builder{}
                .environment(EnvironmentKind::kLabTypical)
                .add_antenna({0.0, 0.8, 0.0})
                .add_tag()
                .seed(1)
                .build();
  auto s2 = Scenario::Builder{}
                .environment(EnvironmentKind::kLabTypical)
                .add_antenna({0.0, 0.8, 0.0})
                .add_tag()
                .seed(2)
                .build();
  LinearTrajectory traj({-0.3, 0.0, 0.0}, {0.3, 0.0, 0.0}, 0.1);
  const auto a = s1.sweep(0, 0, traj);
  const auto b = s2.sweep(0, 0, traj);
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].phase != b[i].phase;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, CustomChannelWins) {
  rf::NoiseModel silent;
  silent.phase_sigma = 0.0;
  silent.off_beam_gain = 0.0;
  silent.quantization_steps = 0;
  auto s = Scenario::Builder{}
               .environment(EnvironmentKind::kLabHarsh)  // overridden below
               .channel(rf::Channel(silent, {}))
               .add_antenna({0.0, 0.8, 0.0})
               .add_tag()
               .build();
  EXPECT_TRUE(s.channel().reflectors().empty());
  EXPECT_DOUBLE_EQ(s.channel().noise().phase_sigma, 0.0);
}

TEST(Scenario, ReadStaticCollectsRequestedCount) {
  auto s = Scenario::Builder{}
               .add_antenna({0.0, 1.0, 0.0})
               .add_tag()
               .build();
  const auto samples = s.read_static(0, 0, {0.0, 0.0, 0.0}, 50);
  EXPECT_EQ(samples.size(), 50u);
}

TEST(Scenario, ExplicitAntennaAndTagPreserved) {
  rf::Antenna custom;
  custom.physical_center = {1.0, 2.0, 3.0};
  custom.reader_offset_rad = 0.123;
  rf::Tag tag;
  tag.tag_offset_rad = 0.456;
  auto s = Scenario::Builder{}.add_antenna(custom).add_tag(tag).build();
  EXPECT_DOUBLE_EQ(s.antennas()[0].reader_offset_rad, 0.123);
  EXPECT_DOUBLE_EQ(s.tags()[0].tag_offset_rad, 0.456);
}

}  // namespace
}  // namespace lion::sim
