#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rf/constants.hpp"

namespace lion::sim {
namespace {

TEST(LinearTrajectory, EndpointsAndDuration) {
  LinearTrajectory t({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, 0.1);
  EXPECT_DOUBLE_EQ(t.duration(), 10.0);
  EXPECT_EQ(t.position(0.0), (Vec3{0.0, 0.0, 0.0}));
  EXPECT_EQ(t.position(10.0), (Vec3{1.0, 0.0, 0.0}));
}

TEST(LinearTrajectory, MidpointAtHalfTime) {
  LinearTrajectory t({-0.5, 0.2, 0.0}, {0.5, 0.2, 0.0}, 0.2);
  const Vec3 mid = t.position(t.duration() / 2.0);
  EXPECT_NEAR(mid[0], 0.0, 1e-12);
  EXPECT_NEAR(mid[1], 0.2, 1e-12);
}

TEST(LinearTrajectory, ClampsOutsideTimeRange) {
  LinearTrajectory t({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, 1.0);
  EXPECT_EQ(t.position(-5.0), t.position(0.0));
  EXPECT_EQ(t.position(99.0), t.position(t.duration()));
}

TEST(LinearTrajectory, ConstantSpeed) {
  LinearTrajectory t({0.0, 0.0, 0.0}, {2.0, 0.0, 0.0}, 0.5);
  const double dt = 0.1;
  for (double time = 0.0; time + dt <= t.duration(); time += 1.0) {
    const double step =
        linalg::distance(t.position(time), t.position(time + dt));
    EXPECT_NEAR(step, 0.5 * dt, 1e-9);
  }
}

TEST(LinearTrajectory, RejectsBadArguments) {
  EXPECT_THROW(LinearTrajectory({}, {1.0, 0.0, 0.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(LinearTrajectory({}, {1.0, 0.0, 0.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(LinearTrajectory({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, 1.0),
               std::invalid_argument);
}

TEST(CircularTrajectory, StaysOnCircle) {
  const Vec3 center{0.1, 0.2, 0.3};
  CircularTrajectory t(center, 0.25, {0.0, 0.0, 1.0}, 1.0);
  for (double time = 0.0; time <= t.duration(); time += 0.37) {
    EXPECT_NEAR(linalg::distance(t.position(time), center), 0.25, 1e-12);
  }
}

TEST(CircularTrajectory, StaysInPlane) {
  CircularTrajectory t({0.0, 0.0, 0.5}, 0.3, {0.0, 0.0, 1.0}, 2.0);
  for (double time = 0.0; time <= t.duration(); time += 0.2) {
    EXPECT_NEAR(t.position(time)[2], 0.5, 1e-12);
  }
}

TEST(CircularTrajectory, FullTurnReturnsToStart) {
  CircularTrajectory t({0.0, 0.0, 0.0}, 0.3, {0.0, 0.0, 1.0}, 1.0, 1.0);
  EXPECT_NEAR(linalg::distance(t.position(0.0), t.position(t.duration())),
              0.0, 1e-9);
}

TEST(CircularTrajectory, DurationScalesWithTurns) {
  CircularTrajectory one({}, 1.0, {0.0, 0.0, 1.0}, 1.0, 1.0);
  CircularTrajectory two({}, 1.0, {0.0, 0.0, 1.0}, 1.0, 2.0);
  EXPECT_NEAR(two.duration(), 2.0 * one.duration(), 1e-12);
  EXPECT_NEAR(one.duration(), rf::kTwoPi, 1e-12);
}

TEST(CircularTrajectory, ArbitraryPlaneNormalRespected) {
  const Vec3 normal{1.0, 1.0, 0.0};
  CircularTrajectory t({0.0, 0.0, 0.0}, 0.5, normal, 1.0);
  const Vec3 n = normal.normalized();
  for (double time = 0.0; time <= t.duration(); time += 0.5) {
    EXPECT_NEAR(t.position(time).dot(n), 0.0, 1e-12);
  }
}

TEST(CircularTrajectory, RejectsBadArguments) {
  const Vec3 z{0.0, 0.0, 1.0};
  EXPECT_THROW(CircularTrajectory({}, 0.0, z, 1.0), std::invalid_argument);
  EXPECT_THROW(CircularTrajectory({}, 1.0, z, 0.0), std::invalid_argument);
  EXPECT_THROW(CircularTrajectory({}, 1.0, z, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(CircularTrajectory({}, 1.0, Vec3{}, 1.0),
               std::invalid_argument);
}

TEST(PiecewiseLinear, VisitsWaypointsInOrder) {
  PiecewiseLinearTrajectory t(
      {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {1.0, 1.0, 0.0}}, 1.0);
  EXPECT_NEAR(t.duration(), 2.0, 1e-12);
  EXPECT_EQ(t.position(0.0), (Vec3{0.0, 0.0, 0.0}));
  EXPECT_NEAR(linalg::distance(t.position(1.0), {1.0, 0.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(linalg::distance(t.position(2.0), {1.0, 1.0, 0.0}), 0.0, 1e-12);
}

TEST(PiecewiseLinear, SegmentIndexTracksProgress) {
  PiecewiseLinearTrajectory t(
      {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {2.0, 0.0, 0.0}}, 1.0);
  EXPECT_EQ(t.segment_index(0.5), 0u);
  EXPECT_EQ(t.segment_index(1.5), 1u);
  EXPECT_EQ(t.segment_index(99.0), 1u);  // clamped to last segment
}

TEST(PiecewiseLinear, ConstantSpeedAcrossJoints) {
  PiecewiseLinearTrajectory t(
      {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {1.0, 2.0, 0.0}}, 0.5);
  const double dt = 0.01;
  for (double time = 0.1; time + dt < t.duration(); time += 0.3) {
    const double step =
        linalg::distance(t.position(time), t.position(time + dt));
    EXPECT_NEAR(step, 0.5 * dt, 1e-6) << "at t=" << time;
  }
}

TEST(PiecewiseLinear, RejectsBadArguments) {
  EXPECT_THROW(PiecewiseLinearTrajectory({{0.0, 0.0, 0.0}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(
      PiecewiseLinearTrajectory({{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      PiecewiseLinearTrajectory({{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}, 1.0),
      std::invalid_argument);
}

TEST(ThreeLineRig, PointsOnLinesMatchGeometry) {
  ThreeLineRig rig;
  rig.y0 = 0.25;
  rig.z0 = 0.15;
  EXPECT_EQ(rig.point_on_line(0, 0.3), (Vec3{0.3, 0.0, 0.0}));
  EXPECT_EQ(rig.point_on_line(1, -0.2), (Vec3{-0.2, 0.0, 0.15}));
  EXPECT_EQ(rig.point_on_line(2, 0.1), (Vec3{0.1, -0.25, 0.0}));
  EXPECT_THROW(rig.point_on_line(3, 0.0), std::invalid_argument);
}

TEST(ThreeLineRig, BuildCoversAllThreeLines) {
  ThreeLineRig rig;
  rig.x_min = -0.4;
  rig.x_max = 0.4;
  const auto traj = rig.build();
  // Start of L1, end of L3.
  EXPECT_NEAR(linalg::distance(traj.position(0.0), {-0.4, 0.0, 0.0}), 0.0,
              1e-12);
  EXPECT_NEAR(
      linalg::distance(traj.position(traj.duration()), {0.4, -0.2, 0.0}), 0.0,
      1e-12);
  EXPECT_EQ(traj.waypoints().size(), 6u);
}

TEST(ThreeLineRig, RejectsInvertedRange) {
  ThreeLineRig rig;
  rig.x_min = 0.5;
  rig.x_max = -0.5;
  EXPECT_THROW(rig.build(), std::invalid_argument);
}

TEST(ThreeLineRig, TrajectoryIsContinuous) {
  ThreeLineRig rig;
  const auto traj = rig.build();
  const double dt = 0.05;
  for (double time = 0.0; time + dt <= traj.duration(); time += dt) {
    EXPECT_LT(linalg::distance(traj.position(time), traj.position(time + dt)),
              rig.speed * dt + 1e-9);
  }
}

}  // namespace
}  // namespace lion::sim
