#include "sim/reader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/phase_model.hpp"

namespace lion::sim {
namespace {

rf::NoiseModel quiet() {
  rf::NoiseModel n;
  n.phase_sigma = 0.0;
  n.off_beam_gain = 0.0;
  n.quantization_steps = 0;
  return n;
}

rf::Antenna antenna_at(const Vec3& p) {
  rf::Antenna a;
  a.physical_center = p;
  return a;
}

TEST(ReaderSim, SampleCountMatchesRateAndDuration) {
  ReaderConfig slow;
  slow.read_rate_hz = 50;
  ReaderSim reader(rf::Channel(quiet(), {}), slow);
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);  // 10 s
  rf::Rng rng(1);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  EXPECT_NEAR(static_cast<double>(samples.size()), 501.0, 1.0);
}

TEST(ReaderSim, SamplesAreChronological) {
  ReaderSim reader(rf::Channel(quiet(), {}), ReaderConfig{});
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng(2);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t, samples[i - 1].t);
  }
}

TEST(ReaderSim, PositionsFollowTrajectory) {
  ReaderSim reader(rf::Channel(quiet(), {}), ReaderConfig{});
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng(3);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  for (const auto& s : samples) {
    EXPECT_NEAR(linalg::distance(s.position, traj.position(s.t)), 0.0, 1e-12);
  }
}

TEST(ReaderSim, NoiselessPhasesMatchChannel) {
  rf::Channel ch(quiet(), {});
  ReaderSim reader(ch, ReaderConfig{});
  LinearTrajectory traj({-0.3, 0.0, 0.0}, {0.3, 0.0, 0.0}, 0.1);
  rf::Rng rng(4);
  const auto ant = antenna_at({0.0, 0.8, 0.0});
  const auto samples = reader.sweep(ant, rf::Tag{}, traj, rng);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_NEAR(s.phase, ch.noiseless_phase(ant, rf::Tag{}, s.position),
                1e-9);
  }
}

TEST(ReaderSim, MissProbabilityThinsStream) {
  ReaderConfig cfg;
  cfg.miss_probability = 0.5;
  ReaderSim lossy(rf::Channel(quiet(), {}), cfg);
  ReaderSim clean(rf::Channel(quiet(), {}), ReaderConfig{});
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng1(5);
  rf::Rng rng2(5);
  const auto lossy_samples =
      lossy.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng1);
  const auto clean_samples =
      clean.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng2);
  EXPECT_LT(lossy_samples.size(), clean_samples.size());
  EXPECT_GT(lossy_samples.size(), clean_samples.size() / 4);
}

TEST(ReaderSim, PositionJitterPerturbsReportedPositions) {
  ReaderConfig cfg;
  cfg.position_jitter_m = 0.002;
  ReaderSim reader(rf::Channel(quiet(), {}), cfg);
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng(6);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  double total_dev = 0.0;
  for (const auto& s : samples) {
    total_dev += linalg::distance(s.position, traj.position(s.t));
  }
  EXPECT_GT(total_dev / static_cast<double>(samples.size()), 1e-4);
}

TEST(ReaderSim, TimingJitterStaysWithinTrajectory) {
  ReaderConfig cfg;
  cfg.timing_jitter_s = 0.01;
  ReaderSim reader(rf::Channel(quiet(), {}), cfg);
  LinearTrajectory traj({-0.2, 0.0, 0.0}, {0.2, 0.0, 0.0}, 0.1);
  rf::Rng rng(7);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  for (const auto& s : samples) {
    EXPECT_GE(s.t, 0.0);
    EXPECT_LE(s.t, traj.duration());
  }
}

TEST(ReaderSim, ReadStaticProducesRequestedCount) {
  ReaderSim reader(rf::Channel(quiet(), {}), ReaderConfig{});
  rf::Rng rng(8);
  const auto samples = reader.read_static(antenna_at({0.0, 1.0, 0.0}),
                                          rf::Tag{}, {0.0, 0.0, 0.0}, 100, rng);
  EXPECT_EQ(samples.size(), 100u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.position, (Vec3{0.0, 0.0, 0.0}));
  }
}

TEST(ReaderSim, StaticNoiselessPhasesIdentical) {
  ReaderSim reader(rf::Channel(quiet(), {}), ReaderConfig{});
  rf::Rng rng(9);
  const auto samples = reader.read_static(antenna_at({0.0, 1.0, 0.0}),
                                          rf::Tag{}, {0.0, 0.0, 0.0}, 10, rng);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.phase, samples.front().phase);
  }
}

TEST(ReaderSim, CertainMissProducesEmptyStreamWithoutSpinning) {
  ReaderConfig cfg;
  cfg.miss_probability = 1.0;
  ReaderSim reader(rf::Channel(quiet(), {}), cfg);
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng(11);
  EXPECT_TRUE(
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng).empty());
}

TEST(ReaderSim, NearCertainMissStillTerminatesWithSparseStream) {
  ReaderConfig cfg;
  cfg.miss_probability = 0.999;
  ReaderSim reader(rf::Channel(quiet(), {}), cfg);
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);  // ~1001 reads
  rf::Rng rng(12);
  const auto samples =
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng);
  EXPECT_LT(samples.size(), 30u);
}

TEST(ReaderSim, NonPositiveReadRateYieldsEmptyStream) {
  ReaderConfig cfg;
  cfg.read_rate_hz = 0.0;
  ReaderSim reader(rf::Channel(quiet(), {}), cfg);
  LinearTrajectory traj({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1);
  rf::Rng rng(13);
  EXPECT_TRUE(
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), rf::Tag{}, traj, rng).empty());
}

TEST(ReaderSim, UnpoweredTagProducesNoSamples) {
  ReaderSim reader(rf::Channel(quiet(), {}), ReaderConfig{});
  rf::Tag deaf;
  deaf.sensitivity_floor = 1e9;
  rf::Rng rng(10);
  LinearTrajectory traj({-0.2, 0.0, 0.0}, {0.2, 0.0, 0.0}, 0.1);
  EXPECT_TRUE(
      reader.sweep(antenna_at({0.0, 1.0, 0.0}), deaf, traj, rng).empty());
}

}  // namespace
}  // namespace lion::sim
