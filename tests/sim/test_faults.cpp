// Fault-injector tests: determinism, severity semantics, composition, and
// the identity guarantee at severity 0.

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"
#include "rf/rng.hpp"
#include "sim/faults.hpp"

namespace lion {
namespace {

std::vector<sim::PhaseSample> make_stream(std::size_t n) {
  std::vector<sim::PhaseSample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].t = 0.01 * static_cast<double>(i);
    out[i].position = {0.001 * static_cast<double>(i), 0.0, 0.0};
    out[i].phase = std::fmod(0.03 * static_cast<double>(i), rf::kTwoPi);
    out[i].rssi_dbm = -55.0;
  }
  return out;
}

TEST(Faults, SeverityZeroIsIdentity) {
  const auto base = make_stream(200);
  for (const auto kind : sim::all_fault_kinds()) {
    rf::Rng rng(7);
    const auto out = sim::inject_fault(base, {kind, 0.0}, rng);
    ASSERT_EQ(out.size(), base.size()) << sim::fault_kind_name(kind);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].phase, base[i].phase) << sim::fault_kind_name(kind);
      EXPECT_EQ(out[i].t, base[i].t);
    }
  }
}

TEST(Faults, DeterministicGivenSameSeed) {
  const auto base = make_stream(500);
  for (const auto kind : sim::all_fault_kinds()) {
    rf::Rng a(42), b(42);
    const auto out_a = sim::inject_fault(base, {kind, 0.3}, a);
    const auto out_b = sim::inject_fault(base, {kind, 0.3}, b);
    ASSERT_EQ(out_a.size(), out_b.size()) << sim::fault_kind_name(kind);
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].t, out_b[i].t);
      // NaN != NaN; compare bit-for-bit via isnan on both sides.
      EXPECT_TRUE(out_a[i].phase == out_b[i].phase ||
                  (std::isnan(out_a[i].phase) && std::isnan(out_b[i].phase)));
    }
  }
}

TEST(Faults, BurstDropoutRemovesContiguousChunk) {
  const auto base = make_stream(1000);
  rf::Rng rng(3);
  const auto out = sim::inject_burst_dropout(base, 0.3, rng);
  EXPECT_LT(out.size(), base.size());
  // At most `severity` of the stream can vanish (bursts may overlap/clip).
  EXPECT_GE(out.size(), base.size() - 300 - 1);
  // Survivors keep chronological order.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].t, out[i].t);
  }
}

TEST(Faults, CycleSlipShiftsTailByHalfCycle) {
  const auto base = make_stream(400);
  rf::Rng rng(11);
  const auto out = sim::inject_cycle_slips(base, 0.1, rng);
  ASSERT_EQ(out.size(), base.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].phase != base[i].phase) {
      ++changed;
      // Each slip rotates by pi, so any accumulated difference is a pi
      // multiple (mod 2*pi).
      const double diff = std::abs(out[i].phase - base[i].phase);
      const double frac = std::fmod(diff, rf::kPi);
      EXPECT_LT(std::min(frac, rf::kPi - frac), 1e-9);
      EXPECT_GE(out[i].phase, 0.0);
      EXPECT_LT(out[i].phase, rf::kTwoPi);
    }
  }
  EXPECT_GT(changed, 0u);
}

TEST(Faults, MultipathSpikesAffectMinorityOfStream) {
  const auto base = make_stream(1000);
  rf::Rng rng(5);
  const auto out = sim::inject_multipath_spikes(base, 0.1, rng);
  ASSERT_EQ(out.size(), base.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].phase != base[i].phase) ++changed;
  }
  EXPECT_GT(changed, 0u);
  EXPECT_LT(changed, base.size() / 2);
}

TEST(Faults, OffsetShiftIsConstantAfterOnePoint) {
  const auto base = make_stream(400);
  rf::Rng rng(13);
  const auto out = sim::inject_offset_shift(base, 0.5, rng);
  ASSERT_EQ(out.size(), base.size());
  // Prefix untouched, suffix rotated by one constant.
  std::size_t first_changed = base.size();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].phase != base[i].phase) {
      first_changed = i;
      break;
    }
  }
  ASSERT_LT(first_changed, base.size());
  EXPECT_GE(first_changed, base.size() / 4);
  for (std::size_t i = first_changed; i < out.size(); ++i) {
    EXPECT_NE(out[i].phase, base[i].phase);
  }
}

TEST(Faults, TimestampDisorderBreaksMonotonicity) {
  const auto base = make_stream(500);
  rf::Rng rng(17);
  const auto out = sim::inject_timestamp_disorder(base, 0.4, rng);
  EXPECT_GE(out.size(), base.size());  // duplicates only add
  std::size_t inversions = 0;
  std::size_t duplicates = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].t < out[i - 1].t) ++inversions;
    if (out[i].t == out[i - 1].t) ++duplicates;
  }
  EXPECT_GT(inversions + duplicates, 0u);
}

TEST(Faults, GarbageReadsInjectNonFiniteOrAbsurdFields) {
  const auto base = make_stream(1000);
  rf::Rng rng(19);
  const auto out = sim::inject_garbage_reads(base, 0.2, rng);
  ASSERT_EQ(out.size(), base.size());
  std::size_t garbage = 0;
  for (const auto& s : out) {
    const bool bad = std::isnan(s.phase) || std::isnan(s.position[0]) ||
                     std::isnan(s.position[1]) || std::isnan(s.position[2]) ||
                     s.phase >= rf::kTwoPi;
    if (bad) ++garbage;
  }
  EXPECT_GT(garbage, 100u);
  EXPECT_LT(garbage, 320u);
}

TEST(Faults, PlansCompose) {
  const auto base = make_stream(600);
  rf::Rng rng(23);
  const auto out = sim::inject_faults(
      base,
      {{sim::FaultKind::kBurstDropout, 0.2},
       {sim::FaultKind::kMultipathSpike, 0.1},
       {sim::FaultKind::kGarbageReads, 0.05}},
      rng);
  EXPECT_LT(out.size(), base.size());
  EXPECT_GT(out.size(), base.size() / 2);
}

TEST(Faults, EmptyStreamIsFine) {
  rf::Rng rng(29);
  for (const auto kind : sim::all_fault_kinds()) {
    const auto out = sim::inject_fault({}, {kind, 0.8}, rng);
    EXPECT_TRUE(out.empty());
  }
}

}  // namespace
}  // namespace lion
