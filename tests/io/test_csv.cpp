#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace lion::io {
namespace {

TEST(Csv, ParsesHeaderlessCanonicalOrder) {
  std::istringstream in("0.1,0.2,0.3,1.5\n0.4,0.5,0.6,2.5\n");
  const auto s = read_samples_csv(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].position[0], 0.1);
  EXPECT_DOUBLE_EQ(s[0].position[2], 0.3);
  EXPECT_DOUBLE_EQ(s[0].phase, 1.5);
  EXPECT_DOUBLE_EQ(s[1].phase, 2.5);
  EXPECT_EQ(s[0].channel, 0u);
}

TEST(Csv, ParsesOptionalColumns) {
  std::istringstream in("0,0,0,1.0,-55.5,3,0.25\n");
  const auto s = read_samples_csv(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].rssi_dbm, -55.5);
  EXPECT_EQ(s[0].channel, 3u);
  EXPECT_DOUBLE_EQ(s[0].t, 0.25);
}

TEST(Csv, ParsesNamedHeaderAnyOrder) {
  std::istringstream in(
      "phase,z,y,x,rssi\n"
      "1.25,0.3,0.2,0.1,-60\n");
  const auto s = read_samples_csv(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].position[0], 0.1);
  EXPECT_DOUBLE_EQ(s[0].position[1], 0.2);
  EXPECT_DOUBLE_EQ(s[0].position[2], 0.3);
  EXPECT_DOUBLE_EQ(s[0].phase, 1.25);
  EXPECT_DOUBLE_EQ(s[0].rssi_dbm, -60.0);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# reader log\n"
      "\n"
      "0,0,0,1.0\n"
      "  \n"
      "# mid-stream comment\n"
      "0,0,0,2.0\n");
  EXPECT_EQ(read_samples_csv(in).size(), 2u);
}

TEST(Csv, WhitespaceAroundFieldsTolerated) {
  std::istringstream in(" 0.1 , 0.2 ,0.3, 1.5 \n");
  const auto s = read_samples_csv(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].position[1], 0.2);
}

TEST(Csv, RejectsNonNumericField) {
  std::istringstream in("0,0,zero,1.0\n");
  EXPECT_THROW(read_samples_csv(in), std::invalid_argument);
}

TEST(Csv, ErrorNamesLineNumber) {
  std::istringstream in("0,0,0,1.0\n0,0,0,bad\n");
  try {
    read_samples_csv(in);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, RejectsTooFewColumns) {
  std::istringstream in("0,0,1.0\n");
  EXPECT_THROW(read_samples_csv(in), std::invalid_argument);
}

TEST(Csv, RejectsHeaderMissingMandatoryColumn) {
  std::istringstream in("x,y,phase\n0,0,1\n");
  EXPECT_THROW(read_samples_csv(in), std::invalid_argument);
}

TEST(Csv, EmptyStreamGivesNoSamples) {
  std::istringstream in("");
  EXPECT_TRUE(read_samples_csv(in).empty());
}

TEST(Csv, WriteReadRoundTrip) {
  std::vector<sim::PhaseSample> samples(3);
  samples[0].position = {0.1, 0.2, 0.3};
  samples[0].phase = 1.5;
  samples[0].rssi_dbm = -52.0;
  samples[0].channel = 7;
  samples[0].t = 0.125;
  samples[2].position = {-1.0, 2.0, -3.0};
  samples[2].phase = 6.0;

  std::ostringstream out;
  write_samples_csv(out, samples);
  std::istringstream in(out.str());
  const auto back = read_samples_csv(in);
  ASSERT_EQ(back.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].position[0], samples[i].position[0]);
    EXPECT_DOUBLE_EQ(back[i].position[1], samples[i].position[1]);
    EXPECT_DOUBLE_EQ(back[i].position[2], samples[i].position[2]);
    EXPECT_DOUBLE_EQ(back[i].phase, samples[i].phase);
    EXPECT_DOUBLE_EQ(back[i].rssi_dbm, samples[i].rssi_dbm);
    EXPECT_EQ(back[i].channel, samples[i].channel);
    EXPECT_DOUBLE_EQ(back[i].t, samples[i].t);
  }
}

TEST(Csv, FileHelpersThrowOnMissingPath) {
  EXPECT_THROW(read_samples_csv_file("/nonexistent/dir/x.csv"),
               std::runtime_error);
  EXPECT_THROW(
      write_samples_csv_file("/nonexistent/dir/x.csv", {}),
      std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
  std::vector<sim::PhaseSample> samples(2);
  samples[1].position = {1.0, 2.0, 3.0};
  samples[1].phase = 0.5;
  const std::string path = "/tmp/lion_csv_roundtrip_test.csv";
  write_samples_csv_file(path, samples);
  const auto back = read_samples_csv_file(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1].position[2], 3.0);
}

}  // namespace
}  // namespace lion::io
