// report_json must emit valid JSON for every report — including reports
// carrying NaN/Inf diagnostics (failed solves) and messages with quotes,
// backslashes, and control characters. Non-finite doubles serialize as
// null; bare `nan`/`inf` tokens would make the whole document unparseable.
#include "io/report_json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json.hpp"

namespace lion::io {
namespace {

core::CalibrationReport sample_report() {
  core::CalibrationReport report;
  report.status = core::CalibrationStatus::kOk;
  report.center.estimated_center = {0.01, 0.82, -0.005};
  report.center.displacement = {0.01, 0.02, -0.005};
  report.phase_offset = 3.14;
  report.diagnostics.profile_points = 220;
  report.diagnostics.condition = 12.5;
  report.diagnostics.mean_residual = 1e-4;
  report.diagnostics.rms_residual = 2e-4;
  report.diagnostics.position_sigma = 0.003;
  report.diagnostics.message = "ok";
  return report;
}

// Minimal structural validator: balanced braces/brackets outside strings
// and no bare nan/inf tokens. (The golden tests already pin exact bytes
// for finite reports; this guards the failure-path serialization.)
void expect_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(ReportJson, FiniteReportHasExpectedFields) {
  const std::string json = report_json(sample_report());
  expect_valid_json(json);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_offset\":"), std::string::npos);
  EXPECT_NE(json.find("\"profile_points\":220"), std::string::npos);
}

TEST(ReportJson, NonFiniteDiagnosticsSerializeAsNull) {
  auto report = sample_report();
  report.status = core::CalibrationStatus::kSolverFailure;
  report.diagnostics.condition = std::numeric_limits<double>::infinity();
  report.diagnostics.mean_residual =
      std::numeric_limits<double>::quiet_NaN();
  report.diagnostics.rms_residual =
      -std::numeric_limits<double>::infinity();
  report.center.estimated_center[1] =
      std::numeric_limits<double>::quiet_NaN();
  const std::string json = report_json(report);
  expect_valid_json(json);
  EXPECT_NE(json.find("\"condition\":null"), std::string::npos);
  EXPECT_NE(json.find("\"mean_residual\":null"), std::string::npos);
  EXPECT_NE(json.find("\"rms_residual\":null"), std::string::npos);
}

TEST(ReportJson, MessageEscaping) {
  auto report = sample_report();
  report.diagnostics.message = "say \"hi\"\\ \n\t\x01 done";
  const std::string json = report_json(report);
  expect_valid_json(json);
  EXPECT_NE(json.find("say \\\"hi\\\"\\\\ \\n\\t\\u0001 done"),
            std::string::npos);
}

TEST(JsonPrimitives, NumberConventions) {
  EXPECT_EQ(obs::json_number(1.0), "1");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()),
            "null");
  // %.17g round-trips binary64 exactly.
  EXPECT_EQ(obs::json_number(0.1), "0.10000000000000001");
}

TEST(JsonPrimitives, Escaping) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("\n\r\t"), "\\n\\r\\t");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x02')), "\\u0002");
}

}  // namespace
}  // namespace lion::io
