#include "signal/stitch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/stats.hpp"
#include "rf/constants.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/unwrap.hpp"

namespace lion::signal {
namespace {

using rf::kTwoPi;

// A profile whose phase is a clean linear function of x, wrapped.
PhaseProfile wrapped_segment(double x0, double x1, double slope,
                             std::size_t n) {
  PhaseProfile p;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = x0 + (x1 - x0) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    p.push_back({{x, 0.0, 0.0}, rf::wrap_phase(slope * x), 0.0});
  }
  return p;
}

TEST(StitchContinuous, ConcatenatesAndUnwraps) {
  const auto a = wrapped_segment(0.0, 0.5, 20.0, 50);
  const auto b = wrapped_segment(0.51, 1.0, 20.0, 50);
  const auto out = stitch_continuous({a, b});
  ASSERT_EQ(out.size(), 100u);
  // Continuous result: every jump below pi.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(std::abs(out[i].phase - out[i - 1].phase), rf::kPi);
  }
  // And the total phase span matches the 20 rad/m slope over 1 m.
  EXPECT_NEAR(out.back().phase - out.front().phase, 20.0, 0.5);
}

TEST(StitchContinuous, SkipsEmptyParts) {
  const auto a = wrapped_segment(0.0, 0.2, 10.0, 10);
  const auto out = stitch_continuous({{}, a, {}});
  EXPECT_EQ(out.size(), 10u);
}

TEST(StitchProfiles, AlignsIndependentlyUnwrappedParts) {
  // Two segments unwrapped separately: the second starts with an arbitrary
  // 2*pi*k offset relative to the first.
  auto a = wrapped_segment(0.0, 0.5, 20.0, 50);
  auto b = wrapped_segment(0.505, 1.0, 20.0, 50);
  unwrap_in_place(a);
  unwrap_in_place(b);
  for (auto& p : b) p.phase += 3.0 * kTwoPi;  // simulate baseline mismatch

  const auto out = stitch_profiles({a, b});
  ASSERT_EQ(out.size(), 100u);
  // After stitching the junction jump is small again.
  const double jump = std::abs(out[50].phase - out[49].phase);
  EXPECT_LT(jump, rf::kPi);
  // Phase difference across the whole span matches the true slope.
  EXPECT_NEAR(out.back().phase - out.front().phase, 20.0, 0.5);
}

TEST(StitchProfiles, ThrowsOnWideJunctionGap) {
  auto a = wrapped_segment(0.0, 0.2, 10.0, 10);
  auto b = wrapped_segment(1.0, 1.2, 10.0, 10);  // 0.8 m gap
  EXPECT_THROW(stitch_profiles({a, b}), std::invalid_argument);
}

TEST(StitchProfiles, CustomGapToleranceRespected) {
  auto a = wrapped_segment(0.0, 0.2, 10.0, 10);
  auto b = wrapped_segment(0.45, 0.6, 10.0, 10);  // 0.25 m gap
  EXPECT_THROW(stitch_profiles({a, b}, 0.2), std::invalid_argument);
  EXPECT_NO_THROW(stitch_profiles({a, b}, 0.3));
}

TEST(StitchProfiles, SingleProfilePassesThrough) {
  const auto a = wrapped_segment(0.0, 0.3, 15.0, 20);
  const auto out = stitch_profiles({a});
  ASSERT_EQ(out.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].phase, a[i].phase);
  }
}

TEST(Preprocess, ProducesUnwrappedSmoothProfile) {
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 300; ++i) {
    sim::PhaseSample s;
    s.t = 0.01 * i;
    s.position = {0.002 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(0.15 * i);
    samples.push_back(s);
  }
  const auto profile = preprocess(samples);
  ASSERT_EQ(profile.size(), samples.size());
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LT(std::abs(profile[i].phase - profile[i - 1].phase), rf::kPi);
  }
}

TEST(Preprocess, OutlierRejectionShrinksProfile) {
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 100; ++i) {
    sim::PhaseSample s;
    s.position = {0.002 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(0.02 * i);
    samples.push_back(s);
  }
  samples[50].phase = rf::wrap_phase(samples[50].phase + 2.5);
  PreprocessConfig cfg;
  cfg.outlier_threshold = 1.0;
  cfg.smoothing_window = 1;
  const auto profile = preprocess(samples, cfg);
  EXPECT_LT(profile.size(), samples.size());
}

TEST(Preprocess, MetricWindowOverridesSampleWindow) {
  // Dense stream: 0.5 mm spacing. A 0.02 m metric window must average far
  // more aggressively than the default 9-sample window.
  rf::Rng noise_src(5);
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 1000; ++i) {
    sim::PhaseSample s;
    s.position = {0.0005 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(1.0 + noise_src.gaussian(0.2));
    samples.push_back(s);
  }
  PreprocessConfig samples_cfg;
  samples_cfg.impulse_threshold = 0.0;
  PreprocessConfig metric_cfg = samples_cfg;
  metric_cfg.smoothing_window_m = 0.02;  // = 40 samples

  const auto by_samples = preprocess(samples, samples_cfg);
  const auto by_metric = preprocess(samples, metric_cfg);
  auto spread = [](const PhaseProfile& p) {
    std::vector<double> v;
    for (const auto& pt : p) v.push_back(pt.phase);
    return lion::linalg::stddev(v);
  };
  EXPECT_LT(spread(by_metric), 0.6 * spread(by_samples));
}

TEST(Preprocess, RssiGateRemovesFadedReads) {
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 200; ++i) {
    sim::PhaseSample s;
    s.position = {0.002 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(0.05 * i);
    s.rssi_dbm = -50.0;
    samples.push_back(s);
  }
  samples[60].rssi_dbm = -90.0;
  samples[61].rssi_dbm = -85.0;
  PreprocessConfig cfg;
  cfg.rssi_gate_db = 6.0;
  cfg.impulse_threshold = 0.0;
  cfg.smoothing_window = 1;
  const auto profile = preprocess(samples, cfg);
  EXPECT_EQ(profile.size(), 198u);
}

TEST(Preprocess, DisabledStagesAreNoops) {
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 50; ++i) {
    sim::PhaseSample s;
    s.position = {0.01 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(0.05 * i);
    samples.push_back(s);
  }
  PreprocessConfig cfg;
  cfg.smoothing_window = 1;
  cfg.outlier_threshold = 0.0;
  const auto profile = preprocess(samples, cfg);
  const auto expected = unwrap_samples(samples);
  ASSERT_EQ(profile.size(), expected.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_DOUBLE_EQ(profile[i].phase, expected[i].phase);
  }
}

}  // namespace
}  // namespace lion::signal
