#include "signal/profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lion::signal {
namespace {

PhaseProfile ramp_profile() {
  // Points along x at 1 cm spacing, phase = 10 * x.
  PhaseProfile p;
  for (int i = 0; i <= 10; ++i) {
    const double x = 0.01 * i;
    p.push_back({{x, 0.0, 0.0}, 10.0 * x, 0.1 * i});
  }
  return p;
}

TEST(Profile, FromSamplesCopiesFields) {
  std::vector<sim::PhaseSample> samples(3);
  samples[1].position = {1.0, 2.0, 3.0};
  samples[1].phase = 0.5;
  samples[1].t = 7.0;
  const auto p = from_samples(samples);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1].position, (Vec3{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(p[1].phase, 0.5);
  EXPECT_DOUBLE_EQ(p[1].t, 7.0);
}

TEST(Profile, ArcLengthsAccumulate) {
  const auto arcs = arc_lengths(ramp_profile());
  ASSERT_EQ(arcs.size(), 11u);
  EXPECT_DOUBLE_EQ(arcs[0], 0.0);
  EXPECT_NEAR(arcs[10], 0.10, 1e-12);
  for (std::size_t i = 1; i < arcs.size(); ++i) {
    EXPECT_GT(arcs[i], arcs[i - 1]);
  }
}

TEST(Profile, ArcLengthsOfEmpty) {
  EXPECT_TRUE(arc_lengths({}).empty());
}

TEST(Profile, PhaseAtArcInterpolates) {
  const auto p = ramp_profile();
  // Halfway between sample 2 (x=0.02) and 3 (x=0.03).
  EXPECT_NEAR(phase_at_arc(p, 0.025), 0.25, 1e-9);
}

TEST(Profile, PhaseAtArcClampsAtEnds) {
  const auto p = ramp_profile();
  EXPECT_DOUBLE_EQ(phase_at_arc(p, -1.0), p.front().phase);
  EXPECT_DOUBLE_EQ(phase_at_arc(p, 99.0), p.back().phase);
}

TEST(Profile, PhaseAtArcEmptyThrows) {
  EXPECT_THROW(phase_at_arc({}, 0.0), std::invalid_argument);
}

TEST(Profile, NearestPointFindsClosest) {
  const auto p = ramp_profile();
  const auto& n = nearest_point(p, {0.033, 0.001, 0.0});
  EXPECT_NEAR(n.position[0], 0.03, 1e-12);
}

TEST(Profile, NearestPointEmptyThrows) {
  EXPECT_THROW(nearest_point({}, {}), std::invalid_argument);
}

TEST(Profile, PhaseNearInterpolatesBetweenSamples) {
  const auto p = ramp_profile();
  EXPECT_NEAR(phase_near(p, {0.025, 0.0, 0.0}), 0.25, 1e-9);
  EXPECT_NEAR(phase_near(p, {0.071, 0.0, 0.0}), 0.71, 1e-9);
}

TEST(Profile, PhaseNearClampsOutsideEnds) {
  const auto p = ramp_profile();
  EXPECT_NEAR(phase_near(p, {-0.5, 0.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(phase_near(p, {0.9, 0.0, 0.0}), 1.0, 1e-9);
}

TEST(Profile, PhaseNearSinglePoint) {
  PhaseProfile p{{{1.0, 0.0, 0.0}, 2.5, 0.0}};
  EXPECT_DOUBLE_EQ(phase_near(p, {5.0, 5.0, 5.0}), 2.5);
}

TEST(Profile, PhaseNearEmptyThrows) {
  EXPECT_THROW(phase_near({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace lion::signal
