#include "signal/unwrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rf/constants.hpp"
#include "rf/phase_model.hpp"

namespace lion::signal {
namespace {

using rf::kPi;
using rf::kTwoPi;

TEST(Unwrap, EmptyAndSingle) {
  EXPECT_TRUE(unwrap({}).empty());
  const auto one = unwrap({1.5});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.5);
}

TEST(Unwrap, NoJumpIsIdentity) {
  const std::vector<double> in{1.0, 1.2, 1.4, 1.3};
  EXPECT_EQ(unwrap(in), in);
}

TEST(Unwrap, UpwardWrapDetected) {
  // Phase decreasing through 0: 0.2 -> 6.2 is a wrap, true motion -0.08...
  const auto out = unwrap({0.3, 0.1, kTwoPi - 0.1, kTwoPi - 0.3});
  EXPECT_NEAR(out[0], 0.3, 1e-12);
  EXPECT_NEAR(out[1], 0.1, 1e-12);
  EXPECT_NEAR(out[2], -0.1, 1e-12);
  EXPECT_NEAR(out[3], -0.3, 1e-12);
}

TEST(Unwrap, DownwardWrapDetected) {
  // Phase increasing through 2*pi.
  const auto out = unwrap({kTwoPi - 0.2, 0.1, 0.4});
  EXPECT_NEAR(out[1], kTwoPi + 0.1, 1e-12);
  EXPECT_NEAR(out[2], kTwoPi + 0.4, 1e-12);
}

TEST(Unwrap, ConsecutiveDifferencesBelowPi) {
  // Synthetic wrapped ramp with many wraps.
  std::vector<double> wrapped;
  for (int i = 0; i < 200; ++i) {
    wrapped.push_back(rf::wrap_phase(0.13 * i));
  }
  const auto out = unwrap(wrapped);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(std::abs(out[i] - out[i - 1]), kPi);
  }
}

TEST(Unwrap, RecoversLinearRamp) {
  std::vector<double> truth;
  std::vector<double> wrapped;
  for (int i = 0; i < 500; ++i) {
    const double v = -3.0 + 0.21 * i;
    truth.push_back(v);
    wrapped.push_back(rf::wrap_phase(v));
  }
  const auto out = unwrap(wrapped);
  // Unwrapped profile equals truth up to a constant 2*pi*k.
  const double offset = out[0] - truth[0];
  EXPECT_NEAR(std::remainder(offset, kTwoPi), 0.0, 1e-9);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i] - offset, truth[i], 1e-9);
  }
}

TEST(Unwrap, RecoversVShapedProfile) {
  // Distance decreases then increases (tag passing the antenna): the
  // unwrapped phase must reproduce the V shape.
  std::vector<double> truth;
  std::vector<double> wrapped;
  for (int i = -100; i <= 100; ++i) {
    const double v = 0.11 * std::abs(i);
    truth.push_back(v);
    wrapped.push_back(rf::wrap_phase(v));
  }
  const auto out = unwrap(wrapped);
  const double offset = out[0] - truth[0];
  std::size_t argmin = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < out[argmin]) argmin = i;
  }
  EXPECT_EQ(argmin, 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i] - offset, truth[i], 1e-9);
  }
}

TEST(UnwrapSamples, CarriesPositionsAndTimes) {
  std::vector<sim::PhaseSample> samples;
  for (int i = 0; i < 5; ++i) {
    sim::PhaseSample s;
    s.t = 0.1 * i;
    s.position = {0.01 * i, 0.0, 0.0};
    s.phase = rf::wrap_phase(0.2 * i);
    samples.push_back(s);
  }
  const auto profile = unwrap_samples(samples);
  ASSERT_EQ(profile.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(profile[i].t, samples[i].t);
    EXPECT_EQ(profile[i].position, samples[i].position);
  }
}

TEST(UnwrapInPlace, MatchesFreeFunction) {
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) wrapped.push_back(rf::wrap_phase(0.4 * i));
  PhaseProfile profile;
  for (double w : wrapped) profile.push_back({{}, w, 0.0});
  unwrap_in_place(profile);
  const auto expected = unwrap(wrapped);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_DOUBLE_EQ(profile[i].phase, expected[i]);
  }
}

TEST(Unwrap, ExactPiJumpResolvedDeterministically) {
  // A jump of exactly pi is genuinely ambiguous; the symmetric wrap
  // resolves it as +pi, and the mirror case as +pi too (never -pi).
  const auto up = unwrap({0.0, kPi});
  EXPECT_NEAR(up[1], kPi, 1e-12);
  const auto down = unwrap({kPi, 0.0});
  EXPECT_NEAR(down[1], 2.0 * kPi, 1e-12);
}

}  // namespace
}  // namespace lion::signal
