// Sanitization tests: a clean stream passes untouched; every category of
// stream damage is repaired or dropped and itemized in the report.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rf/constants.hpp"
#include "signal/sanitize.hpp"
#include "signal/stitch.hpp"

namespace lion {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<sim::PhaseSample> clean_stream(std::size_t n) {
  std::vector<sim::PhaseSample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].t = 0.01 * static_cast<double>(i);
    out[i].position = {0.001 * static_cast<double>(i), 0.0, 0.0};
    out[i].phase = std::fmod(0.05 * static_cast<double>(i), rf::kTwoPi);
    out[i].rssi_dbm = -50.0;
  }
  return out;
}

TEST(Sanitize, CleanStreamUntouched) {
  const auto stream = clean_stream(100);
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_EQ(out.size(), stream.size());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.input, 100u);
  EXPECT_EQ(report.kept, 100u);
}

TEST(Sanitize, DropsNonFiniteFields) {
  auto stream = clean_stream(50);
  stream[3].phase = kNan;
  stream[10].position[1] = kNan;
  stream[20].t = std::numeric_limits<double>::infinity();
  stream[30].rssi_dbm = kNan;
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_EQ(out.size(), 46u);
  EXPECT_EQ(report.dropped_nonfinite, 4u);
  for (const auto& s : out) {
    EXPECT_TRUE(std::isfinite(s.phase));
    EXPECT_TRUE(std::isfinite(s.t));
  }
}

TEST(Sanitize, RewrapsOutOfRangePhases) {
  auto stream = clean_stream(10);
  stream[2].phase = -1.0;
  stream[5].phase = 123456.0;
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_EQ(report.rewrapped, 2u);
  for (const auto& s : out) {
    EXPECT_GE(s.phase, 0.0);
    EXPECT_LT(s.phase, rf::kTwoPi);
  }
}

TEST(Sanitize, RestoresChronologicalOrder) {
  auto stream = clean_stream(20);
  std::swap(stream[4], stream[5]);
  std::swap(stream[11], stream[12]);
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_GT(report.reordered, 0u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].t, out[i].t);
  }
}

TEST(Sanitize, DropsDuplicateDeliveries) {
  auto stream = clean_stream(20);
  stream.insert(stream.begin() + 7, stream[7]);
  stream.insert(stream.begin() + 2, stream[2]);
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(report.dropped_duplicate, 2u);
}

TEST(Sanitize, AllGarbageComesBackEmptyWithoutThrowing) {
  std::vector<sim::PhaseSample> stream(30);
  for (auto& s : stream) s.phase = kNan;
  signal::SanitizeReport report;
  const auto out = signal::sanitize_samples(stream, &report);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(report.dropped_nonfinite, 30u);
  EXPECT_EQ(report.kept, 0u);
}

TEST(Sanitize, PreprocessRunsSanitizeByDefault) {
  auto stream = clean_stream(200);
  stream[50].phase = kNan;
  std::swap(stream[100], stream[101]);
  signal::SanitizeReport report;
  const auto profile = signal::preprocess(stream, {}, report);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.dropped_nonfinite, 1u);
  EXPECT_GT(report.reordered, 0u);
  EXPECT_FALSE(profile.empty());
  for (const auto& p : profile) {
    EXPECT_TRUE(std::isfinite(p.phase));
  }
}

TEST(Sanitize, PreprocessSanitizeCanBeDisabled) {
  auto stream = clean_stream(50);
  std::swap(stream[10], stream[11]);
  signal::PreprocessConfig cfg;
  cfg.sanitize = false;
  signal::SanitizeReport report;
  const auto profile = signal::preprocess(stream, cfg, report);
  EXPECT_TRUE(report.clean());  // nothing was scrubbed
  EXPECT_FALSE(profile.empty());
}

}  // namespace
}  // namespace lion
