#include "signal/smooth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

namespace lion::signal {
namespace {

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> v{1.0, 5.0, 2.0};
  EXPECT_EQ(moving_average(v, 1), v);
  EXPECT_EQ(moving_average(v, 0), v);
}

TEST(MovingAverage, KnownWindow3) {
  const auto out = moving_average({1.0, 2.0, 3.0, 4.0, 5.0}, 3);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // shrunken edge window {1,2}
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 4.0);
  EXPECT_DOUBLE_EQ(out[4], 4.5);
}

TEST(MovingAverage, EvenWindowRoundsUp) {
  // Window 4 behaves as window 5.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(moving_average(v, 4), moving_average(v, 5));
}

TEST(MovingAverage, PreservesConstantSignal) {
  const std::vector<double> v(20, 3.3);
  const auto out = moving_average(v, 7);
  for (double x : out) EXPECT_NEAR(x, 3.3, 1e-12);
}

TEST(MovingAverage, PreservesLinearInterior) {
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(2.0 * i);
  const auto out = moving_average(v, 5);
  for (std::size_t i = 2; i < 28; ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(MovingAverage, ReducesNoiseVariance) {
  rf::Rng rng(1);
  std::vector<double> noisy(500);
  for (double& x : noisy) x = rng.gaussian(0.3);
  const auto smooth = moving_average(noisy, 9);
  double var_in = 0.0;
  double var_out = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    var_in += noisy[i] * noisy[i];
    var_out += smooth[i] * smooth[i];
  }
  EXPECT_LT(var_out, var_in / 3.0);
}

TEST(MovingMedian, KnownWindow3) {
  const auto out = moving_median({1.0, 100.0, 3.0, 4.0, 5.0}, 3);
  EXPECT_DOUBLE_EQ(out[1], 3.0);  // median of {1, 100, 3}
  EXPECT_DOUBLE_EQ(out[2], 4.0);  // median of {100, 3, 4}
}

TEST(MovingMedian, RemovesImpulse) {
  std::vector<double> v(21, 1.0);
  v[10] = 50.0;
  const auto out = moving_median(v, 5);
  EXPECT_DOUBLE_EQ(out[10], 1.0);
}

TEST(MovingMedian, WindowOneIsIdentity) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_EQ(moving_median(v, 1), v);
}

TEST(SmoothInPlace, OnlyPhasesChange) {
  PhaseProfile profile;
  rf::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    profile.push_back({{0.01 * i, 0.0, 0.0}, rng.gaussian(1.0), 0.1 * i});
  }
  const PhaseProfile before = profile;
  smooth_in_place(profile, 7);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_EQ(profile[i].position, before[i].position);
    EXPECT_EQ(profile[i].t, before[i].t);
  }
}

TEST(RejectOutliers, RemovesImpulsesKeepsRest) {
  PhaseProfile profile;
  for (int i = 0; i < 40; ++i) {
    profile.push_back({{0.01 * i, 0.0, 0.0}, 0.05 * i, 0.0});
  }
  profile[15].phase += 3.0;  // impulse
  profile[30].phase -= 3.0;  // impulse
  const std::size_t removed = reject_outliers(profile, 7, 1.0);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(profile.size(), 38u);
}

TEST(RejectOutliers, CleanProfileUntouched) {
  PhaseProfile profile;
  for (int i = 0; i < 40; ++i) {
    profile.push_back({{0.01 * i, 0.0, 0.0}, 0.05 * i, 0.0});
  }
  EXPECT_EQ(reject_outliers(profile, 7, 1.0), 0u);
  EXPECT_EQ(profile.size(), 40u);
}

TEST(RejectOutliers, EmptyProfileIsNoop) {
  PhaseProfile profile;
  EXPECT_EQ(reject_outliers(profile, 5, 0.5), 0u);
}

namespace wrapped_impulses {

std::vector<sim::PhaseSample> ramp_stream(int n) {
  std::vector<sim::PhaseSample> s(n);
  for (int i = 0; i < n; ++i) {
    s[i].phase = rf::wrap_phase(0.05 * i);
    s[i].position = {0.001 * i, 0.0, 0.0};
  }
  return s;
}

TEST(RejectWrappedImpulses, DropsIsolatedImpulse) {
  auto s = ramp_stream(50);
  s[25].phase = rf::wrap_phase(s[25].phase + 3.0);
  EXPECT_EQ(reject_wrapped_impulses(s, 1.2), 1u);
  EXPECT_EQ(s.size(), 49u);
}

TEST(RejectWrappedImpulses, CleanStreamUntouched) {
  auto s = ramp_stream(50);
  EXPECT_EQ(reject_wrapped_impulses(s, 1.2), 0u);
  EXPECT_EQ(s.size(), 50u);
}

TEST(RejectWrappedImpulses, WrapJumpIsNotAnImpulse) {
  // A legitimate modulo wrap (6.2 -> 0.1) is circularly small.
  std::vector<sim::PhaseSample> s(20);
  for (int i = 0; i < 20; ++i) {
    s[i].phase = rf::wrap_phase(6.0 + 0.05 * i);  // crosses 2*pi
  }
  EXPECT_EQ(reject_wrapped_impulses(s, 1.2), 0u);
}

TEST(RejectWrappedImpulses, LookAheadHealsCorruptedHead) {
  auto s = ramp_stream(30);
  s[0].phase = rf::wrap_phase(s[0].phase + 3.0);  // wild first sample
  reject_wrapped_impulses(s, 1.2);
  // Everything after the head survives (sample 1 confirmed by sample 2).
  EXPECT_GE(s.size(), 29u);
}

TEST(RejectWrappedImpulses, DisabledByNonPositiveThreshold) {
  auto s = ramp_stream(30);
  s[10].phase = rf::wrap_phase(s[10].phase + 3.0);
  EXPECT_EQ(reject_wrapped_impulses(s, 0.0), 0u);
  EXPECT_EQ(s.size(), 30u);
}

}  // namespace wrapped_impulses

namespace rssi_gate {

TEST(RejectLowRssi, DropsDeepFades) {
  std::vector<sim::PhaseSample> s(40);
  for (int i = 0; i < 40; ++i) s[i].rssi_dbm = -50.0;
  s[7].rssi_dbm = -80.0;
  s[21].rssi_dbm = -70.0;
  EXPECT_EQ(reject_low_rssi(s, 6.0), 2u);
  EXPECT_EQ(s.size(), 38u);
}

TEST(RejectLowRssi, KeepsReadsNearMedian) {
  std::vector<sim::PhaseSample> s(20);
  for (int i = 0; i < 20; ++i) {
    s[i].rssi_dbm = -50.0 + (i % 2 ? 2.0 : -2.0);
  }
  EXPECT_EQ(reject_low_rssi(s, 6.0), 0u);
}

TEST(RejectLowRssi, DisabledByNonPositiveGate) {
  std::vector<sim::PhaseSample> s(10);
  s[3].rssi_dbm = -200.0;
  EXPECT_EQ(reject_low_rssi(s, 0.0), 0u);
  EXPECT_EQ(s.size(), 10u);
}

TEST(RejectLowRssi, EmptyStreamIsNoop) {
  std::vector<sim::PhaseSample> s;
  EXPECT_EQ(reject_low_rssi(s, 6.0), 0u);
}

}  // namespace rssi_gate

}  // namespace
}  // namespace lion::signal
