// Fig. 19 + 20 — case study: locating a static tag with multiple antennas,
// the scenario where phase calibration matters most.
//
// Paper setup: three antennas in a line, 30 cm apart, physical centers
// aligned at 1 m height; a static tag at (-10 cm, 80 cm) from the middle
// antenna. Calibration uses the Fig. 11 rig (y0 = z0 = 20 cm, depth of L1
// 70 cm). Claims:
//  (19) the three antennas have distinct center displacements and offsets
//       (paper: 3.98 / 2.74 / 4.07 rad);
//  (20) the differential hologram's error drops 8.49 cm -> 5.76 cm with
//       center calibration -> 4.68 cm with center+offset calibration
//       (~1.8x total).

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  // --engine: run the three per-antenna calibrations as one batch on the
  // parallel calibration engine instead of the serial loop. Same streams,
  // same reports (the engine is deterministic); this is the fleet-shaped
  // production path.
  bool use_engine = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--engine") use_engine = true;
  }

  bench::BenchReporter report("fig19_20_multiantenna", argc, argv);
  report.param("engine", use_engine ? "on" : "off");
  bench::banner("Fig. 19/20 — multi-antenna tag localization case study",
                "per-antenna center displacements and offsets differ; "
                "calibration improves the hologram fix 8.49 -> 5.76 -> "
                "4.68 cm (~1.8x)");

  // Three antennas 30 cm apart, 70 cm behind the calibration rig plane.
  auto scenario = sim::Scenario::Builder{}
                      .environment(sim::EnvironmentKind::kLabTypical)
                      .add_antenna({-0.3, 0.7, 0.0})
                      .add_antenna({0.0, 0.7, 0.0})
                      .add_antenna({0.3, 0.7, 0.0})
                      .add_tag()
                      .seed(190)
                      .build();

  // ---- Fig. 19: calibrate each antenna with the three-line rig ---------
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  rig.y0 = 0.2;
  rig.z0 = 0.2;

  std::vector<core::AntennaCalibration> cals(3);
  std::printf("\n(Fig. 19) per-antenna calibration results%s\n",
              use_engine ? " (batch engine)" : "");
  std::printf("%-8s %-26s %-12s %-14s\n", "antenna", "displacement (x,y,z)[cm]",
              "|displ|[cm]", "offset[rad]");
  if (use_engine) {
    std::vector<std::vector<sim::PhaseSample>> streams;
    std::vector<Vec3> centers;
    for (std::size_t a = 0; a < 3; ++a) {
      streams.push_back(scenario.sweep(a, 0, rig.build()));
      centers.push_back(scenario.antennas()[a].physical_center);
    }
    // Mirror the serial path's solver: plain adaptive WLS, paper-default
    // preprocessing (the robust RANSAC default is for contaminated field
    // streams, not this clean figure).
    core::RobustCalibrationConfig cfg;
    cfg.adaptive = core::AdaptiveConfig{};
    cfg.preprocess = signal::PreprocessConfig{};
    const auto reports = bench::calibrate_batch(std::move(streams), centers,
                                                /*threads=*/0, cfg);
    for (std::size_t a = 0; a < 3; ++a) {
      cals[a].antenna_index = a;
      cals[a].center = reports[a].center;
      cals[a].phase_offset = reports[a].phase_offset;
    }
  } else {
    for (std::size_t a = 0; a < 3; ++a) {
      const auto samples = scenario.sweep(a, 0, rig.build());
      const auto profile = signal::preprocess(samples);
      core::AdaptiveConfig acfg;
      acfg.range_center_x = 0.0;
      cals[a].antenna_index = a;
      cals[a].center = core::calibrate_phase_center(
          profile, scenario.antennas()[a].physical_center, acfg);
      cals[a].phase_offset = core::calibrate_phase_offset(
          samples, cals[a].center.estimated_center);
    }
  }
  for (std::size_t a = 0; a < 3; ++a) {
    const Vec3& d = cals[a].center.displacement;
    const double true_offset =
        rf::wrap_phase(scenario.antennas()[a].reader_offset_rad +
                       scenario.tags()[0].tag_offset_rad);
    std::printf("A%-7zu (%5.2f, %5.2f, %5.2f)%7s %-12.2f %.2f (true %.2f)\n",
                a + 1, d[0] * 100.0, d[1] * 100.0, d[2] * 100.0, "",
                d.norm() * 100.0, cals[a].phase_offset, true_offset);
    report.row("calibration")
        .value("antenna", static_cast<double>(a + 1))
        .value("displ_cm", d.norm() * 100.0)
        .value("offset_rad", cals[a].phase_offset)
        .value("true_offset_rad", true_offset);
  }

  // ---- Fig. 20: differential hologram under three calibration levels ---
  const Vec3 tag_pos{-0.1, 0.8, 0.0};
  auto collect = [&](std::size_t a) {
    const auto reads = scenario.read_static(a, 0, tag_pos, 300);
    std::vector<double> phases;
    for (const auto& r : reads) phases.push_back(r.phase);
    return rf::circular_mean(phases);
  };
  const double measured[3] = {collect(0), collect(1), collect(2)};

  // Three antennas yield only two independent phase differences, so the
  // differential hologram has exact alias peaks ~11 cm from the truth; a
  // deployment prior tighter than the alias spacing (the tag sits in a
  // known tray slot, +/-8 cm) is required to make the search well-posed.
  baseline::HologramConfig hcfg;
  hcfg.min_corner = tag_pos - Vec3{0.08, 0.08, 0.0};
  hcfg.max_corner = tag_pos + Vec3{0.08, 0.08, 0.0};
  hcfg.min_corner[2] = hcfg.max_corner[2] = 0.0;
  hcfg.grid_size = 0.002;

  struct Level {
    const char* name;
    bool use_estimated_center;
    bool use_offsets;
  };
  const Level levels[] = {
      {"no calibration", false, false},
      {"center calibration", true, false},
      {"center + offset calibration", true, true},
  };

  std::printf("\n(Fig. 20) differential hologram fix of the tag at "
              "(-10, 80) cm\n");
  std::printf("%-30s %-12s\n", "calibration level", "error[cm]");
  for (const Level& level : levels) {
    std::vector<baseline::AntennaReading> readings;
    for (std::size_t a = 0; a < 3; ++a) {
      baseline::AntennaReading r;
      r.antenna_position = level.use_estimated_center
                               ? cals[a].center.estimated_center
                               : scenario.antennas()[a].physical_center;
      r.phase = measured[a];
      // Offsets only make sense relatively; subtracting each antenna's
      // estimate implements the paper's pairwise-difference elimination.
      r.offset = level.use_offsets ? cals[a].phase_offset : 0.0;
      readings.push_back(r);
    }
    const auto fix = baseline::locate_tag_multi_antenna(readings, hcfg);
    std::printf("%-30s %-12.2f\n", level.name,
                linalg::distance(fix.position, tag_pos) * 100.0);
    report.row("fix")
        .tag("level", level.name)
        .value("error_cm", linalg::distance(fix.position, tag_pos) * 100.0);
  }

  std::printf("\npaper reference: 8.49 cm -> 5.76 cm -> 4.68 cm\n");
  return 0;
}
