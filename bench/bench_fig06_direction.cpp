// Fig. 6 — LION vs hologram for a single antenna at different directions.
//
// Paper setup: the tag moves on a circle of radius 0.3 m about the origin;
// the antenna sits 1 m from the origin at 0, 45 and 90 degrees. Phases get
// N(0, 0.1) noise; 100 trials per position. Claims: (1) LION's distance
// error matches the hologram's; (2) the error distributes along the line
// from the trajectory center to the antenna (the hyperbola-asymptote
// effect), so the per-axis split depends on direction.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/smooth.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

signal::PhaseProfile circular_profile(const Vec3& antenna, double sigma,
                                      rf::Rng& rng) {
  signal::PhaseProfile p;
  constexpr int kSamples = 360;
  for (int i = 0; i < kSamples; ++i) {
    const double a = rf::kTwoPi * i / kSamples;
    const Vec3 pos{0.3 * std::cos(a), 0.3 * std::sin(a), 0.0};
    p.push_back({pos,
                 rf::distance_phase(linalg::distance(pos, antenna)) +
                     rng.gaussian(sigma),
                 0.0});
  }
  // Shared preprocessing (Sec. IV-A2) for both methods.
  signal::smooth_in_place(p, 9);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("fig06_direction", argc, argv);
  bench::banner(
      "Fig. 6 — single-antenna localization at different directions",
      "LION ~= hologram in distance error; per-axis errors rotate with the "
      "antenna direction (errors lie along center->antenna)");

  const double kDeg[] = {0.0, 45.0, 90.0};
  std::printf("\n%-12s %-10s %-12s %-12s %-12s\n", "direction", "method",
              "dist[cm]", "x-err[cm]", "y-err[cm]");

  for (double deg : kDeg) {
    const double rad = deg * rf::kPi / 180.0;
    const Vec3 antenna{std::cos(rad), std::sin(rad), 0.0};

    std::vector<double> lion_d, lion_x, lion_y;
    std::vector<double> holo_d, holo_x, holo_y;
    rf::Rng rng(static_cast<std::uint64_t>(deg) + 5);

    for (int trial = 0; trial < 100; ++trial) {
      const auto profile = circular_profile(antenna, 0.1, rng);

      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.pair_interval = 0.25;
      const auto lion_fix = core::LinearLocalizer(cfg).locate(profile);
      lion_d.push_back(linalg::distance(lion_fix.position, antenna));
      lion_x.push_back(std::abs(lion_fix.position[0] - antenna[0]));
      lion_y.push_back(std::abs(lion_fix.position[1] - antenna[1]));

      // Hologram over a 10 cm box around the truth, 2 mm grid (kept small
      // so 100 trials stay tractable; same data as LION).
      baseline::HologramConfig hcfg;
      hcfg.min_corner = antenna - Vec3{0.05, 0.05, 0.0};
      hcfg.max_corner = antenna + Vec3{0.05, 0.05, 0.0};
      hcfg.min_corner[2] = hcfg.max_corner[2] = 0.0;
      hcfg.grid_size = 0.002;
      const auto holo_fix = baseline::locate_hologram(profile, hcfg);
      holo_d.push_back(linalg::distance(holo_fix.position, antenna));
      holo_x.push_back(std::abs(holo_fix.position[0] - antenna[0]));
      holo_y.push_back(std::abs(holo_fix.position[1] - antenna[1]));
    }

    std::printf("%-12.0f %-10s %-12.2f %-12.2f %-12.2f\n", deg, "LION",
                linalg::mean(lion_d) * 100.0, linalg::mean(lion_x) * 100.0,
                linalg::mean(lion_y) * 100.0);
    std::printf("%-12s %-10s %-12.2f %-12.2f %-12.2f\n", "", "hologram",
                linalg::mean(holo_d) * 100.0, linalg::mean(holo_x) * 100.0,
                linalg::mean(holo_y) * 100.0);
    report.row("direction")
        .tag("method", "lion")
        .value("deg", deg)
        .value("dist_cm", linalg::mean(lion_d) * 100.0)
        .value("x_err_cm", linalg::mean(lion_x) * 100.0)
        .value("y_err_cm", linalg::mean(lion_y) * 100.0);
    report.row("direction")
        .tag("method", "hologram")
        .value("deg", deg)
        .value("dist_cm", linalg::mean(holo_d) * 100.0)
        .value("x_err_cm", linalg::mean(holo_x) * 100.0)
        .value("y_err_cm", linalg::mean(holo_y) * 100.0);
  }

  std::printf(
      "\nreading: distance error is steady across directions and matches\n"
      "the hologram's; the x/y split flips between 0 and 90 degrees — the\n"
      "error lies along the trajectory-center -> antenna line (Sec. III-A).\n");
  return 0;
}
