// Ablation bench — the design choices DESIGN.md calls out:
//   1. pairing strategy (ladder vs interval-only vs all-pairs);
//   2. reweighting iterations (0 = LS, 1 = the paper's WLS, to-convergence);
//   3. reference-sample choice (first vs middle vs last);
//   4. adaptive selection rule (|mean residual| vs residual variance).
// Each ablation reports mean distance error (and where relevant cost) on
// the same simulated workload.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "linalg/lstsq.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

signal::PhaseProfile workload(std::uint64_t seed, const Vec3& target) {
  rf::Rng rng(seed);
  signal::PhaseProfile p;
  for (double y : {0.0, -0.2}) {
    for (double x = -0.55; x <= 0.55 + 1e-12; x += 0.005) {
      const Vec3 pos{x, y, 0.0};
      double phase = rf::distance_phase(linalg::distance(pos, target)) +
                     rng.gaussian(0.1);
      // One narrow multipath hot zone (a shadowed NLoS stretch): the
      // structured-outlier regime residual reweighting is built for.
      if (x > 0.35 && x < 0.43) phase += 1.0;
      p.push_back({pos, phase, 0.0});
    }
  }
  return p;
}

double err_cm(const Vec3& est, const Vec3& truth) {
  return linalg::distance(est, truth) * 100.0;
}

void ablate_pairing(bench::BenchReporter& out) {
  std::printf("\n[1] pairing strategy (WLS solve, 12 seeds)\n");
  std::printf("%-22s %-12s %-12s\n", "strategy", "err[cm]", "pairs");
  const Vec3 target{0.1, 0.8, 0.0};
  struct Acc {
    double err = 0.0;
    double pairs = 0.0;
    int failures = 0;
  } ladder, interval, allpairs;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto profile = workload(seed, target);
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    const core::LinearLocalizer loc(cfg);

    auto run = [&](Acc& acc, const std::vector<core::IndexPair>& pairs) {
      acc.pairs += static_cast<double>(pairs.size());
      try {
        acc.err += err_cm(loc.locate_with_pairs(profile, pairs).position,
                          target);
      } catch (const std::exception&) {
        acc.failures += 1;
      }
    };
    run(ladder, core::ladder_pairs(profile, 0.2, 0.02));
    run(interval, core::interval_pairs(profile, 0.2, 0.02));
    run(allpairs, core::spread_pairs(profile, 0.2, 4000, 3));
  }
  auto report = [&out](const char* name, const Acc& a) {
    if (a.failures > 0) {
      std::printf("%-22s %-12s %-12.0f (%d/12 runs rank-deficient)\n", name,
                  "FAILS", a.pairs / 12, a.failures);
    } else {
      std::printf("%-22s %-12.2f %-12.0f\n", name, a.err / 12, a.pairs / 12);
    }
    out.row("pairing")
        .tag("strategy", name)
        .value("err_cm", a.failures > 0 ? -1.0 : a.err / 12)
        .value("pairs", a.pairs / 12)
        .value("failures", a.failures);
  };
  report("ladder (default)", ladder);
  report("interval-only", interval);
  report("all-pairs (strided)", allpairs);
  std::printf("note: interval-only pairing on a two-line scan keeps no\n"
              "cross-line pair, so the system loses the perpendicular\n"
              "coordinate entirely — the reason the ladder is the default.\n");
}

void ablate_reweighting(bench::BenchReporter& out) {
  std::printf("\n[2] reweighting iterations (12 seeds)\n");
  std::printf("%-22s %-12s\n", "iterations", "err[cm]");
  const Vec3 target{0.1, 0.8, 0.0};
  for (int variant = 0; variant < 3; ++variant) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto profile = workload(seed, target);
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.method = variant == 0   ? core::SolveMethod::kLeastSquares
                   : variant == 1 ? core::SolveMethod::kWeightedLeastSquares
                                  : core::SolveMethod::kIterativeReweighted;
      total +=
          err_cm(core::LinearLocalizer(cfg).locate(profile).position, target);
    }
    const char* name = variant == 0   ? "0 (plain LS)"
                       : variant == 1 ? "1 (paper's WLS)"
                                      : "to convergence (IRLS)";
    std::printf("%-22s %-12.2f\n", name, total / 12);
    out.row("reweighting").tag("iterations", name).value("err_cm", total / 12);
  }
}

void ablate_reference(bench::BenchReporter& out) {
  std::printf("\n[3] reference-sample choice (12 seeds)\n");
  std::printf("%-22s %-12s\n", "reference", "err[cm]");
  const Vec3 target{0.1, 0.8, 0.0};
  const auto probe = workload(1, target);
  const std::size_t n = probe.size();
  const std::pair<const char*, std::size_t> choices[] = {
      {"first sample", 0}, {"middle sample", n / 2}, {"last sample", n - 1}};
  for (const auto& [name, ref] : choices) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto profile = workload(seed, target);
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.reference_index = ref;
      total +=
          err_cm(core::LinearLocalizer(cfg).locate(profile).position, target);
    }
    std::printf("%-22s %-12.2f\n", name, total / 12);
    out.row("reference").tag("choice", name).value("err_cm", total / 12);
  }
}

void ablate_selection_rule(bench::BenchReporter& out) {
  std::printf("\n[4] adaptive selection rule (12 seeds)\n");
  std::printf("%-22s %-12s\n", "rule", "err[cm]");
  const Vec3 target{0.0, 0.8, 0.0};
  double by_mean = 0.0;
  double by_var = 0.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto profile = workload(seed + 50, target);
    core::AdaptiveConfig cfg;
    cfg.base.target_dim = 2;
    cfg.base.side_hint = target;
    const auto sweep = core::locate_adaptive(profile, cfg);
    by_mean += err_cm(sweep.position, target);

    // Variance rule: re-rank the same candidates by residual variance.
    const core::AdaptiveCandidate* best = nullptr;
    for (const auto& cand : sweep.candidates) {
      if (!cand.usable) continue;
      const double spread =
          cand.result.rms_residual * cand.result.rms_residual -
          cand.result.mean_residual * cand.result.mean_residual;
      if (!best ||
          spread < best->result.rms_residual * best->result.rms_residual -
                       best->result.mean_residual *
                           best->result.mean_residual) {
        best = &cand;
      }
    }
    by_var += err_cm(best->result.position, target);
  }
  std::printf("%-22s %-12.2f\n", "|mean residual| (paper)", by_mean / 12);
  std::printf("%-22s %-12.2f\n", "residual variance", by_var / 12);
  out.row("selection")
      .tag("rule", "mean_residual")
      .value("err_cm", by_mean / 12);
  out.row("selection")
      .tag("rule", "residual_variance")
      .value("err_cm", by_var / 12);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("ablation", argc, argv);
  bench::banner("Ablation — LION design choices",
                "pairing diversity, one reweight pass, and the mean-residual "
                "selection rule each earn their keep");
  ablate_pairing(report);
  ablate_reweighting(report);
  ablate_reference(report);
  ablate_selection_rule(report);
  return 0;
}
