// Fig. 18 — impact of the scanning interval.
//
// Paper setup: range fixed at 80 cm, interval swept 10..35 cm. Claim: the
// distance error drops sharply once the interval reaches ~20 cm (larger
// intervals mean larger phase differences, so noise matters relatively
// less) and the mean residual again flags the best interval.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig18_interval", argc, argv);
  bench::banner("Fig. 18 — impact of scanning interval",
                "error decreases markedly up to ~20 cm interval; the "
                "residual identifies the good settings");

  const rf::Antenna antenna = bench::plain_antenna({0.0, 0.8, 0.0});
  auto scenario =
      bench::standard_scenario(sim::EnvironmentKind::kLabTypical, antenna, 180);
  const Vec3 center = antenna.phase_center();

  std::printf("\n%-14s %-18s %-14s\n", "interval[cm]", "mean residual[e-3]",
              "dist err[cm]");

  for (double interval = 0.10; interval <= 0.35 + 1e-9; interval += 0.05) {
    std::vector<double> errs, resids;
    for (int trial = 0; trial < 10; ++trial) {
      const Vec3 start{-0.6, 0.0, 0.0};
      const auto profile = signal::preprocess(scenario.sweep(
          0, 0,
          sim::LinearTrajectory(start, start + Vec3{1.2, 0.0, 0.0}, 0.1)));
      signal::PhaseProfile virt;
      for (const auto& pt : profile) {
        virt.push_back({center - (pt.position - start), pt.phase, pt.t});
      }
      const double cx =
          0.5 * (virt.front().position[0] + virt.back().position[0]);
      const auto windowed = core::restrict_to_x_range(virt, cx, 0.8);
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.pair_interval = interval;
      cfg.side_hint = start;
      // Pure interval pairing so the sweep isolates the x_o parameter.
      const auto pairs = core::interval_pairs(windowed, interval, 0.02);
      const auto fix =
          core::LinearLocalizer(cfg).locate_with_pairs(windowed, pairs);
      errs.push_back(bench::planar_error(fix.position, start) * 100.0);
      resids.push_back(fix.mean_residual * 1e3);
    }
    std::printf("%-14.0f %-18.3f %-14.2f\n", interval * 100.0,
                linalg::mean(resids), linalg::mean(errs));
    report.row("interval")
        .value("interval_cm", interval * 100.0)
        .value("mean_residual_e3", linalg::mean(resids))
        .value("dist_err_cm", linalg::mean(errs));
  }

  std::printf("\npaper reference: error drops significantly once the interval "
              "reaches 20 cm; the 20 cm residual is closest to zero\n");
  return 0;
}
