// Fig. 4 — anatomy and cost of the hologram baseline.
//
// Paper setup: two simulated tag positions at (-0.3, 0) and (0.3, 0), the
// antenna at (0.5, 0.5); the likelihood image over a 1x1 m area with 1 mm
// grid shows hyperbola-shaped ridges, and generating even this simple
// hologram takes ~0.8 s. Weighting sharpens the peak (Fig. 4b).

#include <cstdio>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig04_hologram", argc, argv);
  bench::banner("Fig. 4 — hologram likelihood structure and cost",
                "grids of high likelihood form hyperbolas; a 1 m^2 hologram "
                "at 1 mm grid takes ~0.8 s to build");

  const Vec3 antenna{0.5, 0.5, 0.0};
  const Vec3 t1{-0.3, 0.0, 0.0};
  const Vec3 t2{0.3, 0.0, 0.0};

  rf::Rng rng(7);
  signal::PhaseProfile profile;
  for (const Vec3& t : {t1, t2}) {
    profile.push_back({t,
                       rf::distance_phase(linalg::distance(t, antenna)) +
                           rng.gaussian(0.1),
                       0.0});
  }

  // Likelihood along a horizontal slice through the antenna: the ridge
  // crossing marks the hyperbola.
  std::printf("\nlikelihood slice at y = 0.5 (2 measurements):\n  x[m]:  ");
  for (double x = 0.0; x <= 1.0 + 1e-9; x += 0.1) std::printf(" %5.2f", x);
  std::printf("\n  L   :  ");
  for (double x = 0.0; x <= 1.0 + 1e-9; x += 0.1) {
    std::printf(" %5.2f", baseline::hologram_likelihood(
                              profile, 0, {x, 0.5, 0.0},
                              rf::kDefaultWavelength));
  }

  // Cost: full 1 m^2 hologram at 1 mm, like the paper's example.
  baseline::HologramConfig cfg;
  cfg.min_corner = {0.0, 0.0, 0.0};
  cfg.max_corner = {1.0, 1.0, 0.0};
  cfg.grid_size = 0.001;
  cfg.augmented = false;
  bench::Timer timer;
  const auto plain = baseline::locate_hologram(profile, cfg);
  const double plain_s = timer.seconds();

  cfg.augmented = true;
  timer.reset();
  const auto weighted = baseline::locate_hologram(profile, cfg);
  const double weighted_s = timer.seconds();

  std::printf("\n\n%-28s %-12s %-12s %-10s\n", "variant", "cells", "time[s]",
              "peak");
  std::printf("%-28s %-12zu %-12.3f %-10.3f\n", "plain hologram", plain.cells,
              plain_s, plain.peak_likelihood);
  std::printf("%-28s %-12zu %-12.3f %-10.3f\n", "weighted (augmented)",
              weighted.cells, weighted_s, weighted.peak_likelihood);
  report.row("hologram")
      .tag("variant", "plain")
      .value("cells", static_cast<double>(plain.cells))
      .value("time_s", plain_s)
      .value("peak", plain.peak_likelihood);
  report.row("hologram")
      .tag("variant", "weighted")
      .value("cells", static_cast<double>(weighted.cells))
      .value("time_s", weighted_s)
      .value("peak", weighted.peak_likelihood);
  std::printf("paper reference: ~0.8 s for this hologram on a MacBook i5\n");
  std::printf(
      "\nreading: cost scales with area/grid^2 (and /grid^3 in 3D) — the\n"
      "motivation for LION's linear model (paper Sec. II-C).\n");
  return 0;
}
