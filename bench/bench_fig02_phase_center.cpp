// Fig. 2 — the phase-center/physical-center mismatch.
//
// Paper setup: a tag 65 cm in front of the antenna is swept across the
// horizontal (y in the paper's antenna-plane frame; our x) and vertical
// (z) directions. The unwrapped phase is smallest where the tag passes the
// *electrical* phase center — and that valley sits 2-3 cm away from the
// physical center taken as the origin.

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;

namespace {

// Position (along the sweep axis) of the unwrapped-phase valley: a
// quadratic fit around the raw minimum (the valley bottom is flat, so the
// bare argmin wanders with noise; the vertex of the local parabola is the
// robust estimate).
double valley_position(const signal::PhaseProfile& profile, int axis) {
  std::size_t argmin = 0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i].phase < profile[argmin].phase) argmin = i;
  }
  const double center = profile[argmin].position[axis];
  // Fit phase = a s^2 + b s + c over the +/-15 cm neighbourhood.
  std::vector<std::array<double, 3>> rows;
  std::vector<double> target;
  for (const auto& p : profile) {
    const double s = p.position[axis] - center;
    if (std::abs(s) > 0.15) continue;
    rows.push_back({s * s, s, 1.0});
    target.push_back(p.phase);
  }
  if (rows.size() < 5) return center;
  linalg::Matrix a(rows.size(), 3);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rows[r][c];
  }
  const auto fit = linalg::solve_least_squares(a, target);
  if (fit.x[0] <= 0.0) return center;
  return center - fit.x[1] / (2.0 * fit.x[0]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("fig02_phase_center", argc, argv);
  bench::banner("Fig. 2 — phase center vs physical center",
                "measured phase valleys appear ~2-3 cm away from the "
                "physical center for both sweep directions");

  std::printf("\n%-10s %-12s %-18s %-18s %-14s\n", "antenna", "sweep axis",
              "valley offset[cm]", "true offset[cm]", "|displ|[cm]");

  for (std::uint32_t id = 0; id < 4; ++id) {
    // Physical center at the origin; the tag plane 65 cm in front (-y).
    auto antenna = rf::make_antenna({0.0, 0.0, 0.0}, id);
    auto scenario = bench::standard_scenario(sim::EnvironmentKind::kLabClean,
                                             antenna, 1000 + id);

    // Horizontal sweep: x from -0.3 to 0.3 at depth 0.65 m.
    sim::LinearTrajectory horiz({-0.3, -0.65, 0.0}, {0.3, -0.65, 0.0}, 0.1);
    const auto horiz_profile =
        signal::preprocess(scenario.sweep(0, 0, horiz));
    const double vx = valley_position(horiz_profile, 0);

    // Vertical sweep: z from -0.3 to 0.3.
    sim::LinearTrajectory vert({0.0, -0.65, -0.3}, {0.0, -0.65, 0.3}, 0.1);
    const auto vert_profile = signal::preprocess(scenario.sweep(0, 0, vert));
    const double vz = valley_position(vert_profile, 2);

    const auto& d = antenna.phase_center_displacement;
    std::printf("A%-9u %-12s %-18.2f %-18.2f %-14.2f\n", id, "horizontal",
                vx * 100.0, d[0] * 100.0, d.norm() * 100.0);
    std::printf("%-10s %-12s %-18.2f %-18.2f\n", "", "vertical", vz * 100.0,
                d[2] * 100.0);
    report.row("valley")
        .tag("axis", "horizontal")
        .value("antenna", id)
        .value("valley_cm", vx * 100.0)
        .value("true_cm", d[0] * 100.0);
    report.row("valley")
        .tag("axis", "vertical")
        .value("antenna", id)
        .value("valley_cm", vz * 100.0)
        .value("true_cm", d[2] * 100.0);
  }

  std::printf(
      "\nreading: the valley along each axis tracks the hidden displacement\n"
      "component — the electrical center, not the ruler-measured one, is\n"
      "what the phase sees. Calibration is necessary (paper Sec. II-A).\n");
  return 0;
}
