// Baseline shootout — every localization method in the repository on the
// same workloads, quantifying the paper's Table-of-related-work claims:
// each baseline only works on its own trajectory shape, while LION runs on
// all of them; accuracy is comparable where a baseline applies; and the
// compute cost separates grid search from model fitting from LION's linear
// solve.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "baseline/hyperbola.hpp"
#include "baseline/parabola.hpp"
#include "baseline/tagspin.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/smooth.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

constexpr int kTrials = 25;

signal::PhaseProfile synth(const std::vector<Vec3>& positions,
                           const Vec3& target, rf::Rng& rng) {
  signal::PhaseProfile p;
  for (const auto& pos : positions) {
    p.push_back({pos,
                 rf::distance_phase(linalg::distance(pos, target)) + 0.4 +
                     rng.gaussian(0.1),
                 0.0});
  }
  signal::smooth_in_place(p, 9);
  return p;
}

std::vector<Vec3> line_scan() {
  std::vector<Vec3> ps;
  for (double x = -0.4; x <= 0.4 + 1e-12; x += 0.005) ps.push_back({x, 0, 0});
  return ps;
}

std::vector<Vec3> circle_scan() {
  std::vector<Vec3> ps;
  for (int i = 0; i < 160; ++i) {
    const double a = rf::kTwoPi * i / 160.0;
    ps.push_back({0.2 * std::cos(a), 0.2 * std::sin(a), 0.0});
  }
  return ps;
}

struct Score {
  double err_sum = 0.0;
  double time_sum = 0.0;
  int solved = 0;
  void report(const char* name, bench::BenchReporter* out,
              const char* scan) const {
    if (solved == 0) {
      std::printf("  %-14s %-12s %-12s (trajectory shape unsupported)\n",
                  name, "n/a", "n/a");
    } else {
      std::printf("  %-14s %-12.2f %-12.4f (%d/%d solved)\n", name,
                  err_sum / solved * 100.0, time_sum / solved, solved,
                  kTrials);
    }
    if (out) {
      auto& row = out->row("method").tag("scan", scan).tag("method", name);
      row.value("solved", solved).value("trials", kTrials);
      if (solved > 0) {
        row.value("err_cm", err_sum / solved * 100.0)
            .value("time_s", time_sum / solved);
      }
    }
  }
};

template <typename Fn>
void attempt(Score& score, const Vec3& truth, Fn&& solve) {
  bench::Timer t;
  try {
    const Vec3 fix = solve();
    score.time_sum += t.seconds();
    score.err_sum += std::hypot(fix[0] - truth[0], fix[1] - truth[1]);
    score.solved += 1;
  } catch (const std::exception&) {
    // Method does not support this scan shape (or failed): recorded by
    // the solved counter.
  }
}

void shootout(bench::BenchReporter& report, const char* scan,
              const char* title, const std::vector<Vec3>& positions,
              const Vec3& target, std::uint64_t seed) {
  std::printf("\n%s — target (%.2f, %.2f)\n", title, target[0], target[1]);
  std::printf("  %-14s %-12s %-12s\n", "method", "err[cm]", "time[s]");
  Score lion_score, holo, hyper, para, spin;
  rf::Rng rng(seed);

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto profile = synth(positions, target, rng);

    attempt(lion_score, target, [&] {
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.pair_interval = 0.2;
      cfg.side_hint = target;  // deployment side knowledge
      return core::LinearLocalizer(cfg).locate(profile).position;
    });

    attempt(holo, target, [&] {
      baseline::HologramConfig cfg;
      cfg.min_corner = target - Vec3{0.06, 0.06, 0.0};
      cfg.max_corner = target + Vec3{0.06, 0.06, 0.0};
      cfg.min_corner[2] = cfg.max_corner[2] = 0.0;
      cfg.grid_size = 0.002;
      return baseline::locate_hologram(profile, cfg).position;
    });

    attempt(hyper, target, [&] {
      const auto pairs = core::spread_pairs(profile, 0.15, 600, 2);
      baseline::HyperbolaConfig cfg;
      cfg.initial_guess = target + Vec3{0.1, -0.2, 0.0};
      return baseline::locate_hyperbola(profile, pairs, cfg).position;
    });

    attempt(para, target, [&] {
      baseline::ParabolaConfig cfg;
      cfg.side_hint = target;
      return baseline::locate_parabola(profile, cfg).position;
    });

    attempt(spin, target, [&] {
      return baseline::locate_tagspin(profile, {}).position;
    });
  }

  lion_score.report("LION", &report, scan);
  holo.report("hologram", &report, scan);
  hyper.report("hyperbola", &report, scan);
  para.report("parabola", &report, scan);
  spin.report("tagspin", &report, scan);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("baseline_shootout", argc, argv);
  bench::banner("Baseline shootout — all methods, shared workloads",
                "LION runs on every trajectory shape at linear-solve cost; "
                "each baseline is competitive only on its own shape");

  shootout(report, "linear", "linear scan (conveyor-style)", line_scan(),
           {0.1, 0.8, 0.0}, 11);
  shootout(report, "circular", "circular scan (turntable)", circle_scan(),
           {0.0, 0.7, 0.0}, 13);

  std::printf(
      "\nreading: the parabola method only fits linear scans, tagspin only\n"
      "circular ones, the hyperbola solver needs a good initial guess, and\n"
      "the hologram needs a search box; LION handles both shapes with one\n"
      "code path (paper Secs. III, V-F2, VI).\n");
  return 0;
}
