// Tracker throughput — the edge-node real-time budget.
//
// The paper's "high time efficiency" requirement means the per-fix cost
// must fit an edge gateway. This bench measures the streaming tracker's
// per-sample ingest cost and per-fix solve cost across window sizes, and
// the end-to-end fix latency relative to the reader's 120 Hz sample rate.

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("tracker", argc, argv);
  bench::banner("Tracker throughput",
                "per-fix solve cost stays far below the inter-fix interval "
                "at a 120 Hz read rate — real-time on one core");

  auto scenario = bench::standard_scenario(sim::EnvironmentKind::kLabTypical,
                                           Vec3{0.0, 0.8, 0.0}, 99);
  const Vec3 center = scenario.antennas()[0].phase_center();
  const Vec3 slot{-0.45, 0.0, 0.0};
  const auto stream = scenario.sweep(
      0, 0, sim::LinearTrajectory(slot, slot + Vec3{0.9, 0.0, 0.0}, 0.1));

  std::printf("\n%-10s %-8s %-10s %-16s %-18s\n", "window", "hop", "fixes",
              "mean err[cm]", "per-fix cost[ms]");
  for (std::size_t window : {300u, 600u, 900u}) {
    core::TrackerConfig cfg;
    cfg.antenna_phase_center = center;
    cfg.belt_direction = {1.0, 0.0, 0.0};
    cfg.belt_speed = 0.1;
    cfg.window = window;
    cfg.hop = window / 3;
    cfg.localizer.target_dim = 2;
    cfg.localizer.side_hint = slot;
    core::ConveyorTracker tracker(cfg);

    bench::Timer total;
    double solve_s = 0.0;
    std::size_t fixes = 0;
    double err_sum = 0.0;
    const double t0 = stream.front().t;
    for (const auto& s : stream) {
      bench::Timer per;
      const auto fix = tracker.push(s);
      const double dt = per.seconds();
      if (fix) {
        solve_s += dt;  // pushes that complete a window carry the solve
        if (fix->valid) {
          ++fixes;
          const Vec3 truth =
              slot + 0.1 * (fix->t - t0) * Vec3{1.0, 0.0, 0.0};
          err_sum += bench::planar_error(fix->position, truth);
        }
      }
    }
    if (fixes == 0) {
      std::printf("%-10zu %-8zu none\n", window, cfg.hop);
      report.row("window")
          .value("window", static_cast<double>(window))
          .value("hop", static_cast<double>(cfg.hop))
          .value("fixes", 0.0);
      continue;
    }
    std::printf("%-10zu %-8zu %-10zu %-16.2f %-18.2f\n", window, cfg.hop,
                fixes, err_sum / static_cast<double>(fixes) * 100.0,
                solve_s / static_cast<double>(tracker.fixes().size()) * 1e3);
    report.row("window")
        .value("window", static_cast<double>(window))
        .value("hop", static_cast<double>(cfg.hop))
        .value("fixes", static_cast<double>(fixes))
        .value("mean_err_cm", err_sum / static_cast<double>(fixes) * 100.0)
        .value("per_fix_ms",
               solve_s / static_cast<double>(tracker.fixes().size()) * 1e3);
    (void)total;
  }

  std::printf(
      "\nreading: a fix costs ~1-10 ms while fixes are due every hop/120 Hz\n"
      "~ 0.8-2.5 s — three orders of magnitude of headroom, versus a 3D DAH\n"
      "search that alone exceeds the real-time budget (Fig. 13b).\n");
  return 0;
}
