// Fig. 3 — hardware phase offsets differ per antenna and per tag.
//
// Paper setup: 4 Laird S9028PCL antennas x 4 ImpinJ E41-B tags, the tag
// fixed 1 m in front of the antenna, 500 phase reads per pair. Replacing
// either the antenna or the tag shifts the reported phase even though the
// geometry is unchanged — the theta_T + theta_R terms of Eq. (1).

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "linalg/stats.hpp"
#include "rf/phase_model.hpp"
#include "sim/scenario.hpp"

using namespace lion;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig03_phase_offset", argc, argv);
  bench::banner("Fig. 3 — phase offsets across antenna-tag pairs",
                "each pair clusters tightly (white noise only) but pairs "
                "differ by large constant offsets");

  auto builder = sim::Scenario::Builder{}
                     .environment(sim::EnvironmentKind::kLabClean)
                     .seed(42);
  for (int a = 0; a < 4; ++a) {
    builder.add_antenna({0.0, 1.0, 0.0});
  }
  for (int t = 0; t < 4; ++t) builder.add_tag();
  auto scenario = builder.build();

  std::printf("\nmean reported phase [rad] over 500 static reads at 1 m\n");
  std::printf("%-10s", "");
  for (int t = 0; t < 4; ++t) std::printf("   tag%-5d", t);
  std::printf("  spread(std) within a pair\n");

  std::vector<double> all_means;
  for (std::size_t a = 0; a < 4; ++a) {
    std::printf("antenna%-3zu", a);
    double worst_std = 0.0;
    for (std::size_t t = 0; t < 4; ++t) {
      const auto reads = scenario.read_static(a, t, {0.0, 0.0, 0.0}, 500);
      std::vector<double> phases;
      for (const auto& r : reads) phases.push_back(r.phase);
      const double mean = rf::circular_mean(phases);
      // Spread around the circular mean.
      std::vector<double> dev;
      for (double p : phases) {
        dev.push_back(rf::wrap_phase_symmetric(p - mean));
      }
      worst_std = std::max(worst_std, linalg::stddev(dev));
      all_means.push_back(mean);
      std::printf("   %8.3f", mean);
      report.row("pair")
          .value("antenna", static_cast<double>(a))
          .value("tag", static_cast<double>(t))
          .value("mean_phase_rad", mean)
          .value("spread_std_rad", linalg::stddev(dev));
    }
    std::printf("   %.3f rad\n", worst_std);
  }

  // Quantify: within-pair noise vs across-pair offset spread.
  const double span =
      linalg::max_value(all_means) - linalg::min_value(all_means);
  std::printf("\nwithin-pair noise is ~0.05-0.2 rad; across-pair offsets span "
              "%.2f rad\n",
              span);
  report.row("spread").value("across_pair_span_rad", span);
  std::printf(
      "reading: relative phase between different hardware units is\n"
      "meaningless without offset calibration (paper Sec. II-B).\n");
  return 0;
}
