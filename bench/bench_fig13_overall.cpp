// Fig. 13 — overall accuracy and time: LION vs DAH, with/without
// phase-center calibration, 2D and 3D.
//
// Paper setup: a calibrated (or not) antenna locates the initial position
// of a tag moving on the linear slide. Headline claims:
//   (a) calibration improves accuracy ~6x (2D) and ~2.1x (3D);
//       LION edges DAH: 0.48 vs 0.69 cm (2D), 2.33 vs 2.61 cm (3D);
//   (b) LION runs in ~0.02 s (2D) / ~1.8 s (3D) while DAH, even with the
//       search cut to a (20 cm)^2 / (20 cm)^3 box at 1 mm, is far slower
//       in 3D.
// Substitution note: our 3D DAH uses a 2.5 mm grid to keep the harness
// single-machine friendly; the cost *ratio* vs 2D is what matters.

#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

struct Case {
  double lion_err_cm = 0.0;
  double dah_err_cm = 0.0;
  double lion_s = 0.0;
  double dah_s = 0.0;
};

// Locate the start of a conveyor run with both methods, given the antenna
// center estimate in use (calibrated or physical).
Case run_trials(sim::Scenario& scenario, const Vec3& antenna_center,
                bool three_d) {
  Case out;
  std::vector<double> lion_errs, dah_errs;
  const int trials = three_d ? 4 : 10;
  for (int trial = 0; trial < trials; ++trial) {
    const Vec3 start{-0.45 + 0.05 * trial, 0.0, 0.0};

    // Conveyor pass(es): one line for 2D, two depth-offset lines for 3D.
    std::vector<sim::PhaseSample> samples = scenario.sweep(
        0, 0, sim::LinearTrajectory(start, start + Vec3{0.8, 0.0, 0.0}, 0.1));
    if (three_d) {
      const Vec3 start2 = start + Vec3{0.0, -0.2, 0.0};
      auto second = scenario.sweep(
          0, 0,
          sim::LinearTrajectory(start2, start2 + Vec3{0.8, 0.0, 0.0}, 0.1));
      // Tag carried from the end of pass 1 to the start of pass 2: stitch.
      auto p1 = signal::preprocess(samples);
      auto p2 = signal::preprocess(second);
      // Junction endpoints are ~0.82 m apart, so resolve the 2*pi ambiguity
      // geometrically instead: both profiles share the reference antenna,
      // and we simply keep them as one list with per-profile unwrapping —
      // the pairing below never pairs across the two passes' baselines
      // because LION uses phase *differences within* the combined system.
      // For correctness we re-anchor pass 2's phases by the noiseless
      // expectation at its first point (emulating the paper's manual
      // adjustment of profiles, Sec. IV-B).
      const double expected_gap = rf::distance_delta_to_phase(
          linalg::distance(antenna_center, p2.front().position) -
          linalg::distance(antenna_center, p1.back().position));
      const double shift = (p1.back().phase + expected_gap) - p2.front().phase;
      const double k = std::round(shift / rf::kTwoPi) * rf::kTwoPi;
      samples.clear();
      signal::PhaseProfile combined = p1;
      for (auto& pt : p2) {
        combined.push_back({pt.position, pt.phase + k, pt.t});
      }
      // LION on the combined profile (virtual positions trick).
      std::vector<core::TagScanPoint> scan;
      for (const auto& pt : combined) {
        scan.push_back({pt.position - start, pt.phase});
      }
      core::LocalizerConfig cfg;
      cfg.target_dim = 3;
      cfg.pair_interval = 0.2;
      cfg.side_hint = start;
      bench::Timer t;
      const auto fix = core::locate_tag_start(antenna_center, scan, cfg);
      out.lion_s += t.seconds();
      lion_errs.push_back(linalg::distance(fix.position, start));

      // DAH over a (20 cm)^3 box at 2.5 mm around the truth.
      signal::PhaseProfile sub;
      for (std::size_t i = 0; i < combined.size(); i += 20) {
        sub.push_back(combined[i]);
      }
      // The hologram searches tag-start space via the same virtual trick.
      signal::PhaseProfile virt;
      for (const auto& pt : sub) {
        virt.push_back({antenna_center - (pt.position - start), pt.phase, 0.0});
      }
      baseline::HologramConfig hcfg;
      hcfg.min_corner = start - Vec3{0.1, 0.1, 0.1};
      hcfg.max_corner = start + Vec3{0.1, 0.1, 0.1};
      hcfg.grid_size = 0.0025;
      t.reset();
      const auto dah = baseline::locate_hologram(virt, hcfg);
      out.dah_s += t.seconds();
      dah_errs.push_back(linalg::distance(dah.position, start));
    } else {
      const auto profile = signal::preprocess(samples);
      // The paper's default 2D pipeline: WLS with the scanning range and
      // interval chosen adaptively by the residual rule.
      signal::PhaseProfile virt_full;
      for (const auto& pt : profile) {
        virt_full.push_back(
            {antenna_center - (pt.position - start), pt.phase, pt.t});
      }
      core::AdaptiveConfig acfg;
      acfg.base.target_dim = 2;
      acfg.base.side_hint = start;
      acfg.range_center_x = 0.5 * (virt_full.front().position[0] +
                                   virt_full.back().position[0]);
      bench::Timer t;
      const auto fix = core::locate_adaptive(virt_full, acfg);
      out.lion_s += t.seconds();
      lion_errs.push_back(bench::planar_error(fix.position, start));

      signal::PhaseProfile virt;
      for (std::size_t i = 0; i < profile.size(); i += 4) {
        virt.push_back(
            {antenna_center - (profile[i].position - start),
             profile[i].phase, 0.0});
      }
      baseline::HologramConfig hcfg;
      hcfg.min_corner = start - Vec3{0.1, 0.1, 0.0};
      hcfg.max_corner = start + Vec3{0.1, 0.1, 0.0};
      hcfg.min_corner[2] = hcfg.max_corner[2] = 0.0;
      hcfg.grid_size = 0.001;
      bench::Timer t2;
      const auto dah = baseline::locate_hologram(virt, hcfg);
      out.dah_s += t2.seconds();
      dah_errs.push_back(bench::planar_error(dah.position, start));
    }
  }
  out.lion_err_cm = linalg::mean(lion_errs) * 100.0;
  out.dah_err_cm = linalg::mean(dah_errs) * 100.0;
  out.lion_s /= trials;
  out.dah_s /= trials;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("fig13_overall", argc, argv);
  bench::banner("Fig. 13 — overall accuracy and time consumption",
                "calibration: ~6x (2D) / ~2.1x (3D) accuracy gain; LION "
                "slightly beats DAH; LION 0.02 s (2D) / 1.8 s (3D) vs DAH "
                "far slower in 3D");

  // Two rigs, like the paper's: the 2D experiments put tag and antenna at
  // the same height; the 3D experiments give the antenna a 10 cm height
  // offset so the z coordinate is genuinely unknown. Each antenna is
  // calibrated once with the three-line rig.
  auto make_scenario = [](double z, std::uint32_t unit, std::uint64_t seed) {
    return bench::standard_scenario(sim::EnvironmentKind::kLabClean,
                                    rf::make_antenna({0.0, 0.8, z}, unit),
                                    seed);
  };
  // Three 2D antenna units so the calibration gain reflects the expected
  // in-plane displacement rather than one unit's luck of the draw (the 3D
  // case keeps one unit: its DAH search dominates the harness runtime).
  std::vector<sim::Scenario> scenarios2d;
  scenarios2d.push_back(make_scenario(0.0, 0, 131));
  scenarios2d.push_back(make_scenario(0.0, 7, 231));
  scenarios2d.push_back(make_scenario(0.0, 11, 331));
  auto scenario3d = make_scenario(0.1, 3, 132);

  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  auto calibrate = [&](sim::Scenario& s) {
    const auto profile = signal::preprocess(s.sweep(0, 0, rig.build()));
    return core::calibrate_phase_center(
        profile, s.antennas()[0].physical_center, {});
  };
  std::vector<core::CenterCalibration> cals2d;
  for (auto& s : scenarios2d) {
    cals2d.push_back(calibrate(s));
    std::printf("2D unit A%u: displacement %.2f cm, calibration error %.2f cm\n",
                s.antennas()[0].id,
                s.antennas()[0].phase_center_displacement.norm() * 100.0,
                linalg::distance(cals2d.back().estimated_center,
                                 s.antennas()[0].phase_center()) *
                    100.0);
  }
  const auto cal3d = calibrate(scenario3d);
  std::printf("3D unit A%u: displacement %.2f cm, calibration error %.2f cm\n",
              scenario3d.antennas()[0].id,
              scenario3d.antennas()[0].phase_center_displacement.norm() *
                  100.0,
              linalg::distance(cal3d.estimated_center,
                               scenario3d.antennas()[0].phase_center()) *
                  100.0);

  std::printf("\n%-8s %-14s %-12s %-12s %-12s %-12s\n", "case", "calibration",
              "LION[cm]", "DAH[cm]", "LION[s]", "DAH[s]");

  struct Row {
    const char* name;
    bool three_d;
    bool calibrated;
  };
  const Row rows[] = {
      {"2D+", false, true},
      {"2D-", false, false},
      {"3D+", true, true},
      {"3D-", true, false},
  };
  double c2d_lion = 0, u2d_lion = 0, c3d_lion = 0, u3d_lion = 0;
  for (const Row& row : rows) {
    Case c;
    if (row.three_d) {
      const Vec3 center = row.calibrated
                              ? cal3d.estimated_center
                              : scenario3d.antennas()[0].physical_center;
      c = run_trials(scenario3d, center, true);
    } else {
      for (std::size_t u = 0; u < scenarios2d.size(); ++u) {
        const Vec3 center =
            row.calibrated ? cals2d[u].estimated_center
                           : scenarios2d[u].antennas()[0].physical_center;
        const Case one = run_trials(scenarios2d[u], center, false);
        c.lion_err_cm += one.lion_err_cm / scenarios2d.size();
        c.dah_err_cm += one.dah_err_cm / scenarios2d.size();
        c.lion_s += one.lion_s / scenarios2d.size();
        c.dah_s += one.dah_s / scenarios2d.size();
      }
    }
    std::printf("%-8s %-14s %-12.2f %-12.2f %-12.4f %-12.3f\n", row.name,
                row.calibrated ? "with" : "without", c.lion_err_cm,
                c.dah_err_cm, c.lion_s, c.dah_s);
    report.row("case")
        .tag("name", row.name)
        .tag("calibration", row.calibrated ? "with" : "without")
        .value("lion_err_cm", c.lion_err_cm)
        .value("dah_err_cm", c.dah_err_cm)
        .value("lion_s", c.lion_s)
        .value("dah_s", c.dah_s);
    if (row.three_d && row.calibrated) c3d_lion = c.lion_err_cm;
    if (row.three_d && !row.calibrated) u3d_lion = c.lion_err_cm;
    if (!row.three_d && row.calibrated) c2d_lion = c.lion_err_cm;
    if (!row.three_d && !row.calibrated) u2d_lion = c.lion_err_cm;
  }

  std::printf("\ncalibration gain: 2D %.1fx (paper ~6x), 3D %.1fx "
              "(paper ~2.1x)\n",
              u2d_lion / c2d_lion, u3d_lion / c3d_lion);
  report.row("gain")
      .value("gain_2d", u2d_lion / c2d_lion)
      .value("gain_3d", u3d_lion / c3d_lion);
  std::printf("paper absolute reference: LION 0.48/2.33 cm, DAH 0.69/2.61 cm "
              "(2D/3D, calibrated)\n");
  return 0;
}
