// Micro-benchmarks of the hot paths behind Fig. 13(b)'s time-consumption
// claim: phase unwrapping, system assembly, the LS/IRLS/RANSAC solves,
// the end-to-end LION localization, and the hologram cell scan they
// replace. The solver workloads run twice — method=legacy through the
// allocating general path, method=workspace through the zero-allocation
// SolverWorkspace path — so the speedup of the small-matrix core is a
// first-class bench result (and the CI perf gate can watch it).
//
// Timing is a self-calibrating repetition loop on the shared Timer (no
// external benchmark framework): each workload is warmed once, then
// repeated until a fixed wall budget elapses, and the mean rate is
// reported. `--json <file>` additionally writes one lion.bench.v1 record
// per row.

#include <cstdio>
#include <cstring>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/small.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/unwrap.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

// Defeats dead-code elimination: every workload folds some result into
// this sink, which is printed (as a checksum nobody reads) at the end.
double g_sink = 0.0;

signal::PhaseProfile make_profile(std::size_t n) {
  rf::Rng rng(1);
  const Vec3 target{0.1, 0.8, 0.0};
  signal::PhaseProfile p;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = -0.55 + 1.1 * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
    for (double y : {0.0, -0.2}) {
      const Vec3 pos{x, y, 0.0};
      p.push_back({pos,
                   rf::distance_phase(linalg::distance(pos, target)) +
                       rng.gaussian(0.1),
                   0.0});
    }
  }
  return p;
}

/// Warm `fn` once, then repeat it until `budget_s` of wall time elapses;
/// returns executions per second.
template <typename Fn>
double ops_per_sec(Fn&& fn, double budget_s = 0.25) {
  fn();  // warm-up (first call pays cold caches / lazy allocations)
  std::size_t iters = 0;
  bench::Timer timer;
  do {
    fn();
    ++iters;
  } while (timer.seconds() < budget_s);
  return static_cast<double>(iters) / timer.seconds();
}

void report(bench::BenchReporter& reporter, const char* name,
            const char* method, double ops, double items_per_op = 0.0) {
  std::printf("%-18s %-10s %12.1f ops/s", name, method, ops);
  auto& row = reporter.row(name);
  row.tag("method", method).value("ops_per_s", ops);
  if (items_per_op > 0.0) {
    std::printf(" %14.0f items/s", ops * items_per_op);
    row.value("items_per_s", ops * items_per_op);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("micro_solvers", argc, argv);

  bench::banner("Micro-benchmarks: solver hot paths",
                "Fig. 13(b): LION's solve is a negligible slice of the "
                "pipeline; hologram scanning is not");
  std::printf("%-18s %-10s %16s\n", "workload", "method", "rate");

  {
    rf::Rng rng(2);
    std::vector<double> wrapped;
    for (int i = 0; i < 5000; ++i) {
      wrapped.push_back(rf::wrap_phase(0.13 * i + rng.gaussian(0.1)));
    }
    const double ops = ops_per_sec([&] {
      const auto u = signal::unwrap(wrapped);
      g_sink += u.back();
    });
    report(reporter, "unwrap", "-", ops, 5000.0);
  }

  for (std::size_t n : {std::size_t{256}, std::size_t{1024},
                        std::size_t{4096}}) {
    const auto profile = make_profile(n);
    const auto frame = core::analyze_frame(profile, 2);
    const auto pairs = core::ladder_pairs(profile, 0.2, 0.02);
    const double ops = ops_per_sec([&] {
      const auto sys = core::build_system(profile, frame, pairs,
                                          profile.size() / 2,
                                          rf::kDefaultWavelength);
      g_sink += sys.k.back();
    });
    char name[32];
    std::snprintf(name, sizeof(name), "build_system_%zu", n);
    report(reporter, name, "-", ops, static_cast<double>(pairs.size()));
  }

  // Shared solver workload: the 1024-point two-line system.
  const auto profile = make_profile(1024);
  const auto frame = core::analyze_frame(profile, 2);
  const auto pairs = core::ladder_pairs(profile, 0.2, 0.02);
  const auto sys = core::build_system(profile, frame, pairs,
                                      profile.size() / 2,
                                      rf::kDefaultWavelength);

  {
    const double ops = ops_per_sec([&] {
      g_sink += linalg::solve_least_squares(sys.a, sys.k).x[0];
    });
    report(reporter, "solve_ls", "legacy", ops);
    const double ops_sol = ops_per_sec([&] {
      g_sink += linalg::solve_least_squares_solution(sys.a, sys.k)[0];
    });
    report(reporter, "solve_ls", "solution", ops_sol);
  }

  {
    const double ops = ops_per_sec([&] {
      g_sink += linalg::solve_irls(sys.a, sys.k, {}).x[0];
    });
    report(reporter, "solve_irls", "legacy", ops);
    linalg::SolverWorkspace ws;
    linalg::LstsqResult out;
    const double ops_ws = ops_per_sec([&] {
      linalg::solve_irls(sys.a, sys.k, {}, ws, out);
      g_sink += out.x[0];
    });
    report(reporter, "solve_irls", "workspace", ops_ws);
  }

  {
    core::RansacOptions opt;
    const double ops = ops_per_sec([&] {
      g_sink += core::ransac_solve(sys.a, sys.k, opt).solution.x[0];
    });
    report(reporter, "ransac_solve", "legacy", ops);
    linalg::SolverWorkspace ws;
    core::RansacResult out;
    const double ops_ws = ops_per_sec([&] {
      core::ransac_solve(sys.a, sys.k, opt, ws, out);
      g_sink += out.solution.x[0];
    });
    report(reporter, "ransac_solve", "workspace", ops_ws);
  }

  for (std::size_t n : {std::size_t{256}, std::size_t{1024},
                        std::size_t{4096}}) {
    const auto p = make_profile(n);
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    const core::LinearLocalizer localizer(cfg);
    const double ops = ops_per_sec([&] {
      g_sink += localizer.locate(p).position[0];
    });
    char name[32];
    std::snprintf(name, sizeof(name), "lion_locate2d_%zu", n);
    report(reporter, name, "-", ops);
  }

  {
    const auto p = make_profile(128);
    baseline::HologramConfig cfg;
    cfg.min_corner = {0.05, 0.75, 0.0};
    cfg.max_corner = {0.15, 0.85, 0.0};
    cfg.grid_size = 0.005;  // 21 x 21 cells
    cfg.augmented = false;
    std::size_t cells = 0;
    const double ops = ops_per_sec([&] {
      const auto r = baseline::locate_hologram(p, cfg);
      cells = r.cells;
      g_sink += r.position[0];
    });
    report(reporter, "hologram", "-", ops, static_cast<double>(cells));
  }

  std::printf("(checksum %g)\n", g_sink);
  return 0;
}
