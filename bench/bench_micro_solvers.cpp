// Micro-benchmarks (google-benchmark) of the hot paths behind Fig. 13(b)'s
// time-consumption claim: system assembly, the LS/WLS/IRLS solves, the
// end-to-end LION localization, and the hologram cell scan they replace.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "baseline/hologram.hpp"
#include "core/lion.hpp"
#include "linalg/lstsq.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/unwrap.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

signal::PhaseProfile make_profile(std::size_t n) {
  rf::Rng rng(1);
  const Vec3 target{0.1, 0.8, 0.0};
  signal::PhaseProfile p;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = -0.55 + 1.1 * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
    for (double y : {0.0, -0.2}) {
      const Vec3 pos{x, y, 0.0};
      p.push_back({pos,
                   rf::distance_phase(linalg::distance(pos, target)) +
                       rng.gaussian(0.1),
                   0.0});
    }
  }
  return p;
}

void BM_Unwrap(benchmark::State& state) {
  rf::Rng rng(2);
  std::vector<double> wrapped;
  for (int i = 0; i < 5000; ++i) {
    wrapped.push_back(rf::wrap_phase(0.13 * i + rng.gaussian(0.1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::unwrap(wrapped));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_Unwrap);

void BM_BuildSystem(benchmark::State& state) {
  const auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  const auto frame = core::analyze_frame(profile, 2);
  const auto pairs = core::ladder_pairs(profile, 0.2, 0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_system(
        profile, frame, pairs, profile.size() / 2, rf::kDefaultWavelength));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_BuildSystem)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SolveLs(benchmark::State& state) {
  const auto profile = make_profile(1024);
  const auto frame = core::analyze_frame(profile, 2);
  const auto pairs = core::ladder_pairs(profile, 0.2, 0.02);
  const auto sys = core::build_system(profile, frame, pairs,
                                      profile.size() / 2,
                                      rf::kDefaultWavelength);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_least_squares(sys.a, sys.k));
  }
}
BENCHMARK(BM_SolveLs);

void BM_SolveIrls(benchmark::State& state) {
  const auto profile = make_profile(1024);
  const auto frame = core::analyze_frame(profile, 2);
  const auto pairs = core::ladder_pairs(profile, 0.2, 0.02);
  const auto sys = core::build_system(profile, frame, pairs,
                                      profile.size() / 2,
                                      rf::kDefaultWavelength);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_irls(sys.a, sys.k));
  }
}
BENCHMARK(BM_SolveIrls);

void BM_LionLocate2D(benchmark::State& state) {
  const auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  core::LocalizerConfig cfg;
  cfg.target_dim = 2;
  cfg.pair_interval = 0.2;
  const core::LinearLocalizer localizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(localizer.locate(profile));
  }
}
BENCHMARK(BM_LionLocate2D)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HologramPerCell(benchmark::State& state) {
  const auto profile = make_profile(128);
  std::size_t cells = 0;
  for (auto _ : state) {
    baseline::HologramConfig cfg;
    cfg.min_corner = {0.05, 0.75, 0.0};
    cfg.max_corner = {0.15, 0.85, 0.0};
    cfg.grid_size = 0.005;  // 21 x 21 cells
    cfg.augmented = false;
    const auto r = baseline::locate_hologram(profile, cfg);
    cells += r.cells;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
}
BENCHMARK(BM_HologramPerCell);

}  // namespace

BENCHMARK_MAIN();
