// Shared helpers for the figure-reproduction bench harnesses.
//
// Each bench binary regenerates one table/figure of the paper's evaluation
// and prints the same rows/series the paper reports, plus the paper's
// numbers for side-by-side comparison. Absolute values differ (our
// substrate is a simulator, not the authors' testbed); the *shape* — who
// wins, by what factor, where the knees are — is what must match.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "linalg/stats.hpp"
#include "linalg/vec.hpp"

namespace lion::bench {

/// In-plane (xy) distance — the error metric of every 2D experiment. The
/// 2D localizer reports its fix inside the virtual scan plane (whose
/// height is the antenna's z), while the tag lives in its own plane; the
/// z offset between the two planes is known a priori in a 2D task and
/// must not count as error.
inline double planar_error(const linalg::Vec3& a, const linalg::Vec3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  return std::sqrt(dx * dx + dy * dy);
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Print a banner naming the figure being reproduced.
inline void banner(const std::string& figure, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Print an empirical CDF as a compact series (value at each decile).
inline void print_cdf_deciles(const std::string& label,
                              const std::vector<double>& samples) {
  std::printf("%-24s", label.c_str());
  for (int decile = 10; decile <= 100; decile += 10) {
    std::printf(" %7.3f", linalg::percentile(samples, decile));
  }
  std::printf("\n");
}

inline void print_cdf_header(const std::string& unit) {
  std::printf("%-24s", ("CDF deciles [" + unit + "]").c_str());
  for (int decile = 10; decile <= 100; decile += 10) {
    std::printf("    p%-3d", decile);
  }
  std::printf("\n");
}

}  // namespace lion::bench
