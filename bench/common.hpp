// Shared helpers for the figure-reproduction bench harnesses.
//
// Each bench binary regenerates one table/figure of the paper's evaluation
// and prints the same rows/series the paper reports, plus the paper's
// numbers for side-by-side comparison. Absolute values differ (our
// substrate is a simulator, not the authors' testbed); the *shape* — who
// wins, by what factor, where the knees are — is what must match.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch.hpp"
#include "linalg/stats.hpp"
#include "linalg/vec.hpp"
#include "obs/json.hpp"
#include "sim/scenario.hpp"

namespace lion::bench {

/// An antenna with *no* hidden per-unit quirks (zero phase-center
/// displacement, zero reader offset) at a given physical center — for the
/// figures that isolate geometry or noise effects from calibration error.
inline rf::Antenna plain_antenna(const linalg::Vec3& physical_center) {
  rf::Antenna antenna;
  antenna.physical_center = physical_center;
  return antenna;
}

/// The standard figure-bench testbed: one fully-specified antenna, one
/// auto-generated tag, an environment preset, a seed. Every single-antenna
/// figure harness used to wire this by hand.
inline sim::Scenario standard_scenario(sim::EnvironmentKind environment,
                                       const rf::Antenna& antenna,
                                       std::uint64_t seed) {
  return sim::Scenario::Builder{}
      .environment(environment)
      .add_antenna(antenna)
      .add_tag()
      .seed(seed)
      .build();
}

/// Same, with an auto-quirked antenna unit at `physical_center` (matches
/// Scenario::Builder's Vec3 overload: unit id 0).
inline sim::Scenario standard_scenario(sim::EnvironmentKind environment,
                                       const linalg::Vec3& physical_center,
                                       std::uint64_t seed) {
  return standard_scenario(environment, rf::make_antenna(physical_center, 0),
                           seed);
}

/// Calibrate several raw streams as one batch on the engine (stream k
/// becomes job id k, with the engine's per-job seeding applied); reports
/// come back in stream order. `threads` = 0 uses hardware concurrency.
/// Lets a figure bench swap its serial per-antenna calibration loop for
/// the production path without changing anything else.
inline std::vector<core::CalibrationReport> calibrate_batch(
    std::vector<std::vector<sim::PhaseSample>> streams,
    const std::vector<linalg::Vec3>& physical_centers,
    std::size_t threads = 0,
    const core::RobustCalibrationConfig& config = {}) {
  std::vector<engine::CalibrationJob> jobs;
  jobs.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    jobs.push_back(engine::make_calibration_job(
        i, std::move(streams[i]),
        physical_centers[i < physical_centers.size() ? i : 0], config));
  }
  const auto batch =
      engine::BatchEngine(engine::BatchEngineOptions{threads}).run(jobs);
  std::vector<core::CalibrationReport> reports;
  reports.reserve(batch.results.size());
  for (auto& r : batch.results) reports.push_back(std::move(r.report));
  return reports;
}

/// In-plane (xy) distance — the error metric of every 2D experiment. The
/// 2D localizer reports its fix inside the virtual scan plane (whose
/// height is the antenna's z), while the tag lives in its own plane; the
/// z offset between the two planes is known a priori in a 2D task and
/// must not count as error.
inline double planar_error(const linalg::Vec3& a, const linalg::Vec3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  return std::sqrt(dx * dx + dy * dy);
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Print a banner naming the figure being reproduced.
inline void banner(const std::string& figure, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Print an empirical CDF as a compact series (value at each decile).
inline void print_cdf_deciles(const std::string& label,
                              const std::vector<double>& samples) {
  std::printf("%-24s", label.c_str());
  for (int decile = 10; decile <= 100; decile += 10) {
    std::printf(" %7.3f", linalg::percentile(samples, decile));
  }
  std::printf("\n");
}

inline void print_cdf_header(const std::string& unit) {
  std::printf("%-24s", ("CDF deciles [" + unit + "]").c_str());
  for (int decile = 10; decile <= 100; decile += 10) {
    std::printf("    p%-3d", decile);
  }
  std::printf("\n");
}

/// Machine-readable bench output (the human tables keep printing as
/// before). Every bench constructs one reporter from its argv; when the
/// user passes `--json <file>`, finish() writes one lion.bench.v1 JSON
/// record per reported row plus a trailing summary record:
///
///   {"schema":"lion.bench.v1","bench":"fig02","row":"valley",
///    "params":{...},"tags":{"axis":"horizontal"},"values":{"cm":2.3}}
///
/// Rows live in a deque so the references handed out by row() stay valid.
/// Without --json the reporter is inert and costs nothing.
class BenchReporter {
 public:
  /// A single result record. tag() attaches string dimensions (series
  /// name, axis, method); value() attaches numeric results.
  class Row {
   public:
    Row& tag(const std::string& key, const std::string& v) {
      tags_.emplace_back(key, v);
      return *this;
    }
    Row& value(const std::string& key, double v) {
      values_.emplace_back(key, v);
      return *this;
    }

   private:
    friend class BenchReporter;
    std::string name_;
    std::vector<std::pair<std::string, std::string>> tags_;
    std::vector<std::pair<std::string, double>> values_;
  };

  /// `bench` is the record's stable identity (e.g. "fig02_phase_center").
  /// Scans argv for `--json <file>`; other flags are left for the bench.
  BenchReporter(std::string bench, int argc, char** argv)
      : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;
  ~BenchReporter() { finish(); }

  bool enabled() const { return !path_.empty(); }

  /// Workload parameters repeated on every record (jobs, seed, ...).
  void param(const std::string& key, double v) {
    params_.emplace_back(key, obs::json_number(v));
  }
  void param(const std::string& key, const std::string& v) {
    params_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
  }

  /// Start a record; chain tag()/value() on the returned row.
  Row& row(const std::string& name) {
    rows_.emplace_back();
    rows_.back().name_ = name;
    return rows_.back();
  }

  /// Print the decile table (same output as print_cdf_deciles) and record
  /// the deciles as a row named "cdf" tagged with `label`.
  void cdf(const std::string& label, const std::vector<double>& samples) {
    print_cdf_deciles(label, samples);
    Row& r = row("cdf");
    r.tag("series", label);
    for (int decile = 10; decile <= 100; decile += 10) {
      r.value("p" + std::to_string(decile),
              linalg::percentile(samples, decile));
    }
  }

  /// Write all records (one JSON object per line). Called automatically on
  /// destruction; safe to call early, at most one file is ever written.
  void finish() {
    if (path_.empty() || finished_) return;
    finished_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    for (const Row& r : rows_) out << record_json(r) << '\n';
    Row summary;
    summary.name_ = "summary";
    summary.value("rows", static_cast<double>(rows_.size()));
    summary.value("wall_s", timer_.seconds());
    out << record_json(summary) << '\n';
    std::printf("json: %zu records -> %s\n", rows_.size() + 1, path_.c_str());
  }

 private:
  std::string record_json(const Row& r) const {
    std::string out = "{\"schema\":\"lion.bench.v1\",\"bench\":\"";
    out += obs::json_escape(bench_);
    out += "\",\"row\":\"";
    out += obs::json_escape(r.name_);
    out += "\",\"params\":{";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (i) out.push_back(',');
      out += "\"" + obs::json_escape(params_[i].first) + "\":";
      out += params_[i].second;
    }
    out += "},\"tags\":{";
    for (std::size_t i = 0; i < r.tags_.size(); ++i) {
      if (i) out.push_back(',');
      out += "\"" + obs::json_escape(r.tags_[i].first) + "\":\"";
      out += obs::json_escape(r.tags_[i].second) + "\"";
    }
    out += "},\"values\":{";
    for (std::size_t i = 0; i < r.values_.size(); ++i) {
      if (i) out.push_back(',');
      out += "\"" + obs::json_escape(r.values_[i].first) + "\":";
      obs::append_json_number(out, r.values_[i].second);
    }
    out += "}}";
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> params_;  // pre-serialized
  std::deque<Row> rows_;
  Timer timer_;
  bool finished_ = false;
};

}  // namespace lion::bench
