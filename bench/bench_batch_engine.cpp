// Batch calibration engine: jobs x threads scaling sweep.
//
// Workload: a fleet of simulated antennas, each calibrated from its own
// three-line-rig sweep through the full robust path (sanitize -> unwrap ->
// smooth -> adaptive radical-line solve). Jobs are independent, so
// throughput should scale near-linearly until the core count runs out
// (acceptance target: >= 3x at 4 threads on a 256-job batch, on hardware
// with >= 4 cores).
//
// The sweep also re-proves the determinism contract end to end: every
// multi-threaded run's serialized reports are compared byte-for-byte
// against the 1-thread reference.
//
//   bench_batch_engine [--jobs N] [--threads a,b,c,...] [--json <file>]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "engine/batch.hpp"
#include "io/report_json.hpp"

using namespace lion;

namespace {

std::vector<std::string> serialize(const engine::BatchResult& r) {
  std::vector<std::string> out;
  out.reserve(r.results.size());
  for (const auto& jr : r.results) out.push_back(io::report_json(jr.report));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("batch_engine", argc, argv);
  std::size_t n_jobs = 256;
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      n_jobs = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;  // consumed by the reporter
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        thread_counts.push_back(
            std::stoul(list.substr(pos, comma - pos)));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    }
  }

  bench::banner("Batch calibration engine — jobs x threads scaling",
                "independent per-antenna calibrations scale near-linearly "
                "on a work-stealing pool; 1-thread and N-thread reports "
                "are byte-identical");
  std::printf("hardware concurrency: %u, batch: %zu jobs\n",
              std::thread::hardware_concurrency(), n_jobs);
  report.param("jobs", static_cast<double>(n_jobs));
  report.param("hardware_concurrency",
               static_cast<double>(std::thread::hardware_concurrency()));

  // A trimmed rig keeps the whole sweep minutes-scale; the per-job solve
  // is still the full robust path.
  engine::SimulatedBatchSpec spec;
  spec.jobs = n_jobs;
  spec.rig_half_span = 0.45;
  spec.config.adaptive.ranges = {0.6, 0.7, 0.8};
  spec.config.adaptive.intervals = {0.15, 0.20, 0.25};
  bench::Timer gen_timer;
  const auto jobs = engine::make_simulated_batch(spec);
  std::printf("stream generation: %.2f s (excluded from timings)\n\n",
              gen_timer.seconds());

  std::printf("%-10s %-10s %-14s %-12s %-12s %-12s %-10s %-8s\n", "threads",
              "wall[s]", "jobs/s", "p50[ms]", "p95[ms]", "p99[ms]",
              "speedup", "ok");

  std::vector<std::string> reference;
  double serial_wall = 0.0;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    engine::BatchEngine eng(engine::BatchEngineOptions{threads});
    const auto result = eng.run(jobs);
    const auto serialized = serialize(result);
    if (reference.empty()) {
      reference = serialized;
      serial_wall = result.stats.wall_s;
    } else if (serialized != reference) {
      deterministic = false;
    }
    std::printf("%-10zu %-10.2f %-14.1f %-12.1f %-12.1f %-12.1f %-10.2f "
                "%zu/%zu\n",
                threads, result.stats.wall_s, result.stats.throughput_jps,
                result.stats.latency_p50_s * 1e3,
                result.stats.latency_p95_s * 1e3,
                result.stats.latency_p99_s * 1e3,
                serial_wall / result.stats.wall_s, result.succeeded(),
                result.stats.jobs);
    report.row("scaling")
        .value("threads", static_cast<double>(threads))
        .value("wall_s", result.stats.wall_s)
        .value("throughput_jps", result.stats.throughput_jps)
        .value("latency_p50_ms", result.stats.latency_p50_s * 1e3)
        .value("latency_p95_ms", result.stats.latency_p95_s * 1e3)
        .value("latency_p99_ms", result.stats.latency_p99_s * 1e3)
        .value("speedup", serial_wall / result.stats.wall_s)
        .value("steals", static_cast<double>(result.stats.steals))
        .value("succeeded", static_cast<double>(result.succeeded()));
  }

  std::printf("\ndeterminism (all thread counts byte-identical to the "
              "1-thread reference): %s\n",
              deterministic ? "PASS" : "FAIL");
  report.row("determinism").value("pass", deterministic ? 1.0 : 0.0);
  if (std::thread::hardware_concurrency() < 4) {
    std::printf("note: <4 hardware threads — speedup is bounded by the "
                "machine, not the engine\n");
  }
  return deterministic ? 0 : 1;
}
