// Streaming service throughput — the serving-path real-time budget.
//
// Drives a StreamService in-process (no sockets: this measures the
// service core — wire parsing, demux, scheduling, ordered emission — not
// the kernel's TCP stack) with a multi-session calibrate workload built
// from simulated rig scans, and reports:
//
//   - ingest throughput in read records per second (the gated rate: a
//     reader fleet at 120 Hz/antenna needs ~1e3/s for a dozen antennas);
//   - flush-to-report solve latency percentiles under the shared pool;
//   - wire-decode overhead: raw line parse rate with solves excluded;
//   - journaled ingest: the same workload with durability on (a
//     JournalStore under a temp dir), gated at < 10% overhead.

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "io/csv.hpp"
#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("serve", argc, argv);
  report.param("jobs", 8.0);
  bench::banner("Streaming service throughput",
                "ingest sustains >= 1000 reads/s with flush-to-report "
                "latency bounded by one calibration solve");

  // One simulated rig scan, serialized once; every session replays it.
  auto scenario = bench::standard_scenario(sim::EnvironmentKind::kLabTypical,
                                           Vec3{0.0, 0.8, 0.0}, 7);
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto samples = scenario.sweep(0, 0, rig.build());
  std::ostringstream csv;
  io::write_samples_csv(csv, samples);
  std::vector<std::string> rows;
  {
    std::istringstream in(csv.str());
    for (std::string line; std::getline(in, line);) rows.push_back(line);
  }

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kFlushesPerSession = 2;

  // Build the full wire payload up front so the measured loop is the
  // service, not payload formatting. Sessions are interleaved row by row
  // to keep the demux path honest.
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    std::string id = "s";
    id += std::to_string(s);
    ids.push_back(std::move(id));
  }
  std::vector<std::string> payload;
  for (const std::string& id : ids) {
    payload.push_back("!session " + id + " center=0,0.8,0");
  }
  for (std::size_t rep = 0; rep < kFlushesPerSession; ++rep) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (const std::string& id : ids) {
        payload.push_back("@" + id + " " + rows[r]);
      }
    }
    for (const std::string& id : ids) {
      payload.push_back("!flush " + id);
    }
  }

  // --- end-to-end: ingest everything, time flush->report latencies. ---
  std::vector<double> flush_send_s;
  std::vector<double> report_recv_s;
  std::mutex recv_mu;
  bench::Timer wall;
  {
    serve::StreamService service(
        serve::ServiceConfig{},
        [&](std::string_view line) {
          if (line.find("\"schema\":\"lion.report.v1\"") !=
              std::string_view::npos) {
            std::lock_guard<std::mutex> lock(recv_mu);
            report_recv_s.push_back(wall.seconds());
          }
        });
    for (const std::string& line : payload) {
      if (line[0] == '!' && line.rfind("!flush", 0) == 0) {
        flush_send_s.push_back(wall.seconds());
      }
      service.ingest_line(line);
    }
    service.finish();
  }
  const double wall_s = wall.seconds();

  const std::size_t reads =
      samples.size() * kSessions * kFlushesPerSession;
  const double reads_per_s = static_cast<double>(reads) / wall_s;
  // The ordered emitter releases reports in flush order, so pairing the
  // k-th report with the k-th flush is exact.
  std::vector<double> latency_ms;
  for (std::size_t i = 0;
       i < flush_send_s.size() && i < report_recv_s.size(); ++i) {
    latency_ms.push_back((report_recv_s[i] - flush_send_s[i]) * 1e3);
  }

  std::printf("\nsessions: %zu, flushes: %zu, reads ingested: %zu\n",
              kSessions, flush_send_s.size(), reads);
  std::printf("wall: %.3f s, ingest throughput: %.0f reads/s\n", wall_s,
              reads_per_s);
  std::printf("flush->report latency [ms]: p50 %.1f, p95 %.1f, p99 %.1f\n",
              linalg::percentile(latency_ms, 50),
              linalg::percentile(latency_ms, 95),
              linalg::percentile(latency_ms, 99));

  report.row("throughput")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("items_per_s", reads_per_s)
      .value("reads", static_cast<double>(reads))
      .value("wall_s", wall_s)
      .value("latency_p50_ms", linalg::percentile(latency_ms, 50))
      .value("latency_p95_ms", linalg::percentile(latency_ms, 95))
      .value("latency_p99_ms", linalg::percentile(latency_ms, 99));

  // --- journaled ingest: identical workload, durability on. Wall time is
  // dominated by the solve drain, so both configs take the best of two
  // runs — the journal's real cost (a buffered write() per record plus
  // batched fsync) shows up as the residual delta. Each journaled run
  // gets a fresh directory: leftover journals would turn the re-declares
  // into restores and change the workload.
  const auto run_wall = [&payload](serve::ServiceConfig cfg) {
    bench::Timer t;
    {
      serve::StreamService service(std::move(cfg), [](std::string_view) {});
      for (const std::string& line : payload) service.ingest_line(line);
      service.finish();
    }
    return t.seconds();
  };
  const auto run_journaled_wall = [&run_wall]() {
    char tmpl[] = "/tmp/lion_bench_journal_XXXXXX";
    const char* jdir = ::mkdtemp(tmpl);
    serve::JournalStoreConfig jcfg;
    jcfg.dir = jdir != nullptr ? jdir : "bench_journal.tmp";
    serve::JournalStore store(jcfg);
    serve::ServiceConfig cfg;
    cfg.journal = &store;
    const double s = run_wall(std::move(cfg));
    if (::DIR* d = ::opendir(jcfg.dir.c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          ::unlink((jcfg.dir + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(jcfg.dir.c_str());
    return s;
  };
  const double plain_best = std::min(wall_s, run_wall(serve::ServiceConfig{}));
  const double journaled_best =
      std::min(run_journaled_wall(), run_journaled_wall());
  const double plain_best_per_s = static_cast<double>(reads) / plain_best;
  const double journaled_per_s = static_cast<double>(reads) / journaled_best;
  const double overhead_pct =
      100.0 * (plain_best > 0.0 ? journaled_best / plain_best - 1.0 : 0.0);
  std::printf("journaled ingest: %.0f reads/s (%.1f%% overhead vs plain)\n",
              journaled_per_s, overhead_pct);
  report.row("throughput_journaled")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("items_per_s", journaled_per_s)
      .value("wall_s", journaled_best)
      .value("overhead_pct", overhead_pct);

  // --- wire decode only: no sessions resolve, every line still parses. ---
  {
    serve::StreamService service(serve::ServiceConfig{},
                                 [](std::string_view) {});
    // Data rows without any declared session are cheap unknown_session
    // errors; route to a declared-but-never-flushed session instead so the
    // measured cost is parse + demux + buffer append.
    service.ingest_line("!session warm center=0,0.8,0");
    bench::Timer decode;
    constexpr std::size_t kDecodeReps = 20;
    for (std::size_t rep = 0; rep < kDecodeReps; ++rep) {
      for (const std::string& row : rows) service.ingest_line(row);
    }
    const double decode_s = decode.seconds();
    service.finish();
    const double lines = static_cast<double>(rows.size() * kDecodeReps);
    std::printf("wire decode: %.0f lines/s (parse + demux + buffer)\n",
                lines / decode_s);
    report.row("decode")
        .tag("build", "post")
        .value("threads", 0.0)
        .value("items_per_s", lines / decode_s);
  }

  const bool floor_ok = reads_per_s >= 1000.0;
  // The journaled path must stay within 10% of the plain path (write()
  // per record is buffered; fsync is batched), measured apples-to-apples
  // inside one run so machine speed cancels out.
  const bool journal_ok = journaled_per_s >= 0.9 * plain_best_per_s;
  std::printf("\nacceptance: ingest %.0f reads/s %s 1000 reads/s floor\n",
              reads_per_s, floor_ok ? ">=" : "<");
  std::printf("acceptance: journaled ingest %.0f reads/s %s 90%% of plain\n",
              journaled_per_s, journal_ok ? ">=" : "<");
  return floor_ok && journal_ok ? 0 : 1;
}
