// Streaming service throughput — the serving-path real-time budget.
//
// Drives a StreamService in-process (no sockets: this measures the
// service core — wire parsing, demux, scheduling, ordered emission — not
// the kernel's TCP stack) with a multi-session calibrate workload built
// from simulated rig scans, and reports:
//
//   - ingest throughput in read records per second (the gated rate: a
//     reader fleet at 120 Hz/antenna needs ~1e3/s for a dozen antennas);
//   - flush-to-report solve latency percentiles under the shared pool;
//   - wire-decode overhead: raw line parse rate with solves excluded;
//   - journaled ingest: the same workload with durability on (a
//     JournalStore under a temp dir), gated at < 10% overhead;
//   - fleet ingest (opt-in, `--fleet N`): a sharded SocketServer hosted
//     in-process, driven over real TCP by a forked replay_client fleet
//     (N active + `--idle M` idle connections), reporting aggregate
//     reads/s plus server-side fd/RSS behaviour through the idle hold.
//     The committed full-scale run (1k active + 10k idle, 4 shards) is
//     BENCH_9.json; CI replays a scaled-down fleet against it.

#include <dirent.h>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "io/csv.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/trace.hpp"
#include "rf/phase_model.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("serve", argc, argv);
  report.param("jobs", 8.0);

  // Fleet-mode knobs. `--fleet 0` (the default) skips the fleet section
  // entirely so the in-process rows keep their historical cost.
  std::size_t fleet = 0;
  std::size_t fleet_idle = 0;
  std::size_t fleet_shards = 4;
  std::size_t fleet_sessions = 1;
  double fleet_hold_s = 2.0;
  double fleet_floor = 0.0;  ///< reads/s acceptance floor; 0 = report only
  std::string replay_client;
  {
    const std::string self = argv[0];
    const auto slash = self.rfind('/');
    const std::string bin_dir = slash == std::string::npos
                                    ? std::string(".")
                                    : self.substr(0, slash);
    replay_client = bin_dir + "/../tools/replay_client";
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--fleet") {
      fleet = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--idle") {
      fleet_idle = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--shards") {
      fleet_shards = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--fleet-sessions") {
      fleet_sessions = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--fleet-hold") {
      fleet_hold_s = std::strtod(next(), nullptr);
    } else if (flag == "--fleet-floor") {
      fleet_floor = std::strtod(next(), nullptr);
    } else if (flag == "--replay-client") {
      replay_client = next();
    } else if (flag == "--json") {
      next();  // consumed by BenchReporter
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (fleet_shards == 0) fleet_shards = 1;
  if (fleet_sessions == 0) fleet_sessions = 1;
  bench::banner("Streaming service throughput",
                "ingest sustains >= 1000 reads/s with flush-to-report "
                "latency bounded by one calibration solve");

  // One simulated rig scan, serialized once; every session replays it.
  auto scenario = bench::standard_scenario(sim::EnvironmentKind::kLabTypical,
                                           Vec3{0.0, 0.8, 0.0}, 7);
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  const auto samples = scenario.sweep(0, 0, rig.build());
  std::ostringstream csv;
  io::write_samples_csv(csv, samples);
  std::vector<std::string> rows;
  {
    std::istringstream in(csv.str());
    for (std::string line; std::getline(in, line);) rows.push_back(line);
  }

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kFlushesPerSession = 2;

  // Build the full wire payload up front so the measured loop is the
  // service, not payload formatting. Sessions are interleaved row by row
  // to keep the demux path honest.
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    std::string id = "s";
    id += std::to_string(s);
    ids.push_back(std::move(id));
  }
  std::vector<std::string> payload;
  for (const std::string& id : ids) {
    payload.push_back("!session " + id + " center=0,0.8,0");
  }
  for (std::size_t rep = 0; rep < kFlushesPerSession; ++rep) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (const std::string& id : ids) {
        payload.push_back("@" + id + " " + rows[r]);
      }
    }
    for (const std::string& id : ids) {
      payload.push_back("!flush " + id);
    }
  }

  // --- end-to-end: ingest everything, time flush->report latencies. ---
  std::vector<double> flush_send_s;
  std::vector<double> report_recv_s;
  std::mutex recv_mu;
  bench::Timer wall;
  {
    serve::StreamService service(
        serve::ServiceConfig{},
        [&](std::string_view line) {
          if (line.find("\"schema\":\"lion.report.v1\"") !=
              std::string_view::npos) {
            std::lock_guard<std::mutex> lock(recv_mu);
            report_recv_s.push_back(wall.seconds());
          }
        });
    for (const std::string& line : payload) {
      if (line[0] == '!' && line.rfind("!flush", 0) == 0) {
        flush_send_s.push_back(wall.seconds());
      }
      service.ingest_line(line);
    }
    service.finish();
  }
  const double wall_s = wall.seconds();

  const std::size_t reads =
      samples.size() * kSessions * kFlushesPerSession;
  const double reads_per_s = static_cast<double>(reads) / wall_s;
  // The ordered emitter releases reports in flush order, so pairing the
  // k-th report with the k-th flush is exact.
  std::vector<double> latency_ms;
  for (std::size_t i = 0;
       i < flush_send_s.size() && i < report_recv_s.size(); ++i) {
    latency_ms.push_back((report_recv_s[i] - flush_send_s[i]) * 1e3);
  }

  std::printf("\nsessions: %zu, flushes: %zu, reads ingested: %zu\n",
              kSessions, flush_send_s.size(), reads);
  std::printf("wall: %.3f s, ingest throughput: %.0f reads/s\n", wall_s,
              reads_per_s);
  std::printf("flush->report latency [ms]: p50 %.1f, p95 %.1f, p99 %.1f\n",
              linalg::percentile(latency_ms, 50),
              linalg::percentile(latency_ms, 95),
              linalg::percentile(latency_ms, 99));

  report.row("throughput")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("items_per_s", reads_per_s)
      .value("reads", static_cast<double>(reads))
      .value("wall_s", wall_s)
      .value("latency_p50_ms", linalg::percentile(latency_ms, 50))
      .value("latency_p95_ms", linalg::percentile(latency_ms, 95))
      .value("latency_p99_ms", linalg::percentile(latency_ms, 99));

  // --- journaled ingest: identical workload, durability on. Wall time is
  // dominated by the solve drain, so both configs take the best of two
  // runs — the journal's real cost (a buffered write() per record plus
  // batched fsync) shows up as the residual delta. Each journaled run
  // gets a fresh directory: leftover journals would turn the re-declares
  // into restores and change the workload.
  const auto run_wall = [&payload](serve::ServiceConfig cfg) {
    bench::Timer t;
    {
      serve::StreamService service(std::move(cfg), [](std::string_view) {});
      for (const std::string& line : payload) service.ingest_line(line);
      service.finish();
    }
    return t.seconds();
  };
  const auto run_journaled_wall = [&run_wall]() {
    char tmpl[] = "/tmp/lion_bench_journal_XXXXXX";
    const char* jdir = ::mkdtemp(tmpl);
    serve::JournalStoreConfig jcfg;
    jcfg.dir = jdir != nullptr ? jdir : "bench_journal.tmp";
    serve::JournalStore store(jcfg);
    serve::ServiceConfig cfg;
    cfg.journal = &store;
    const double s = run_wall(std::move(cfg));
    if (::DIR* d = ::opendir(jcfg.dir.c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          ::unlink((jcfg.dir + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(jcfg.dir.c_str());
    return s;
  };
  const double plain_best = std::min(wall_s, run_wall(serve::ServiceConfig{}));
  const double journaled_best =
      std::min(run_journaled_wall(), run_journaled_wall());
  const double plain_best_per_s = static_cast<double>(reads) / plain_best;
  const double journaled_per_s = static_cast<double>(reads) / journaled_best;
  const double overhead_pct =
      100.0 * (plain_best > 0.0 ? journaled_best / plain_best - 1.0 : 0.0);
  std::printf("journaled ingest: %.0f reads/s (%.1f%% overhead vs plain)\n",
              journaled_per_s, overhead_pct);
  report.row("throughput_journaled")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("items_per_s", journaled_per_s)
      .value("wall_s", journaled_best)
      .value("overhead_pct", overhead_pct);

  // --- telemetry-on ingest: the full observability plane armed. Metrics
  // registry live, span tracing on, an event log attached with a
  // hair-trigger slow-request threshold (every solve emits an event, the
  // token bucket doing the real-world damping). Gated at < 10% overhead:
  // observation must never tax the ingest path it observes.
  const auto run_telemetry_wall = [&run_wall]() {
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    obs::EventLog events;
    serve::ServiceConfig cfg;
    cfg.events = &events;
    cfg.slow_request_s = 1e-12;
    const double s = run_wall(std::move(cfg));
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    return s;
  };
  const double telemetry_best =
      std::min(run_telemetry_wall(), run_telemetry_wall());
  const double telemetry_per_s = static_cast<double>(reads) / telemetry_best;
  const double telemetry_overhead_pct =
      100.0 * (plain_best > 0.0 ? telemetry_best / plain_best - 1.0 : 0.0);
  std::printf(
      "telemetry-on ingest: %.0f reads/s (%.1f%% overhead vs plain)\n",
      telemetry_per_s, telemetry_overhead_pct);
  report.row("throughput_telemetry")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("items_per_s", telemetry_per_s)
      .value("wall_s", telemetry_best)
      .value("overhead_pct", telemetry_overhead_pct);

  // --- wire decode only: no sessions resolve, every line still parses. ---
  {
    serve::StreamService service(serve::ServiceConfig{},
                                 [](std::string_view) {});
    // Data rows without any declared session are cheap unknown_session
    // errors; route to a declared-but-never-flushed session instead so the
    // measured cost is parse + demux + buffer append.
    service.ingest_line("!session warm center=0,0.8,0");
    bench::Timer decode;
    constexpr std::size_t kDecodeReps = 20;
    for (std::size_t rep = 0; rep < kDecodeReps; ++rep) {
      for (const std::string& row : rows) service.ingest_line(row);
    }
    const double decode_s = decode.seconds();
    service.finish();
    const double lines = static_cast<double>(rows.size() * kDecodeReps);
    std::printf("wire decode: %.0f lines/s (parse + demux + buffer)\n",
                lines / decode_s);
    report.row("decode")
        .tag("build", "post")
        .value("threads", 0.0)
        .value("items_per_s", lines / decode_s);
  }

  // --- long-session tracking: full re-solve vs incremental `!tick`. -----
  // A 5k-sample track session emitting one pose per read. The full path
  // re-runs the whole window pipeline per pose (window=5000 hop=1); the
  // incremental path holds the window open and answers `!tick` from the
  // maintained normal equations. Poses are serialized (send -> drain) so
  // each latency sample is one pose's end-to-end cost, pool included.
  constexpr std::size_t kPrefill = 5000;
  constexpr std::size_t kPoses = 100;
  const auto belt_row = [](std::size_t i) {
    const double t = 0.01 * static_cast<double>(i);
    const double x = -1.0 + 0.05 * t;
    const double d = std::sqrt(x * x + 0.6 * 0.6);
    const double phase = rf::wrap_phase(rf::distance_phase(d));
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"session\":\"trk\",\"x\":0,\"y\":0,\"z\":0,"
                  "\"phase\":%.17g,\"t\":%.17g}",
                  phase, t);
    return std::string(buf);
  };
  const auto track_declare = [](std::size_t window, std::size_t hop) {
    return "!session trk mode=track center=0,0,0 dir=1,0,0 speed=0.05 "
           "window=" +
           std::to_string(window) + " hop=" + std::to_string(hop) +
           " hint=-1,0.6,0";
  };

  std::vector<double> full_ms, tick_ms;
  std::size_t tick_fallbacks = 0;
  double full_wall_s = 0.0, tick_wall_s = 0.0;
  {
    serve::StreamService svc(serve::ServiceConfig{},
                             [](std::string_view) {});
    svc.ingest_line(track_declare(kPrefill, 1));
    for (std::size_t i = 0; i + 1 < kPrefill; ++i) {
      svc.ingest_line(belt_row(i));
    }
    svc.drain();
    bench::Timer run;
    for (std::size_t p = 0; p < kPoses; ++p) {
      bench::Timer t;
      svc.ingest_line(belt_row(kPrefill - 1 + p));  // completes a window
      svc.drain();
      full_ms.push_back(t.seconds() * 1e3);
    }
    full_wall_s = run.seconds();
    svc.finish();
  }
  {
    std::size_t incremental_poses = 0;
    serve::StreamService svc(
        serve::ServiceConfig{}, [&](std::string_view line) {
          if (line.find("\"schema\":\"lion.tick.v1\"") !=
              std::string_view::npos) {
            if (line.find("\"source\":\"incremental\"") !=
                std::string_view::npos) {
              ++incremental_poses;
            } else {
              ++tick_fallbacks;
            }
          }
        });
    svc.ingest_line(track_declare(10 * kPrefill, 10 * kPrefill));
    for (std::size_t i = 0; i + 1 < kPrefill; ++i) {
      svc.ingest_line(belt_row(i));
    }
    svc.drain();
    bench::Timer run;
    for (std::size_t p = 0; p < kPoses; ++p) {
      bench::Timer t;
      svc.ingest_line(belt_row(kPrefill - 1 + p));
      svc.ingest_line("!tick trk");
      svc.drain();
      tick_ms.push_back(t.seconds() * 1e3);
    }
    tick_wall_s = run.seconds();
    svc.finish();
    if (incremental_poses + tick_fallbacks != kPoses) {
      std::printf("warning: expected %zu tick responses, saw %zu\n", kPoses,
                  incremental_poses + tick_fallbacks);
    }
  }
  const double full_p95 = linalg::percentile(full_ms, 95);
  const double tick_p95 = linalg::percentile(tick_ms, 95);
  std::printf(
      "\ntrack poses over a %zu-sample window (%zu poses each):\n"
      "  full re-solve [ms]: p50 %.3f, p95 %.3f, p99 %.3f (%.0f poses/s)\n"
      "  `!tick`       [ms]: p50 %.3f, p95 %.3f, p99 %.3f (%.0f poses/s, "
      "%zu fallbacks)\n",
      kPrefill, kPoses, linalg::percentile(full_ms, 50), full_p95,
      linalg::percentile(full_ms, 99),
      static_cast<double>(kPoses) / full_wall_s,
      linalg::percentile(tick_ms, 50), tick_p95,
      linalg::percentile(tick_ms, 99),
      static_cast<double>(kPoses) / tick_wall_s, tick_fallbacks);
  report.row("track_full")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kPrefill))
      .value("items_per_s", static_cast<double>(kPoses) / full_wall_s)
      .value("latency_p50_ms", linalg::percentile(full_ms, 50))
      .value("latency_p95_ms", full_p95)
      .value("latency_p99_ms", linalg::percentile(full_ms, 99));
  report.row("track_tick")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kPrefill))
      .value("items_per_s", static_cast<double>(kPoses) / tick_wall_s)
      .value("latency_p50_ms", linalg::percentile(tick_ms, 50))
      .value("latency_p95_ms", tick_p95)
      .value("latency_p99_ms", linalg::percentile(tick_ms, 99))
      .value("fallbacks", static_cast<double>(tick_fallbacks));

  // --- calibrate flushes: full batch re-solve vs incremental `!flush`. -
  //
  // A long-lived calibrate session accumulates a clean row stream
  // (declared smoothing=1 so appends never rewrite already-preprocessed
  // samples); once a cold flush has installed an anchor, steady-state
  // `!flush` requests answer from the incremental solver instead of
  // re-running the weighted robust tournament. Four rows:
  //   cal_full        5k rows, fresh session per flush -> cold full solve
  //   cal_incr        5k rows, unchanged buffer -> memo tier (digest)
  //   cal_full_1k     800 rows, fresh session per flush -> cold full solve
  //   cal_incr_delta  800 rows, 1-row append per flush -> warm gated refine
  // The warm row runs at 800 samples on purpose: past ~2k clean rows the
  // residual distribution is dense enough that the consensus-threshold
  // ambiguity band is never empty, so the drift gate (correctly) refuses
  // the warm answer and the tier's cost never shows. The warm win is a
  // modest constant factor (it skips the per-candidate LMedS tournament
  // but still pays the exact batch refit — the price of bit-identity);
  // the memo tier is the steady-state O(digest) answer and carries the
  // headline speedup. CI gates the incremental rows' latency_p95_ms
  // against BENCH_10.json.
  constexpr std::size_t kCalRows = 5000;
  constexpr std::size_t kCalDeltaRows = 800;
  constexpr std::size_t kCalFullIters = 8;
  constexpr std::size_t kCalIncrFlushes = 100;
  constexpr std::size_t kCalDeltaFlushes = 50;
  const auto cal_traj = rig.build();
  const Vec3 cal_center{0.009, 0.789, 0.006};
  const auto cal_make_rows = [&](std::size_t n) {
    std::vector<std::string> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = cal_traj.duration() * static_cast<double>(i) /
                       static_cast<double>(n - 1);
      const auto pos = cal_traj.position(t);
      const double phase = rf::wrap_phase(
          rf::distance_phase(linalg::distance(cal_center, pos)) + 2.1);
      char buf[160];
      std::snprintf(buf, sizeof buf, "%.17g,%.17g,%.17g,%.17g", pos[0],
                    pos[1], pos[2], phase);
      out.emplace_back(buf);
    }
    return out;
  };
  const auto cal_rows = cal_make_rows(kCalRows);
  const auto cal_delta_rows = cal_make_rows(kCalDeltaRows + kCalDeltaFlushes);
  std::size_t cal_memo = 0, cal_warm = 0, cal_cold = 0;
  bool cal_last_warm = false;
  const auto cal_count = [&](std::string_view line) {
    if (line.find("\"schema\":\"lion.report.v1\"") == std::string_view::npos) {
      return;
    }
    cal_last_warm = false;
    if (line.find("\"source\":\"memo\"") != std::string_view::npos) {
      ++cal_memo;
    } else if (line.find("\"source\":\"incremental\"") !=
               std::string_view::npos) {
      ++cal_warm;
      cal_last_warm = true;
    } else {
      ++cal_cold;
    }
  };
  const auto cal_full_solves = [&](const std::vector<std::string>& data,
                                   std::size_t iters,
                                   std::vector<double>& ms) {
    serve::StreamService svc(serve::ServiceConfig{}, cal_count);
    for (std::size_t it = 0; it < iters; ++it) {
      const std::string id = "calf" + std::to_string(it);
      svc.ingest_line("!session " + id +
                      " center=0.009,0.789,0.006 smoothing=1");
      for (const std::string& row : data) svc.ingest_line(row);
    }
    svc.drain();
    bench::Timer run;
    for (std::size_t it = 0; it < iters; ++it) {
      bench::Timer t;
      svc.ingest_line("!flush calf" + std::to_string(it));
      svc.drain();
      ms.push_back(t.seconds() * 1e3);
    }
    const double wall = run.seconds();
    svc.finish();
    return wall;
  };

  std::vector<double> cal_full_ms, cal_full_1k_ms, cal_incr_ms, cal_delta_ms;
  const double cal_full_wall_s =
      cal_full_solves(cal_rows, kCalFullIters, cal_full_ms);
  std::vector<std::string> cal_1k_prefix(
      cal_delta_rows.begin(), cal_delta_rows.begin() + kCalDeltaRows);
  const double cal_full_1k_wall_s =
      cal_full_solves(cal_1k_prefix, kCalFullIters, cal_full_1k_ms);
  double cal_incr_wall_s = 0.0;
  {
    serve::StreamService svc(serve::ServiceConfig{}, cal_count);
    svc.ingest_line("!session cal center=0.009,0.789,0.006 smoothing=1");
    for (const std::string& row : cal_rows) svc.ingest_line(row);
    svc.ingest_line("!flush cal");  // cold: full solve installs the anchor
    svc.drain();
    bench::Timer run;
    for (std::size_t p = 0; p < kCalIncrFlushes; ++p) {
      bench::Timer t;
      svc.ingest_line("!flush cal");
      svc.drain();
      cal_incr_ms.push_back(t.seconds() * 1e3);
    }
    cal_incr_wall_s = run.seconds();
    svc.finish();
  }
  double cal_delta_wall_s = 0.0;
  std::size_t cal_delta_fallbacks = 0;
  {
    serve::StreamService svc(serve::ServiceConfig{}, cal_count);
    svc.ingest_line("!session cal center=0.009,0.789,0.006 smoothing=1");
    for (std::size_t i = 0; i < kCalDeltaRows; ++i) {
      svc.ingest_line(cal_delta_rows[i]);
    }
    svc.ingest_line("!flush cal");  // cold: installs the anchor
    svc.drain();
    bench::Timer run;
    for (std::size_t p = 0; p < kCalDeltaFlushes; ++p) {
      bench::Timer t;
      svc.ingest_line(cal_delta_rows[kCalDeltaRows + p]);
      svc.ingest_line("!flush cal");
      svc.drain();
      // Gate-tripped flushes cost a full solve and would make the gated
      // p95 bimodal; keep the row a warm-tier measurement and count the
      // trips separately (the printed source tally keeps them visible).
      if (cal_last_warm) {
        cal_delta_ms.push_back(t.seconds() * 1e3);
      } else {
        ++cal_delta_fallbacks;
      }
    }
    cal_delta_wall_s = run.seconds();
    svc.finish();
    if (cal_delta_ms.empty()) cal_delta_ms.push_back(0.0);
  }
  const double cal_full_p95 = linalg::percentile(cal_full_ms, 95);
  const double cal_full_1k_p95 = linalg::percentile(cal_full_1k_ms, 95);
  const double cal_incr_p95 = linalg::percentile(cal_incr_ms, 95);
  const double cal_delta_p95 = linalg::percentile(cal_delta_ms, 95);
  std::printf(
      "\ncalibrate flushes (incremental solver vs full pipeline):\n"
      "  %zu-row full solve [ms]: p50 %.3f, p95 %.3f, p99 %.3f\n"
      "  %zu-row memo flush [ms]: p50 %.4f, p95 %.4f, p99 %.4f (%.1fx at "
      "p95)\n"
      "  %zu-row full solve [ms]: p50 %.3f, p95 %.3f, p99 %.3f\n"
      "  %zu-row +1 flush   [ms]: p50 %.3f, p95 %.3f, p99 %.3f (%.1fx at "
      "p95, %zu fallbacks)\n"
      "  sources: %zu memo, %zu incremental, %zu fallback\n",
      kCalRows, linalg::percentile(cal_full_ms, 50), cal_full_p95,
      linalg::percentile(cal_full_ms, 99), kCalRows,
      linalg::percentile(cal_incr_ms, 50), cal_incr_p95,
      linalg::percentile(cal_incr_ms, 99), cal_full_p95 / cal_incr_p95,
      kCalDeltaRows, linalg::percentile(cal_full_1k_ms, 50), cal_full_1k_p95,
      linalg::percentile(cal_full_1k_ms, 99), kCalDeltaRows,
      linalg::percentile(cal_delta_ms, 50), cal_delta_p95,
      linalg::percentile(cal_delta_ms, 99), cal_full_1k_p95 / cal_delta_p95,
      cal_delta_fallbacks, cal_memo, cal_warm, cal_cold);
  report.row("cal_full")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kCalRows))
      .value("items_per_s",
             static_cast<double>(kCalFullIters) / cal_full_wall_s)
      .value("latency_p50_ms", linalg::percentile(cal_full_ms, 50))
      .value("latency_p95_ms", cal_full_p95)
      .value("latency_p99_ms", linalg::percentile(cal_full_ms, 99));
  report.row("cal_incr")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kCalRows))
      .value("items_per_s",
             static_cast<double>(kCalIncrFlushes) / cal_incr_wall_s)
      .value("latency_p50_ms", linalg::percentile(cal_incr_ms, 50))
      .value("latency_p95_ms", cal_incr_p95)
      .value("latency_p99_ms", linalg::percentile(cal_incr_ms, 99))
      .value("speedup_p95", cal_full_p95 / cal_incr_p95);
  report.row("cal_full_1k")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kCalDeltaRows))
      .value("items_per_s",
             static_cast<double>(kCalFullIters) / cal_full_1k_wall_s)
      .value("latency_p50_ms", linalg::percentile(cal_full_1k_ms, 50))
      .value("latency_p95_ms", cal_full_1k_p95)
      .value("latency_p99_ms", linalg::percentile(cal_full_1k_ms, 99));
  report.row("cal_incr_delta")
      .tag("build", "post")
      .value("threads", 0.0)
      .value("window_rows", static_cast<double>(kCalDeltaRows))
      .value("items_per_s",
             static_cast<double>(kCalDeltaFlushes) / cal_delta_wall_s)
      .value("latency_p50_ms", linalg::percentile(cal_delta_ms, 50))
      .value("latency_p95_ms", cal_delta_p95)
      .value("latency_p99_ms", linalg::percentile(cal_delta_ms, 99))
      .value("speedup_p95", cal_full_1k_p95 / cal_delta_p95)
      .value("fallbacks", static_cast<double>(cal_delta_fallbacks));

  // --- fleet ingest: sharded epoll front-end under a TCP fleet. --------
  // The server lives in this process so obs::process_* gauges measure the
  // serving side; the fleet client is a forked replay_client (its own fd
  // table, so 10k server conns + 10k client conns never share one
  // ulimit). The client sends declares + rows + a `!stats` barrier and no
  // `!flush` — this row is the ingest plane (accept, decode, route,
  // demux), not the solver. Gates:
  //   - the client's own completion checks (every barrier answered, zero
  //     errors/connect failures/idle drops) via its exit status;
  //   - peak fd growth >= fleet + idle: every connection was really held
  //     concurrently, not serialized by accept backpressure;
  //   - through the trailing idle hold, server fds must not grow and RSS
  //     must stay flat (the 10k-idle hold acceptance);
  //   - after the client exits, fds return to the pre-fleet baseline (no
  //     per-connection leak);
  //   - optional `--fleet-floor` reads/s floor (200k for BENCH_9).
  bool fleet_ok = true;
  if (fleet > 0) {
    bench::banner(
        "Fleet ingest (sharded epoll front-end)",
        "aggregate ingest >= 200k reads/s with 1k active readers while "
        "10k idle connections hold without fd/RSS growth");

    char csv_path[] = "/tmp/lion_bench_fleet_XXXXXX";
    const int csv_fd = ::mkstemp(csv_path);
    if (csv_fd < 0) {
      std::perror("mkstemp");
      return 1;
    }
    {
      const std::string& bytes = csv.str();
      std::size_t off = 0;
      while (off < bytes.size()) {
        const ssize_t n =
            ::write(csv_fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
          if (errno == EINTR) continue;
          std::perror("write scan csv");
          return 1;
        }
        off += static_cast<std::size_t>(n);
      }
      ::close(csv_fd);
    }

    serve::ServerConfig scfg;
    scfg.tcp_port = 0;
    scfg.shards = fleet_shards;
    scfg.max_connections = fleet + fleet_idle + 64;
    scfg.service.threads = 2;
    serve::SocketServer server(std::move(scfg));
    std::string err;
    if (!server.start(err)) {
      std::fprintf(stderr, "error: fleet server start: %s\n", err.c_str());
      ::unlink(csv_path);
      return 1;
    }
    const std::uint64_t base_fds = obs::process_open_fds();
    const std::string tcp_spec =
        "127.0.0.1:" + std::to_string(server.port());

    int out_pipe[2];
    if (::pipe(out_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t child = ::fork();
    if (child < 0) {
      std::perror("fork");
      return 1;
    }
    if (child == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      const std::string fleet_s = std::to_string(fleet);
      const std::string idle_s = std::to_string(fleet_idle);
      const std::string sessions_s = std::to_string(fleet_sessions);
      char hold_s[32];
      std::snprintf(hold_s, sizeof hold_s, "%.3f", fleet_hold_s);
      const char* cargv[] = {replay_client.c_str(),
                             "--tcp", tcp_spec.c_str(),
                             "--file", csv_path,
                             "--fleet", fleet_s.c_str(),
                             "--idle", idle_s.c_str(),
                             "--sessions", sessions_s.c_str(),
                             "--fleet-hold", hold_s,
                             "--connect-timeout", "30",
                             "--id-prefix", "bench",
                             nullptr};
      ::execv(cargv[0], const_cast<char* const*>(cargv));
      std::fprintf(stderr, "error: exec %s: %s\n", replay_client.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);

    // Sample the serving process while the fleet runs; drain the child's
    // stdout as it goes so a chatty client can never fill the pipe.
    struct FootprintSample {
      double t_s;
      std::uint64_t fds;
      std::uint64_t rss;
    };
    std::vector<FootprintSample> footprint;
    std::string child_out;
    char buf[4096];
    bench::Timer child_wall;
    int status = 0;
    for (;;) {
      for (;;) {
        const ssize_t n = ::read(out_pipe[0], buf, sizeof buf);
        if (n > 0) {
          child_out.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        break;
      }
      const pid_t reaped = ::waitpid(child, &status, WNOHANG);
      if (reaped == child) break;
      footprint.push_back({child_wall.seconds(), obs::process_open_fds(),
                           obs::process_rss_bytes()});
      ::usleep(50 * 1000);
    }
    for (;;) {  // tail of the pipe after exit
      const ssize_t n = ::read(out_pipe[0], buf, sizeof buf);
      if (n > 0) {
        child_out.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    ::close(out_pipe[0]);
    std::fwrite(child_out.data(), 1, child_out.size(), stdout);
    const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!child_ok) {
      std::fprintf(stderr, "error: replay_client fleet exited %s %d\n",
                   WIFEXITED(status) ? "with status" : "on signal",
                   WIFEXITED(status) ? WEXITSTATUS(status)
                                     : WTERMSIG(status));
    }

    // The client prints one lion.fleet.v1 summary line; pull the numeric
    // fields straight out of it.
    const auto fleet_num = [&child_out](const char* key) -> double {
      const auto rec = child_out.find("\"schema\":\"lion.fleet.v1\"");
      if (rec == std::string::npos) return -1.0;
      const std::string pat = std::string("\"") + key + "\":";
      const auto pos = child_out.find(pat, rec);
      if (pos == std::string::npos) return -1.0;
      return std::strtod(child_out.c_str() + pos + pat.size(), nullptr);
    };
    const double fleet_reads = fleet_num("reads");
    const double fleet_wall_s = fleet_num("wall_s");
    const double fleet_reads_per_s = fleet_num("reads_per_s");
    const double fleet_conn_p95_ms = fleet_num("conn_wall_ms_p95");
    const double fleet_connect_p95_ms = fleet_num("connect_ms_p95");

    // Peak concurrency: one server fd per connection, so the fd high-water
    // mark proves the idle fleet was held all at once (active connections
    // complete and close at their own pace during the ramp, so the peak is
    // gated on the idle fleet, not idle + active).
    std::uint64_t peak_fds = base_fds;
    for (const FootprintSample& s : footprint) {
      peak_fds = std::max(peak_fds, s.fds);
    }
    const std::uint64_t conn_peak =
        peak_fds > base_fds ? peak_fds - base_fds : 0;
    const bool conn_ok = conn_peak >= fleet_idle;

    // Idle hold: the client keeps the idle fleet connected for the final
    // --fleet-hold seconds. Over that window (trimmed to dodge active
    // teardown overlap) fds must not grow and must still cover the idle
    // fleet, and RSS must stay flat.
    bool hold_ok = true;
    double hold_rss_delta_mb = 0.0;
    if (fleet_idle > 0 && fleet_hold_s >= 1.0) {
      // Anchor on the last instant the idle fleet was still fully held:
      // after the hold the client tears down 10k fds before exiting, and
      // that teardown tail must not masquerade as hold drift.
      double hold_end_t_s = -1.0;
      for (const FootprintSample& s : footprint) {
        if (s.fds >= base_fds + fleet_idle) hold_end_t_s = s.t_s;
      }
      std::vector<const FootprintSample*> window;
      for (const FootprintSample& s : footprint) {
        if (s.t_s >= hold_end_t_s - fleet_hold_s + 0.4 &&
            s.t_s <= hold_end_t_s) {
          window.push_back(&s);
        }
      }
      if (hold_end_t_s < 0.0 || window.size() < 2) {
        hold_ok = false;
        std::fprintf(stderr,
                     "error: fleet hold window has %zu samples (< 2)\n",
                     window.size());
      } else {
        const FootprintSample& first = *window.front();
        const FootprintSample& last = *window.back();
        hold_rss_delta_mb =
            (static_cast<double>(last.rss) - static_cast<double>(first.rss)) /
            (1024.0 * 1024.0);
        constexpr double kHoldRssBudgetMb = 16.0;
        hold_ok = last.fds <= first.fds &&
                  last.fds >= base_fds + fleet_idle &&
                  hold_rss_delta_mb <= kHoldRssBudgetMb;
        if (!hold_ok) {
          std::fprintf(stderr,
                       "error: idle hold drifted: fds %llu -> %llu "
                       "(baseline %llu + %zu idle), rss %+.1f MB\n",
                       static_cast<unsigned long long>(first.fds),
                       static_cast<unsigned long long>(last.fds),
                       static_cast<unsigned long long>(base_fds), fleet_idle,
                       hold_rss_delta_mb);
        }
      }
    }

    // Leak check: once the fleet disconnects, the server must return to
    // its pre-fleet fd count. Teardown of 10k connections is async, so
    // resample for up to 2 s before calling it a leak.
    std::uint64_t settled_fds = obs::process_open_fds();
    {
      bench::Timer settle;
      while (settled_fds > base_fds && settle.seconds() < 2.0) {
        ::usleep(50 * 1000);
        settled_fds = obs::process_open_fds();
      }
    }
    const bool leak_ok = settled_fds <= base_fds;
    if (!leak_ok) {
      std::fprintf(stderr,
                   "error: %llu fds still open after fleet teardown "
                   "(baseline %llu)\n",
                   static_cast<unsigned long long>(settled_fds),
                   static_cast<unsigned long long>(base_fds));
    }

    server.stop();
    ::unlink(csv_path);

    const bool floor_met =
        fleet_floor <= 0.0 || fleet_reads_per_s >= fleet_floor;
    fleet_ok = child_ok && conn_ok && hold_ok && leak_ok && floor_met &&
               fleet_reads_per_s > 0.0;

    std::printf(
        "\nfleet: %zu active + %zu idle conns on %zu shards: "
        "%.0f reads/s aggregate (%.0f reads in %.3f s)\n",
        fleet, fleet_idle, fleet_shards, fleet_reads_per_s, fleet_reads,
        fleet_wall_s);
    std::printf(
        "fleet footprint: conn peak %llu (>= %zu needed), idle-hold rss "
        "%+.1f MB, settled fds %llu vs baseline %llu\n",
        static_cast<unsigned long long>(conn_peak), fleet_idle,
        hold_rss_delta_mb, static_cast<unsigned long long>(settled_fds),
        static_cast<unsigned long long>(base_fds));

    report.row("fleet")
        .tag("build", "post")
        .tag("method", "fleet")
        .value("threads", static_cast<double>(fleet_shards))
        .value("items_per_s", fleet_reads_per_s)
        .value("reads", fleet_reads)
        .value("wall_s", fleet_wall_s)
        .value("fleet", static_cast<double>(fleet))
        .value("idle", static_cast<double>(fleet_idle))
        .value("sessions_per_conn", static_cast<double>(fleet_sessions))
        .value("conn_peak", static_cast<double>(conn_peak))
        .value("hold_rss_delta_mb", hold_rss_delta_mb)
        .value("conn_wall_ms_p95", fleet_conn_p95_ms)
        .value("connect_ms_p95", fleet_connect_p95_ms);
  }

  const bool floor_ok = reads_per_s >= 1000.0;
  // The journaled path must stay within 10% of the plain path (write()
  // per record is buffered; fsync is batched), measured apples-to-apples
  // inside one run so machine speed cancels out.
  const bool journal_ok = journaled_per_s >= 0.9 * plain_best_per_s;
  // Same bar for the observability plane: relaxed atomics, bounded rings
  // and a rate-limited event log must cost < 10% of ingest throughput.
  const bool telemetry_ok = telemetry_per_s >= 0.9 * plain_best_per_s;
  // The incremental fast path must beat a per-read full recompute of the
  // 5k-row window by >= 5x at p95, with every pose answered incrementally
  // (a fallback would mean the residual gate tripped on clean data).
  const bool tick_ok =
      full_p95 > 0.0 && tick_p95 * 5.0 <= full_p95 && tick_fallbacks == 0;
  std::printf("\nacceptance: ingest %.0f reads/s %s 1000 reads/s floor\n",
              reads_per_s, floor_ok ? ">=" : "<");
  std::printf("acceptance: journaled ingest %.0f reads/s %s 90%% of plain\n",
              journaled_per_s, journal_ok ? ">=" : "<");
  std::printf("acceptance: telemetry-on ingest %.0f reads/s %s 90%% of plain\n",
              telemetry_per_s, telemetry_ok ? ">=" : "<");
  std::printf(
      "acceptance: `!tick` p95 %.3f ms %s full re-solve p95 %.3f ms / 5 "
      "(%zu fallbacks)\n",
      tick_p95, tick_ok ? "<=" : ">", full_p95, tick_fallbacks);
  if (fleet > 0) {
    std::printf("acceptance: fleet ingest + idle hold %s\n",
                fleet_ok ? "ok" : "FAILED");
  }
  return floor_ok && journal_ok && telemetry_ok && tick_ok && fleet_ok ? 0
                                                                       : 1;
}
