// Fig. 21 — antenna localization with a rotating tag (turntable scan).
//
// Paper setup: a tag rotates on a turntable 70 cm in front of a calibrated
// antenna, radius swept over several values. Claims: the x-axis error
// (perpendicular to the center->antenna line) is smaller than the y-axis
// error (along it), and errors shrink as the radius grows.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig21_rotating", argc, argv);
  bench::banner("Fig. 21 — localization with a rotating (circular) scan",
                "x error < y error (errors lie along center->antenna); "
                "error decreases with rotation radius");

  const rf::Antenna antenna = bench::plain_antenna({0.0, 0.7, 0.0});
  auto scenario =
      bench::standard_scenario(sim::EnvironmentKind::kLabTypical, antenna, 210);
  const Vec3 truth = antenna.phase_center();

  std::printf("\n%-12s %-12s %-12s %-12s\n", "radius[cm]", "dist[cm]",
              "x-err[cm]", "y-err[cm]");

  for (double radius : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::vector<double> d, ex, ey;
    for (int trial = 0; trial < 10; ++trial) {
      sim::CircularTrajectory traj({0.0, 0.0, 0.0}, radius, {0.0, 0.0, 1.0},
                                   0.8, 1.0,
                                   0.3 * trial /* vary start angle */);
      const auto profile = signal::preprocess(scenario.sweep(0, 0, traj));
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.pair_interval = std::min(0.25, 1.2 * radius);
      cfg.side_hint = Vec3{0.0, 0.7, 0.0};
      const auto fix = core::LinearLocalizer(cfg).locate(profile);
      d.push_back(linalg::distance(fix.position, truth));
      ex.push_back(std::abs(fix.position[0] - truth[0]));
      ey.push_back(std::abs(fix.position[1] - truth[1]));
    }
    std::printf("%-12.0f %-12.2f %-12.2f %-12.2f\n", radius * 100.0,
                linalg::mean(d) * 100.0, linalg::mean(ex) * 100.0,
                linalg::mean(ey) * 100.0);
    report.row("radius")
        .value("radius_cm", radius * 100.0)
        .value("dist_cm", linalg::mean(d) * 100.0)
        .value("x_err_cm", linalg::mean(ex) * 100.0)
        .value("y_err_cm", linalg::mean(ey) * 100.0);
  }

  std::printf(
      "\nreading: any known trajectory shape works — circular scanning\n"
      "replaces multi-line scanning where that is more convenient\n"
      "(paper Sec. V-F2).\n");
  return 0;
}
