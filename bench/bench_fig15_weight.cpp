// Fig. 15 — impact of the weight (WLS vs LS).
//
// Paper setup: tag on the x-axis at depth 0.8 m, 30 random tag positions,
// locate with the weighted least square method vs the plain least square
// method. Claim: WLS 0.43 cm vs LS 0.92 cm mean distance error — the
// weights suppress multipath-corrupted equations.

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig15_weight", argc, argv);
  bench::banner("Fig. 15 — weighted vs ordinary least squares",
                "WLS 0.43 cm vs LS 0.92 cm mean error (CDF separation)");

  const rf::Antenna antenna = bench::plain_antenna({0.0, 0.8, 0.0});
  auto scenario =
      bench::standard_scenario(sim::EnvironmentKind::kLabTypical, antenna, 150);
  const Vec3 center = antenna.phase_center();

  std::vector<double> ls_err, wls_err;
  rf::Rng pos_rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec3 start{pos_rng.uniform(-0.5, -0.2), 0.0, 0.0};
    auto raw = scenario.sweep(
        0, 0, sim::LinearTrajectory(start, start + Vec3{0.9, 0.0, 0.0}, 0.1));
    // Substitution for the paper's lab multipath hot spot: while the tag
    // crosses a short NLoS stretch (a cable tray shadows the LoS and a
    // specular path dominates), the reported phase carries a coherent
    // offset. This is the structured corruption the residual-based weights
    // exist to suppress; plain LS averages it into the fix.
    for (auto& s : raw) {
      if (s.position[0] > 0.35 && s.position[0] < 0.43) {
        s.phase = rf::wrap_phase(s.phase + 1.0);
      }
    }
    const auto profile = signal::preprocess(raw);

    std::vector<core::TagScanPoint> scan;
    for (const auto& pt : profile) {
      scan.push_back({pt.position - start, pt.phase});
    }
    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    cfg.side_hint = start;

    cfg.method = core::SolveMethod::kLeastSquares;
    ls_err.push_back(
        bench::planar_error(core::locate_tag_start(center, scan, cfg).position,
                            start) *
        100.0);
    cfg.method = core::SolveMethod::kIterativeReweighted;
    wls_err.push_back(
        bench::planar_error(core::locate_tag_start(center, scan, cfg).position,
                            start) *
        100.0);
  }

  std::printf("\n");
  bench::print_cdf_header("cm");
  report.cdf("LS", ls_err);
  report.cdf("WLS", wls_err);
  std::printf("\nmean distance error: WLS %.2f cm, LS %.2f cm (30 positions)\n",
              linalg::mean(wls_err), linalg::mean(ls_err));
  report.row("mean_error")
      .value("wls_cm", linalg::mean(wls_err))
      .value("ls_cm", linalg::mean(ls_err));
  std::printf("paper reference: WLS 0.43 cm, LS 0.92 cm\n");
  return 0;
}
