// Fig. 9 — lower-dimension 2D localization with a linear trajectory.
//
// Paper setup: tag moves from -0.3 m to 0.3 m along the x-axis, antenna at
// (0.2, 1) m, N(0, 0.1) noise, 100 trials. The trajectory is rank-1, so
// the y coordinate must be recovered from d_r (Observation 2). Claim: LION
// works with the linear trajectory and matches the hologram (CDF in the
// paper is sub-2 cm for most trials).

#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "rf/rng.hpp"
#include "signal/smooth.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig09_lowdim2d", argc, argv);
  bench::banner("Fig. 9 — 2D localization with a single linear trajectory",
                "lower-dimension recovery via d_r works: LION achieves "
                "hologram-level accuracy on a rank-1 scan");

  const Vec3 antenna{0.2, 1.0, 0.0};
  std::vector<double> lion_err;
  std::vector<double> holo_err;
  rf::Rng rng(99);

  for (int trial = 0; trial < 100; ++trial) {
    signal::PhaseProfile profile;
    for (double x = -0.3; x <= 0.3 + 1e-12; x += 0.005) {
      const Vec3 pos{x, 0.0, 0.0};
      profile.push_back({pos,
                         rf::distance_phase(linalg::distance(pos, antenna)) +
                             rng.gaussian(0.1),
                         0.0});
    }
    // Shared preprocessing (Sec. IV-A2): both methods get the smoothed
    // profile, exactly as the paper's pipeline feeds them.
    signal::smooth_in_place(profile, 9);

    core::LocalizerConfig cfg;
    cfg.target_dim = 2;
    cfg.pair_interval = 0.2;
    cfg.side_hint = Vec3{0.0, 1.0, 0.0};
    const auto fix = core::LinearLocalizer(cfg).locate(profile);
    lion_err.push_back(linalg::distance(fix.position, antenna));

    baseline::HologramConfig hcfg;
    hcfg.min_corner = {0.1, 0.9, 0.0};
    hcfg.max_corner = {0.3, 1.1, 0.0};
    hcfg.grid_size = 0.002;
    const auto holo = baseline::locate_hologram(profile, hcfg);
    holo_err.push_back(linalg::distance(holo.position, antenna));
  }

  for (auto& e : lion_err) e *= 100.0;
  for (auto& e : holo_err) e *= 100.0;

  std::printf("\n");
  bench::print_cdf_header("cm");
  report.cdf("LION (linear scan)", lion_err);
  report.cdf("hologram", holo_err);

  const auto ls = linalg::summarize(lion_err);
  const auto hs = linalg::summarize(holo_err);
  std::printf("\nmean distance error: LION %.2f cm, hologram %.2f cm "
              "(100 trials)\n",
              ls.mean, hs.mean);
  report.row("mean_error")
      .value("lion_cm", ls.mean)
      .value("hologram_cm", hs.mean);
  std::printf(
      "reading: comparable CDFs — the single linear trajectory suffices\n"
      "for 2D localization (paper Sec. III-C1).\n");
  return 0;
}
