// Fault-injection robustness matrix.
//
// Sweeps fault kind x severity x environment over the Fig. 11 three-line
// rig and reports the median / p90 phase-center error for the plain OLS
// solve (Eq. 13), the paper's Gaussian WLS (Eq. 14-16), and the robust
// RANSAC+Huber path. The headline claims this harness checks:
//
//  * with 10% multipath outlier bursts in the typical lab, the robust
//    path stays within ~2x of its clean-stream error while OLS degrades
//    by >= 5x;
//  * no fault configuration — including all-NaN and empty streams — makes
//    the calibrate entry point throw; each failure maps to a
//    CalibrationReport status.
//
// Usage: bench_fault_matrix [--trials N] [--json out.json]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "linalg/stats.hpp"
#include "signal/stitch.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

constexpr Vec3 kAntennaPhysical{0.0, 0.8, 0.0};

struct MethodSpec {
  const char* name;
  core::SolveMethod method;
};

const MethodSpec kMethods[] = {
    {"OLS", core::SolveMethod::kLeastSquares},
    {"WLS", core::SolveMethod::kWeightedLeastSquares},
    {"RANSAC", core::SolveMethod::kRansac},
};

sim::ThreeLineRig default_rig() {
  sim::ThreeLineRig rig;
  rig.x_min = -0.55;
  rig.x_max = 0.55;
  return rig;
}

struct Cell {
  std::vector<double> errors;  ///< per-trial error [m], successes only
  std::size_t failures = 0;    ///< trials with no usable estimate
};

// One localization trial: simulate, inject, preprocess, solve.
void run_trial(sim::EnvironmentKind env, const sim::FaultSpec* fault,
               core::SolveMethod method, std::uint64_t seed, Cell& cell) {
  auto scenario = bench::standard_scenario(env, kAntennaPhysical, seed);
  auto samples = scenario.sweep(0, 0, default_rig().build());
  if (fault) {
    rf::Rng rng(seed * 7919u + static_cast<std::uint64_t>(fault->kind) * 101u +
                static_cast<std::uint64_t>(fault->severity * 1000.0));
    samples = sim::inject_fault(std::move(samples), *fault, rng);
  }
  try {
    const auto profile = signal::preprocess(samples);
    core::LocalizerConfig cfg;
    cfg.target_dim = 3;
    cfg.method = method;
    cfg.pair_interval = 0.2;
    cfg.side_hint = kAntennaPhysical;
    const auto fix = core::LinearLocalizer(cfg).locate(profile);
    const double err =
        linalg::distance(fix.position, scenario.antennas()[0].phase_center());
    if (std::isfinite(err)) {
      cell.errors.push_back(err);
    } else {
      ++cell.failures;
    }
  } catch (const std::exception&) {
    ++cell.failures;
  }
}

double median_or_nan(const std::vector<double>& v) {
  return v.empty() ? std::numeric_limits<double>::quiet_NaN()
                   : linalg::median(v);
}

// Every fault configuration (plus pathological streams) must come back as
// a structured report, never an exception.
bool graceful_degradation_sweep(std::size_t trials) {
  bool all_reported = true;
  auto check = [&](const char* label,
                   const std::vector<sim::PhaseSample>& samples) {
    try {
      const auto report =
          core::calibrate_antenna_robust(samples, kAntennaPhysical);
      std::printf("  %-28s -> %s\n", label,
                  core::calibration_status_name(report.status));
    } catch (const std::exception& e) {
      std::printf("  %-28s -> THREW (%s)\n", label, e.what());
      all_reported = false;
    }
  };

  check("empty stream", {});

  std::vector<sim::PhaseSample> all_nan(200);
  for (std::size_t i = 0; i < all_nan.size(); ++i) {
    all_nan[i].t = static_cast<double>(i);
    all_nan[i].phase = std::numeric_limits<double>::quiet_NaN();
  }
  check("all-NaN phases", all_nan);

  auto scenario = bench::standard_scenario(sim::EnvironmentKind::kLabTypical,
                                           kAntennaPhysical, 1234);
  const auto base = scenario.sweep(0, 0, default_rig().build());
  for (const auto kind : sim::all_fault_kinds()) {
    for (double severity : {0.5, 1.0}) {
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        rf::Rng rng(seed);
        char label[64];
        std::snprintf(label, sizeof(label), "%s @ %.1f",
                      sim::fault_kind_name(kind), severity);
        check(label, sim::inject_fault(base, {kind, severity}, rng));
      }
    }
  }

  // Single-line scan: 3D is impossible; must degrade to the planar path.
  auto line = scenario.sweep(
      0, 0, sim::LinearTrajectory({-0.5, 0.0, 0.0}, {0.5, 0.0, 0.0}, 0.1));
  check("collinear scan (3D ask)", line);
  return all_reported;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 7;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
      trials = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      ++i;  // consumed by BenchReporter
    } else {
      std::fprintf(stderr,
                   "usage: bench_fault_matrix [--trials N] [--json out.json]\n");
      return 2;
    }
  }

  bench::BenchReporter report("fault_matrix", argc, argv);
  report.param("trials", static_cast<double>(trials));
  bench::banner(
      "Fault matrix: solver robustness under stream corruption",
      "robust consensus solving holds accuracy where OLS collapses");

  const sim::EnvironmentKind envs[] = {sim::EnvironmentKind::kLabClean,
                                       sim::EnvironmentKind::kLabTypical,
                                       sim::EnvironmentKind::kLabHarsh};
  const double severities[] = {0.05, 0.10, 0.20, 0.40};

  auto emit_json = [&](const char* env, const char* fault, double severity,
                       const char* method, const Cell& cell) {
    report.row("cell")
        .tag("environment", env)
        .tag("fault", fault)
        .tag("method", method)
        .value("severity", severity)
        .value("median_m", median_or_nan(cell.errors))
        .value("p90_m", cell.errors.empty()
                            ? std::numeric_limits<double>::quiet_NaN()
                            : linalg::percentile(cell.errors, 90))
        .value("failures", static_cast<double>(cell.failures))
        .value("trials",
               static_cast<double>(cell.errors.size() + cell.failures));
  };

  bench::Timer timer;
  // Acceptance-claim bookkeeping (kLabTypical, multipath @ 0.10).
  double clean_ols = 0.0, clean_ransac = 0.0;
  double spike_ols = 0.0, spike_ransac = 0.0;

  for (const auto env : envs) {
    const char* env_name = sim::environment_name(env);
    std::printf("\n--- %s ---\n", env_name);
    std::printf("%-20s %-9s %-8s %10s %10s %6s\n", "fault", "severity",
                "method", "median[mm]", "p90[mm]", "fail");

    // Clean-stream baseline per method.
    std::vector<Cell> baseline(std::size(kMethods));
    for (std::size_t m = 0; m < std::size(kMethods); ++m) {
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        run_trial(env, nullptr, kMethods[m].method, seed, baseline[m]);
      }
      std::printf("%-20s %-9s %-8s %10.2f %10.2f %6zu\n", "(clean)", "-",
                  kMethods[m].name, 1e3 * median_or_nan(baseline[m].errors),
                  baseline[m].errors.empty()
                      ? 0.0
                      : 1e3 * linalg::percentile(baseline[m].errors, 90),
                  baseline[m].failures);
      emit_json(env_name, "none", 0.0, kMethods[m].name, baseline[m]);
      if (env == sim::EnvironmentKind::kLabTypical) {
        if (kMethods[m].method == core::SolveMethod::kLeastSquares) {
          clean_ols = median_or_nan(baseline[m].errors);
        }
        if (kMethods[m].method == core::SolveMethod::kRansac) {
          clean_ransac = median_or_nan(baseline[m].errors);
        }
      }
    }

    for (const auto kind : sim::all_fault_kinds()) {
      for (const double severity : severities) {
        for (std::size_t m = 0; m < std::size(kMethods); ++m) {
          Cell cell;
          const sim::FaultSpec spec{kind, severity};
          for (std::uint64_t seed = 1; seed <= trials; ++seed) {
            run_trial(env, &spec, kMethods[m].method, seed, cell);
          }
          std::printf("%-20s %-9.2f %-8s %10.2f %10.2f %6zu\n",
                      sim::fault_kind_name(kind), severity, kMethods[m].name,
                      1e3 * median_or_nan(cell.errors),
                      cell.errors.empty()
                          ? 0.0
                          : 1e3 * linalg::percentile(cell.errors, 90),
                      cell.failures);
          emit_json(env_name, sim::fault_kind_name(kind), severity,
                    kMethods[m].name, cell);
          if (env == sim::EnvironmentKind::kLabTypical &&
              kind == sim::FaultKind::kMultipathSpike && severity == 0.10) {
            if (kMethods[m].method == core::SolveMethod::kLeastSquares) {
              spike_ols = median_or_nan(cell.errors);
            }
            if (kMethods[m].method == core::SolveMethod::kRansac) {
              spike_ransac = median_or_nan(cell.errors);
            }
          }
        }
      }
    }
  }

  std::printf("\n--- graceful degradation (calibrate_antenna_robust) ---\n");
  const bool graceful = graceful_degradation_sweep(1);

  std::printf("\n--- headline claim (kLabTypical, multipath_spike @ 0.10) ---\n");
  std::printf("clean   median: OLS %.2f mm, RANSAC %.2f mm\n", 1e3 * clean_ols,
              1e3 * clean_ransac);
  std::printf("faulted median: OLS %.2f mm (%.1fx), RANSAC %.2f mm (%.1fx)\n",
              1e3 * spike_ols, spike_ols / clean_ols, 1e3 * spike_ransac,
              spike_ransac / clean_ransac);
  const bool robust_holds = spike_ransac <= 2.0 * clean_ransac;
  const bool ols_collapses = spike_ols >= 5.0 * clean_ols;
  std::printf("robust within 2x of clean: %s; OLS degraded >= 5x: %s; "
              "all faults reported gracefully: %s\n",
              robust_holds ? "yes" : "NO", ols_collapses ? "yes" : "NO",
              graceful ? "yes" : "NO");
  std::printf("total time: %.1f s\n", timer.seconds());
  report.row("headline")
      .value("clean_ols_mm", 1e3 * clean_ols)
      .value("clean_ransac_mm", 1e3 * clean_ransac)
      .value("spike_ols_mm", 1e3 * spike_ols)
      .value("spike_ransac_mm", 1e3 * spike_ransac)
      .value("robust_holds", robust_holds ? 1.0 : 0.0)
      .value("ols_collapses", ols_collapses ? 1.0 : 0.0)
      .value("graceful", graceful ? 1.0 : 0.0);
  return (robust_holds && graceful) ? 0 : 1;
}
