// Fig. 16 + 17 — impact of the scanning range, and the residual as the
// adaptive-selection cue.
//
// Paper setup: interval fixed at 25 cm, scanning range swept 60..110 cm.
// Claims: (16) the mean WLS residual is closest to zero at the best range
// (80 cm); (17) the distance error is U-shaped — small ranges give
// near-parallel radical lines (plane-wave regime), large ranges drag in
// noisy off-main-beam samples.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

int main(int argc, char** argv) {
  bench::BenchReporter report("fig16_17_range", argc, argv);
  bench::banner("Fig. 16/17 — impact of scanning range",
                "best accuracy at ~80 cm where the mean WLS residual is "
                "closest to zero; worse below (plane waves) and above "
                "(off-beam noise)");

  // A 52-degree-beam antenna at 0.8 m depth: an 80 cm scan stays inside
  // the main beam, a 110 cm scan pokes well out of it, where both the
  // noise inflation and the antenna's off-axis *phase pattern* (coherent
  // bias) kick in — the paper's mechanism for the right side of the U.
  rf::Antenna antenna = bench::plain_antenna({0.0, 0.8, 0.0});
  antenna.beamwidth_rad = 52.0 * rf::kPi / 180.0;
  antenna.pattern_coefficient = 1.5;
  auto scenario =
      bench::standard_scenario(sim::EnvironmentKind::kLabTypical, antenna, 160);
  const Vec3 center = antenna.phase_center();

  std::printf("\n%-12s %-18s %-14s\n", "range[cm]", "mean residual[e-3]",
              "dist err[cm]");

  double best_range = 0.0;
  double best_resid = 1e9;
  double err_at_best = 0.0;
  for (double range = 0.6; range <= 1.1 + 1e-9; range += 0.1) {
    std::vector<double> errs, resids;
    for (int trial = 0; trial < 10; ++trial) {
      const Vec3 start{-0.6, 0.0, 0.0};
      const auto profile = signal::preprocess(scenario.sweep(
          0, 0,
          sim::LinearTrajectory(start, start + Vec3{1.2, 0.0, 0.0}, 0.1)));
      signal::PhaseProfile virt;
      for (const auto& pt : profile) {
        virt.push_back({center - (pt.position - start), pt.phase, pt.t});
      }
      const double cx =
          0.5 * (virt.front().position[0] + virt.back().position[0]);
      const auto windowed = core::restrict_to_x_range(virt, cx, range);
      core::LocalizerConfig cfg;
      cfg.target_dim = 2;
      cfg.pair_interval = 0.25;
      cfg.side_hint = start;
      // Pure interval pairing: the experiment's x_o is exactly the paper's
      // scanning-interval parameter, so no ladder rungs beyond it.
      const auto pairs = core::interval_pairs(windowed, 0.25, 0.02);
      const auto fix =
          core::LinearLocalizer(cfg).locate_with_pairs(windowed, pairs);
      errs.push_back(bench::planar_error(fix.position, start) * 100.0);
      resids.push_back(fix.mean_residual * 1e3);
    }
    const double mean_resid = linalg::mean(resids);
    const double mean_err = linalg::mean(errs);
    std::printf("%-12.0f %-18.3f %-14.2f\n", range * 100.0, mean_resid,
                mean_err);
    report.row("range")
        .value("range_cm", range * 100.0)
        .value("mean_residual_e3", mean_resid)
        .value("dist_err_cm", mean_err);
    if (std::abs(mean_resid) < best_resid) {
      best_resid = std::abs(mean_resid);
      best_range = range;
      err_at_best = mean_err;
    }
  }

  std::printf("\nresidual-selected range: %.0f cm (err %.2f cm)\n",
              best_range * 100.0, err_at_best);
  report.row("selected")
      .value("range_cm", best_range * 100.0)
      .value("err_cm", err_at_best);
  std::printf("paper reference: residual closest to zero at 80 cm, matching "
              "the minimum distance error\n");
  return 0;
}
