// Fig. 14 — impact of height and depth.
//
// (a) 3D localization of the antenna at P1..P6 (y = 0.6/0.8/1.0 m,
//     z = 0/0.2 m) from two x-lines at y=0 and y=-0.2 in the z=0 plane.
//     Claim: per-axis errors < 1.5 cm up to 0.8 m depth, then grow —
//     especially along y and z (phase insensitivity at depth).
// (b) 2D conveyor tracking at depths 0.6..1.6 m, LION vs DAH. Claim: LION
//     stays ~0.45 cm throughout; DAH blows past 2.5 cm beyond 1.4 m as
//     multipath grows with depth (LION's adaptive selection filters it).

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/hologram.hpp"
#include "bench/common.hpp"
#include "core/lion.hpp"
#include "rf/phase_model.hpp"
#include "signal/stitch.hpp"
#include "sim/scenario.hpp"

using namespace lion;
using linalg::Vec3;

namespace {

// ---- part (a): 3D antenna localization at P1..P6 ------------------------

void part_a(bench::BenchReporter& report) {
  std::printf("\n(a) 3D antenna localization from two planar lines\n");
  std::printf("%-6s %-18s %-10s %-10s %-10s %-10s\n", "pos",
              "antenna (y,z)[m]", "dist[cm]", "x[cm]", "y[cm]", "z[cm]");

  int idx = 1;
  for (double z : {0.0, 0.2}) {
    for (double y : {0.6, 0.8, 1.0}) {
      // Isolate the geometry effect: no hidden displacement here.
      const rf::Antenna antenna = bench::plain_antenna({0.0, y, z});
      auto scenario = bench::standard_scenario(
          sim::EnvironmentKind::kLabClean, antenna,
          140 + static_cast<std::uint64_t>(idx));

      std::vector<double> dist, ex, ey, ez;
      for (int trial = 0; trial < 8; ++trial) {
        // Two x-lines at y=0 and y=-0.2, both z=0 — rank 2, z recovered.
        sim::PiecewiseLinearTrajectory traj(
            {{-0.55, 0.0, 0.0},
             {0.55, 0.0, 0.0},
             {0.55, -0.2, 0.0},
             {-0.55, -0.2, 0.0}},
            0.1);
        const auto profile = signal::preprocess(scenario.sweep(0, 0, traj));
        core::LocalizerConfig cfg;
        cfg.target_dim = 3;
        cfg.pair_interval = 0.2;
        cfg.side_hint = Vec3{0.0, y, 1.0};  // antenna above the scan plane
        const auto fix = core::LinearLocalizer(cfg).locate(profile);
        const Vec3 truth = antenna.phase_center();
        dist.push_back(linalg::distance(fix.position, truth));
        ex.push_back(std::abs(fix.position[0] - truth[0]));
        ey.push_back(std::abs(fix.position[1] - truth[1]));
        ez.push_back(std::abs(fix.position[2] - truth[2]));
      }
      std::printf("P%-5d (%.1f, %.1f)%8s %-10.2f %-10.2f %-10.2f %-10.2f\n",
                  idx, y, z, "", linalg::mean(dist) * 100.0,
                  linalg::mean(ex) * 100.0, linalg::mean(ey) * 100.0,
                  linalg::mean(ez) * 100.0);
      report.row("position_3d")
          .value("index", idx)
          .value("depth_m", y)
          .value("height_m", z)
          .value("dist_cm", linalg::mean(dist) * 100.0)
          .value("x_cm", linalg::mean(ex) * 100.0)
          .value("y_cm", linalg::mean(ey) * 100.0)
          .value("z_cm", linalg::mean(ez) * 100.0);
      ++idx;
    }
  }
  std::printf("reading: errors grow with depth, dominated by y/z — the\n"
              "20 cm depth spread is insufficient at range (Sec. V-C1).\n");
}

// ---- part (b): 2D conveyor tracking vs depth ----------------------------

void part_b(bench::BenchReporter& report) {
  std::printf("\n(b) 2D tag tracking vs depth, LION (adaptive) vs DAH\n");
  std::printf("%-10s %-12s %-12s\n", "depth[m]", "LION[cm]", "DAH[cm]");

  for (double depth = 0.6; depth <= 1.6 + 1e-9; depth += 0.2) {
    // Multipath whose *relative* influence grows with depth: (1) a small
    // metal fixture near the conveyor's far end — localized structured
    // interference that window selection can dodge but take-all-
    // measurements methods cannot; (2) the room's diffuse reverberant
    // floor, position-independent while the LoS field decays as 1/d.
    auto reflectors = sim::make_reflectors(sim::EnvironmentKind::kLabTypical);
    rf::NoiseModel noise = sim::make_noise(sim::EnvironmentKind::kLabTypical);
    noise.diffuse_amplitude = 0.03;
    std::vector<rf::Scatterer> scatterers{{{0.6, 0.3, 0.0}, 0.02}};
    rf::Antenna antenna;
    antenna.physical_center = {0.0, depth, 0.0};
    auto scenario = sim::Scenario::Builder{}
                        .channel(rf::Channel(noise, reflectors, scatterers))
                        .add_antenna(antenna)
                        .add_tag()
                        .seed(1400 + static_cast<std::uint64_t>(depth * 10))
                        .build();
    const Vec3 center = antenna.phase_center();

    std::vector<double> lion_errs, dah_errs;
    for (int trial = 0; trial < 6; ++trial) {
      const Vec3 start{-0.4 + 0.02 * trial, 0.0, 0.0};
      const auto raw = scenario.sweep(
          0, 0,
          sim::LinearTrajectory(start, start + Vec3{0.9, 0.0, 0.0}, 0.1));

      // LION's full robust pipeline: RSSI-gate the deep fades, filter
      // impulses, unwrap, smooth — then adaptive range/interval selection.
      // DAH, as published, "takes all measurements as input": it gets the
      // plain unwrap+smooth profile.
      signal::PreprocessConfig robust;
      robust.rssi_gate_db = 6.0;
      robust.smoothing_window_m = 0.02;
      const auto lion_profile = signal::preprocess(raw, robust);
      const auto profile = signal::preprocess(raw);

      signal::PhaseProfile virt;
      for (const auto& pt : lion_profile) {
        virt.push_back({center - (pt.position - start), pt.phase, pt.t});
      }
      core::AdaptiveConfig acfg;
      acfg.base.target_dim = 2;
      acfg.base.side_hint = start;
      acfg.base.method = core::SolveMethod::kIterativeReweighted;
      acfg.range_center_x = 0.5 * (virt.front().position[0] +
                                   virt.back().position[0]);
      const auto fix = core::locate_adaptive(virt, acfg);
      lion_errs.push_back(bench::planar_error(fix.position, start));

      // DAH takes all measurements as-is.
      signal::PhaseProfile dah_virt;
      for (const auto& pt : profile) {
        dah_virt.push_back({center - (pt.position - start), pt.phase, pt.t});
      }
      signal::PhaseProfile sub;
      for (std::size_t i = 0; i < dah_virt.size(); i += 4) {
        sub.push_back(dah_virt[i]);
      }
      baseline::HologramConfig hcfg;
      hcfg.min_corner = start - Vec3{0.08, 0.08, 0.0};
      hcfg.max_corner = start + Vec3{0.08, 0.08, 0.0};
      hcfg.min_corner[2] = hcfg.max_corner[2] = 0.0;
      hcfg.grid_size = 0.002;
      const auto dah = baseline::locate_hologram(sub, hcfg);
      dah_errs.push_back(bench::planar_error(dah.position, start));
    }
    std::printf("%-10.1f %-12.2f %-12.2f\n", depth,
                linalg::mean(lion_errs) * 100.0,
                linalg::mean(dah_errs) * 100.0);
    report.row("tracking_2d")
        .value("depth_m", depth)
        .value("lion_cm", linalg::mean(lion_errs) * 100.0)
        .value("dah_cm", linalg::mean(dah_errs) * 100.0);
  }
  std::printf("paper reference: LION ~0.45 cm flat; DAH ~0.55 cm until "
              "1.2 m, >2.5 cm at 1.4 m+\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter report("fig14_height_depth", argc, argv);
  bench::banner("Fig. 14 — impact of height and depth",
                "3D accurate within 0.8 m depth; 2D LION flat with depth "
                "while DAH degrades sharply beyond 1.4 m");
  part_a(report);
  part_b(report);
  return 0;
}
