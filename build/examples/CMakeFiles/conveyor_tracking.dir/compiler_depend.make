# Empty compiler generated dependencies file for conveyor_tracking.
# This may be replaced when dependencies are built.
