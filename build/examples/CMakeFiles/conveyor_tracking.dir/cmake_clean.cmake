file(REMOVE_RECURSE
  "CMakeFiles/conveyor_tracking.dir/conveyor_tracking.cpp.o"
  "CMakeFiles/conveyor_tracking.dir/conveyor_tracking.cpp.o.d"
  "conveyor_tracking"
  "conveyor_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conveyor_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
