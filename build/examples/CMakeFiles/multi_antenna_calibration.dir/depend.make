# Empty dependencies file for multi_antenna_calibration.
# This may be replaced when dependencies are built.
