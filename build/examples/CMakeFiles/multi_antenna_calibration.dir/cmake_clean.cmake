file(REMOVE_RECURSE
  "CMakeFiles/multi_antenna_calibration.dir/multi_antenna_calibration.cpp.o"
  "CMakeFiles/multi_antenna_calibration.dir/multi_antenna_calibration.cpp.o.d"
  "multi_antenna_calibration"
  "multi_antenna_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_antenna_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
