file(REMOVE_RECURSE
  "CMakeFiles/warehouse_stream.dir/warehouse_stream.cpp.o"
  "CMakeFiles/warehouse_stream.dir/warehouse_stream.cpp.o.d"
  "warehouse_stream"
  "warehouse_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
