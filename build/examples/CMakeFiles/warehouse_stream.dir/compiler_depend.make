# Empty compiler generated dependencies file for warehouse_stream.
# This may be replaced when dependencies are built.
