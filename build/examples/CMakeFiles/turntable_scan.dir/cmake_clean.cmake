file(REMOVE_RECURSE
  "CMakeFiles/turntable_scan.dir/turntable_scan.cpp.o"
  "CMakeFiles/turntable_scan.dir/turntable_scan.cpp.o.d"
  "turntable_scan"
  "turntable_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turntable_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
