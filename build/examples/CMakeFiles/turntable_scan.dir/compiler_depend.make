# Empty compiler generated dependencies file for turntable_scan.
# This may be replaced when dependencies are built.
