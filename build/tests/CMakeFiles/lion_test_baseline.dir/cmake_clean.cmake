file(REMOVE_RECURSE
  "CMakeFiles/lion_test_baseline.dir/baseline/test_hologram.cpp.o"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_hologram.cpp.o.d"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_hyperbola.cpp.o"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_hyperbola.cpp.o.d"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_parabola.cpp.o"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_parabola.cpp.o.d"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_tagspin.cpp.o"
  "CMakeFiles/lion_test_baseline.dir/baseline/test_tagspin.cpp.o.d"
  "lion_test_baseline"
  "lion_test_baseline.pdb"
  "lion_test_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
