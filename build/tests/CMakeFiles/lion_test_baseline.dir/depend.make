# Empty dependencies file for lion_test_baseline.
# This may be replaced when dependencies are built.
