file(REMOVE_RECURSE
  "CMakeFiles/lion_test_signal.dir/signal/test_profile.cpp.o"
  "CMakeFiles/lion_test_signal.dir/signal/test_profile.cpp.o.d"
  "CMakeFiles/lion_test_signal.dir/signal/test_smooth.cpp.o"
  "CMakeFiles/lion_test_signal.dir/signal/test_smooth.cpp.o.d"
  "CMakeFiles/lion_test_signal.dir/signal/test_stitch.cpp.o"
  "CMakeFiles/lion_test_signal.dir/signal/test_stitch.cpp.o.d"
  "CMakeFiles/lion_test_signal.dir/signal/test_unwrap.cpp.o"
  "CMakeFiles/lion_test_signal.dir/signal/test_unwrap.cpp.o.d"
  "lion_test_signal"
  "lion_test_signal.pdb"
  "lion_test_signal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
