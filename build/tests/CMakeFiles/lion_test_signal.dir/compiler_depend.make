# Empty compiler generated dependencies file for lion_test_signal.
# This may be replaced when dependencies are built.
