# Empty compiler generated dependencies file for lion_test_io.
# This may be replaced when dependencies are built.
