file(REMOVE_RECURSE
  "CMakeFiles/lion_test_io.dir/io/test_csv.cpp.o"
  "CMakeFiles/lion_test_io.dir/io/test_csv.cpp.o.d"
  "lion_test_io"
  "lion_test_io.pdb"
  "lion_test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
