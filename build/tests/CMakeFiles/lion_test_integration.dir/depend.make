# Empty dependencies file for lion_test_integration.
# This may be replaced when dependencies are built.
