file(REMOVE_RECURSE
  "CMakeFiles/lion_test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/lion_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/lion_test_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/lion_test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/lion_test_integration.dir/integration/test_hopping.cpp.o"
  "CMakeFiles/lion_test_integration.dir/integration/test_hopping.cpp.o.d"
  "CMakeFiles/lion_test_integration.dir/integration/test_properties.cpp.o"
  "CMakeFiles/lion_test_integration.dir/integration/test_properties.cpp.o.d"
  "CMakeFiles/lion_test_integration.dir/integration/test_properties_3d.cpp.o"
  "CMakeFiles/lion_test_integration.dir/integration/test_properties_3d.cpp.o.d"
  "lion_test_integration"
  "lion_test_integration.pdb"
  "lion_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
