# Empty dependencies file for lion_test_rf.
# This may be replaced when dependencies are built.
