file(REMOVE_RECURSE
  "CMakeFiles/lion_test_rf.dir/rf/test_antenna.cpp.o"
  "CMakeFiles/lion_test_rf.dir/rf/test_antenna.cpp.o.d"
  "CMakeFiles/lion_test_rf.dir/rf/test_channel.cpp.o"
  "CMakeFiles/lion_test_rf.dir/rf/test_channel.cpp.o.d"
  "CMakeFiles/lion_test_rf.dir/rf/test_phase_model.cpp.o"
  "CMakeFiles/lion_test_rf.dir/rf/test_phase_model.cpp.o.d"
  "CMakeFiles/lion_test_rf.dir/rf/test_rng.cpp.o"
  "CMakeFiles/lion_test_rf.dir/rf/test_rng.cpp.o.d"
  "CMakeFiles/lion_test_rf.dir/rf/test_tag.cpp.o"
  "CMakeFiles/lion_test_rf.dir/rf/test_tag.cpp.o.d"
  "lion_test_rf"
  "lion_test_rf.pdb"
  "lion_test_rf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
