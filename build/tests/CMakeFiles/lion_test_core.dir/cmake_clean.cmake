file(REMOVE_RECURSE
  "CMakeFiles/lion_test_core.dir/core/test_adaptive.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_adaptive.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_calibration.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_calibration.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_frame.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_frame.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_localizer.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_localizer.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_offset_graph.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_offset_graph.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_pairing.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_pairing.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_radical.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_radical.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_tag_locator.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_tag_locator.cpp.o.d"
  "CMakeFiles/lion_test_core.dir/core/test_tracker.cpp.o"
  "CMakeFiles/lion_test_core.dir/core/test_tracker.cpp.o.d"
  "lion_test_core"
  "lion_test_core.pdb"
  "lion_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
