# Empty compiler generated dependencies file for lion_test_core.
# This may be replaced when dependencies are built.
