
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adaptive.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_adaptive.cpp.o.d"
  "/root/repo/tests/core/test_calibration.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_calibration.cpp.o.d"
  "/root/repo/tests/core/test_frame.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_frame.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_frame.cpp.o.d"
  "/root/repo/tests/core/test_localizer.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_localizer.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_localizer.cpp.o.d"
  "/root/repo/tests/core/test_offset_graph.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_offset_graph.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_offset_graph.cpp.o.d"
  "/root/repo/tests/core/test_pairing.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_pairing.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_pairing.cpp.o.d"
  "/root/repo/tests/core/test_radical.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_radical.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_radical.cpp.o.d"
  "/root/repo/tests/core/test_tag_locator.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_tag_locator.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_tag_locator.cpp.o.d"
  "/root/repo/tests/core/test_tracker.cpp" "tests/CMakeFiles/lion_test_core.dir/core/test_tracker.cpp.o" "gcc" "tests/CMakeFiles/lion_test_core.dir/core/test_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lion_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lion_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/lion_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
