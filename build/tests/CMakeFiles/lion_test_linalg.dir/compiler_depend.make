# Empty compiler generated dependencies file for lion_test_linalg.
# This may be replaced when dependencies are built.
