file(REMOVE_RECURSE
  "CMakeFiles/lion_test_linalg.dir/linalg/test_decompositions.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_decompositions.cpp.o.d"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_eigen.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_eigen.cpp.o.d"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_lstsq.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_lstsq.cpp.o.d"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_matrix.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_matrix.cpp.o.d"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_stats.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_stats.cpp.o.d"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_vec.cpp.o"
  "CMakeFiles/lion_test_linalg.dir/linalg/test_vec.cpp.o.d"
  "lion_test_linalg"
  "lion_test_linalg.pdb"
  "lion_test_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
