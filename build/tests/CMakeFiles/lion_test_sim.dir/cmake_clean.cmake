file(REMOVE_RECURSE
  "CMakeFiles/lion_test_sim.dir/sim/test_environment.cpp.o"
  "CMakeFiles/lion_test_sim.dir/sim/test_environment.cpp.o.d"
  "CMakeFiles/lion_test_sim.dir/sim/test_reader.cpp.o"
  "CMakeFiles/lion_test_sim.dir/sim/test_reader.cpp.o.d"
  "CMakeFiles/lion_test_sim.dir/sim/test_scenario.cpp.o"
  "CMakeFiles/lion_test_sim.dir/sim/test_scenario.cpp.o.d"
  "CMakeFiles/lion_test_sim.dir/sim/test_trajectory.cpp.o"
  "CMakeFiles/lion_test_sim.dir/sim/test_trajectory.cpp.o.d"
  "lion_test_sim"
  "lion_test_sim.pdb"
  "lion_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
