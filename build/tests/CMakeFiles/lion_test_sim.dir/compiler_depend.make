# Empty compiler generated dependencies file for lion_test_sim.
# This may be replaced when dependencies are built.
