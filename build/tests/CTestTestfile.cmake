# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lion_test_linalg[1]_include.cmake")
include("/root/repo/build/tests/lion_test_rf[1]_include.cmake")
include("/root/repo/build/tests/lion_test_sim[1]_include.cmake")
include("/root/repo/build/tests/lion_test_signal[1]_include.cmake")
include("/root/repo/build/tests/lion_test_core[1]_include.cmake")
include("/root/repo/build/tests/lion_test_baseline[1]_include.cmake")
include("/root/repo/build/tests/lion_test_integration[1]_include.cmake")
include("/root/repo/build/tests/lion_test_io[1]_include.cmake")
