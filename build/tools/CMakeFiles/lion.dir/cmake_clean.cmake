file(REMOVE_RECURSE
  "CMakeFiles/lion.dir/lion_cli.cpp.o"
  "CMakeFiles/lion.dir/lion_cli.cpp.o.d"
  "lion"
  "lion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
