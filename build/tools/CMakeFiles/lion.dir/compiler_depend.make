# Empty compiler generated dependencies file for lion.
# This may be replaced when dependencies are built.
