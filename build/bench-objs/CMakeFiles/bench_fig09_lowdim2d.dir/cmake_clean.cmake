file(REMOVE_RECURSE
  "../bench/bench_fig09_lowdim2d"
  "../bench/bench_fig09_lowdim2d.pdb"
  "CMakeFiles/bench_fig09_lowdim2d.dir/bench_fig09_lowdim2d.cpp.o"
  "CMakeFiles/bench_fig09_lowdim2d.dir/bench_fig09_lowdim2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_lowdim2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
