# Empty compiler generated dependencies file for bench_fig09_lowdim2d.
# This may be replaced when dependencies are built.
