# Empty dependencies file for bench_baseline_shootout.
# This may be replaced when dependencies are built.
