file(REMOVE_RECURSE
  "../bench/bench_baseline_shootout"
  "../bench/bench_baseline_shootout.pdb"
  "CMakeFiles/bench_baseline_shootout.dir/bench_baseline_shootout.cpp.o"
  "CMakeFiles/bench_baseline_shootout.dir/bench_baseline_shootout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
