file(REMOVE_RECURSE
  "../bench/bench_fig03_phase_offset"
  "../bench/bench_fig03_phase_offset.pdb"
  "CMakeFiles/bench_fig03_phase_offset.dir/bench_fig03_phase_offset.cpp.o"
  "CMakeFiles/bench_fig03_phase_offset.dir/bench_fig03_phase_offset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_phase_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
