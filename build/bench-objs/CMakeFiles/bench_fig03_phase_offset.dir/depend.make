# Empty dependencies file for bench_fig03_phase_offset.
# This may be replaced when dependencies are built.
