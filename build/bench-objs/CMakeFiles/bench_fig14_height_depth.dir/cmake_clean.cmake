file(REMOVE_RECURSE
  "../bench/bench_fig14_height_depth"
  "../bench/bench_fig14_height_depth.pdb"
  "CMakeFiles/bench_fig14_height_depth.dir/bench_fig14_height_depth.cpp.o"
  "CMakeFiles/bench_fig14_height_depth.dir/bench_fig14_height_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_height_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
