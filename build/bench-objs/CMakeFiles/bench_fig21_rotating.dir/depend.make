# Empty dependencies file for bench_fig21_rotating.
# This may be replaced when dependencies are built.
