file(REMOVE_RECURSE
  "../bench/bench_fig21_rotating"
  "../bench/bench_fig21_rotating.pdb"
  "CMakeFiles/bench_fig21_rotating.dir/bench_fig21_rotating.cpp.o"
  "CMakeFiles/bench_fig21_rotating.dir/bench_fig21_rotating.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_rotating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
