file(REMOVE_RECURSE
  "../bench/bench_fig19_20_multiantenna"
  "../bench/bench_fig19_20_multiantenna.pdb"
  "CMakeFiles/bench_fig19_20_multiantenna.dir/bench_fig19_20_multiantenna.cpp.o"
  "CMakeFiles/bench_fig19_20_multiantenna.dir/bench_fig19_20_multiantenna.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_20_multiantenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
