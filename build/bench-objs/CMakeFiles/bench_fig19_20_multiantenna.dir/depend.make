# Empty dependencies file for bench_fig19_20_multiantenna.
# This may be replaced when dependencies are built.
