file(REMOVE_RECURSE
  "../bench/bench_fig04_hologram"
  "../bench/bench_fig04_hologram.pdb"
  "CMakeFiles/bench_fig04_hologram.dir/bench_fig04_hologram.cpp.o"
  "CMakeFiles/bench_fig04_hologram.dir/bench_fig04_hologram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_hologram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
