# Empty dependencies file for bench_fig04_hologram.
# This may be replaced when dependencies are built.
