# Empty compiler generated dependencies file for bench_fig06_direction.
# This may be replaced when dependencies are built.
