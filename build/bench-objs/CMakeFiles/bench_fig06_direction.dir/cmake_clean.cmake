file(REMOVE_RECURSE
  "../bench/bench_fig06_direction"
  "../bench/bench_fig06_direction.pdb"
  "CMakeFiles/bench_fig06_direction.dir/bench_fig06_direction.cpp.o"
  "CMakeFiles/bench_fig06_direction.dir/bench_fig06_direction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
