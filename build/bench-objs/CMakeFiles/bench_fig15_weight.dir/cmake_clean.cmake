file(REMOVE_RECURSE
  "../bench/bench_fig15_weight"
  "../bench/bench_fig15_weight.pdb"
  "CMakeFiles/bench_fig15_weight.dir/bench_fig15_weight.cpp.o"
  "CMakeFiles/bench_fig15_weight.dir/bench_fig15_weight.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
