# Empty dependencies file for bench_fig15_weight.
# This may be replaced when dependencies are built.
