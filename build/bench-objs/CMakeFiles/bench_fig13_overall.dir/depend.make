# Empty dependencies file for bench_fig13_overall.
# This may be replaced when dependencies are built.
