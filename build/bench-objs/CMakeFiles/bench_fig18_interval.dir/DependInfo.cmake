
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_interval.cpp" "bench-objs/CMakeFiles/bench_fig18_interval.dir/bench_fig18_interval.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_fig18_interval.dir/bench_fig18_interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lion_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/lion_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/lion_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
