file(REMOVE_RECURSE
  "../bench/bench_fig18_interval"
  "../bench/bench_fig18_interval.pdb"
  "CMakeFiles/bench_fig18_interval.dir/bench_fig18_interval.cpp.o"
  "CMakeFiles/bench_fig18_interval.dir/bench_fig18_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
