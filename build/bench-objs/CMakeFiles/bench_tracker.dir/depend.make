# Empty dependencies file for bench_tracker.
# This may be replaced when dependencies are built.
