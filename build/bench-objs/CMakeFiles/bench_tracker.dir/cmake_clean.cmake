file(REMOVE_RECURSE
  "../bench/bench_tracker"
  "../bench/bench_tracker.pdb"
  "CMakeFiles/bench_tracker.dir/bench_tracker.cpp.o"
  "CMakeFiles/bench_tracker.dir/bench_tracker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
