file(REMOVE_RECURSE
  "../bench/bench_fig02_phase_center"
  "../bench/bench_fig02_phase_center.pdb"
  "CMakeFiles/bench_fig02_phase_center.dir/bench_fig02_phase_center.cpp.o"
  "CMakeFiles/bench_fig02_phase_center.dir/bench_fig02_phase_center.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_phase_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
