# Empty dependencies file for lion_baseline.
# This may be replaced when dependencies are built.
