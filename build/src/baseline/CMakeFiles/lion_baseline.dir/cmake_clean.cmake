file(REMOVE_RECURSE
  "CMakeFiles/lion_baseline.dir/hologram.cpp.o"
  "CMakeFiles/lion_baseline.dir/hologram.cpp.o.d"
  "CMakeFiles/lion_baseline.dir/hyperbola.cpp.o"
  "CMakeFiles/lion_baseline.dir/hyperbola.cpp.o.d"
  "CMakeFiles/lion_baseline.dir/parabola.cpp.o"
  "CMakeFiles/lion_baseline.dir/parabola.cpp.o.d"
  "CMakeFiles/lion_baseline.dir/tagspin.cpp.o"
  "CMakeFiles/lion_baseline.dir/tagspin.cpp.o.d"
  "liblion_baseline.a"
  "liblion_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
