file(REMOVE_RECURSE
  "liblion_baseline.a"
)
