# Empty compiler generated dependencies file for lion_io.
# This may be replaced when dependencies are built.
