file(REMOVE_RECURSE
  "liblion_io.a"
)
