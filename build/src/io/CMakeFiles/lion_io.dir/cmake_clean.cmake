file(REMOVE_RECURSE
  "CMakeFiles/lion_io.dir/csv.cpp.o"
  "CMakeFiles/lion_io.dir/csv.cpp.o.d"
  "liblion_io.a"
  "liblion_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
