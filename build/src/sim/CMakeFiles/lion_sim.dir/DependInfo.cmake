
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/lion_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/lion_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/reader.cpp" "src/sim/CMakeFiles/lion_sim.dir/reader.cpp.o" "gcc" "src/sim/CMakeFiles/lion_sim.dir/reader.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/lion_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/lion_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/lion_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/lion_sim.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/lion_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
