# Empty compiler generated dependencies file for lion_sim.
# This may be replaced when dependencies are built.
