file(REMOVE_RECURSE
  "liblion_sim.a"
)
