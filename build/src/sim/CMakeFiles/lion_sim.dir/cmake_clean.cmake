file(REMOVE_RECURSE
  "CMakeFiles/lion_sim.dir/environment.cpp.o"
  "CMakeFiles/lion_sim.dir/environment.cpp.o.d"
  "CMakeFiles/lion_sim.dir/reader.cpp.o"
  "CMakeFiles/lion_sim.dir/reader.cpp.o.d"
  "CMakeFiles/lion_sim.dir/scenario.cpp.o"
  "CMakeFiles/lion_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/lion_sim.dir/trajectory.cpp.o"
  "CMakeFiles/lion_sim.dir/trajectory.cpp.o.d"
  "liblion_sim.a"
  "liblion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
