file(REMOVE_RECURSE
  "liblion_linalg.a"
)
