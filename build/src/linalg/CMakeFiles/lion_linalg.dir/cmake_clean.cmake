file(REMOVE_RECURSE
  "CMakeFiles/lion_linalg.dir/decompositions.cpp.o"
  "CMakeFiles/lion_linalg.dir/decompositions.cpp.o.d"
  "CMakeFiles/lion_linalg.dir/eigen.cpp.o"
  "CMakeFiles/lion_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/lion_linalg.dir/lstsq.cpp.o"
  "CMakeFiles/lion_linalg.dir/lstsq.cpp.o.d"
  "CMakeFiles/lion_linalg.dir/matrix.cpp.o"
  "CMakeFiles/lion_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/lion_linalg.dir/stats.cpp.o"
  "CMakeFiles/lion_linalg.dir/stats.cpp.o.d"
  "liblion_linalg.a"
  "liblion_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
