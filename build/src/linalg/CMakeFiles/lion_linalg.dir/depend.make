# Empty dependencies file for lion_linalg.
# This may be replaced when dependencies are built.
