# Empty dependencies file for lion_signal.
# This may be replaced when dependencies are built.
