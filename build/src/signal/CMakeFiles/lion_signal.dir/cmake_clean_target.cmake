file(REMOVE_RECURSE
  "liblion_signal.a"
)
