
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/profile.cpp" "src/signal/CMakeFiles/lion_signal.dir/profile.cpp.o" "gcc" "src/signal/CMakeFiles/lion_signal.dir/profile.cpp.o.d"
  "/root/repo/src/signal/smooth.cpp" "src/signal/CMakeFiles/lion_signal.dir/smooth.cpp.o" "gcc" "src/signal/CMakeFiles/lion_signal.dir/smooth.cpp.o.d"
  "/root/repo/src/signal/stitch.cpp" "src/signal/CMakeFiles/lion_signal.dir/stitch.cpp.o" "gcc" "src/signal/CMakeFiles/lion_signal.dir/stitch.cpp.o.d"
  "/root/repo/src/signal/unwrap.cpp" "src/signal/CMakeFiles/lion_signal.dir/unwrap.cpp.o" "gcc" "src/signal/CMakeFiles/lion_signal.dir/unwrap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/lion_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
