file(REMOVE_RECURSE
  "CMakeFiles/lion_signal.dir/profile.cpp.o"
  "CMakeFiles/lion_signal.dir/profile.cpp.o.d"
  "CMakeFiles/lion_signal.dir/smooth.cpp.o"
  "CMakeFiles/lion_signal.dir/smooth.cpp.o.d"
  "CMakeFiles/lion_signal.dir/stitch.cpp.o"
  "CMakeFiles/lion_signal.dir/stitch.cpp.o.d"
  "CMakeFiles/lion_signal.dir/unwrap.cpp.o"
  "CMakeFiles/lion_signal.dir/unwrap.cpp.o.d"
  "liblion_signal.a"
  "liblion_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
