file(REMOVE_RECURSE
  "CMakeFiles/lion_rf.dir/antenna.cpp.o"
  "CMakeFiles/lion_rf.dir/antenna.cpp.o.d"
  "CMakeFiles/lion_rf.dir/channel.cpp.o"
  "CMakeFiles/lion_rf.dir/channel.cpp.o.d"
  "CMakeFiles/lion_rf.dir/phase_model.cpp.o"
  "CMakeFiles/lion_rf.dir/phase_model.cpp.o.d"
  "CMakeFiles/lion_rf.dir/tag.cpp.o"
  "CMakeFiles/lion_rf.dir/tag.cpp.o.d"
  "liblion_rf.a"
  "liblion_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
