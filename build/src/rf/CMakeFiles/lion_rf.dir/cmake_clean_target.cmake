file(REMOVE_RECURSE
  "liblion_rf.a"
)
