
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/antenna.cpp" "src/rf/CMakeFiles/lion_rf.dir/antenna.cpp.o" "gcc" "src/rf/CMakeFiles/lion_rf.dir/antenna.cpp.o.d"
  "/root/repo/src/rf/channel.cpp" "src/rf/CMakeFiles/lion_rf.dir/channel.cpp.o" "gcc" "src/rf/CMakeFiles/lion_rf.dir/channel.cpp.o.d"
  "/root/repo/src/rf/phase_model.cpp" "src/rf/CMakeFiles/lion_rf.dir/phase_model.cpp.o" "gcc" "src/rf/CMakeFiles/lion_rf.dir/phase_model.cpp.o.d"
  "/root/repo/src/rf/tag.cpp" "src/rf/CMakeFiles/lion_rf.dir/tag.cpp.o" "gcc" "src/rf/CMakeFiles/lion_rf.dir/tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
