# Empty compiler generated dependencies file for lion_rf.
# This may be replaced when dependencies are built.
