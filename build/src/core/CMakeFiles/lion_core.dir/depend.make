# Empty dependencies file for lion_core.
# This may be replaced when dependencies are built.
