file(REMOVE_RECURSE
  "liblion_core.a"
)
