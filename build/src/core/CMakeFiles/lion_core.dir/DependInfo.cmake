
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/lion_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/lion_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/frame.cpp" "src/core/CMakeFiles/lion_core.dir/frame.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/frame.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/core/CMakeFiles/lion_core.dir/localizer.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/localizer.cpp.o.d"
  "/root/repo/src/core/offset_graph.cpp" "src/core/CMakeFiles/lion_core.dir/offset_graph.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/offset_graph.cpp.o.d"
  "/root/repo/src/core/pairing.cpp" "src/core/CMakeFiles/lion_core.dir/pairing.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/pairing.cpp.o.d"
  "/root/repo/src/core/radical.cpp" "src/core/CMakeFiles/lion_core.dir/radical.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/radical.cpp.o.d"
  "/root/repo/src/core/tag_locator.cpp" "src/core/CMakeFiles/lion_core.dir/tag_locator.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/tag_locator.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/lion_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/lion_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/lion_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/lion_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lion_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
