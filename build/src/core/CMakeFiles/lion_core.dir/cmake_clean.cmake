file(REMOVE_RECURSE
  "CMakeFiles/lion_core.dir/adaptive.cpp.o"
  "CMakeFiles/lion_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/lion_core.dir/calibration.cpp.o"
  "CMakeFiles/lion_core.dir/calibration.cpp.o.d"
  "CMakeFiles/lion_core.dir/frame.cpp.o"
  "CMakeFiles/lion_core.dir/frame.cpp.o.d"
  "CMakeFiles/lion_core.dir/localizer.cpp.o"
  "CMakeFiles/lion_core.dir/localizer.cpp.o.d"
  "CMakeFiles/lion_core.dir/offset_graph.cpp.o"
  "CMakeFiles/lion_core.dir/offset_graph.cpp.o.d"
  "CMakeFiles/lion_core.dir/pairing.cpp.o"
  "CMakeFiles/lion_core.dir/pairing.cpp.o.d"
  "CMakeFiles/lion_core.dir/radical.cpp.o"
  "CMakeFiles/lion_core.dir/radical.cpp.o.d"
  "CMakeFiles/lion_core.dir/tag_locator.cpp.o"
  "CMakeFiles/lion_core.dir/tag_locator.cpp.o.d"
  "CMakeFiles/lion_core.dir/tracker.cpp.o"
  "CMakeFiles/lion_core.dir/tracker.cpp.o.d"
  "liblion_core.a"
  "liblion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
