// Hologram-based localization — the Tagoram DAH baseline (Sec. II-C, [2]).
//
// The surveillance area is cut into grid cells; each cell is scored by how
// well the *phase differences* it predicts match the measured ones, and the
// best cell wins. Accuracy scales with grid resolution and search volume,
// which is exactly the computation-cost weakness LION attacks: a 2D
// 1-2 m^2 hologram at 1 mm takes ~1 s, 3D far worse (Fig. 13b).
//
// Two variants are provided:
//  * locate_hologram             — moving tag scan, one antenna (the paper's
//                                  antenna-localization / DAH comparator);
//  * locate_tag_multi_antenna    — static tag, several antennas, pairwise
//                                  phase differences (the Fig. 20 case
//                                  study, where calibration matters most).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.hpp"
#include "rf/constants.hpp"
#include "signal/profile.hpp"

namespace lion::baseline {

using linalg::Vec3;

/// Search-volume and scoring configuration.
struct HologramConfig {
  Vec3 min_corner{};  ///< search box corner (inclusive)
  Vec3 max_corner{};  ///< opposite corner; equal z collapses to a 2D search
  double grid_size = 0.001;  ///< cell edge [m] (paper default 1 mm)
  double wavelength = rf::kDefaultWavelength;
  /// Differential *augmented* hologram: after the first pass, re-weight
  /// measurements by their agreement at the provisional peak and re-score
  /// (Tagoram's likelihood augmentation, Fig. 4b).
  bool augmented = true;
  /// Reference sample index for phase differences; SIZE_MAX = middle.
  std::size_t reference_index = static_cast<std::size_t>(-1);
};

/// Result of a hologram search.
struct HologramResult {
  Vec3 position{};              ///< best-likelihood cell center
  double peak_likelihood = 0.0; ///< normalized to [0, 1]
  std::size_t cells = 0;        ///< cells evaluated (cost proxy)
};

/// Score one candidate position against a scan profile (exposed so tests
/// can check hyperbola-shaped likelihood ridges, Fig. 4).
double hologram_likelihood(const signal::PhaseProfile& profile,
                           std::size_t reference_index, const Vec3& candidate,
                           double wavelength,
                           const std::vector<double>* weights = nullptr);

/// Locate a static target (the antenna) from a moving-tag scan profile.
/// Throws std::invalid_argument on an empty profile or a degenerate box.
HologramResult locate_hologram(const signal::PhaseProfile& profile,
                               const HologramConfig& config);

/// One antenna's reading of a static tag.
struct AntennaReading {
  Vec3 antenna_position{};  ///< (calibrated or physical) phase center
  double phase = 0.0;       ///< measured wrapped phase [rad]
  double offset = 0.0;      ///< calibrated hardware offset to subtract [rad]
};

/// Locate a static tag from >= 2 antennas via pairwise phase differences.
HologramResult locate_tag_multi_antenna(
    const std::vector<AntennaReading>& readings, const HologramConfig& config);

}  // namespace lion::baseline
