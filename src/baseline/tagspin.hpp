// Tagspin-style circular-scan localization baseline (Sec. VI, [7]).
//
// A tag spinning on a turntable of radius R emulates a circular antenna
// array. In the far field the unwrapped phase against the rotation angle is
// sinusoidal,
//
//   theta(alpha) ~= A - (4*pi*R/lambda) * cos(alpha - phi),
//
// so a linear fit in (1, cos alpha, sin alpha) yields the bearing phi of
// the target from the turntable center. The range is then recovered by a
// 1D golden-section search over the exact circular-scan phase model. The
// method is inherently tied to circular scans — the trajectory-shape
// limitation the paper contrasts LION against.
#pragma once

#include <cstddef>

#include "linalg/vec.hpp"
#include "rf/constants.hpp"
#include "signal/profile.hpp"

namespace lion::baseline {

using linalg::Vec3;

/// Configuration for the circular-scan solver.
struct TagspinConfig {
  double wavelength = rf::kDefaultWavelength;
  /// Range-search bracket [m] for the golden-section stage.
  double min_range = 0.1;
  double max_range = 5.0;
  std::size_t range_iterations = 60;
};

/// Result of the circular-scan solve.
struct TagspinResult {
  Vec3 position{};       ///< estimated target position (in the scan plane)
  double bearing = 0.0;  ///< angle of the target from the scan center [rad]
  double range = 0.0;    ///< distance from the scan center [m]
  double rms_residual = 0.0;
};

/// Locate a static target from a circular scan profile. The scan must be
/// (nearly) planar and circular; throws std::invalid_argument otherwise or
/// when fewer than 8 samples are available.
TagspinResult locate_tagspin(const signal::PhaseProfile& profile,
                             const TagspinConfig& config);

}  // namespace lion::baseline
