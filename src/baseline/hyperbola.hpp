// Hyperbola-based localization baseline (Sec. VI, [6, 14-19]).
//
// A pair of scan positions with a measured distance *difference* puts the
// target on one branch of a hyperbola (2D) / hyperboloid (3D). Unlike
// LION's radical lines, the intersection problem stays quadratic, so the
// standard approach is nonlinear least squares over the residuals
//
//   r_ij(p) = (|p - P_i| - |p - P_j|) - (dd_i - dd_j)
//
// solved with Gauss-Newton (with Levenberg damping for robustness). This is
// the "seconds to solve lots of quadratic equations" comparator.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pairing.hpp"
#include "linalg/vec.hpp"
#include "rf/constants.hpp"
#include "signal/profile.hpp"

namespace lion::baseline {

using linalg::Vec3;

/// Solver configuration.
struct HyperbolaConfig {
  double wavelength = rf::kDefaultWavelength;
  Vec3 initial_guess{};          ///< starting point for Gauss-Newton
  std::size_t max_iterations = 100;
  double tolerance = 1e-10;      ///< stop when the step is below this [m]
  bool planar = true;            ///< solve in 2D (z fixed to the guess's z)
  std::size_t reference_index = static_cast<std::size_t>(-1);  ///< middle
};

/// Result of the nonlinear solve.
struct HyperbolaResult {
  Vec3 position{};
  double rms_residual = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Locate the target from a scan profile and a pair set (same pair inputs
/// as LION, so head-to-head comparisons share the measurement set).
/// Throws std::invalid_argument on empty pairs or an out-of-range reference.
HyperbolaResult locate_hyperbola(const signal::PhaseProfile& profile,
                                 const std::vector<core::IndexPair>& pairs,
                                 const HyperbolaConfig& config);

}  // namespace lion::baseline
