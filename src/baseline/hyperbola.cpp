#include "baseline/hyperbola.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"
#include "rf/phase_model.hpp"

namespace lion::baseline {

HyperbolaResult locate_hyperbola(const signal::PhaseProfile& profile,
                                 const std::vector<core::IndexPair>& pairs,
                                 const HyperbolaConfig& config) {
  if (pairs.empty()) {
    throw std::invalid_argument("locate_hyperbola: no pairs");
  }
  const std::size_t ref =
      config.reference_index == static_cast<std::size_t>(-1)
          ? profile.size() / 2
          : config.reference_index;
  if (ref >= profile.size()) {
    throw std::invalid_argument("locate_hyperbola: reference out of range");
  }

  // Distance deltas from the unwrapped phases (Eq. 6).
  std::vector<double> dd(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    dd[i] = rf::phase_to_distance_delta(profile[i].phase - profile[ref].phase,
                                        config.wavelength);
  }

  const std::size_t dims = config.planar ? 2 : 3;
  Vec3 p = config.initial_guess;

  HyperbolaResult out;
  double lambda = 1e-6;  // Levenberg damping
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    linalg::Matrix jac(pairs.size(), dims);
    std::vector<double> residual(pairs.size());
    double ss = 0.0;
    for (std::size_t r = 0; r < pairs.size(); ++r) {
      const auto [i, j] = pairs[r];
      const Vec3 di = p - profile[i].position;
      const Vec3 dj = p - profile[j].position;
      const double ni = std::max(di.norm(), 1e-9);
      const double nj = std::max(dj.norm(), 1e-9);
      residual[r] = (ni - nj) - (dd[i] - dd[j]);
      ss += residual[r] * residual[r];
      for (std::size_t c = 0; c < dims; ++c) {
        jac(r, c) = di[c] / ni - dj[c] / nj;
      }
    }
    out.rms_residual = std::sqrt(ss / static_cast<double>(pairs.size()));
    out.iterations = iter;

    // Damped normal equations: (J^T J + lambda I) step = -J^T r.
    linalg::Matrix gram = jac.gram();
    for (std::size_t d = 0; d < dims; ++d) gram(d, d) += lambda;
    std::vector<double> rhs = jac.transpose_multiply(residual);
    for (double& v : rhs) v = -v;

    std::vector<double> step;
    try {
      step = linalg::solve_square(gram, rhs);
    } catch (const std::domain_error&) {
      lambda *= 10.0;
      continue;
    }

    double step_norm = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      p[d] += step[d];
      step_norm += step[d] * step[d];
    }
    step_norm = std::sqrt(step_norm);
    lambda = std::max(lambda * 0.5, 1e-12);
    if (step_norm < config.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.position = p;
  return out;
}

}  // namespace lion::baseline
