#include "baseline/tagspin.hpp"

#include <cmath>
#include <stdexcept>

#include "core/frame.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"
#include "rf/phase_model.hpp"

namespace lion::baseline {

TagspinResult locate_tagspin(const signal::PhaseProfile& profile,
                             const TagspinConfig& config) {
  if (profile.size() < 8) {
    throw std::invalid_argument("locate_tagspin: need at least 8 samples");
  }
  // The scan must span a plane: use the 2-axis frame of the positions.
  const core::TrajectoryFrame frame = core::analyze_frame(profile, 3);
  if (frame.rank != 2) {
    throw std::invalid_argument("locate_tagspin: scan is not planar");
  }

  // Verify circularity and recover per-sample rotation angle + radius.
  std::vector<double> angles(profile.size());
  std::vector<double> radii(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto q = frame.to_local(profile[i].position);
    angles[i] = std::atan2(q[1], q[0]);
    radii[i] = std::hypot(q[0], q[1]);
  }
  const double radius = linalg::mean(radii);
  if (radius <= 0.0 || linalg::stddev(radii) > 0.05 * radius) {
    throw std::invalid_argument("locate_tagspin: scan is not circular");
  }

  // Stage 1 — bearing from the sinusoid fit theta = a + b cos + c sin.
  linalg::Matrix design(profile.size(), 3);
  std::vector<double> target(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = std::cos(angles[i]);
    design(i, 2) = std::sin(angles[i]);
    target[i] = profile[i].phase;
  }
  const auto fit = linalg::solve_least_squares(design, target);
  const double bearing = std::atan2(-fit.x[2], -fit.x[1]);

  // Stage 2 — range via golden-section search on the exact model
  //   theta(alpha) = theta0 + (4 pi / lambda) * d(alpha),
  //   d(alpha) = sqrt(dc^2 + R^2 - 2 dc R cos(alpha - phi)),
  // scoring by the variance of (measured - predicted) (theta0 drops out).
  auto cost = [&](double dc) {
    std::vector<double> errs(profile.size());
    for (std::size_t i = 0; i < profile.size(); ++i) {
      const double d = std::sqrt(dc * dc + radius * radius -
                                 2.0 * dc * radius *
                                     std::cos(angles[i] - bearing));
      errs[i] = profile[i].phase - rf::distance_phase(d, config.wavelength);
    }
    return linalg::variance(errs);
  };

  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = config.min_range;
  double hi = config.max_range;
  double m1 = hi - gr * (hi - lo);
  double m2 = lo + gr * (hi - lo);
  double c1 = cost(m1);
  double c2 = cost(m2);
  for (std::size_t it = 0; it < config.range_iterations; ++it) {
    if (c1 < c2) {
      hi = m2;
      m2 = m1;
      c2 = c1;
      m1 = hi - gr * (hi - lo);
      c1 = cost(m1);
    } else {
      lo = m1;
      m1 = m2;
      c1 = c2;
      m2 = lo + gr * (hi - lo);
      c2 = cost(m2);
    }
  }
  const double range = 0.5 * (lo + hi);

  TagspinResult out;
  out.bearing = bearing;
  out.range = range;
  out.rms_residual = std::sqrt(cost(range));
  // Back to global coordinates: center + range * (cos, sin) in the frame.
  out.position = frame.from_local(
      {range * std::cos(bearing), range * std::sin(bearing)}, 0.0);
  return out;
}

}  // namespace lion::baseline
