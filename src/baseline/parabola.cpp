#include "baseline/parabola.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/frame.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"

namespace lion::baseline {

ParabolaResult locate_parabola(const signal::PhaseProfile& profile,
                               const ParabolaConfig& config) {
  if (profile.size() < 3) {
    throw std::invalid_argument("locate_parabola: need at least 3 samples");
  }
  const core::TrajectoryFrame frame = core::analyze_frame(profile, 2);
  if (frame.rank != 1) {
    throw std::invalid_argument(
        "locate_parabola: requires a straight-line scan");
  }

  // Quadratic fit of phase against the along-scan coordinate s.
  linalg::Matrix design(profile.size(), 3);
  std::vector<double> target(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double s = frame.to_local(profile[i].position)[0];
    design(i, 0) = s * s;
    design(i, 1) = s;
    design(i, 2) = 1.0;
    target[i] = profile[i].phase;
  }
  const auto fit = linalg::solve_least_squares(design, target);
  const double a = fit.x[0];
  const double b = fit.x[1];
  if (a <= 0.0) {
    throw std::invalid_argument(
        "locate_parabola: no phase valley in the scan window (target foot "
        "outside the scan, or phase decreasing throughout)");
  }

  ParabolaResult out;
  out.curvature = a;
  out.s0 = -b / (2.0 * a);
  out.depth = 2.0 * rf::kPi / (config.wavelength * a);

  // The parabolic approximation is only trustworthy when the scan actually
  // passes (near) the perpendicular foot; reject fits whose vertex lies far
  // outside the scan window.
  double s_min = frame.to_local(profile.front().position)[0];
  double s_max = s_min;
  for (const auto& p : profile) {
    const double s = frame.to_local(p.position)[0];
    s_min = std::min(s_min, s);
    s_max = std::max(s_max, s);
  }
  const double margin = 0.5 * (s_max - s_min);
  if (out.s0 < s_min - margin || out.s0 > s_max + margin) {
    throw std::invalid_argument(
        "locate_parabola: fitted vertex lies outside the scan window (the "
        "scan never passed the target's perpendicular foot)");
  }

  const Vec3 plus = frame.from_local({out.s0}, out.depth);
  const Vec3 minus = frame.from_local({out.s0}, -out.depth);
  out.position = linalg::squared_distance(plus, config.side_hint) <=
                         linalg::squared_distance(minus, config.side_hint)
                     ? plus
                     : minus;
  return out;
}

}  // namespace lion::baseline
