#include "baseline/hologram.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "rf/phase_model.hpp"

namespace lion::baseline {

namespace {

// Number of grid steps along one axis (at least 1).
std::size_t steps(double lo, double hi, double g) {
  if (hi < lo) throw std::invalid_argument("hologram: inverted search box");
  return static_cast<std::size_t>(std::floor((hi - lo) / g)) + 1;
}

}  // namespace

double hologram_likelihood(const signal::PhaseProfile& profile,
                           std::size_t reference_index, const Vec3& candidate,
                           double wavelength,
                           const std::vector<double>* weights) {
  const auto& ref = profile[reference_index];
  const double d_ref = linalg::distance(candidate, ref.position);
  double re = 0.0;
  double im = 0.0;
  double total_w = 0.0;
  for (std::size_t t = 0; t < profile.size(); ++t) {
    const double w = weights ? (*weights)[t] : 1.0;
    const double d_t = linalg::distance(candidate, profile[t].position);
    const double predicted =
        rf::distance_delta_to_phase(d_t - d_ref, wavelength);
    const double measured = profile[t].phase - ref.phase;
    const double err = measured - predicted;
    re += w * std::cos(err);
    im += w * std::sin(err);
    total_w += w;
  }
  if (total_w == 0.0) return 0.0;
  return std::sqrt(re * re + im * im) / total_w;
}

HologramResult locate_hologram(const signal::PhaseProfile& profile,
                               const HologramConfig& config) {
  if (profile.empty()) {
    throw std::invalid_argument("locate_hologram: empty profile");
  }
  const std::size_t ref =
      config.reference_index == static_cast<std::size_t>(-1)
          ? profile.size() / 2
          : config.reference_index;
  if (ref >= profile.size()) {
    throw std::invalid_argument("locate_hologram: reference out of range");
  }
  const double g = config.grid_size;
  if (g <= 0.0) {
    throw std::invalid_argument("locate_hologram: grid size must be positive");
  }
  const std::size_t nx = steps(config.min_corner[0], config.max_corner[0], g);
  const std::size_t ny = steps(config.min_corner[1], config.max_corner[1], g);
  const std::size_t nz = steps(config.min_corner[2], config.max_corner[2], g);

  auto scan = [&](const std::vector<double>* weights) {
    HologramResult best;
    best.peak_likelihood = -1.0;
    for (std::size_t ix = 0; ix < nx; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t iz = 0; iz < nz; ++iz) {
          const Vec3 cand{
              config.min_corner[0] + static_cast<double>(ix) * g,
              config.min_corner[1] + static_cast<double>(iy) * g,
              config.min_corner[2] + static_cast<double>(iz) * g};
          const double like = hologram_likelihood(profile, ref, cand,
                                                  config.wavelength, weights);
          ++best.cells;
          if (like > best.peak_likelihood) {
            best.peak_likelihood = like;
            best.position = cand;
          }
        }
      }
    }
    return best;
  };

  HologramResult first = scan(nullptr);
  if (!config.augmented) return first;

  // Augmentation: weight each measurement by its phase agreement at the
  // provisional peak, then re-score. Clean samples (mostly line-of-sight)
  // agree and gain weight; multipath-corrupted ones are suppressed.
  const auto& ref_point = profile[ref];
  const double d_ref = linalg::distance(first.position, ref_point.position);
  std::vector<double> weights(profile.size());
  for (std::size_t t = 0; t < profile.size(); ++t) {
    const double d_t = linalg::distance(first.position, profile[t].position);
    const double predicted =
        rf::distance_delta_to_phase(d_t - d_ref, config.wavelength);
    const double err = rf::wrap_phase_symmetric(
        (profile[t].phase - ref_point.phase) - predicted);
    weights[t] = std::exp(-(err * err));
  }
  HologramResult second = scan(&weights);
  second.cells += first.cells;
  return second;
}

HologramResult locate_tag_multi_antenna(
    const std::vector<AntennaReading>& readings,
    const HologramConfig& config) {
  if (readings.size() < 2) {
    throw std::invalid_argument(
        "locate_tag_multi_antenna: need at least two antennas");
  }
  const double g = config.grid_size;
  if (g <= 0.0) {
    throw std::invalid_argument(
        "locate_tag_multi_antenna: grid size must be positive");
  }
  const std::size_t nx = steps(config.min_corner[0], config.max_corner[0], g);
  const std::size_t ny = steps(config.min_corner[1], config.max_corner[1], g);
  const std::size_t nz = steps(config.min_corner[2], config.max_corner[2], g);

  HologramResult best;
  best.peak_likelihood = -1.0;
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const Vec3 cand{config.min_corner[0] + static_cast<double>(ix) * g,
                        config.min_corner[1] + static_cast<double>(iy) * g,
                        config.min_corner[2] + static_cast<double>(iz) * g};
        double re = 0.0;
        double im = 0.0;
        double n = 0.0;
        for (std::size_t a = 0; a < readings.size(); ++a) {
          for (std::size_t b = a + 1; b < readings.size(); ++b) {
            const double da =
                linalg::distance(cand, readings[a].antenna_position);
            const double db =
                linalg::distance(cand, readings[b].antenna_position);
            const double predicted =
                rf::distance_delta_to_phase(da - db, config.wavelength);
            const double measured = (readings[a].phase - readings[a].offset) -
                                    (readings[b].phase - readings[b].offset);
            const double err = measured - predicted;
            re += std::cos(err);
            im += std::sin(err);
            n += 1.0;
          }
        }
        const double like = n > 0.0 ? std::sqrt(re * re + im * im) / n : 0.0;
        ++best.cells;
        if (like > best.peak_likelihood) {
          best.peak_likelihood = like;
          best.position = cand;
        }
      }
    }
  }
  return best;
}

}  // namespace lion::baseline
