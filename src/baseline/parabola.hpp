// Parabola-fit localization baseline (Sec. VI, [8]).
//
// For a *straight* scan past the target, the unwrapped phase against the
// along-scan coordinate s is approximately parabolic near the perpendicular
// foot:
//
//   theta(s) ~= (4*pi/lambda) * (d0 + (s - s0)^2 / (2 d0))
//
// so a quadratic fit theta = a s^2 + b s + c yields the foot s0 = -b/(2a)
// and the perpendicular distance d0 = 2*pi / (lambda * a). The method is
// 2D-only and linear-scan-only — exactly the limitation the paper calls out
// — but it is fast and a useful comparator on conveyor-style scans.
#pragma once

#include "linalg/vec.hpp"
#include "rf/constants.hpp"
#include "signal/profile.hpp"

namespace lion::baseline {

using linalg::Vec3;

/// Configuration for the parabola fit.
struct ParabolaConfig {
  double wavelength = rf::kDefaultWavelength;
  /// A point on the side of the scan line where the target lies (the fit
  /// only yields the unsigned perpendicular distance).
  Vec3 side_hint{0.0, 1.0, 0.0};
};

/// Result of the parabola fit.
struct ParabolaResult {
  Vec3 position{};      ///< estimated target position (scan plane, z of scan)
  double s0 = 0.0;      ///< along-scan foot coordinate [m]
  double depth = 0.0;   ///< perpendicular distance d0 [m]
  double curvature = 0.0;  ///< fitted quadratic coefficient a
};

/// Fit on a straight-line scan profile. Throws std::invalid_argument when
/// the profile has fewer than 3 points, is not (nearly) collinear, or the
/// fitted curvature is non-positive (no phase valley in the scan window).
ParabolaResult locate_parabola(const signal::PhaseProfile& profile,
                               const ParabolaConfig& config);

}  // namespace lion::baseline
