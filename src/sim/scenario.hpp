// Scenario: a complete simulated testbed — antennas, tags, channel, reader —
// assembled with a fluent builder. Benches and examples use this instead of
// wiring the pieces by hand.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "rf/antenna.hpp"
#include "rf/channel.hpp"
#include "rf/rng.hpp"
#include "rf/tag.hpp"
#include "sim/environment.hpp"
#include "sim/reader.hpp"
#include "sim/trajectory.hpp"

namespace lion::sim {

/// A fully-wired simulated testbed.
class Scenario {
 public:
  /// Sweep `trajectory` with tag `tag_index` read by antenna
  /// `antenna_index`. Throws std::out_of_range for bad indices.
  std::vector<PhaseSample> sweep(std::size_t antenna_index,
                                 std::size_t tag_index,
                                 const Trajectory& trajectory);

  /// Static reads for offset studies.
  std::vector<PhaseSample> read_static(std::size_t antenna_index,
                                       std::size_t tag_index,
                                       const Vec3& tag_position,
                                       std::size_t count);

  const std::vector<rf::Antenna>& antennas() const { return antennas_; }
  const std::vector<rf::Tag>& tags() const { return tags_; }
  const rf::Channel& channel() const { return reader_.channel(); }
  const ReaderSim& reader() const { return reader_; }
  rf::Rng& rng() { return rng_; }

  class Builder;

 private:
  Scenario(std::vector<rf::Antenna> antennas, std::vector<rf::Tag> tags,
           ReaderSim reader, rf::Rng rng)
      : antennas_(std::move(antennas)),
        tags_(std::move(tags)),
        reader_(std::move(reader)),
        rng_(rng) {}

  std::vector<rf::Antenna> antennas_;
  std::vector<rf::Tag> tags_;
  ReaderSim reader_;
  rf::Rng rng_;
};

/// Fluent scenario builder.
///
///   auto s = Scenario::Builder{}
///                .environment(EnvironmentKind::kLabTypical)
///                .add_antenna({0.0, 0.8, 0.0})
///                .add_tag()
///                .seed(42)
///                .build();
class Scenario::Builder {
 public:
  /// Select an environment preset (default: free space).
  Builder& environment(EnvironmentKind kind) {
    kind_ = kind;
    return *this;
  }

  /// Override the channel entirely (wins over environment()).
  Builder& channel(rf::Channel c) {
    custom_channel_ = std::move(c);
    return *this;
  }

  /// Add an antenna at a physical center with auto-generated per-unit
  /// quirks (phase-center displacement, reader offset).
  Builder& add_antenna(const Vec3& physical_center) {
    antennas_.push_back(rf::make_antenna(
        physical_center, static_cast<std::uint32_t>(antennas_.size())));
    return *this;
  }

  /// Add a fully-specified antenna.
  Builder& add_antenna(rf::Antenna a) {
    antennas_.push_back(a);
    return *this;
  }

  /// Add a tag with auto-generated quirks.
  Builder& add_tag() {
    tags_.push_back(rf::make_tag(static_cast<std::uint32_t>(tags_.size())));
    return *this;
  }

  /// Add a fully-specified tag.
  Builder& add_tag(rf::Tag t) {
    tags_.push_back(t);
    return *this;
  }

  Builder& reader_config(ReaderConfig c) {
    reader_config_ = c;
    return *this;
  }

  Builder& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Build; throws std::invalid_argument when no antenna or no tag was
  /// added.
  Scenario build();

 private:
  EnvironmentKind kind_ = EnvironmentKind::kFreeSpace;
  std::optional<rf::Channel> custom_channel_;
  std::vector<rf::Antenna> antennas_;
  std::vector<rf::Tag> tags_;
  ReaderConfig reader_config_{};
  std::uint64_t seed_ = 0x51ED5EEDULL;
};

}  // namespace lion::sim
