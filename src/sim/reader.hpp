// Reader simulator: turns (antenna, tag, trajectory, channel) into the
// timed phase-sample stream an LLRP reader would deliver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "rf/constants.hpp"

#include "rf/antenna.hpp"
#include "rf/channel.hpp"
#include "rf/rng.hpp"
#include "rf/tag.hpp"
#include "sim/trajectory.hpp"

namespace lion::sim {

/// One timed read as delivered by the reader.
struct PhaseSample {
  double t = 0.0;        ///< read timestamp [s]
  Vec3 position{};       ///< commanded tag position at t (known trajectory)
  double phase = 0.0;    ///< reported wrapped phase [0, 2*pi)
  double rssi_dbm = 0.0; ///< reported RSSI
  std::uint32_t channel = 0;  ///< carrier channel index (0 when not hopping)
};

/// Reader behaviour knobs.
struct ReaderConfig {
  double read_rate_hz = 120.0;    ///< nominal inventory rate (paper: >100 Hz)
  double timing_jitter_s = 0.0;   ///< uniform +/- jitter on read instants
  double position_jitter_m = 0.0; ///< ruler error on the commanded position
  double miss_probability = 0.0;  ///< random read misses (collisions etc.)

  /// Frequency hopping: when set, the reader cycles round-robin through
  /// this plan's channels, dwelling `hop_dwell_s` on each (FCC requires
  /// <= 0.4 s). The paper's China-band reader sits on one channel — leave
  /// unset to reproduce that. Hopped streams must be split per channel
  /// before unwrapping (signal::split_by_channel).
  std::optional<rf::ChannelPlan> hopping;
  double hop_dwell_s = 0.2;
};

/// Simulates a reader interrogating one tag moved along a trajectory.
class ReaderSim {
 public:
  ReaderSim(rf::Channel channel, ReaderConfig config)
      : channel_(std::move(channel)), config_(config) {}

  /// Sweep the whole trajectory, producing a chronological sample stream.
  /// Misses (tag unpowered or random collision) are simply absent samples.
  std::vector<PhaseSample> sweep(const rf::Antenna& antenna,
                                 const rf::Tag& tag,
                                 const Trajectory& trajectory,
                                 rf::Rng& rng) const;

  /// Collect `count` reads of a static tag (for Fig. 3-style offset studies).
  std::vector<PhaseSample> read_static(const rf::Antenna& antenna,
                                       const rf::Tag& tag,
                                       const Vec3& tag_position,
                                       std::size_t count, rf::Rng& rng) const;

  const rf::Channel& channel() const { return channel_; }
  const ReaderConfig& config() const { return config_; }

 private:
  rf::Channel channel_;
  ReaderConfig config_;
};

}  // namespace lion::sim
