#include "sim/reader.hpp"

#include <algorithm>
#include <cmath>

namespace lion::sim {

std::vector<PhaseSample> ReaderSim::sweep(const rf::Antenna& antenna,
                                          const rf::Tag& tag,
                                          const Trajectory& trajectory,
                                          rf::Rng& rng) const {
  std::vector<PhaseSample> out;
  // A non-positive rate would never advance the loop; an (almost-)certain
  // miss yields the empty stream downstream must already cope with.
  if (!(config_.read_rate_hz > 0.0)) return out;
  if (config_.miss_probability >= 1.0) return out;
  const double dt = 1.0 / config_.read_rate_hz;
  const double total = trajectory.duration();
  out.reserve(static_cast<std::size_t>(total / dt) + 1);

  for (double t = 0.0; t <= total; t += dt) {
    double read_t = t;
    if (config_.timing_jitter_s > 0.0) {
      read_t += rng.uniform(-config_.timing_jitter_s, config_.timing_jitter_s);
      read_t = std::clamp(read_t, 0.0, total);
    }
    if (config_.miss_probability > 0.0 &&
        rng.bernoulli(config_.miss_probability)) {
      continue;
    }
    const Vec3 true_pos = trajectory.position(read_t);

    // Frequency hopping: round-robin channel per dwell window.
    std::uint32_t chan = 0;
    double wavelength = channel_.wavelength();
    if (config_.hopping) {
      const auto count = config_.hopping->count;
      chan = static_cast<std::uint32_t>(
          static_cast<std::size_t>(read_t / config_.hop_dwell_s) % count);
      wavelength = rf::wavelength(config_.hopping->channel_hz(chan));
    }
    const auto obs =
        channel_.read_at(antenna, tag, true_pos, rng, wavelength);
    if (!obs) continue;  // tag not powered at this position

    PhaseSample s;
    s.t = read_t;
    s.channel = chan;
    s.position = true_pos;
    if (config_.position_jitter_m > 0.0) {
      for (std::size_t i = 0; i < 3; ++i) {
        s.position[i] += rng.gaussian(config_.position_jitter_m);
      }
    }
    s.phase = obs->phase;
    s.rssi_dbm = obs->rssi_dbm;
    out.push_back(s);
  }
  return out;
}

std::vector<PhaseSample> ReaderSim::read_static(const rf::Antenna& antenna,
                                                const rf::Tag& tag,
                                                const Vec3& tag_position,
                                                std::size_t count,
                                                rf::Rng& rng) const {
  std::vector<PhaseSample> out;
  out.reserve(count);
  const double dt = 1.0 / config_.read_rate_hz;
  for (std::size_t i = 0; i < count; ++i) {
    const auto obs = channel_.read(antenna, tag, tag_position, rng);
    if (!obs) continue;
    PhaseSample s;
    s.t = static_cast<double>(i) * dt;
    s.position = tag_position;
    s.phase = obs->phase;
    s.rssi_dbm = obs->rssi_dbm;
    out.push_back(s);
  }
  return out;
}

}  // namespace lion::sim
