#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rf/phase_model.hpp"

namespace lion::sim {

namespace {

double clamp01(double severity) { return std::clamp(severity, 0.0, 1.0); }

// Draw a heavy-tailed (standard Cauchy, clamped) deviate: mostly O(1),
// occasionally an order of magnitude larger — the tail OLS cannot absorb.
double cauchy(rf::Rng& rng, double scale) {
  const double u = rng.uniform(-1.45, 1.45);  // avoid the tan() poles
  return std::clamp(scale * std::tan(u), -30.0, 30.0);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBurstDropout:
      return "burst_dropout";
    case FaultKind::kCycleSlip:
      return "cycle_slip";
    case FaultKind::kMultipathSpike:
      return "multipath_spike";
    case FaultKind::kOffsetShift:
      return "offset_shift";
    case FaultKind::kTimestampDisorder:
      return "timestamp_disorder";
    case FaultKind::kGarbageReads:
      return "garbage_reads";
  }
  return "unknown";
}

std::vector<FaultKind> all_fault_kinds() {
  return {FaultKind::kBurstDropout,      FaultKind::kCycleSlip,
          FaultKind::kMultipathSpike,    FaultKind::kOffsetShift,
          FaultKind::kTimestampDisorder, FaultKind::kGarbageReads};
}

std::vector<PhaseSample> inject_burst_dropout(std::vector<PhaseSample> samples,
                                              double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  const std::size_t n = samples.size();
  if (severity <= 0.0 || n == 0) return samples;

  const std::size_t bursts =
      std::max<std::size_t>(1, static_cast<std::size_t>(severity * 4.0));
  const std::size_t drop_total = static_cast<std::size_t>(
      severity * static_cast<double>(n));
  const std::size_t burst_len = std::max<std::size_t>(1, drop_total / bursts);

  std::vector<char> keep(n, 1);
  for (std::size_t b = 0; b < bursts; ++b) {
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
    for (std::size_t i = start; i < std::min(n, start + burst_len); ++i) {
      keep[i] = 0;
    }
  }
  std::vector<PhaseSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(samples[i]);
  }
  return out;
}

std::vector<PhaseSample> inject_cycle_slips(std::vector<PhaseSample> samples,
                                            double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  const std::size_t n = samples.size();
  if (severity <= 0.0 || n == 0) return samples;

  const std::size_t slips =
      std::max<std::size_t>(1, static_cast<std::size_t>(severity * 8.0));
  for (std::size_t s = 0; s < slips; ++s) {
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
    const double jump = rng.bernoulli(0.5) ? rf::kPi : -rf::kPi;
    for (std::size_t i = at; i < n; ++i) {
      samples[i].phase = rf::wrap_phase(samples[i].phase + jump);
    }
  }
  return samples;
}

std::vector<PhaseSample> inject_multipath_spikes(
    std::vector<PhaseSample> samples, double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  const std::size_t n = samples.size();
  if (severity <= 0.0 || n == 0) return samples;

  const std::size_t affect = static_cast<std::size_t>(
      severity * static_cast<double>(n));
  const std::size_t burst_len =
      std::max<std::size_t>(3, n / 50);
  const std::size_t bursts = std::max<std::size_t>(1, affect / burst_len);

  for (std::size_t b = 0; b < bursts; ++b) {
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
    // Coherent in-burst bias: one heavy-tailed draw per hot zone, as if a
    // single reflector alignment dominated the whole burst.
    const double bias = cauchy(rng, 1.5);
    for (std::size_t i = start; i < std::min(n, start + burst_len); ++i) {
      samples[i].phase =
          rf::wrap_phase(samples[i].phase + bias + rng.gaussian(0.1));
    }
  }
  return samples;
}

std::vector<PhaseSample> inject_offset_shift(std::vector<PhaseSample> samples,
                                             double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  const std::size_t n = samples.size();
  if (severity <= 0.0 || n == 0) return samples;

  const std::size_t at = static_cast<std::size_t>(
      rng.uniform(0.25, 0.75) * static_cast<double>(n));
  const double offset = (rng.bernoulli(0.5) ? 1.0 : -1.0) * severity * rf::kPi;
  for (std::size_t i = at; i < n; ++i) {
    samples[i].phase = rf::wrap_phase(samples[i].phase + offset);
  }
  return samples;
}

std::vector<PhaseSample> inject_timestamp_disorder(
    std::vector<PhaseSample> samples, double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  const std::size_t n = samples.size();
  if (severity <= 0.0 || n < 2) return samples;

  // Swap neighbouring reads.
  const std::size_t swaps = static_cast<std::size_t>(
      0.5 * severity * static_cast<double>(n));
  for (std::size_t s = 0; s < swaps; ++s) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n - 2)));
    std::swap(samples[i], samples[i + 1]);
  }
  // Duplicate reads (same timestamp re-delivered by the reader).
  const std::size_t dups = static_cast<std::size_t>(
      0.5 * severity * static_cast<double>(n));
  for (std::size_t d = 0; d < dups; ++d) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(samples.size() - 1)));
    samples.insert(samples.begin() + static_cast<std::ptrdiff_t>(i),
                   samples[i]);
  }
  return samples;
}

std::vector<PhaseSample> inject_garbage_reads(std::vector<PhaseSample> samples,
                                              double severity, rf::Rng& rng) {
  severity = clamp01(severity);
  if (severity <= 0.0) return samples;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (auto& s : samples) {
    if (!rng.bernoulli(severity)) continue;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        s.phase = nan;
        break;
      case 1:
        s.position[static_cast<std::size_t>(rng.uniform_int(0, 2))] = nan;
        break;
      case 2:
        s.phase = rng.uniform(1.0e5, 1.0e6);  // absurd but finite
        break;
      default:
        s.rssi_dbm = -1.0e9;
        s.phase = nan;
        break;
    }
  }
  return samples;
}

std::vector<PhaseSample> inject_fault(std::vector<PhaseSample> samples,
                                      const FaultSpec& spec, rf::Rng& rng) {
  switch (spec.kind) {
    case FaultKind::kBurstDropout:
      return inject_burst_dropout(std::move(samples), spec.severity, rng);
    case FaultKind::kCycleSlip:
      return inject_cycle_slips(std::move(samples), spec.severity, rng);
    case FaultKind::kMultipathSpike:
      return inject_multipath_spikes(std::move(samples), spec.severity, rng);
    case FaultKind::kOffsetShift:
      return inject_offset_shift(std::move(samples), spec.severity, rng);
    case FaultKind::kTimestampDisorder:
      return inject_timestamp_disorder(std::move(samples), spec.severity, rng);
    case FaultKind::kGarbageReads:
      return inject_garbage_reads(std::move(samples), spec.severity, rng);
  }
  return samples;
}

std::vector<PhaseSample> inject_faults(std::vector<PhaseSample> samples,
                                       const std::vector<FaultSpec>& plan,
                                       rf::Rng& rng) {
  for (const auto& spec : plan) {
    samples = inject_fault(std::move(samples), spec, rng);
  }
  return samples;
}

}  // namespace lion::sim
