// Fault injectors: seedable, composable stream corruptions that turn a
// clean simulated read stream into what field deployments actually deliver.
//
// Each injector models one failure mode observed on real RFID testbeds:
//
//  * burst dropout       — tag shadowed by a person/forklift: contiguous
//                          time windows lose every read;
//  * cycle slip          — the reader's phase PLL slips a half cycle, so
//                          every subsequent read is rotated by ~pi;
//  * multipath spike     — a reflector sweeps through alignment and a
//                          contiguous burst of reads picks up a coherent,
//                          heavy-tailed phase bias;
//  * offset shift        — a cable or antenna re-seat mid-scan shifts the
//                          hardware offset for the rest of the stream;
//  * timestamp disorder  — LLRP event reordering / retransmission:
//                          neighbouring reads swap or duplicate;
//  * garbage reads       — decode errors: NaN or wildly out-of-range
//                          phase / position / RSSI fields.
//
// Injectors take the stream by value and return the corrupted copy; all
// randomness comes from the caller's Rng so experiments are reproducible.
// `severity` is clamped to [0, 1]; 0 is always the identity.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/rng.hpp"
#include "sim/reader.hpp"

namespace lion::sim {

/// One failure mode.
enum class FaultKind {
  kBurstDropout,
  kCycleSlip,
  kMultipathSpike,
  kOffsetShift,
  kTimestampDisorder,
  kGarbageReads,
};

/// Short name for bench / report output.
const char* fault_kind_name(FaultKind kind);

/// Every fault kind, for sweeps.
std::vector<FaultKind> all_fault_kinds();

/// One injector invocation: which fault, how hard.
struct FaultSpec {
  FaultKind kind = FaultKind::kGarbageReads;
  /// Fraction of the stream affected (dropout/spike/disorder/garbage) or
  /// the relative magnitude of the induced shift (cycle slip count, offset
  /// size). Clamped to [0, 1].
  double severity = 0.1;
};

/// Drop `severity` of the stream in a few contiguous bursts (shadowing).
std::vector<PhaseSample> inject_burst_dropout(std::vector<PhaseSample> samples,
                                              double severity, rf::Rng& rng);

/// Rotate everything after each of ~8*severity random slip points by an
/// extra +/- pi (a reader half-cycle slip); phases stay wrapped.
std::vector<PhaseSample> inject_cycle_slips(std::vector<PhaseSample> samples,
                                            double severity, rf::Rng& rng);

/// Bias `severity` of the stream, in contiguous bursts, by a coherent
/// heavy-tailed (Cauchy-like) phase offset plus small in-burst jitter —
/// the multipath hot-zone regime robust solvers must reject.
std::vector<PhaseSample> inject_multipath_spikes(
    std::vector<PhaseSample> samples, double severity, rf::Rng& rng);

/// Add a constant offset of severity*pi radians to every read after a
/// random point in the middle half of the stream (cable/antenna re-seat).
std::vector<PhaseSample> inject_offset_shift(std::vector<PhaseSample> samples,
                                             double severity, rf::Rng& rng);

/// Swap `severity`/2 of neighbouring reads and duplicate another
/// `severity`/2 (same timestamp re-delivered), modelling LLRP event
/// reordering. The result is *not* time-sorted.
std::vector<PhaseSample> inject_timestamp_disorder(
    std::vector<PhaseSample> samples, double severity, rf::Rng& rng);

/// Replace fields of `severity` of the reads with garbage: NaN phase,
/// NaN position, absurd phase values, or saturated RSSI.
std::vector<PhaseSample> inject_garbage_reads(std::vector<PhaseSample> samples,
                                              double severity, rf::Rng& rng);

/// Apply one fault spec.
std::vector<PhaseSample> inject_fault(std::vector<PhaseSample> samples,
                                      const FaultSpec& spec, rf::Rng& rng);

/// Apply a plan of faults in order (composable: e.g. dropout + spikes).
std::vector<PhaseSample> inject_faults(std::vector<PhaseSample> samples,
                                       const std::vector<FaultSpec>& plan,
                                       rf::Rng& rng);

}  // namespace lion::sim
