// Environment presets: reflector layouts and noise levels that mimic the
// paper's lab (Fig. 12) at different severities.
#pragma once

#include <vector>

#include "rf/channel.hpp"

namespace lion::sim {

/// Noise/multipath severity for a scenario.
enum class EnvironmentKind {
  kFreeSpace,   ///< no reflectors, baseline N(0, 0.1) phase noise
  kLabClean,    ///< floor reflection only, light noise
  kLabTypical,  ///< floor + one side wall, the default evaluation setting
  kLabHarsh,    ///< floor + two walls + metal shelf, heavy noise
};

/// Build the channel for a preset. The coordinate convention matches the
/// paper's rig: tag trajectory near the origin in the z=0 plane, antenna at
/// positive y ("depth" axis), height along z, floor at z = -1 m (the rig
/// sits at 1 m height, Sec. V-A).
rf::Channel make_channel(EnvironmentKind kind);

/// The reflector set of a preset, exposed for tests and custom channels.
std::vector<rf::Reflector> make_reflectors(EnvironmentKind kind);

/// The noise model of a preset.
rf::NoiseModel make_noise(EnvironmentKind kind);

/// Human-readable preset name for bench output.
const char* environment_name(EnvironmentKind kind);

}  // namespace lion::sim
