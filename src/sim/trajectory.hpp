// Tag trajectories: the known paths a tag is moved along during
// calibration scanning (motorized slide, turntable, multi-line rigs).
#pragma once

#include <memory>
#include <vector>

#include "linalg/vec.hpp"

namespace lion::sim {

using linalg::Vec3;

/// A continuous, known tag path parameterized by time.
class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// Tag position at time t (seconds), t in [0, duration()].
  virtual Vec3 position(double t) const = 0;

  /// Total traversal time [s].
  virtual double duration() const = 0;
};

/// Straight-line constant-speed segment — the paper's motorized sliding
/// track (Sec. V-A: 2.5 m range at 10 cm/s).
class LinearTrajectory final : public Trajectory {
 public:
  /// Throws std::invalid_argument when speed <= 0 or start == end.
  LinearTrajectory(const Vec3& start, const Vec3& end, double speed_mps);

  Vec3 position(double t) const override;
  double duration() const override { return duration_; }

  const Vec3& start() const { return start_; }
  const Vec3& end() const { return end_; }
  double speed() const { return speed_; }

 private:
  Vec3 start_;
  Vec3 end_;
  double speed_;
  double duration_;
};

/// Constant-angular-speed circle — the paper's turntable rig (Fig. 21).
/// The circle lies in the plane through `center` orthogonal to `normal`.
class CircularTrajectory final : public Trajectory {
 public:
  /// `turns` full revolutions starting at `start_angle` (radians measured
  /// in the plane). Throws std::invalid_argument on non-positive radius,
  /// angular speed or turns, or a zero normal.
  CircularTrajectory(const Vec3& center, double radius, const Vec3& normal,
                     double angular_speed_rps, double turns = 1.0,
                     double start_angle = 0.0);

  Vec3 position(double t) const override;
  double duration() const override { return duration_; }

  const Vec3& center() const { return center_; }
  double radius() const { return radius_; }

 private:
  Vec3 center_;
  double radius_;
  Vec3 u_;  // in-plane basis
  Vec3 v_;
  double angular_speed_;
  double start_angle_;
  double duration_;
};

/// A chain of straight segments traversed at constant speed, with an
/// optional dwell (pause) at interior joints. Models the paper's Fig. 11
/// rig where a tag moves along L1, hops to L2, then to L3: when
/// `include_transits` is true the connecting moves are part of the path, so
/// the phase stream stays continuous and unwrappable across lines.
class PiecewiseLinearTrajectory final : public Trajectory {
 public:
  /// Throws std::invalid_argument with fewer than two waypoints,
  /// non-positive speed, or zero-length total path.
  PiecewiseLinearTrajectory(std::vector<Vec3> waypoints, double speed_mps);

  Vec3 position(double t) const override;
  double duration() const override { return total_time_; }

  const std::vector<Vec3>& waypoints() const { return waypoints_; }

  /// Index of the segment active at time t (clamped at the ends).
  std::size_t segment_index(double t) const;

 private:
  std::vector<Vec3> waypoints_;
  std::vector<double> cumulative_time_;  // arrival time at each waypoint
  double speed_;
  double total_time_;
};

/// The paper's Fig. 11 three-parallel-line calibration rig.
///
/// L1 runs along the x-axis at (y=0, z=0); L2 is L1 shifted by +z0 (same
/// xy-plane... actually xz: above L1); L3 is L1 shifted by -y0 (behind L1).
/// The tag traverses L1, transits to L2, traverses it, transits to L3 and
/// traverses it, producing one continuous phase stream.
struct ThreeLineRig {
  double x_min = -0.5;  ///< scan start along x [m]
  double x_max = 0.5;   ///< scan end along x [m]
  double y0 = 0.2;      ///< spacing of L3 behind L1 [m]
  double z0 = 0.2;      ///< spacing of L2 above L1 [m]
  double speed = 0.1;   ///< tag speed [m/s] (paper: 10 cm/s)

  /// Build the continuous trajectory L1 -> L2 -> L3 (with transits).
  PiecewiseLinearTrajectory build() const;

  /// Line origins for pairing: position on line k (0=L1, 1=L2, 2=L3) at x.
  Vec3 point_on_line(int line, double x) const;
};

}  // namespace lion::sim
