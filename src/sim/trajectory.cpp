#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rf/constants.hpp"

namespace lion::sim {

// --------------------------------------------------------- LinearTrajectory

LinearTrajectory::LinearTrajectory(const Vec3& start, const Vec3& end,
                                   double speed_mps)
    : start_(start), end_(end), speed_(speed_mps) {
  if (speed_mps <= 0.0) {
    throw std::invalid_argument("LinearTrajectory: speed must be positive");
  }
  const double length = linalg::distance(start, end);
  if (length == 0.0) {
    throw std::invalid_argument("LinearTrajectory: zero-length segment");
  }
  duration_ = length / speed_mps;
}

Vec3 LinearTrajectory::position(double t) const {
  const double u = std::clamp(t / duration_, 0.0, 1.0);
  return start_ + u * (end_ - start_);
}

// ------------------------------------------------------- CircularTrajectory

CircularTrajectory::CircularTrajectory(const Vec3& center, double radius,
                                       const Vec3& normal,
                                       double angular_speed_rps, double turns,
                                       double start_angle)
    : center_(center),
      radius_(radius),
      angular_speed_(angular_speed_rps),
      start_angle_(start_angle) {
  if (radius <= 0.0) {
    throw std::invalid_argument("CircularTrajectory: radius must be positive");
  }
  if (angular_speed_rps <= 0.0 || turns <= 0.0) {
    throw std::invalid_argument(
        "CircularTrajectory: angular speed and turns must be positive");
  }
  if (normal.norm() == 0.0) {
    throw std::invalid_argument("CircularTrajectory: zero normal");
  }
  // Build an orthonormal in-plane basis (u, v).
  const Vec3 n = normal.normalized();
  Vec3 seed = std::abs(n[0]) < 0.9 ? Vec3{1.0, 0.0, 0.0} : Vec3{0.0, 1.0, 0.0};
  u_ = cross(n, seed).normalized();
  v_ = cross(n, u_);
  duration_ = turns * rf::kTwoPi / angular_speed_rps;
}

Vec3 CircularTrajectory::position(double t) const {
  const double tt = std::clamp(t, 0.0, duration_);
  const double a = start_angle_ + angular_speed_ * tt;
  return center_ + radius_ * (std::cos(a) * u_ + std::sin(a) * v_);
}

// ----------------------------------------------- PiecewiseLinearTrajectory

PiecewiseLinearTrajectory::PiecewiseLinearTrajectory(
    std::vector<Vec3> waypoints, double speed_mps)
    : waypoints_(std::move(waypoints)), speed_(speed_mps) {
  if (waypoints_.size() < 2) {
    throw std::invalid_argument(
        "PiecewiseLinearTrajectory: need at least two waypoints");
  }
  if (speed_mps <= 0.0) {
    throw std::invalid_argument(
        "PiecewiseLinearTrajectory: speed must be positive");
  }
  cumulative_time_.resize(waypoints_.size(), 0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const double len = linalg::distance(waypoints_[i - 1], waypoints_[i]);
    cumulative_time_[i] = cumulative_time_[i - 1] + len / speed_mps;
  }
  total_time_ = cumulative_time_.back();
  if (total_time_ == 0.0) {
    throw std::invalid_argument(
        "PiecewiseLinearTrajectory: zero-length path");
  }
}

std::size_t PiecewiseLinearTrajectory::segment_index(double t) const {
  const double tt = std::clamp(t, 0.0, total_time_);
  const auto it = std::upper_bound(cumulative_time_.begin(),
                                   cumulative_time_.end(), tt);
  const auto idx = static_cast<std::size_t>(
      std::distance(cumulative_time_.begin(), it));
  // idx is the first waypoint with arrival time > tt; segment is idx-1.
  return std::min(idx == 0 ? 0 : idx - 1, waypoints_.size() - 2);
}

Vec3 PiecewiseLinearTrajectory::position(double t) const {
  const double tt = std::clamp(t, 0.0, total_time_);
  const std::size_t s = segment_index(tt);
  const double t0 = cumulative_time_[s];
  const double t1 = cumulative_time_[s + 1];
  const double u = t1 > t0 ? (tt - t0) / (t1 - t0) : 0.0;
  return waypoints_[s] + u * (waypoints_[s + 1] - waypoints_[s]);
}

// ----------------------------------------------------------- ThreeLineRig

PiecewiseLinearTrajectory ThreeLineRig::build() const {
  if (x_max <= x_min) {
    throw std::invalid_argument("ThreeLineRig: x_max must exceed x_min");
  }
  // L1 left-to-right, transit up to L2, right-to-left, transit to L3,
  // left-to-right. Transits are short so the phase stream stays continuous.
  const std::vector<Vec3> waypoints{
      point_on_line(0, x_min), point_on_line(0, x_max),  // L1
      point_on_line(1, x_max), point_on_line(1, x_min),  // L2 (reverse)
      point_on_line(2, x_min), point_on_line(2, x_max),  // L3
  };
  return PiecewiseLinearTrajectory(waypoints, speed);
}

Vec3 ThreeLineRig::point_on_line(int line, double x) const {
  switch (line) {
    case 0:
      return Vec3{x, 0.0, 0.0};
    case 1:
      return Vec3{x, 0.0, z0};
    case 2:
      return Vec3{x, -y0, 0.0};
    default:
      throw std::invalid_argument("ThreeLineRig: line must be 0, 1 or 2");
  }
}

}  // namespace lion::sim
