#include "sim/scenario.hpp"

namespace lion::sim {

std::vector<PhaseSample> Scenario::sweep(std::size_t antenna_index,
                                         std::size_t tag_index,
                                         const Trajectory& trajectory) {
  return reader_.sweep(antennas_.at(antenna_index), tags_.at(tag_index),
                       trajectory, rng_);
}

std::vector<PhaseSample> Scenario::read_static(std::size_t antenna_index,
                                               std::size_t tag_index,
                                               const Vec3& tag_position,
                                               std::size_t count) {
  return reader_.read_static(antennas_.at(antenna_index), tags_.at(tag_index),
                             tag_position, count, rng_);
}

Scenario Scenario::Builder::build() {
  if (antennas_.empty()) {
    throw std::invalid_argument("Scenario: at least one antenna required");
  }
  if (tags_.empty()) {
    throw std::invalid_argument("Scenario: at least one tag required");
  }
  rf::Channel ch =
      custom_channel_ ? std::move(*custom_channel_) : make_channel(kind_);
  return Scenario(std::move(antennas_), std::move(tags_),
                  ReaderSim(std::move(ch), reader_config_), rf::Rng(seed_));
}

}  // namespace lion::sim
