#include "sim/environment.hpp"

#include <stdexcept>

namespace lion::sim {

using rf::NoiseModel;
using rf::Reflector;

std::vector<Reflector> make_reflectors(EnvironmentKind kind) {
  // Floor 1 m below the rig plane (the paper mounts everything at 1 m).
  // The rig sits 1 m above a carpeted lab floor: a weak specular bounce.
  const Reflector floor{
      .point = {0.0, 0.0, -1.0}, .normal = {0.0, 0.0, 1.0},
      .coefficient = 0.12, .phase_flip = true};
  // Side wall 2.5 m off to +x.
  const Reflector side_wall{
      .point = {2.5, 0.0, 0.0}, .normal = {-1.0, 0.0, 0.0},
      .coefficient = 0.2, .phase_flip = true};
  // Back wall 3 m behind the tag plane (opposite the antenna).
  const Reflector back_wall{
      .point = {0.0, -3.0, 0.0}, .normal = {0.0, 1.0, 0.0},
      .coefficient = 0.2, .phase_flip = true};
  // Metal shelf close to the rig: strong reflector.
  const Reflector shelf{
      .point = {-1.2, 0.5, 0.0}, .normal = {1.0, 0.0, 0.0},
      .coefficient = 0.45, .phase_flip = true};

  switch (kind) {
    case EnvironmentKind::kFreeSpace:
      return {};
    case EnvironmentKind::kLabClean:
      return {floor};
    case EnvironmentKind::kLabTypical:
      return {floor, side_wall};
    case EnvironmentKind::kLabHarsh:
      return {floor, side_wall, back_wall, shelf};
  }
  throw std::invalid_argument("make_reflectors: unknown environment");
}

NoiseModel make_noise(EnvironmentKind kind) {
  NoiseModel n;
  switch (kind) {
    case EnvironmentKind::kFreeSpace:
      n.phase_sigma = 0.1;  // the paper's simulation default N(0, 0.1)
      n.off_beam_gain = 0.0;
      break;
    case EnvironmentKind::kLabClean:
      n.phase_sigma = 0.06;
      n.off_beam_gain = 2.0;
      break;
    case EnvironmentKind::kLabTypical:
      n.phase_sigma = 0.1;
      n.off_beam_gain = 3.0;
      break;
    case EnvironmentKind::kLabHarsh:
      n.phase_sigma = 0.18;
      n.off_beam_gain = 4.0;
      break;
  }
  return n;
}

rf::Channel make_channel(EnvironmentKind kind) {
  return rf::Channel(make_noise(kind), make_reflectors(kind));
}

const char* environment_name(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::kFreeSpace:
      return "free-space";
    case EnvironmentKind::kLabClean:
      return "lab-clean";
    case EnvironmentKind::kLabTypical:
      return "lab-typical";
    case EnvironmentKind::kLabHarsh:
      return "lab-harsh";
  }
  return "unknown";
}

}  // namespace lion::sim
