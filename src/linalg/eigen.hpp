// Symmetric eigendecomposition (cyclic Jacobi).
//
// Used by the localizers to find the affine rank and principal frame of a
// scan trajectory: eigenvectors of the position covariance give the
// directions the tag actually moved in, and near-zero eigenvalues flag the
// lower-dimension cases of Sec. III-C.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace lion::linalg {

/// Result of a symmetric eigendecomposition.
struct EigenDecomposition {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// Column k of this matrix is the eigenvector for values[k].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// Only the lower triangle is read. Throws std::invalid_argument for
/// non-square input; accuracy ~1e-12 relative for the small (<=4x4)
/// matrices used here.
EigenDecomposition symmetric_eigen(const Matrix& a);

/// Number of eigenvalues above `tol * max(|eigenvalue|, 1e-300)` — the
/// numerical rank of an SPD matrix such as a covariance.
std::size_t spd_rank(const EigenDecomposition& eig, double tol = 1e-9);

}  // namespace lion::linalg
