// Small fixed-size vector types used throughout LION.
//
// The library deliberately hand-rolls its linear algebra: the target
// deployment is an edge node where pulling in a full BLAS/Eigen stack is
// unwanted, and the LION solve itself only ever needs tiny dense systems
// (<= 4 unknowns) plus tall-skinny least squares.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <stdexcept>

namespace lion::linalg {

/// Fixed-size dense vector of doubles.
///
/// Supports the usual element-wise arithmetic, dot product and Euclidean
/// norm. All operations are constexpr-friendly and allocation-free.
template <std::size_t N>
class Vec {
 public:
  constexpr Vec() : data_{} {}

  constexpr Vec(std::initializer_list<double> init) : data_{} {
    if (init.size() != N) {
      throw std::invalid_argument("Vec: initializer size mismatch");
    }
    std::size_t i = 0;
    for (double v : init) data_[i++] = v;
  }

  static constexpr std::size_t size() { return N; }

  constexpr double& operator[](std::size_t i) { return data_[i]; }
  constexpr double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access.
  constexpr double& at(std::size_t i) {
    if (i >= N) throw std::out_of_range("Vec::at");
    return data_[i];
  }
  constexpr double at(std::size_t i) const {
    if (i >= N) throw std::out_of_range("Vec::at");
    return data_[i];
  }

  constexpr Vec& operator+=(const Vec& o) {
    for (std::size_t i = 0; i < N; ++i) data_[i] += o.data_[i];
    return *this;
  }
  constexpr Vec& operator-=(const Vec& o) {
    for (std::size_t i = 0; i < N; ++i) data_[i] -= o.data_[i];
    return *this;
  }
  constexpr Vec& operator*=(double s) {
    for (std::size_t i = 0; i < N; ++i) data_[i] *= s;
    return *this;
  }
  constexpr Vec& operator/=(double s) {
    for (std::size_t i = 0; i < N; ++i) data_[i] /= s;
    return *this;
  }

  friend constexpr Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend constexpr Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend constexpr Vec operator*(Vec a, double s) { return a *= s; }
  friend constexpr Vec operator*(double s, Vec a) { return a *= s; }
  friend constexpr Vec operator/(Vec a, double s) { return a /= s; }
  friend constexpr Vec operator-(Vec a) { return a *= -1.0; }

  friend constexpr bool operator==(const Vec& a, const Vec& b) {
    for (std::size_t i = 0; i < N; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

  /// Dot product.
  constexpr double dot(const Vec& o) const {
    double s = 0.0;
    for (std::size_t i = 0; i < N; ++i) s += data_[i] * o.data_[i];
    return s;
  }

  /// Squared Euclidean norm.
  constexpr double squared_norm() const { return dot(*this); }

  /// Euclidean norm.
  double norm() const { return std::sqrt(squared_norm()); }

  /// Unit vector in the same direction. Throws for the zero vector.
  Vec normalized() const {
    const double n = norm();
    if (n == 0.0) throw std::domain_error("Vec::normalized: zero vector");
    return *this / n;
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::array<double, N> data_;
};

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;
using Vec4 = Vec<4>;

/// Euclidean distance between two points.
template <std::size_t N>
double distance(const Vec<N>& a, const Vec<N>& b) {
  return (a - b).norm();
}

/// Squared Euclidean distance (avoids the sqrt when only ordering matters).
template <std::size_t N>
constexpr double squared_distance(const Vec<N>& a, const Vec<N>& b) {
  return (a - b).squared_norm();
}

/// 2D cross product (z-component of the 3D cross of embedded vectors).
constexpr double cross(const Vec2& a, const Vec2& b) {
  return a[0] * b[1] - a[1] * b[0];
}

/// 3D cross product.
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return Vec3{a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
              a[0] * b[1] - a[1] * b[0]};
}

/// Lift a 2D point into 3D at the given z.
constexpr Vec3 lift(const Vec2& p, double z = 0.0) {
  return Vec3{p[0], p[1], z};
}

/// Drop the z coordinate of a 3D point.
constexpr Vec2 drop_z(const Vec3& p) { return Vec2{p[0], p[1]}; }

template <std::size_t N>
std::ostream& operator<<(std::ostream& os, const Vec<N>& v) {
  os << '(';
  for (std::size_t i = 0; i < N; ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ')';
}

}  // namespace lion::linalg
