#include "linalg/small.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"

namespace lion::linalg {

bool small_cholesky_factor(const SmallGram& a, SmallCholesky& out) {
  // Mirrors Cholesky::factor operation for operation.
  const std::size_t n = a.p;
  out.p = n;
  for (std::size_t i = 0; i < kSmallMaxCols; ++i) {
    for (std::size_t j = 0; j < kSmallMaxCols; ++j) out.l[i][j] = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.g[j][j];
    for (std::size_t k = 0; k < j; ++k) d -= out.l[j][k] * out.l[j][k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    out.l[j][j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.g[i][j];
      for (std::size_t k = 0; k < j; ++k) s -= out.l[i][k] * out.l[j][k];
      out.l[i][j] = s / out.l[j][j];
    }
  }
  return true;
}

void small_cholesky_solve(const SmallCholesky& chol, const double* b,
                          double* x) {
  // Mirrors Cholesky::solve: forward L y = b, then back L^T x = y.
  const std::size_t n = chol.p;
  double y[kSmallMaxCols];
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol.l[i][k] * y[k];
    y[i] = s / chol.l[i][i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= chol.l[k][ii] * x[k];
    x[ii] = s / chol.l[ii][ii];
  }
}

SolveStatus small_qr_solve(double a[][kSmallMaxCols], double* b,
                           std::size_t m, std::size_t p, double* x) {
  if (m < p) return SolveStatus::kUnderdetermined;
  // Mirrors the HouseholderQR constructor on the m x p block of `a`.
  double beta[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t k = 0; k < p; ++k) {
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += a[i][k] * a[i][k];
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;
    const double alpha = a[k][k] >= 0 ? -norm : norm;
    const double v0 = a[k][k] - alpha;
    const double vnorm2 = v0 * v0 + (norm2 - a[k][k] * a[k][k]);
    if (vnorm2 == 0.0) continue;
    beta[k] = 2.0 * v0 * v0 / vnorm2;
    for (std::size_t i = k + 1; i < m; ++i) a[i][k] /= v0;
    a[k][k] = alpha;
    for (std::size_t j = k + 1; j < p; ++j) {
      double s = a[k][j];
      for (std::size_t i = k + 1; i < m; ++i) s += a[i][k] * a[i][j];
      s *= beta[k];
      a[k][j] -= s;
      for (std::size_t i = k + 1; i < m; ++i) a[i][j] -= s * a[i][k];
    }
  }
  // HouseholderQR::solve throws exactly when some |R_ii| < kSingularTol;
  // checking the whole diagonal up front turns that into a status without
  // changing which systems succeed (the partial back-substitution the
  // throwing path performs first is discarded either way).
  for (std::size_t i = 0; i < p; ++i) {
    if (std::abs(a[i][i]) < kSingularTol) return SolveStatus::kRankDeficient;
  }
  // Mirrors HouseholderQR::solve: apply Q^T to b, then back-substitute.
  for (std::size_t k = 0; k < p; ++k) {
    if (beta[k] == 0.0) continue;
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += a[i][k] * b[i];
    s *= beta[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * a[i][k];
  }
  for (std::size_t ii = p; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < p; ++k) s -= a[ii][k] * x[k];
    x[ii] = s / a[ii][ii];
  }
  return SolveStatus::kOk;
}

void SolverWorkspace::load(const Matrix& a, const std::vector<double>& b) {
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  if (p == 0 || p > kSmallMaxCols) {
    throw std::invalid_argument(
        "SolverWorkspace::load: cols outside [1, kSmallMaxCols]");
  }
  if (b.size() != n) {
    throw std::invalid_argument("SolverWorkspace::load: rhs size mismatch");
  }
  n_ = n;
  p_ = p;
  packed_ = p * (p + 1) / 2;
  rows_.resize(n * p);
  products_.resize(n * packed_);
  rhsp_.resize(n * p);
  b_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double* src = a.row_data(r);
    double* row = rows_.data() + r * p;
    double* prod = products_.data() + r * packed_;
    double* rhsp = rhsp_.data() + r * p;
    const double br = b[r];
    for (std::size_t c = 0; c < p; ++c) row[c] = src[c];
    std::size_t k = 0;
    for (std::size_t i = 0; i < p; ++i) {
      const double ri = row[i];
      for (std::size_t j = i; j < p; ++j) prod[k++] = ri * row[j];
      rhsp[i] = row[i] * br;
    }
    b_[r] = br;
  }
}

Matrix SolverWorkspace::gram_matrix() const {
  if (!loaded()) {
    throw std::logic_error("SolverWorkspace::gram_matrix: nothing loaded");
  }
  SmallGram g;
  g.reset(p_);
  double rhs[kSmallMaxCols] = {0.0, 0.0, 0.0, 0.0};
  accumulate_masked(*this, nullptr, g, rhs);
  g.mirror();
  Matrix out(p_, p_);
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j < p_; ++j) out(i, j) = g.g[i][j];
  }
  return out;
}

// The three accumulators below sum per-row contributions exactly as
// Matrix::gram / transpose_multiply / weighted_gram /
// weighted_transpose_multiply do over the corresponding row-subset
// matrix. The unweighted forms add the cached products unconditionally
// where the Matrix code skips zero terms — for finite inputs adding a
// (+/-)0.0 product never changes an accumulator that started at +0.0
// (and can never round to -0.0), so the sums are bit-identical. The
// weighted form cannot use the product cache at all (w*(a_i*a_j) rounds
// differently from (w*a_i)*a_j); it keeps the legacy per-term expressions
// ((w * a_i) * a_j, a_c * (w * b)) over the cached raw rows. The legacy
// `w != 0` / `w * a_i == 0` guards only ever skip (+/-)0.0 contributions,
// so by the same zero-identity argument the straight-line form below is
// bit-identical too — and, with the column count a template constant, it
// unrolls and vectorizes.

void accumulate_rows(const SolverWorkspace& ws, const std::size_t* rows,
                     std::size_t m, SmallGram& g, double* rhs) {
  const std::size_t p = ws.cols();
  for (std::size_t r = 0; r < m; ++r) {
    const double* prod = ws.products(rows[r]);
    const double* rhsp = ws.rhs_products(rows[r]);
    std::size_t k = 0;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i; j < p; ++j) g.g[i][j] += prod[k++];
    }
    for (std::size_t c = 0; c < p; ++c) rhs[c] += rhsp[c];
  }
}

void accumulate_masked(const SolverWorkspace& ws, const char* mask,
                       SmallGram& g, double* rhs) {
  const std::size_t p = ws.cols();
  for (std::size_t r = 0; r < ws.rows(); ++r) {
    if (mask && !mask[r]) continue;
    const double* prod = ws.products(r);
    const double* rhsp = ws.rhs_products(r);
    std::size_t k = 0;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i; j < p; ++j) g.g[i][j] += prod[k++];
    }
    for (std::size_t c = 0; c < p; ++c) rhs[c] += rhsp[c];
  }
}

namespace {

template <std::size_t P>
void accumulate_weighted_masked_impl(const SolverWorkspace& ws,
                                     const char* mask, const double* w,
                                     SmallGram& g, double* rhs) {
  std::size_t sel = 0;
  for (std::size_t r = 0; r < ws.rows(); ++r) {
    if (mask && !mask[r]) continue;
    const double* row = ws.row(r);
    const double wr = w[sel];
    const double wv = wr * ws.rhs(r);
    ++sel;
    double wrow[P];
    for (std::size_t i = 0; i < P; ++i) wrow[i] = wr * row[i];
    for (std::size_t i = 0; i < P; ++i) {
      for (std::size_t j = i; j < P; ++j) g.g[i][j] += wrow[i] * row[j];
    }
    for (std::size_t c = 0; c < P; ++c) rhs[c] += row[c] * wv;
  }
}

}  // namespace

void accumulate_weighted_masked(const SolverWorkspace& ws, const char* mask,
                                const double* w, SmallGram& g, double* rhs) {
  switch (ws.cols()) {
    case 1:
      accumulate_weighted_masked_impl<1>(ws, mask, w, g, rhs);
      return;
    case 2:
      accumulate_weighted_masked_impl<2>(ws, mask, w, g, rhs);
      return;
    case 3:
      accumulate_weighted_masked_impl<3>(ws, mask, w, g, rhs);
      return;
    default:
      accumulate_weighted_masked_impl<4>(ws, mask, w, g, rhs);
      return;
  }
}

// ---------------------------------------------------------------------------
// IncrementalNormals
// ---------------------------------------------------------------------------

void IncrementalNormals::reset(std::size_t cols) {
  if (cols == 0 || cols > kSmallMaxCols) {
    throw std::invalid_argument(
        "IncrementalNormals: cols must be in [1, kSmallMaxCols]");
  }
  p_ = cols;
  packed_ = cols * (cols + 1) / 2;
  n_ = 0;
  for (std::size_t i = 0; i < kSmallMaxPacked; ++i) g_[i] = 0.0;
  for (std::size_t i = 0; i < kSmallMaxCols; ++i) c_[i] = 0.0;
  kk_ = 0.0;
  added_diag_ = 0.0;
  wsum_ = 0.0;
}

void IncrementalNormals::append(const double* a, double k) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) g_[idx++] += a[i] * a[j];
    c_[i] += a[i] * k;
    added_diag_ += a[i] * a[i];
  }
  kk_ += k * k;
  wsum_ += 1.0;
  ++n_;
}

void IncrementalNormals::downdate(const double* a, double k) {
  // Subtract exactly the products append() added; added_diag_ is monotone
  // on purpose (it tracks total traffic, not the surviving mass).
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) g_[idx++] -= a[i] * a[j];
    c_[i] -= a[i] * k;
  }
  kk_ -= k * k;
  wsum_ -= 1.0;
  if (n_ > 0) --n_;
}

void IncrementalNormals::append_weighted(const double* a, double k, double w) {
  // Legacy weighted-gram term order: (w * a_i) * a_j and a_i * (w * k),
  // matching accumulate_weighted_masked / Matrix::weighted_gram.
  const double wk = w * k;
  double wa[kSmallMaxCols];
  for (std::size_t i = 0; i < p_; ++i) wa[i] = w * a[i];
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) g_[idx++] += wa[i] * a[j];
    c_[i] += a[i] * wk;
    added_diag_ += std::abs(wa[i] * a[i]);
  }
  kk_ += wk * k;
  wsum_ += w;
  ++n_;
}

void IncrementalNormals::downdate_weighted(const double* a, double k,
                                           double w) {
  const double wk = w * k;
  double wa[kSmallMaxCols];
  for (std::size_t i = 0; i < p_; ++i) wa[i] = w * a[i];
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) g_[idx++] -= wa[i] * a[j];
    c_[i] -= a[i] * wk;
  }
  kk_ -= wk * k;
  wsum_ -= w;
  if (n_ > 0) --n_;
}

void IncrementalNormals::reweight(const double* a, double k, double w_old,
                                  double w_new) {
  // Per entry: subtract the w_old product, then add the w_new product —
  // the exact per-entry add sequence of downdate_weighted(a, k, w_old)
  // followed by append_weighted(a, k, w_new), fused into one pass. The
  // row count is untouched; the new diagonal mass still counts toward the
  // cancellation ratio.
  const double wk_old = w_old * k;
  const double wk_new = w_new * k;
  double wa_old[kSmallMaxCols];
  double wa_new[kSmallMaxCols];
  for (std::size_t i = 0; i < p_; ++i) {
    wa_old[i] = w_old * a[i];
    wa_new[i] = w_new * a[i];
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) {
      g_[idx] -= wa_old[i] * a[j];
      g_[idx] += wa_new[i] * a[j];
      ++idx;
    }
    c_[i] -= a[i] * wk_old;
    c_[i] += a[i] * wk_new;
    added_diag_ += std::abs(wa_new[i] * a[i]);
  }
  kk_ -= wk_old * k;
  kk_ += wk_new * k;
  wsum_ -= w_old;
  wsum_ += w_new;
}

double IncrementalNormals::weighted_rss(const double* x) const {
  if (n_ == 0) return 0.0;
  double xgx = 0.0;
  double xc = 0.0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) {
      const double term = g_[idx++] * x[i] * x[j];
      xgx += i == j ? term : 2.0 * term;
    }
    xc += x[i] * c_[i];
  }
  return std::max(0.0, xgx - 2.0 * xc + kk_);
}

bool IncrementalNormals::solve(double* x) const {
  if (n_ < p_) return false;
  SmallGram g;
  g.reset(p_);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) g.g[i][j] = g_[idx++];
  }
  g.mirror();
  SmallCholesky chol;
  if (!small_cholesky_factor(g, chol)) return false;
  small_cholesky_solve(chol, c_, x);
  for (std::size_t i = 0; i < p_; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

double IncrementalNormals::rms(const double* x) const {
  if (n_ == 0) return 0.0;
  // x^T G x from the packed upper triangle (off-diagonals count twice).
  double xgx = 0.0;
  double xc = 0.0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = i; j < p_; ++j) {
      const double term = g_[idx++] * x[i] * x[j];
      xgx += i == j ? term : 2.0 * term;
    }
    xc += x[i] * c_[i];
  }
  const double ss = xgx - 2.0 * xc + kk_;
  return std::sqrt(std::max(0.0, ss / static_cast<double>(n_)));
}

double IncrementalNormals::cancellation() const {
  double live = 0.0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    live += std::abs(g_[idx]);
    idx += p_ - i;  // step from diagonal (i,i) to diagonal (i+1,i+1)
  }
  if (added_diag_ <= 0.0) return 1.0;
  constexpr double kTiny = 1e-300;
  return added_diag_ / std::max(live, kTiny);
}

}  // namespace lion::linalg
