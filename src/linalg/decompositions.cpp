#include "linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace lion::linalg {

// ---------------------------------------------------------------- Cholesky

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return std::nullopt;
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: size");
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double Cholesky::determinant() const {
  double d = 1.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) d *= l_(i, i) * l_(i, i);
  return d;
}

// ------------------------------------------------------------ PartialPivLU

std::optional<PartialPivLU> PartialPivLU::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("PartialPivLU: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  int sign = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot: largest |entry| in this column at or below the diagonal.
    std::size_t piv = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu(r, col));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < kSingularTol) return std::nullopt;
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(piv, c), lu(col, c));
      std::swap(perm[piv], perm[col]);
      sign = -sign;
    }
    const double d = lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / d;
      lu(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) lu(r, c) -= f * lu(col, c);
    }
  }
  return PartialPivLU(std::move(lu), std::move(perm), sign);
}

std::vector<double> PartialPivLU::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("PartialPivLU::solve: size");
  // Apply permutation, then forward-substitute with unit-lower L.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  // Back-substitute with U.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

double PartialPivLU::determinant() const {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

// ----------------------------------------------------------- HouseholderQR

HouseholderQR::HouseholderQR(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (m < n) {
    throw std::invalid_argument("HouseholderQR: needs rows >= cols");
  }
  beta_.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector for column k from rows k..m-1.
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;  // zero column: nothing to eliminate
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); store v/v0 below the diagonal so
    // the implicit leading entry is 1.
    const double vnorm2 = v0 * v0 + (norm2 - qr_(k, k) * qr_(k, k));
    if (vnorm2 == 0.0) continue;
    beta_[k] = 2.0 * v0 * v0 / vnorm2;
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    qr_(k, k) = alpha;  // R diagonal
    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

std::vector<double> HouseholderQR::solve(const std::vector<double>& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) throw std::invalid_argument("HouseholderQR::solve: size");
  std::vector<double> y = b;
  // Apply Q^T to b.
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  // Back-substitute R x = (Q^T b)_{1..n}.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= qr_(ii, k) * x[k];
    const double d = qr_(ii, ii);
    if (std::abs(d) < kSingularTol) {
      throw std::domain_error("HouseholderQR::solve: rank deficient");
    }
    x[ii] = s / d;
  }
  return x;
}

std::vector<double> HouseholderQR::r_diagonal() const {
  std::vector<double> d(qr_.cols());
  for (std::size_t i = 0; i < qr_.cols(); ++i) d[i] = std::abs(qr_(i, i));
  return d;
}

double HouseholderQR::condition_estimate() const {
  const auto d = r_diagonal();
  const auto [mn, mx] = std::minmax_element(d.begin(), d.end());
  if (*mn == 0.0) return std::numeric_limits<double>::infinity();
  return *mx / *mn;
}

// ------------------------------------------------------------------- misc

Matrix inverse(const Matrix& a) {
  const auto lu = PartialPivLU::factor(a);
  if (!lu) throw std::domain_error("inverse: singular matrix");
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const auto col = lu->solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

std::vector<double> solve_square(const Matrix& a,
                                 const std::vector<double>& b) {
  if (const auto chol = Cholesky::factor(a)) return chol->solve(b);
  const auto lu = PartialPivLU::factor(a);
  if (!lu) throw std::domain_error("solve_square: singular matrix");
  return lu->solve(b);
}

}  // namespace lion::linalg
