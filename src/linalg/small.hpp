// Zero-allocation small-matrix kernels for the RANSAC/IRLS hot path.
//
// Every LION system is tall-skinny: N radical-line equations over at most
// four unknowns (frame coordinates plus the reference distance d_r). The
// general Matrix/Cholesky/QR classes solve it correctly but heap-allocate
// a gram matrix, a factor, and several result vectors per solve — and the
// consensus sampler performs hundreds of such solves per calibration. The
// kernels here are the fixed-capacity, stack-allocated, *non-throwing*
// counterparts, built around one contract:
//
//   Bit-exactness. Each kernel performs the same floating-point
//   operations in the same order as the general-path code it replaces
//   (Matrix::gram / weighted_gram / transpose_multiply, Cholesky::factor
//   / solve, HouseholderQR), so a solver that switches between the two
//   paths produces byte-identical calibration reports. The engine
//   determinism and golden-CSV suites referee this contract; the
//   randomized kernel tests in tests/linalg/test_small.cpp assert exact
//   (==) agreement, not just closeness.
//
// The SolverWorkspace carries per-row caches of the loaded system:
//   - packed symmetric outer products P_r = upper(a_r a_r^T) and rhs
//     products q_r = a_r * b_r, summable in row order into an unweighted
//     gram / A^T b with exactly the legacy rounding (used by every
//     RANSAC minimal-subset solve and every OLS seed solve);
//   - the raw rows and b, for the *weighted* accumulations, which must
//     keep the legacy (w * a_i) * a_j multiplication order — caching the
//     product a_i * a_j first would associate differently and break
//     bit-exactness, so weighted grams re-read the cached rows instead.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"

namespace lion::linalg {

/// Widest system the small kernels accept (LION solves p in {2, 3, 4}).
inline constexpr std::size_t kSmallMaxCols = 4;

/// Rows of a RANSAC minimal subset at the widest system (p + 1).
inline constexpr std::size_t kSmallMaxMinimalRows = kSmallMaxCols + 1;

/// Packed length of the upper triangle of a kSmallMaxCols-wide gram.
inline constexpr std::size_t kSmallMaxPacked =
    kSmallMaxCols * (kSmallMaxCols + 1) / 2;

/// Fixed-capacity symmetric p x p accumulator (a gram matrix in the
/// making). accumulate fills the upper triangle in the same (i, j >= i)
/// order as Matrix::gram; mirror() copies it down, after which the full
/// array is valid for the Cholesky kernel (which reads the lower half).
struct SmallGram {
  std::size_t p = 0;
  double g[kSmallMaxCols][kSmallMaxCols];

  void reset(std::size_t cols) {
    p = cols;
    for (std::size_t i = 0; i < kSmallMaxCols; ++i) {
      for (std::size_t j = 0; j < kSmallMaxCols; ++j) g[i][j] = 0.0;
    }
  }
  void mirror() {
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < i; ++j) g[i][j] = g[j][i];
    }
  }
};

/// Stack-allocated Cholesky factor L of a SmallGram.
struct SmallCholesky {
  std::size_t p = 0;
  double l[kSmallMaxCols][kSmallMaxCols];
};

/// Factor a mirrored SmallGram; false when not SPD within tolerance
/// (same accept/reject condition as Cholesky::factor returning nullopt).
bool small_cholesky_factor(const SmallGram& a, SmallCholesky& out);

/// Solve L L^T x = b from a successful factorization.
void small_cholesky_solve(const SmallCholesky& chol, const double* b,
                          double* x);

/// Non-throwing Householder-QR least squares for an m x p system with
/// m <= kSmallMaxMinimalRows (the RANSAC minimal subsets). `a` and `b`
/// are scratch and are destroyed. Mirrors HouseholderQR's reflector
/// construction and solve bit-for-bit; returns kRankDeficient exactly
/// when the general path would throw.
SolveStatus small_qr_solve(double a[][kSmallMaxCols], double* b,
                           std::size_t m, std::size_t p, double* x);

/// Reusable scratch for the consensus/IRLS solver stack. One workspace
/// per thread (the batch engine keeps one per pool worker); load() caches
/// a system's rows and per-row products, and the public buffers back
/// every intermediate the solvers need. All storage grows geometrically
/// and never shrinks, so a warmed workspace makes the steady-state
/// solve loop allocation-free (asserted by tests/perf/test_alloc.cpp).
///
/// A workspace never affects results — solves through a workspace are
/// bit-identical to the allocating general path.
class SolverWorkspace {
 public:
  SolverWorkspace() = default;
  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  /// Cache system (a, b): raw rows, b, packed outer products, rhs
  /// products. Requires a.cols() <= kSmallMaxCols and b.size() ==
  /// a.rows() (throws std::invalid_argument otherwise).
  void load(const Matrix& a, const std::vector<double>& b);

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return p_; }
  std::size_t packed_size() const { return packed_; }
  bool loaded() const { return p_ != 0; }

  /// Row r of the cached design matrix (cols() entries).
  const double* row(std::size_t r) const { return rows_.data() + r * p_; }
  /// Packed upper-triangle outer product of row r (packed_size() entries,
  /// (i, j >= i) row-major — the accumulation order of Matrix::gram).
  const double* products(std::size_t r) const {
    return products_.data() + r * packed_;
  }
  /// Per-row rhs products q_r(c) = a(r, c) * b(r) (cols() entries).
  const double* rhs_products(std::size_t r) const {
    return rhsp_.data() + r * p_;
  }
  double rhs(std::size_t r) const { return b_[r]; }

  /// A^T A of the loaded system, summed from the cached products —
  /// bit-exact with Matrix::gram() on the loaded matrix, without
  /// re-reading it (used by the GDOP diagnostics after a workspace
  /// solve). Requires loaded().
  Matrix gram_matrix() const;

  // Scratch buffers, resized (never shrunk) by the solver routines.
  std::vector<double> residuals;       ///< candidate residuals (RANSAC)
  std::vector<double> best_residuals;  ///< best-so-far residuals (RANSAC)
  std::vector<double> squared;         ///< generic squared-value scratch
  std::vector<double> median_scratch;  ///< median_in_place victim buffer
  std::vector<double> abs_dev;         ///< MAD deviations (robust weights)
  std::vector<double> weights;         ///< per-row IRLS weights
  std::vector<std::size_t> indices;    ///< Fisher-Yates subset sampler
  LstsqResult irls_scratch;            ///< IRLS double-buffer slot

 private:
  std::size_t n_ = 0;
  std::size_t p_ = 0;
  std::size_t packed_ = 0;
  std::vector<double> rows_;
  std::vector<double> products_;
  std::vector<double> rhsp_;
  std::vector<double> b_;
};

/// Incrementally maintained normal equations of a tall-skinny system with
/// p <= kSmallMaxCols unknowns: G = A^T A (packed upper triangle, the
/// accumulation order of Matrix::gram), c = A^T k, plus sum(k^2) so the
/// residual RMS of a candidate x is available in O(p^2) without touching
/// the rows:  n * rms^2 = x^T G x - 2 x^T c + sum(k^2).
///
/// append() is a rank-1 update; downdate() removes a previously appended
/// row by subtracting the identical products, so an append immediately
/// followed by its downdate round-trips the accumulator to within one ulp
/// per entry (the metamorphic suite pins 1e-12 relative). Long
/// append/downdate chains lose precision when the surviving mass is a
/// tiny difference of large totals — `cancellation()` measures exactly
/// that ratio so callers can re-accumulate from the surviving rows
/// (sliding-window rebuild) before the gram turns to noise.
class IncrementalNormals {
 public:
  void reset(std::size_t cols);

  std::size_t cols() const { return p_; }
  std::size_t rows() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Rank-1 update with row `a` (cols() entries) and rhs `k`.
  void append(const double* a, double k);
  /// Remove a previously appended row. Requires rows() > 0.
  void downdate(const double* a, double k);

  /// Weighted rank-1 update: G += w a a^T, c += a (w k), kk += (w k) k.
  /// Keeps the legacy weighted-gram multiplication order ((w * a_i) * a_j
  /// and a_c * (w * k), the accumulate_weighted_masked order) so a gram
  /// assembled by weighted appends in row order is bit-exact with
  /// Matrix::weighted_gram on the materialized system. append(a, k) and
  /// append_weighted(a, k, 1.0) differ in rounding (the unweighted form
  /// has no multiply by w); callers must not mix them for the same rows.
  void append_weighted(const double* a, double k, double w);
  /// Remove a previously weight-appended row: subtracts exactly the
  /// products append_weighted(a, k, w) added. Requires rows() > 0.
  void downdate_weighted(const double* a, double k, double w);
  /// Re-weight a resident row in place without rebuilding: per entry,
  /// subtract the w_old product then add the w_new product — bit-identical
  /// to downdate_weighted(a, k, w_old) followed by append_weighted(a, k,
  /// w_new), in one O(p^2) pass, without touching rows(). The new mass
  /// still counts toward cancellation() (traffic is monotone), so long
  /// re-weight chains trip the rebuild gate like append/downdate chains.
  void reweight(const double* a, double k, double w_old, double w_new);

  /// Accumulated weight mass: sum of w over live rows, counting each
  /// unweighted append/downdate as w = 1.
  double weight_sum() const { return wsum_; }

  /// Weighted residual sum of squares sum_i w_i r_i^2 of `x` over the
  /// accumulated rows, from the maintained quantities only (valid when the
  /// accumulator was built with the weighted mutators). Cancellation can
  /// push the quadratic form slightly negative; it is clamped at zero.
  double weighted_rss(const double* x) const;

  /// Solve G x = c by the small Cholesky kernel; false when the
  /// accumulated gram is not SPD (degenerate or downdated-to-noise).
  bool solve(double* x) const;

  /// Residual RMS of `x` over the accumulated rows, from the maintained
  /// quantities only. Cancellation can push the quadratic form slightly
  /// negative; it is clamped at zero.
  double rms(const double* x) const;

  /// Ratio of total appended diagonal mass to the surviving diagonal
  /// mass (>= 1). Large values mean the gram is a small difference of
  /// large sums — time to re-accumulate from the surviving rows.
  double cancellation() const;

  /// Packed upper triangle of G ((i, j >= i) row-major; cols()*(cols()+1)/2
  /// entries) — exposed for the metamorphic kernel suite.
  const double* gram_packed() const { return g_; }
  const double* rhs() const { return c_; }
  double rhs_squared_sum() const { return kk_; }

 private:
  std::size_t p_ = 0;
  std::size_t packed_ = 0;
  std::size_t n_ = 0;
  double g_[kSmallMaxPacked] = {};
  double c_[kSmallMaxCols] = {};
  double kk_ = 0.0;          ///< sum of k^2 over live rows
  double added_diag_ = 0.0;  ///< diagonal mass ever appended (monotone)
  double wsum_ = 0.0;        ///< weight mass over live rows
};

/// g += sum of cached outer products of `rows[0..m)` (in that order) and
/// rhs[c] += the matching rhs products — the unweighted normal equations
/// of the row subset, bit-exact with Matrix::gram / transpose_multiply
/// on the gathered submatrix. `g` must be reset to ws.cols() and `rhs`
/// zeroed by the caller; call g.mirror() afterwards.
void accumulate_rows(const SolverWorkspace& ws, const std::size_t* rows,
                     std::size_t m, SmallGram& g, double* rhs);

/// Same over the rows selected by `mask` (mask == nullptr selects every
/// row), in increasing row order.
void accumulate_masked(const SolverWorkspace& ws, const char* mask,
                       SmallGram& g, double* rhs);

/// Weighted normal equations over the masked rows: w[k] is the weight of
/// the k-th *selected* row. Keeps the legacy multiplication order
/// ((w * a_i) * a_j and a_c * (w * b)) by reading the cached raw rows, so
/// the result is bit-exact with Matrix::weighted_gram /
/// weighted_transpose_multiply on the materialized subsystem.
void accumulate_weighted_masked(const SolverWorkspace& ws, const char* mask,
                                const double* w, SmallGram& g, double* rhs);

}  // namespace lion::linalg
