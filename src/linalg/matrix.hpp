// Dynamically-sized dense row-major matrix.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace lion::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized at runtime; the LION systems are tall-skinny (N equations x <=4
/// unknowns), so the storage layout favours row-wise construction and
/// traversal.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Constant-filled matrix.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from the given entries.
  static Matrix diagonal(const std::vector<double>& entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Pointer to the start of row r (contiguous, cols() entries).
  double* row_data(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_data(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product (b as a column vector).
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// A^T * A — the (cols x cols) Gram matrix, computed without forming A^T.
  Matrix gram() const;

  /// A^T * diag(w) * A for per-row weights w (w.size() == rows()).
  Matrix weighted_gram(const std::vector<double>& w) const;

  /// A^T * v for a column vector v (v.size() == rows()).
  std::vector<double> transpose_multiply(const std::vector<double>& v) const;

  /// A^T * diag(w) * v.
  std::vector<double> weighted_transpose_multiply(
      const std::vector<double>& w, const std::vector<double>& v) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max absolute entry.
  double max_abs() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// True when every entry of a and b differs by at most tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

}  // namespace lion::linalg
